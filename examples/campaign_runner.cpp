// campaign_runner: regenerates the paper's experimental artifact — a
// directory of strace-format trace files for every run (SSF, FPP,
// POSIX, MPI-IO) plus the processed elog containers, mirroring the
// dataset the authors published on Zenodo.
//
//   ./campaign_runner --out /tmp/st_dataset [--ranks 96] [--threads 1]
//
// Layout produced:
//   <out>/traces/ssf/ssf_node{1,2}_*.st      raw traces, one per rank
//   <out>/traces/fpp/..., posix/, mpiio/
//   <out>/ssf_fpp.elog                        merged CX event log
//   <out>/mpiio.elog                          merged CY event log
//   <out>/summary.txt                         per-case summaries
#include <filesystem>
#include <fstream>
#include <iostream>

#include "elog/store.hpp"
#include "iosim/campaign.hpp"
#include "dfg/builder.hpp"
#include "model/case_stats.hpp"
#include "model/from_strace.hpp"
#include "report/report.hpp"
#include "strace/filename.hpp"
#include "support/cli.hpp"
#include "support/errors.hpp"

int main(int argc, char** argv) {
  using namespace st;
  CliParser cli;
  cli.add_flag("out", "output directory", "/tmp/st_dataset");
  cli.add_flag("ranks", "MPI ranks per run", "96");
  cli.add_flag("ranks-per-node", "ranks per simulated host", "48");
  cli.add_flag("threads", "child processes per rank (SMT mode)", "1");
  cli.add_flag("verify", "re-ingest the written trace files and check event counts",
               std::nullopt, true);
  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << cli.usage("campaign_runner");
    return 1;
  }
  const std::string out = cli.get("out");

  iosim::CampaignScale scale;
  scale.num_ranks = static_cast<int>(cli.get_int("ranks"));
  scale.ranks_per_node = static_cast<int>(cli.get_int("ranks-per-node"));
  const int threads = static_cast<int>(cli.get_int("threads"));

  const struct {
    const char* name;
    iosim::IorOptions options;
  } runs[] = {
      {"ssf", iosim::make_ssf_options(scale)},
      {"fpp", iosim::make_fpp_options(scale)},
      {"posix", iosim::make_posix_options(scale)},
      {"mpiio", iosim::make_mpiio_options(scale)},
  };

  model::EventLog all_cases;
  for (const auto& run : runs) {
    iosim::IorOptions options = run.options;
    options.threads_per_rank = threads;
    std::cout << "# " << options.command_line() << "\n";
    const auto traces = iosim::run_ior(options);
    const std::string dir = out + "/traces/" + run.name;
    traces.write_files(dir);
    std::cout << "  -> " << traces.traces.size() << " trace files in " << dir << "\n";
    all_cases = model::EventLog::merge(all_cases, traces.to_event_log());

    if (cli.get_bool("verify")) {
      // Round-trip check: the written strace text must re-ingest (via
      // the zero-copy parallel reader) to the same number of events.
      std::vector<std::string> files;
      files.reserve(traces.traces.size());
      for (const auto& t : traces.traces) {
        files.push_back(dir + "/" + strace::format_trace_filename(t.id));
      }
      const auto reread = model::event_log_from_files(files);
      const auto direct = traces.to_event_log();
      if (reread.total_events() != direct.total_events()) {
        throw LogicError("trace round-trip mismatch in " + dir + ": wrote " +
                         std::to_string(direct.total_events()) + " events, re-read " +
                         std::to_string(reread.total_events()));
      }
      std::cout << "  -> verified: " << reread.total_events() << " events re-ingested\n";
    }
  }

  // Processed containers, as the paper stores them ("a single HDF5 file").
  elog::write_event_log_file(out + "/ssf_fpp.elog", iosim::ssf_fpp_campaign(scale));
  elog::write_event_log_file(out + "/mpiio.elog", iosim::mpiio_campaign(scale));
  std::cout << "  -> " << out << "/ssf_fpp.elog, " << out << "/mpiio.elog\n";

  // HTML reports (DFG as SVG + statistics tables), one per experiment.
  {
    const auto cx = iosim::ssf_fpp_campaign(scale);
    const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 1);
    const auto stats = dfg::IoStatistics::compute(cx, f);
    const dfg::StatisticsColoring styler(stats);
    report::ReportOptions opts;
    opts.title = "IOR: single shared file vs file per process";
    opts.description = "Reproduction of Fig. 8 (paper arXiv:2408.07378)";
    report::write_report_file(out + "/ssf_fpp_report.html", cx, f, &styler, opts);

    const auto cy = iosim::mpiio_campaign(scale);
    const auto [green, red] =
        cy.partition([](const model::Case& c) { return c.id().cid == "mpiio"; });
    const dfg::PartitionColoring partition(dfg::build_serial(green, f),
                                           dfg::build_serial(red, f));
    report::ReportOptions opts9;
    opts9.title = "IOR: with vs without MPI-IO";
    opts9.description = "Reproduction of Fig. 9 (paper arXiv:2408.07378)";
    opts9.partition_legend = "green = MPI-IO run only, red = POSIX run only";
    report::write_report_file(out + "/mpiio_report.html", cy, f, &partition, opts9);
    std::cout << "  -> " << out << "/ssf_fpp_report.html, " << out << "/mpiio_report.html\n";
  }

  // Human-readable inventory.
  std::ofstream summary(out + "/summary.txt");
  if (!summary) throw IoError("cannot write summary: " + out);
  summary << render_case_summaries(summarize_cases(all_cases));
  std::cout << "  -> " << out << "/summary.txt (" << all_cases.case_count() << " cases, "
            << all_cases.total_events() << " events)\n";
  return 0;
}
