// With vs without the MPI-IO interface (paper Sec. V-B, Fig. 9).
//
// Runs IOR in SSF mode twice — POSIX API and naive MPI-IO (-a mpiio) —
// and applies partition-based coloring: green elements occur only in
// the MPI-IO run, red ones only in the POSIX run.
//
//   ./mpiio_compare [--ranks 96] [--ranks-per-node 48] [--dot]
#include <iostream>

#include "dfg/builder.hpp"
#include "dfg/render.hpp"
#include "iosim/campaign.hpp"
#include "support/cli.hpp"
#include "support/errors.hpp"

int main(int argc, char** argv) {
  using namespace st;
  CliParser cli;
  cli.add_flag("ranks", "MPI ranks per run", "96");
  cli.add_flag("ranks-per-node", "ranks per simulated host", "48");
  cli.add_flag("dot", "print Graphviz DOT instead of ASCII", std::nullopt, true);
  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << cli.usage("mpiio_compare");
    return 1;
  }

  iosim::CampaignScale scale;
  scale.num_ranks = static_cast<int>(cli.get_int("ranks"));
  scale.ranks_per_node = static_cast<int>(cli.get_int("ranks-per-node"));

  std::cout << "# " << iosim::make_posix_options(scale).command_line() << "\n";
  std::cout << "# " << iosim::make_mpiio_options(scale).command_line() << "\n\n";

  const auto log = iosim::mpiio_campaign(scale);

  // The paper skips openat nodes in Fig. 9 — they add no insight here.
  const auto no_openat = log.filter_events(
      [](const model::Event& e) { return e.call != "openat" && e.call != "openat2"; });

  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 0);
  const auto [green_log, red_log] =
      no_openat.partition([](const model::Case& c) { return c.id().cid == "mpiio"; });

  const auto g = dfg::build_serial(no_openat, f);
  const auto stats = dfg::IoStatistics::compute(no_openat, f);
  const dfg::PartitionColoring styler(dfg::build_serial(green_log, f),
                                      dfg::build_serial(red_log, f));

  dfg::RenderOptions opts;
  opts.graph_name = "Fig. 9: MPI-IO (green) vs POSIX (red)";
  if (cli.get_bool("dot")) {
    std::cout << dfg::render_dot(g, &stats, &styler, opts);
  } else {
    std::cout << "=== Fig. 9: partition-colored DFG ===\n"
              << dfg::render_ascii(g, &stats, &styler, opts) << "\n";
  }

  // Quantify the paper's conclusion: fewer syscalls, lower total load.
  auto totals = [](const model::EventLog& l) {
    std::pair<std::size_t, Micros> t{0, 0};
    for (const auto& c : l.cases()) {
      for (const auto& e : c.events()) {
        ++t.first;
        t.second += e.dur;
      }
    }
    return t;
  };
  const auto [mpiio_calls, mpiio_dur] = totals(green_log);
  const auto [posix_calls, posix_dur] = totals(red_log);
  std::cout << "POSIX run:  " << posix_calls << " syscalls, " << posix_dur << " us total\n";
  std::cout << "MPI-IO run: " << mpiio_calls << " syscalls, " << mpiio_dur << " us total\n";
  return 0;
}
