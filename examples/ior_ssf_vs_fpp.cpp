// Single-Shared-File vs File-Per-Process (paper Sec. V-A, Fig. 8).
//
// Simulates the two IOR runs of Fig. 7b, merges their event logs,
// and answers the paper's question: does shared-file contention show
// up as inflated openat/write durations under $SCRATCH/ssf?
//
//   ./ior_ssf_vs_fpp [--ranks 96] [--ranks-per-node 48] [--elog out.elog]
#include <iostream>

#include "dfg/builder.hpp"
#include "dfg/render.hpp"
#include "elog/store.hpp"
#include "iosim/campaign.hpp"
#include "support/cli.hpp"
#include "support/errors.hpp"

int main(int argc, char** argv) {
  using namespace st;
  CliParser cli;
  cli.add_flag("ranks", "MPI ranks per run", "96");
  cli.add_flag("ranks-per-node", "ranks per simulated host", "48");
  cli.add_flag("elog", "also store the merged event log to this file", std::nullopt);
  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << cli.usage("ior_ssf_vs_fpp");
    return 1;
  }

  iosim::CampaignScale scale;
  scale.num_ranks = static_cast<int>(cli.get_int("ranks"));
  scale.ranks_per_node = static_cast<int>(cli.get_int("ranks-per-node"));

  std::cout << "# " << iosim::make_ssf_options(scale).command_line() << "\n";
  std::cout << "# " << iosim::make_fpp_options(scale).command_line() << "\n\n";

  const auto log = iosim::ssf_fpp_campaign(scale);
  std::cout << "event log: " << log.case_count() << " cases, " << log.total_events()
            << " events (openat/read/write variants)\n\n";

  if (cli.has("elog")) {
    elog::write_event_log_file(cli.get("elog"), log);
    std::cout << "stored event log to " << cli.get("elog") << "\n\n";
  }

  // Fig. 8a: all events, site-collapsed mapping, statistics coloring.
  {
    const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 0);
    const auto g = dfg::build_serial(log, f);
    const auto stats = dfg::IoStatistics::compute(log, f);
    const dfg::StatisticsColoring styler(stats);
    dfg::RenderOptions opts;
    opts.graph_name = "Fig. 8a: all events";
    std::cout << "=== Fig. 8a: DFG over all events ===\n"
              << dfg::render_ascii(g, &stats, &styler, opts) << "\n";
  }

  // Fig. 8b: restrict to $SCRATCH, one extra path level (ssf vs fpp).
  {
    const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 1)
                       .filtered_fp("/p/scratch");
    const auto g = dfg::build_serial(log, f);
    const auto stats = dfg::IoStatistics::compute(log, f);
    const dfg::StatisticsColoring styler(stats);
    dfg::RenderOptions opts;
    opts.graph_name = "Fig. 8b: $SCRATCH only";
    std::cout << "=== Fig. 8b: DFG over $SCRATCH events ===\n"
              << dfg::render_ascii(g, &stats, &styler, opts) << "\n";

    const auto* ssf_write = stats.find("write\n$SCRATCH/ssf");
    const auto* fpp_write = stats.find("write\n$SCRATCH/fpp");
    if (ssf_write != nullptr && fpp_write != nullptr && fpp_write->rel_dur > 0) {
      std::cout << "SSF write load is " << ssf_write->rel_dur / fpp_write->rel_dur
                << "x the FPP write load -> file-locking contention quantified.\n";
    }
  }
  return 0;
}
