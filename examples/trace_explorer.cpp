// trace_explorer: the "DFG as an interactive query" workflow from the
// paper, as a CLI. Load trace files (cid_host_rid.st) and/or .elog
// containers — mixed freely; v2 containers open by mmap with no
// reparse — apply a query and a mapping, and inspect the resulting
// DFG, statistics, trace variants or an activity timeline.
//
//   ./trace_explorer a_host1_9042.st b_host1_9157.st \
//       --filter /usr/lib --map last2 --render dot
//   ./trace_explorer run.elog --map site1 --timeline "read\n$SCRATCH/ssf"
//   ./trace_explorer imported.elog --query 'fp~/p calls{read,write}' \
//       --render report
//
// Queries come in two spellings: --filter <substr> is sugar for a
// single path restriction, --query takes the full canonical grammar
// of model/query.hpp (the same string the serve wire format uses).
//
// serve mode turns the same corpus into a resident service
// (corpus::Catalog + the ndjson/HTTP loop of corpus/serve.hpp):
//
//   ./trace_explorer serve corpus.elog                # TCP, ephemeral port
//   ./trace_explorer serve corpus.elog --port 8080
//   ./trace_explorer serve corpus.elog --stdio        # requests on stdin
//
// With no positional arguments it demos on the built-in ls / ls -l
// traces of Fig. 2.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <optional>
#include <utility>

#include "corpus/catalog.hpp"
#include "corpus/serve.hpp"
#include "dfg/builder.hpp"
#include "dfg/render.hpp"
#include "dfg/render_svg.hpp"
#include "elog/store.hpp"
#include "elog/v2_select.hpp"
#include "iosim/commands.hpp"
#include "model/case_stats.hpp"
#include "model/from_strace.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/stream.hpp"
#include "report/report.hpp"
#include "support/cli.hpp"
#include "support/cli_args.hpp"
#include "support/errors.hpp"
#include "support/strings.hpp"

namespace {

/// The request-side query: --query parses the full grammar, --filter
/// layers a path-substring restriction on top (both may be given).
st::model::Query query_from_flags(const st::CliParser& cli) {
  st::model::Query q;
  if (cli.has("query")) q = st::model::Query::parse(cli.get("query"));
  if (cli.has("filter")) q = q.fp_contains(cli.get("filter"));
  return q;
}

int run_serve(const st::CliParser& cli) {
  using namespace st;
  corpus::CatalogOptions copts;
  copts.mapping = cli.get("map");
  copts.cache_capacity =
      static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("cache-entries")));
  copts.policy = cliargs::run_policy(cli);
  corpus::Catalog catalog(copts);
  ThreadPool pool(cliargs::thread_count(cli));
  const std::vector<std::string> inputs(cli.positional().begin() + 1, cli.positional().end());
  if (inputs.empty()) throw ParseError("serve takes .elog containers and/or trace files");
  catalog.load(inputs, pool);
  for (const auto& w : catalog.load_warnings()) std::cerr << "warning: " << w << "\n";
  if (cli.get_bool("stdio")) {
    corpus::serve_lines(catalog, std::cin, std::cout);
    return 0;
  }
  corpus::Server server(catalog, static_cast<std::uint16_t>(cli.get_int("port")));
  std::cerr << "serving " << catalog.base()->case_count() << " cases on 127.0.0.1:"
            << server.port() << "\n";
  server.serve_forever(pool);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace st;
  CliParser cli;
  cli.add_flag("filter", "keep only events whose path contains this substring", std::nullopt);
  cli.add_flag("query", "full query in the canonical grammar, e.g. 'fp~/p calls{read,write}'",
               std::nullopt);
  cliargs::add_map_flag(cli, "activity mapping", "top2");
  cli.add_flag("render", "output form: ascii|dot|svg|report|variants|stats|summary", "ascii");
  cli.add_flag("timeline", "print the timeline of this activity (use \\n between call and path)",
               std::nullopt);
  cli.add_flag("ranks", "annotate nodes with distinct rank counts", std::nullopt, true);
  cliargs::add_threads_flag(cli, "ingestion worker");
  cliargs::add_stream_report_flag(
      cli,
      "single-pass HTML report straight from trace files (parse, DFG, case table and "
      "variants fold on one pool; overrides --render)",
      /*takes_path=*/false);
  cliargs::add_keep_going_flag(cli, "unreadable/unparseable inputs");
  cli.add_flag("stdio", "serve: speak the ndjson protocol on stdin/stdout instead of TCP",
               std::nullopt, true);
  cli.add_flag("port", "serve: TCP port on 127.0.0.1 (0 = ephemeral, printed to stderr)", "0");
  cli.add_flag("cache-entries", "serve: memoized-artifact LRU capacity", "64");
  try {
    cli.parse(argc, argv);

    if (!cli.positional().empty() && cli.positional()[0] == "serve") {
      return run_serve(cli);
    }

    // -- load --------------------------------------------------------
    const auto f = cliargs::mapping(cli);

    if (cli.get_bool("stream-report")) {
      // One streamed pass: DfgSink + CaseStatsSink + VariantsSink fold
      // while the trace files parse — no ingestion barrier, no
      // per-analytic re-walks of the event arrays.
      bool any_trace = false;
      for (const auto& p : cli.positional()) {
        if (p.ends_with(".elog")) {
          // Streaming parses trace text; a container is already parsed.
          throw ParseError("--stream-report streams trace files only; convert " + p +
                           " inputs with --render report instead");
        }
        any_trace = true;
      }
      if (!any_trace) throw ParseError("--stream-report needs cid_host_rid.st trace files");
      if (cli.has("filter") || cli.has("query")) {
        // The streaming report covers the whole trace by design; a
        // silently unfiltered report would be worse than an error.
        throw ParseError("--stream-report reports on ALL events; drop --filter/--query (use "
                         "--render report for a filtered staged report)");
      }
      ThreadPool pool(cliargs::thread_count(cli));
      pipeline::StreamOptions stream_opts;
      static_cast<RunPolicy&>(stream_opts) = cliargs::run_policy(cli);
      report::ReportOptions report_opts;
      report_opts.title = "trace_explorer report";
      report_opts.description = "single-pass streaming report, mapping: " + f.name();
      if (cli.has("timeline")) {
        std::string activity = cli.get("timeline");
        if (const auto pos = activity.find("\\n"); pos != std::string::npos) {
          activity.replace(pos, 2, "\n");
        }
        report_opts.timeline_activity = std::move(activity);
      }
      const auto result =
          report::streaming_report(cli.positional(), f, pool, report_opts, stream_opts);
      for (const auto& w : result.log.warnings()) std::cerr << "warning: " << w << "\n";
      std::cout << result.html;
      return 0;
    }
    const auto query = query_from_flags(cli);
    const bool restricted = cli.has("filter") || cli.has("query");
    model::EventLog log;
    std::vector<elog::IndexedSegment> segments;
    std::optional<dfg::Dfg> streamed_graph;
    std::optional<dfg::IoStatistics::Partial> streamed_io;
    if (cli.positional().empty()) {
      std::cerr << "(no inputs; demoing on the built-in ls / ls -l traces)\n";
      log = model::EventLog::merge(iosim::make_ls_traces().to_event_log(),
                                   iosim::make_ls_l_traces().to_event_log());
    } else {
      // .elog containers and raw trace files mix freely: containers
      // load via read_event_log_file (v2 by mmap, zero reparse; v1 by
      // chunk parse), traces go through the streaming pipeline, and
      // everything is unioned into one log.
      std::vector<std::string> elogs;
      std::vector<std::string> traces;
      for (const auto& p : cli.positional()) {
        (p.ends_with(".elog") ? elogs : traces).push_back(p);
      }
      if (!traces.empty()) {
        // Streaming pipeline: zero-copy mmap parse, record -> Case
        // conversion and (when nothing narrows or extends the log
        // afterwards) DFG construction all overlap on one shared pool.
        ThreadPool pool(cliargs::thread_count(cli));
        pipeline::StreamOptions stream_opts;
        static_cast<RunPolicy&>(stream_opts) = cliargs::run_policy(cli);
        if (!restricted && elogs.empty()) {
          // Nothing narrows or extends the log afterwards, so the DFG
          // AND the activity statistics fold in the same pass — no
          // staged post-pass walk of the assembled log.
          pipeline::DfgSink graph_sink(f);
          pipeline::IoStatsSink io_sink(f);
          log = pipeline::run(traces, pool, {&graph_sink, &io_sink}, stream_opts);
          streamed_graph = graph_sink.take_graph();
          streamed_io = io_sink.take_partial();
        } else {
          log = pipeline::event_log_streamed(traces, pool, stream_opts);
        }
      }
      // Ingestion warnings before the union: derived logs drop them.
      for (const auto& w : log.warnings()) std::cerr << "warning: " << w << "\n";
      for (const auto& p : elogs) {
        try {
          auto part =
              elog::read_event_log_file_indexed(p, elog::ElogReadOptions{cliargs::run_policy(cli)});
          if (part.mapped) {
            // Cleanly-read v2 container: remember the slice so --query
            // runs through the indexed planner (byte-identical result).
            segments.push_back(elog::IndexedSegment{log.case_count(), part.log.case_count(),
                                                    std::move(part.mapped)});
          }
          log = model::EventLog::merge(log, std::move(part.log));
        } catch (const IoError& e) {
          if (!cli.get_bool("keep-going")) throw;
          std::cerr << "warning: " << p << ": skipped: " << e.what() << "\n";
        }
      }
    }
    if (restricted) {
      log = !segments.empty() && elog::query_index_enabled()
                ? elog::apply_query_indexed(query, log, segments)
                : query.apply(log);
    }

    // -- analyze -----------------------------------------------------
    const auto g = streamed_graph ? std::move(*streamed_graph) : dfg::build_serial(log, f);
    const auto stats = streamed_io ? streamed_io->finalize() : dfg::IoStatistics::compute(log, f);

    if (cli.has("timeline")) {
      // Allow the literal two-character sequence "\n" on the command line.
      std::string activity = cli.get("timeline");
      if (const auto pos = activity.find("\\n"); pos != std::string::npos) {
        activity.replace(pos, 2, "\n");
      }
      std::cout << dfg::render_timeline(streamed_io
                                            ? streamed_io->timeline(activity)
                                            : dfg::IoStatistics::timeline(log, f, activity));
      return 0;
    }

    const std::string render = cli.get("render");
    dfg::RenderOptions opts;
    opts.show_ranks = cli.get_bool("ranks");
    const dfg::StatisticsColoring styler(stats);
    if (render == "dot") {
      std::cout << dfg::render_dot(g, &stats, &styler, opts);
    } else if (render == "svg") {
      std::cout << dfg::render_svg(g, &stats, &styler);
    } else if (render == "report") {
      // Same ReportOptions builder as the serve path, so the served
      // report bytes and this offline invocation stay cmp-identical.
      std::cout << report::build_report(log, f, &styler, corpus::query_report_options(query, f));
    } else if (render == "summary") {
      ThreadPool pool(cliargs::thread_count(cli));
      std::cout << model::render_case_summaries(model::summarize_cases(log, pool));
    } else if (render == "ascii") {
      std::cout << dfg::render_ascii(g, &stats, &styler, opts);
    } else if (render == "variants") {
      const auto al = model::ActivityLog::build(log, f);
      for (const auto& [trace, mult] : al.variants()) {
        std::cout << "x" << mult << ": <";
        bool first = true;
        for (const auto& a : trace) {
          std::string flat = a;
          std::replace(flat.begin(), flat.end(), '\n', ' ');
          std::cout << (first ? "" : ", ") << flat;
          first = false;
        }
        std::cout << ">\n";
      }
    } else if (render == "stats") {
      for (const auto& [a, s] : stats.per_activity()) {
        std::string flat = a;
        std::replace(flat.begin(), flat.end(), '\n', ' ');
        std::cout << flat << " | " << s.load_label();
        if (const auto dr = s.dr_label(); !dr.empty()) std::cout << " | " << dr;
        std::cout << " | events: " << s.event_count << " | ranks: " << s.rank_count << "\n";
      }
    } else {
      throw ParseError("unknown --render: " + render);
    }
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << cli.usage("trace_explorer");
    return 1;
  }
  return 0;
}
