// elog_tool: inspect, filter, convert and merge elog containers.
//
//   ./elog_tool info run.elog                      # case inventory
//   ./elog_tool merge out.elog a.elog b.elog       # union of logs
//   ./elog_tool filter out.elog in.elog --fp /p/scratch --calls read,write
//   ./elog_tool export in.elog --map site1         # stats CSV to stdout
//   ./elog_tool import out.elog a_host1_9042.st... # strace -> elog
//   ./elog_tool import out.elog a_host1_9042.st... --stream-report r.html
//                       # same single pass also folds the HTML report
//   ./elog_tool convert out.elog in.elog           # v1 <-> v2 (lossless)
//   ./elog_tool convert out.elog in.elog --reindex # old v2 gains indexes
//   ./elog_tool stat run.elog [source.st...]       # format/section stats
//   ./elog_tool fold-shard out.partial a_h1_1.st.. # one shard's partials
//   ./elog_tool merge-partials r.html s0.partial.. # reduce + render
//   ./elog_tool report-sharded r.html --shards 4 a_h1_1.st...
//                       # spawn fold-shard workers, merge, render —
//                       # byte-identical to import --stream-report
//
// Commands that write a container produce the columnar mmap-able v2
// format by default ("import once, analyze many times"); --v1 selects
// the legacy chunk stream. Readers accept both transparently.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <utility>

#include "dfg/export.hpp"
#include "dfg/stats.hpp"
#include "elog/store.hpp"
#include "elog/v2_store.hpp"
#include "model/case_stats.hpp"
#include "model/from_strace.hpp"
#include "model/query.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/shard.hpp"
#include "pipeline/stream.hpp"
#include "report/report.hpp"
#include "support/cli.hpp"
#include "support/cli_args.hpp"
#include "support/errors.hpp"
#include "support/faultpoint.hpp"
#include "support/strings.hpp"

namespace {

/// Shard worker options shared by fold-shard / report-sharded: the
/// flags the coordinator forwards to its subprocesses.
st::pipeline::ShardOptions shard_options(const st::CliParser& cli) {
  st::pipeline::ShardOptions opts;
  opts.mapping = cli.get("map");
  opts.worker_threads = st::cliargs::thread_count(cli);
  if (cli.has("fp")) opts.query_fp = cli.get("fp");
  if (cli.has("calls")) opts.query_calls = cli.get("calls");
  static_cast<st::RunPolicy&>(opts.stream) = st::cliargs::run_policy(cli);
  return opts;
}

/// Reads an elog container honoring --keep-going (quarantined v2 cases
/// become warnings, echoed to stderr like the ingestion paths').
st::model::EventLog read_elog(const std::string& path, const st::CliParser& cli) {
  auto log =
      st::elog::read_event_log_file(path, st::elog::ElogReadOptions{st::cliargs::run_policy(cli)});
  for (const auto& w : log.warnings()) std::cerr << "warning: " << path << ": " << w << "\n";
  return log;
}

/// This binary's own path (for report-sharded's self-spawned workers):
/// /proc/self/exe where available, else argv[0].
std::string self_exe(const char* argv0) {
  std::error_code ec;
  const auto path = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) return path.string();
  return argv0;
}

void write_bytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out || !out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
    throw st::IoError("cannot write file: " + path);
  }
}

void write_log(const std::string& path, const st::model::EventLog& log, bool v1,
               bool write_index = true) {
  if (v1) {
    st::elog::write_event_log_file(path, log);
  } else {
    st::elog::write_event_log_v2_file(path, log, st::elog::ElogV2WriterOptions{write_index});
  }
}

/// v2 index sections are written unless --no-index asks for a bare file.
bool write_index_flag(const st::CliParser& cli) { return !cli.get_bool("no-index"); }

/// First 8 bytes of `path` (the container magic of either version).
std::string sniff_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw st::IoError("cannot open elog file: " + path);
  std::string magic(8, '\0');
  in.read(magic.data(), 8);
  magic.resize(static_cast<std::size_t>(in.gcount()));
  return magic;
}

std::uint64_t file_bytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw st::IoError("cannot stat file: " + path);
  return size;
}

void stat_v2(const std::string& path, const st::CliParser& cli,
             const std::vector<std::string>& sources) {
  using st::elog::SectionKind;
  const auto mapped = st::elog::open_v2(path);
  std::cout << path << ": elog v2, " << mapped->case_count() << " cases, "
            << mapped->total_events() << " events, " << mapped->file_size() << " bytes ("
            << (mapped->is_mapped() ? "mmap" : "read") << ")\n";

  struct KindStats {
    std::size_t count = 0;
    std::uint64_t bytes = 0;
  };
  std::map<std::uint32_t, KindStats> kinds;
  std::size_t varint_cases = 0;
  for (const st::elog::SectionEntry& e : mapped->sections()) {
    auto& k = kinds[static_cast<std::uint32_t>(e.kind)];
    ++k.count;
    k.bytes += e.length;
    if (e.kind == SectionKind::kColStart && e.aux == st::elog::kStartEncodingVarint) {
      ++varint_cases;
    }
  }
  std::cout << "sections: " << mapped->sections().size() << "\n";
  for (const auto& [kind_raw, k] : kinds) {
    const auto kind = static_cast<SectionKind>(kind_raw);
    std::cout << "  " << st::elog::section_kind_name(kind) << ": " << k.count
              << (k.count == 1 ? " section, " : " sections, ") << k.bytes << " bytes";
    if (kind == SectionKind::kStringPool) {
      std::cout << " (" << mapped->pool_count() << " strings, " << mapped->pool_blob_bytes()
                << " blob bytes)";
    }
    if (kind == SectionKind::kColStart) {
      std::cout << " (varint in " << varint_cases << "/" << mapped->case_count() << " cases)";
    }
    std::cout << "\n";
  }
  if (mapped->has_index()) {
    // index_view() CRC- and structurally validates whatever is present,
    // so a corrupt index fails stat the same way queries would.
    const auto iv = mapped->index_view();
    std::vector<std::string> parts;
    if (iv.zones != nullptr) parts.emplace_back("zone maps");
    if (iv.call_ends != nullptr) parts.emplace_back("call sets");
    if (iv.fp_ends != nullptr) parts.emplace_back("fp sets");
    if (iv.posting_table != nullptr) {
      parts.emplace_back("posting list (" + std::to_string(iv.posting_keys) + " keys)");
    }
    std::cout << "index: " << st::join(parts, ", ") << "\n";
  } else {
    std::cout << "index: none (queries fall back to scan)\n";
  }
  if (!sources.empty()) {
    std::uint64_t source_bytes = 0;
    for (const auto& s : sources) source_bytes += file_bytes(s);
    std::cout << "compression: " << mapped->file_size() << " / " << source_bytes
              << " source trace bytes";
    if (source_bytes > 0) {
      std::cout << " = "
                << (100.0 * static_cast<double>(mapped->file_size()) /
                    static_cast<double>(source_bytes))
                << "%";
    }
    std::cout << "\n";
  }
  if (cli.get_bool("verify")) {
    mapped->verify();
    std::cout << "verify: ok (all section crcs + index invariants + padding)\n";
  }
}

void stat_v1(const std::string& path, const st::CliParser& cli,
             const std::vector<std::string>& sources) {
  // v1 has no section index: statting it is a full (CRC-checked) read.
  const auto log = st::elog::read_event_log_file(path);
  std::cout << path << ": elog v1, " << log.case_count() << " cases, " << log.total_events()
            << " events, " << file_bytes(path) << " bytes (full reparse)\n";
  if (!sources.empty()) {
    std::uint64_t source_bytes = 0;
    for (const auto& s : sources) source_bytes += file_bytes(s);
    std::cout << "compression: " << file_bytes(path) << " / " << source_bytes
              << " source trace bytes\n";
  }
  if (cli.get_bool("verify")) std::cout << "verify: ok (every chunk crc checked)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace st;
  CliParser cli;
  cli.add_flag("fp", "filter: keep events whose path contains this", std::nullopt);
  cli.add_flag("calls", "filter: comma-separated call families", std::nullopt);
  cliargs::add_map_flag(cli, "mapping for export", "site");
  cliargs::add_threads_flag(cli, "ingestion worker (import)");
  cliargs::add_stream_report_flag(
      cli,
      "import: also write a single-pass HTML report (DFG + case table + variants, "
      "folded in the same streamed pass that fills the elog) to this file",
      /*takes_path=*/true);
  cliargs::add_format_flags(cli);
  cli.add_flag("verify", "stat: run the full per-section crc pass", std::nullopt, true);
  cli.add_flag("no-index",
               "write v2 without the advisory index sections (zone maps, id sets, "
               "posting list); readers fall back to the column scan",
               std::nullopt, true);
  cli.add_flag("reindex",
               "convert: (re)build the index sections — the v2 default, spelled out; "
               "rejects --v1 and --no-index",
               std::nullopt, true);
  cliargs::add_shards_flag(cli, "report-sharded: number of fold-shard worker processes", "2");
  cliargs::add_keep_going_flag(cli, "unreadable trace files / CRC-failing v2 cases");
  cli.add_flag("shard-index",
               "fold-shard: this worker's shard number (set by the coordinator; enables "
               "the per-shard shard.child#<i> fault site)",
               std::nullopt);
  try {
    cli.parse(argc, argv);
    const auto& args = cli.positional();
    if (args.empty()) {
      throw ParseError(
          "usage: elog_tool info|merge|filter|export|import|convert|stat|"
          "fold-shard|merge-partials|report-sharded ...");
    }
    const std::string& command = args[0];

    if (command == "info") {
      if (args.size() != 2) throw ParseError("info takes one elog file");
      const auto log = read_elog(args[1], cli);
      std::cout << args[1] << ": " << log.case_count() << " cases, " << log.total_events()
                << " events\n\n"
                << model::render_case_summaries(model::summarize_cases(log));
    } else if (command == "merge") {
      if (args.size() < 4) throw ParseError("merge takes an output and >= 2 inputs");
      model::EventLog merged;
      for (std::size_t i = 2; i < args.size(); ++i) {
        merged = model::EventLog::merge(merged, read_elog(args[i], cli));
      }
      write_log(args[1], merged, cliargs::write_v1(cli), write_index_flag(cli));
      std::cout << "wrote " << merged.case_count() << " cases to " << args[1] << "\n";
    } else if (command == "filter") {
      if (args.size() != 3) throw ParseError("filter takes an output and one input");
      model::Query query;
      if (cli.has("fp")) query = query.fp_contains(cli.get("fp"));
      if (cli.has("calls")) {
        std::vector<std::string> families;
        for (const auto part : split(cli.get("calls"), ',')) families.emplace_back(part);
        query = query.calls(std::move(families));
      }
      ThreadPool pool(cliargs::thread_count(cli));
      const auto filtered = query.apply(read_elog(args[2], cli), pool);
      write_log(args[1], filtered, cliargs::write_v1(cli), write_index_flag(cli));
      std::cout << "query [" << query.describe() << "] kept " << filtered.total_events()
                << " events; wrote " << args[1] << "\n";
    } else if (command == "import") {
      // strace text -> elog container, through the streaming pipeline:
      // zero-copy mmap parse and record -> Case conversion overlap on
      // one pool (cid_host_rid.st naming required). The default v2
      // container is written by a sink ON that pass — cases stream
      // into the file as they convert, byte-identical to a staged
      // write at any worker count.
      if (args.size() < 3) throw ParseError("import takes an output and >= 1 trace files");
      const std::vector<std::string> files(args.begin() + 2, args.end());
      ThreadPool pool(cliargs::thread_count(cli));
      const bool v1 = cliargs::write_v1(cli);
      pipeline::StreamOptions stream_opts;
      static_cast<RunPolicy&>(stream_opts) = cliargs::run_policy(cli);
      model::EventLog log;
      if (v1) {
        if (cli.has("stream-report")) {
          auto result =
              report::streaming_report(files, cliargs::mapping(cli), pool, {}, stream_opts);
          const std::string& report_path = cli.get("stream-report");
          std::ofstream out(report_path, std::ios::trunc);
          if (!out || !(out << result.html)) {
            throw IoError("cannot write report file: " + report_path);
          }
          log = std::move(result.log);
          std::cout << "wrote single-pass report to " << report_path << "\n";
        } else {
          log = pipeline::event_log_streamed(files, pool, stream_opts);
        }
        elog::write_event_log_file(args[1], log);
      } else {
        elog::ElogV2Writer writer(args[1], elog::ElogV2WriterOptions{write_index_flag(cli)});
        elog::ElogV2WriterSink sink(writer);
        if (cli.has("stream-report")) {
          // One streamed pass, three artifact families: the report's
          // sinks, the container sink and the assembled log.
          pipeline::CaseSink* extra[] = {&sink};
          auto result = report::streaming_report(files, cliargs::mapping(cli), pool, {},
                                                 stream_opts, extra);
          const std::string& report_path = cli.get("stream-report");
          std::ofstream out(report_path, std::ios::trunc);
          if (!out || !(out << result.html)) {
            throw IoError("cannot write report file: " + report_path);
          }
          log = std::move(result.log);
          std::cout << "wrote single-pass report to " << report_path << "\n";
        } else {
          log = pipeline::run(files, pool, {&sink}, stream_opts);
        }
        writer.finalize();
      }
      for (const auto& w : log.warnings()) std::cerr << "warning: " << w << "\n";
      std::cout << "imported " << files.size() << " trace files (" << log.total_events()
                << " events) into " << args[1] << "\n";
    } else if (command == "convert") {
      // Lossless re-encode between container versions (the reader
      // dispatches on magic, so either direction just works). A v2
      // write always rebuilds the index sections, so converting an
      // index-free (or pre-index) v2 file upgrades it; --reindex
      // spells that intent and rejects contradicting flags.
      if (args.size() != 3) throw ParseError("convert takes an output and one input");
      if (cli.get_bool("reindex") && (cliargs::write_v1(cli) || cli.get_bool("no-index"))) {
        throw ParseError("--reindex writes indexed v2; drop --v1/--no-index");
      }
      const auto log = read_elog(args[2], cli);
      write_log(args[1], log, cliargs::write_v1(cli), write_index_flag(cli));
      std::cout << "converted " << args[2] << " -> " << args[1] << " ("
                << (cliargs::write_v1(cli) ? "v1" : "v2") << ", " << log.case_count() << " cases)\n";
    } else if (command == "stat") {
      if (args.size() < 2) throw ParseError("stat takes an elog file [+ source traces]");
      const std::vector<std::string> sources(args.begin() + 2, args.end());
      const std::string magic = sniff_magic(args[1]);
      if (magic == elog::kMagicV2) {
        stat_v2(args[1], cli, sources);
      } else if (magic == elog::kMagic) {
        stat_v1(args[1], cli, sources);
      } else {
        throw IoError("elog: bad magic");
      }
    } else if (command == "fold-shard") {
      // One shard of a sharded analysis: stream the given trace files
      // through pipeline::run with EVERY analytic sink and write the
      // encoded ShardPartial blob. Silent on success (the coordinator
      // owns all reporting); diagnostics go to stderr via the error
      // path like every other command.
      if (args.size() < 3) throw ParseError("fold-shard takes an output and >= 1 trace files");
      const std::vector<std::string> files(args.begin() + 2, args.end());
      // Worker-side fault sites, HERE and not in pipeline::fold_shard,
      // so the coordinator's in-process fallback cannot trip them:
      // "shard.child" hits any worker, "shard.child#<i>" exactly one.
      FAULT_POINT("shard.child");
      if (cli.has("shard-index")) {
        FAULT_POINT("shard.child#" + cli.get("shard-index"));
      }
      write_bytes(args[1], pipeline::fold_shard(files, shard_options(cli)));
    } else if (command == "merge-partials") {
      // The coordinator's reduce step as its own verb: decode blobs
      // (any corruption -> IoError via the codec's CRCs), merge them
      // in argument order, render the report. Byte-identical to
      // import --stream-report over the same files in the same order.
      if (args.size() < 3) throw ParseError("merge-partials takes an output and >= 1 partials");
      std::vector<pipeline::ShardPartial> parts;
      parts.reserve(args.size() - 2);
      for (std::size_t i = 2; i < args.size(); ++i) {
        std::ifstream in(args[i], std::ios::binary);
        if (!in) throw IoError("cannot open shard partial: " + args[i]);
        std::ostringstream bytes;
        bytes << in.rdbuf();
        if (in.bad()) throw IoError("cannot read shard partial: " + args[i]);
        parts.push_back(pipeline::decode_shard_partial(std::move(bytes).str()));
      }
      const auto analytics = pipeline::finalize_shards(std::move(parts));
      for (const auto& w : analytics.warnings) std::cerr << "warning: " << w << "\n";
      write_bytes(args[1], report::render_sharded_report(analytics, cliargs::mapping(cli)));
      std::cout << "merged " << (args.size() - 2) << " shard partials ("
                << analytics.case_count << " cases) into " << args[1] << "\n";
    } else if (command == "report-sharded") {
      // Map + reduce in one verb: split the trace files over --shards
      // spawned fold-shard copies of this binary, merge their blobs in
      // shard order, render. Bit-identical to the in-process
      // single-pass report at any shard count.
      if (args.size() < 3) throw ParseError("report-sharded takes an output and >= 1 trace files");
      const std::vector<std::string> files(args.begin() + 2, args.end());
      auto sopts = shard_options(cli);
      sopts.shards = cliargs::shard_count(cli);
      sopts.fold_shard_exe = self_exe(argv[0]);
      const auto analytics = pipeline::run_sharded(files, sopts);
      for (const auto& w : analytics.warnings) std::cerr << "warning: " << w << "\n";
      // Supervision outcome goes to STDERR as diagnostics — never into
      // the report, which stays byte-identical to the clean run.
      for (const auto& line : analytics.shard_report.to_lines()) {
        std::cerr << "shard-recovery: " << line << "\n";
      }
      write_bytes(args[1], report::render_sharded_report(analytics, cliargs::mapping(cli)));
      std::cout << "sharded report over " << files.size() << " trace files (x" << sopts.shards
                << " workers) written to " << args[1] << "\n";
    } else if (command == "export") {
      if (args.size() != 2) throw ParseError("export takes one elog file");
      const auto log = read_elog(args[1], cli);
      const auto f = cliargs::mapping(cli);
      std::cout << dfg::stats_to_csv(dfg::IoStatistics::compute(log, f));
    } else {
      throw ParseError("unknown command: " + command);
    }
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << cli.usage("elog_tool");
    return 1;
  }
  return 0;
}
