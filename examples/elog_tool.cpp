// elog_tool: inspect, filter and merge elog containers.
//
//   ./elog_tool info run.elog                      # case inventory
//   ./elog_tool merge out.elog a.elog b.elog       # union of logs
//   ./elog_tool filter out.elog in.elog --fp /p/scratch --calls read,write
//   ./elog_tool export in.elog --map site1         # stats CSV to stdout
//   ./elog_tool import out.elog a_host1_9042.st... # strace -> elog
//   ./elog_tool import out.elog a_host1_9042.st... --stream-report r.html
//                       # same single pass also folds the HTML report
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <utility>

#include "dfg/export.hpp"
#include "dfg/stats.hpp"
#include "elog/store.hpp"
#include "model/case_stats.hpp"
#include "model/from_strace.hpp"
#include "model/query.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/stream.hpp"
#include "report/report.hpp"
#include "support/cli.hpp"
#include "support/errors.hpp"
#include "support/strings.hpp"

namespace {

/// --threads as a worker count: negative values would wrap through the
/// size_t cast into a SIZE_MAX-worker pool; clamp them to 0 (hardware).
std::size_t thread_count(const st::CliParser& cli) {
  return static_cast<std::size_t>(std::max<std::int64_t>(0, cli.get_int("threads")));
}

st::model::Mapping mapping_for(const std::string& name) {
  using st::model::Mapping;
  using st::model::SitePathMap;
  if (name == "top2") return Mapping::call_top_dirs(2);
  if (name == "last2") return Mapping::call_last_components(2);
  if (name == "call") return Mapping::call_only();
  if (name == "site") return Mapping::call_site(SitePathMap::juwels_like(), 0);
  if (name == "site1") return Mapping::call_site(SitePathMap::juwels_like(), 1);
  throw st::ParseError("unknown --map: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace st;
  CliParser cli;
  cli.add_flag("fp", "filter: keep events whose path contains this", std::nullopt);
  cli.add_flag("calls", "filter: comma-separated call families", std::nullopt);
  cli.add_flag("map", "mapping for export: top2|last2|call|site|site1", "site");
  cli.add_flag("threads", "ingestion worker threads for import (0 = hardware)", "0");
  cli.add_flag("stream-report",
               "import: also write a single-pass HTML report (DFG + case table + variants, "
               "folded in the same streamed pass that fills the elog) to this file",
               std::nullopt);
  try {
    cli.parse(argc, argv);
    const auto& args = cli.positional();
    if (args.empty()) throw ParseError("usage: elog_tool info|merge|filter|export|import ...");
    const std::string& command = args[0];

    if (command == "info") {
      if (args.size() != 2) throw ParseError("info takes one elog file");
      const auto log = elog::read_event_log_file(args[1]);
      std::cout << args[1] << ": " << log.case_count() << " cases, " << log.total_events()
                << " events\n\n"
                << model::render_case_summaries(model::summarize_cases(log));
    } else if (command == "merge") {
      if (args.size() < 4) throw ParseError("merge takes an output and >= 2 inputs");
      model::EventLog merged;
      for (std::size_t i = 2; i < args.size(); ++i) {
        merged = model::EventLog::merge(merged, elog::read_event_log_file(args[i]));
      }
      elog::write_event_log_file(args[1], merged);
      std::cout << "wrote " << merged.case_count() << " cases to " << args[1] << "\n";
    } else if (command == "filter") {
      if (args.size() != 3) throw ParseError("filter takes an output and one input");
      model::Query query;
      if (cli.has("fp")) query = query.fp_contains(cli.get("fp"));
      if (cli.has("calls")) {
        std::vector<std::string> families;
        for (const auto part : split(cli.get("calls"), ',')) families.emplace_back(part);
        query = query.calls(std::move(families));
      }
      ThreadPool pool(thread_count(cli));
      const auto filtered = query.apply(elog::read_event_log_file(args[2]), pool);
      elog::write_event_log_file(args[1], filtered);
      std::cout << "query [" << query.describe() << "] kept " << filtered.total_events()
                << " events; wrote " << args[1] << "\n";
    } else if (command == "import") {
      // strace text -> elog container, through the streaming pipeline:
      // zero-copy mmap parse and record -> Case conversion overlap on
      // one pool (cid_host_rid.st naming required).
      if (args.size() < 3) throw ParseError("import takes an output and >= 1 trace files");
      const std::vector<std::string> files(args.begin() + 2, args.end());
      ThreadPool pool(thread_count(cli));
      model::EventLog log;
      if (cli.has("stream-report")) {
        // One streamed pass produces BOTH artifacts: the elog container
        // and the HTML report's graph/case-table/variants sinks.
        auto result =
            report::streaming_report(files, mapping_for(cli.get("map")), pool);
        const std::string& report_path = cli.get("stream-report");
        std::ofstream out(report_path, std::ios::trunc);
        if (!out || !(out << result.html)) {
          throw IoError("cannot write report file: " + report_path);
        }
        log = std::move(result.log);
        std::cout << "wrote single-pass report to " << report_path << "\n";
      } else {
        log = pipeline::event_log_streamed(files, pool);
      }
      for (const auto& w : log.warnings()) std::cerr << "warning: " << w << "\n";
      elog::write_event_log_file(args[1], log);
      std::cout << "imported " << files.size() << " trace files (" << log.total_events()
                << " events) into " << args[1] << "\n";
    } else if (command == "export") {
      if (args.size() != 2) throw ParseError("export takes one elog file");
      const auto log = elog::read_event_log_file(args[1]);
      const auto f = mapping_for(cli.get("map"));
      std::cout << dfg::stats_to_csv(dfg::IoStatistics::compute(log, f));
    } else {
      throw ParseError("unknown command: " + command);
    }
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << cli.usage("elog_tool");
    return 1;
  }
  return 0;
}
