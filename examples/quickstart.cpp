// Quickstart: the paper's ls / ls -l example end to end.
//
// Generates the six trace files of Fig. 1 (three MPI processes per
// command), parses them back through the strace parser, builds the
// Directly-Follows-Graph of Fig. 3 with activity statistics, and
// prints both an ASCII summary and Graphviz DOT.
//
//   ./quickstart [--dir /tmp/traces] [--dot]
#include <filesystem>
#include <iostream>
#include <vector>

#include "dfg/builder.hpp"
#include "dfg/render.hpp"
#include "iosim/commands.hpp"
#include "model/from_strace.hpp"
#include "support/cli.hpp"
#include "support/errors.hpp"

int main(int argc, char** argv) {
  using namespace st;
  CliParser cli;
  cli.add_flag("dir", "directory for the generated trace files", "/tmp/st_quickstart");
  cli.add_flag("dot", "print Graphviz DOT instead of the ASCII table", std::nullopt, true);
  try {
    cli.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << cli.usage("quickstart");
    return 1;
  }
  const std::string dir = cli.get("dir");

  // 1. "srun -n 3 strace ... ls" and "... ls -l" (Fig. 1), simulated.
  iosim::make_ls_traces().write_files(dir);
  iosim::make_ls_l_traces().write_files(dir);
  std::cout << "wrote 6 trace files to " << dir << "\n";

  // 2. Parse the trace files back into an event log (Sec. III).
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  const auto log = model::event_log_from_files(files);
  std::cout << "parsed " << log.total_events() << " events in " << log.case_count()
            << " cases\n\n";

  // 3. Map events to activities with f-hat (Eq. 4) and build the DFG.
  const auto f = model::Mapping::call_top_dirs(2);
  const auto g = dfg::build_serial(log, f);
  const auto stats = dfg::IoStatistics::compute(log, f);
  const dfg::StatisticsColoring styler(stats);

  dfg::RenderOptions opts;
  opts.graph_name = "G[L(Cx)] - ls and ls -l";
  if (cli.get_bool("dot")) {
    std::cout << dfg::render_dot(g, &stats, &styler, opts);
  } else {
    std::cout << "=== DFG G[L(Cx)] with activity statistics (Fig. 3d) ===\n"
              << dfg::render_ascii(g, &stats, &styler, opts);
  }
  return 0;
}
