// The Directly-Follows-Graph (paper Sec. IV-A; Definition 4 of [13]).
//
// Nodes are activities plus the artificial start (●) and end (■)
// markers appended to every trace. An edge (a1, a2) exists iff a1
// immediately precedes a2 in some trace; its weight counts how many
// times that directly-follows relation was observed across the whole
// activity-log (traces weighted by their multiplicity).
//
// Dfg is an abelian monoid under merge() — the identity is the empty
// graph and weights add — which makes the parallel map-reduce
// construction (builder.hpp, refs [24][25]) correct by construction.
// Containers are ordered maps so iteration (and thus rendering) is
// deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "model/activity_log.hpp"

namespace st::dfg {

using model::Activity;

class Dfg {
 public:
  /// Reserved node names for the trace start/end markers.
  [[nodiscard]] static const Activity& start_node();
  [[nodiscard]] static const Activity& end_node();

  Dfg() = default;

  /// G[L_f(C)]: builds the graph from an activity log.
  [[nodiscard]] static Dfg build(const model::ActivityLog& log);

  /// Adds one trace observed `multiplicity` times.
  void add_trace(const model::ActivityTrace& trace, std::uint64_t multiplicity = 1);

  /// Monoid fold: adds all node/edge weights of `other` into *this.
  void merge(const Dfg& other);

  /// Reconstructs a graph from its observable parts — the inverse of
  /// (nodes(), edges(), trace_count()), used by the shard partial
  /// codec. No validation: the codec's CRC guards the bytes.
  [[nodiscard]] static Dfg from_parts(std::map<Activity, std::uint64_t> nodes,
                                      std::map<std::pair<Activity, Activity>, std::uint64_t> edges,
                                      std::uint64_t trace_count);

  // -- queries ---------------------------------------------------------

  /// Activity nodes with their occurrence counts (start/end markers
  /// carry the number of traces).
  [[nodiscard]] const std::map<Activity, std::uint64_t>& nodes() const { return nodes_; }

  /// Directly-follows edges with observation counts.
  [[nodiscard]] const std::map<std::pair<Activity, Activity>, std::uint64_t>& edges() const {
    return edges_;
  }

  [[nodiscard]] bool has_node(const Activity& a) const { return nodes_.contains(a); }
  [[nodiscard]] bool has_edge(const Activity& from, const Activity& to) const {
    return edges_.contains({from, to});
  }
  [[nodiscard]] std::uint64_t node_count(const Activity& a) const;
  [[nodiscard]] std::uint64_t edge_count(const Activity& from, const Activity& to) const;

  /// Number of traces folded in (weight on the start marker).
  [[nodiscard]] std::uint64_t trace_count() const { return trace_count_; }

  /// Activities only (start/end markers excluded), ordered.
  [[nodiscard]] std::set<Activity> activities() const;

  [[nodiscard]] bool empty() const { return nodes_.empty() && trace_count_ == 0; }

  [[nodiscard]] bool operator==(const Dfg&) const = default;

 private:
  std::map<Activity, std::uint64_t> nodes_;
  std::map<std::pair<Activity, Activity>, std::uint64_t> edges_;
  std::uint64_t trace_count_ = 0;
};

}  // namespace st::dfg
