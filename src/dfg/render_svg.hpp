// Self-contained SVG rendering of a laid-out DFG.
//
// Produces a single .svg document (no external resources) with the
// paper's visual vocabulary: rounded boxes with the activity + Load/DR
// lines, ● and ■ markers, arrowed edges with frequency labels, self
// loops as side arcs, and node fills/edge colors taken from a Styler
// (statistics shading or green/red partition).
#pragma once

#include <string>

#include "dfg/coloring.hpp"
#include "dfg/layout.hpp"

namespace st::dfg {

struct SvgOptions {
  LayoutOptions layout;
  std::string title = "DFG";
};

/// Renders the graph to SVG markup. `stats` and `styler` may be null.
[[nodiscard]] std::string render_svg(const Dfg& g, const IoStatistics* stats,
                                     const Styler* styler, const SvgOptions& opts = {});

}  // namespace st::dfg
