#include "dfg/coloring.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "support/si.hpp"

namespace st::dfg {

StatisticsColoring::StatisticsColoring(const IoStatistics& stats)
    : stats_(stats), max_rel_dur_(0.0) {
  for (const auto& [activity, stat] : stats.per_activity()) {
    max_rel_dur_ = std::max(max_rel_dur_, stat.rel_dur);
  }
}

NodeStyle StatisticsColoring::node_style(const Activity& a) const {
  const ActivityStat* stat = stats_.find(a);
  if (stat == nullptr || max_rel_dur_ <= 0.0) return {};
  // Interpolate white (weight 0) -> steel blue (weight 1) in RGB.
  const double w = std::clamp(stat->rel_dur / max_rel_dur_, 0.0, 1.0);
  const auto channel = [w](int light, int dark) {
    return static_cast<int>(static_cast<double>(light) +
                            w * static_cast<double>(dark - light));
  };
  const int r = channel(0xFF, 0x1F);
  const int g = channel(0xFF, 0x77);
  const int b = channel(0xFF, 0xB4);
  std::array<char, 16> hex{};
  std::snprintf(hex.data(), hex.size(), "#%02X%02X%02X", r, g, b);
  NodeStyle style;
  style.fill = hex.data();
  style.fontcolor = w > 0.6 ? "white" : "black";
  style.tag = "load=" + format_ratio(stat->rel_dur);
  return style;
}

std::string StatisticsColoring::edge_color(const Activity& from, const Activity& to) const {
  (void)from;
  (void)to;
  return {};
}

NodeStyle PartitionColoring::node_style(const Activity& a) const {
  switch (diff_.classify_node(a)) {
    case PartitionClass::GreenOnly:
      return NodeStyle{"#C8E6C9", "black", "GREEN"};
    case PartitionClass::RedOnly:
      return NodeStyle{"#FFCDD2", "black", "RED"};
    case PartitionClass::Common:
      return {};
  }
  return {};
}

std::string PartitionColoring::edge_color(const Activity& from, const Activity& to) const {
  switch (diff_.classify_edge(from, to)) {
    case PartitionClass::GreenOnly:
      return "green";
    case PartitionClass::RedOnly:
      return "red";
    case PartitionClass::Common:
      return {};
  }
  return {};
}

}  // namespace st::dfg
