#include "dfg/diff.hpp"

namespace st::dfg {

GraphDiff::GraphDiff(const Dfg& green, const Dfg& red) {
  for (const auto& [node, count] : green.nodes()) {
    (red.has_node(node) ? common_nodes_ : green_nodes_).insert(node);
  }
  for (const auto& [node, count] : red.nodes()) {
    if (!green.has_node(node)) red_nodes_.insert(node);
  }
  for (const auto& [edge, count] : green.edges()) {
    (red.has_edge(edge.first, edge.second) ? common_edges_ : green_edges_).insert(edge);
  }
  for (const auto& [edge, count] : red.edges()) {
    if (!green.has_edge(edge.first, edge.second)) red_edges_.insert(edge);
  }
}

PartitionClass GraphDiff::classify_node(const Activity& a) const {
  if (green_nodes_.contains(a)) return PartitionClass::GreenOnly;
  if (red_nodes_.contains(a)) return PartitionClass::RedOnly;
  return PartitionClass::Common;
}

PartitionClass GraphDiff::classify_edge(const Activity& from, const Activity& to) const {
  const Edge e{from, to};
  if (green_edges_.contains(e)) return PartitionClass::GreenOnly;
  if (red_edges_.contains(e)) return PartitionClass::RedOnly;
  return PartitionClass::Common;
}

}  // namespace st::dfg
