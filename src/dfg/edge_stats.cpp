#include "dfg/edge_stats.hpp"

#include <algorithm>
#include <optional>

namespace st::dfg {

EdgeStatistics EdgeStatistics::compute(const model::EventLog& log, const model::Mapping& f) {
  EdgeStatistics out;
  for (const model::Case& c : log.cases()) {
    std::optional<model::Activity> prev_activity;
    Micros prev_end = 0;
    for (const model::Event& e : c.events()) {
      const auto activity = f(e);
      if (!activity) continue;  // partial mapping: unmapped events break no edges
      if (prev_activity) {
        EdgeStat& stat = out.stats_[{*prev_activity, *activity}];
        ++stat.count;
        const Micros gap = e.start - prev_end;
        if (gap >= 0) {
          stat.total_gap += gap;
          stat.max_gap = std::max(stat.max_gap, gap);
        } else {
          ++stat.overlapped;
        }
      }
      prev_activity = std::move(*activity);
      prev_end = e.end();
    }
  }
  return out;
}

const EdgeStat* EdgeStatistics::find(const model::Activity& from,
                                     const model::Activity& to) const {
  const auto it = stats_.find({from, to});
  return it == stats_.end() ? nullptr : &it->second;
}

const EdgeStatistics::Edge* EdgeStatistics::slowest_edge() const {
  const Edge* best = nullptr;
  double best_gap = -1.0;
  for (const auto& [edge, stat] : stats_) {
    if (stat.mean_gap() > best_gap) {
      best_gap = stat.mean_gap();
      best = &edge;
    }
  }
  return best;
}

}  // namespace st::dfg
