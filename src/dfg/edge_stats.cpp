#include "dfg/edge_stats.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "model/case_walk.hpp"

namespace st::dfg {

void EdgeStatistics::Partial::add_case(const model::Case& c, const model::Mapping& f) {
  std::optional<model::Activity> prev_activity;
  Micros prev_end = 0;
  model::for_each_mapped_event(c, f, [&](model::Activity&& activity, const model::Event& e) {
    if (prev_activity) {
      EdgeStat& stat = stats_[{*prev_activity, activity}];
      ++stat.count;
      const Micros gap = e.start - prev_end;
      if (gap >= 0) {
        stat.total_gap += gap;
        stat.max_gap = std::max(stat.max_gap, gap);
      } else {
        ++stat.overlapped;
      }
    }
    prev_activity = std::move(activity);
    prev_end = e.end();
  });
}

void EdgeStatistics::Partial::merge(Partial&& other) {
  if (stats_.empty()) {
    stats_ = std::move(other.stats_);
    return;
  }
  while (!other.stats_.empty()) {
    auto node = other.stats_.extract(other.stats_.begin());
    const auto result = stats_.insert(std::move(node));
    if (!result.inserted) {
      EdgeStat& into = result.position->second;
      const EdgeStat& from = result.node.mapped();
      into.count += from.count;
      into.total_gap += from.total_gap;
      into.max_gap = std::max(into.max_gap, from.max_gap);
      into.overlapped += from.overlapped;
    }
  }
}

EdgeStatistics EdgeStatistics::Partial::finalize() const {
  EdgeStatistics out;
  out.stats_ = stats_;
  return out;
}

EdgeStatistics::Partial EdgeStatistics::Partial::from_stats(std::map<Edge, EdgeStat> stats) {
  Partial p;
  p.stats_ = std::move(stats);
  return p;
}

EdgeStatistics EdgeStatistics::compute(const model::EventLog& log, const model::Mapping& f) {
  Partial partial;
  for (const model::Case& c : log.cases()) partial.add_case(c, f);
  return partial.finalize();
}

const EdgeStat* EdgeStatistics::find(const model::Activity& from,
                                     const model::Activity& to) const {
  const auto it = stats_.find({from, to});
  return it == stats_.end() ? nullptr : &it->second;
}

const EdgeStatistics::Edge* EdgeStatistics::slowest_edge() const {
  // Strict > over the ordered map: equal means keep the first —
  // lexicographically smallest — edge. Pinned by test_stats_sinks.
  const Edge* best = nullptr;
  double best_gap = -1.0;
  for (const auto& [edge, stat] : stats_) {
    if (stat.mean_gap() > best_gap) {
      best_gap = stat.mean_gap();
      best = &edge;
    }
  }
  return best;
}

}  // namespace st::dfg
