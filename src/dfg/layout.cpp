#include "dfg/layout.hpp"

#include <algorithm>
#include <map>

#include "support/strings.hpp"

namespace st::dfg {

const NodeBox* Layout::find(const Activity& a) const {
  for (const auto& n : nodes) {
    if (n.activity == a) return &n;
  }
  return nullptr;
}

namespace {

/// Longest-path layering from the start node. Cycles (other than self
/// loops) are tolerated by bounding the relaxation rounds: after
/// |V| rounds the remaining back edges are frozen as drawn-back edges.
std::map<Activity, std::size_t> assign_layers(const Dfg& g) {
  std::map<Activity, std::size_t> layer;
  for (const auto& [node, count] : g.nodes()) layer[node] = 0;

  const std::size_t rounds = g.nodes().size() + 1;
  for (std::size_t r = 0; r < rounds; ++r) {
    bool changed = false;
    for (const auto& [edge, count] : g.edges()) {
      const auto& [from, to] = edge;
      if (from == to) continue;  // self loop
      if (layer[to] < layer[from] + 1) {
        layer[to] = layer[from] + 1;
        changed = true;
      }
    }
    if (!changed) break;
    if (r + 1 == rounds) {
      // A non-self cycle exists; the loop above would oscillate
      // forever. The layers reached so far are consistent enough to
      // draw (the residual edges render as back edges).
      break;
    }
  }
  // The end marker goes below everything.
  std::size_t max_layer = 0;
  for (const auto& [node, l] : layer) {
    if (node != Dfg::end_node()) max_layer = std::max(max_layer, l);
  }
  if (layer.contains(Dfg::end_node())) layer[Dfg::end_node()] = max_layer + 1;
  return layer;
}

std::vector<std::string> label_lines_for(const Activity& a, const IoStatistics* stats,
                                         bool show_stats) {
  std::vector<std::string> lines;
  for (const auto part : split(a, '\n')) lines.emplace_back(part);
  if (show_stats && stats != nullptr) {
    if (const ActivityStat* s = stats->find(a)) {
      lines.push_back(s->load_label());
      if (const std::string dr = s->dr_label(); !dr.empty()) lines.push_back(dr);
    }
  }
  return lines;
}

}  // namespace

Layout layout_dfg(const Dfg& g, const IoStatistics* stats, const LayoutOptions& opts) {
  Layout out;
  if (g.nodes().empty()) return out;

  const auto layers = assign_layers(g);
  std::size_t max_layer = 0;
  for (const auto& [node, l] : layers) max_layer = std::max(max_layer, l);

  // Group nodes by layer (deterministic start order: map order).
  std::vector<std::vector<Activity>> rows(max_layer + 1);
  for (const auto& [node, l] : layers) rows[l].push_back(node);

  // Barycenter sweeps: order each row by the mean position of its
  // neighbours in the previous row (downward), then upward.
  std::map<Activity, double> pos;
  for (auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) pos[row[i]] = static_cast<double>(i);
  }
  const auto neighbors_mean = [&](const Activity& node, bool upward) {
    double sum = 0;
    std::size_t n = 0;
    for (const auto& [edge, count] : g.edges()) {
      const auto& [from, to] = edge;
      if (upward ? from == node : to == node) {
        const Activity& other = upward ? to : from;
        if (layers.at(other) != layers.at(node)) {
          sum += pos[other];
          ++n;
        }
      }
    }
    return n == 0 ? pos[node] : sum / static_cast<double>(n);
  };
  for (std::size_t sweep = 0; sweep < opts.barycenter_sweeps; ++sweep) {
    const bool upward = sweep % 2 == 1;
    for (auto& row : rows) {
      std::stable_sort(row.begin(), row.end(), [&](const Activity& a, const Activity& b) {
        return neighbors_mean(a, upward) < neighbors_mean(b, upward);
      });
      for (std::size_t i = 0; i < row.size(); ++i) pos[row[i]] = static_cast<double>(i);
    }
  }

  // Size the boxes, place rows centered on the widest row.
  std::vector<std::vector<NodeBox>> boxed(rows.size());
  double max_row_width = 0;
  for (std::size_t l = 0; l < rows.size(); ++l) {
    double row_width = 0;
    for (const auto& node : rows[l]) {
      NodeBox box;
      box.activity = node;
      box.label_lines = label_lines_for(node, stats, opts.show_stats);
      std::size_t longest = 1;
      for (const auto& line : box.label_lines) longest = std::max(longest, line.size());
      box.width = static_cast<double>(longest) * opts.char_width + 2 * opts.node_padding;
      box.height = static_cast<double>(box.label_lines.size()) * opts.line_height +
                   2 * opts.node_padding;
      box.layer = l;
      row_width += box.width;
      boxed[l].push_back(std::move(box));
    }
    if (!rows[l].empty()) {
      row_width += static_cast<double>(rows[l].size() - 1) * opts.node_gap;
    }
    max_row_width = std::max(max_row_width, row_width);
  }

  double y = opts.layer_gap / 2;
  for (auto& row : boxed) {
    double row_width = 0;
    double row_height = 0;
    for (const auto& box : row) {
      row_width += box.width;
      row_height = std::max(row_height, box.height);
    }
    if (!row.empty()) row_width += static_cast<double>(row.size() - 1) * opts.node_gap;
    double x = (max_row_width - row_width) / 2 + opts.node_gap;
    for (auto& box : row) {
      box.x = x;
      box.y = y;
      x += box.width + opts.node_gap;
      out.nodes.push_back(box);
    }
    y += row_height + opts.layer_gap;
  }
  out.width = max_row_width + 2 * opts.node_gap;
  out.height = y;

  for (const auto& [edge, count] : g.edges()) {
    EdgeGeom geom;
    geom.from = edge.first;
    geom.to = edge.second;
    geom.count = count;
    geom.self_loop = edge.first == edge.second;
    geom.back_edge = !geom.self_loop && layers.at(edge.second) <= layers.at(edge.first);
    out.edges.push_back(std::move(geom));
  }
  return out;
}

}  // namespace st::dfg
