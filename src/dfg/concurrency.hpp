// Max-concurrency (paper Eq. 14–16) and timeline intervals (Fig. 5).
//
// Each event contributes the half-open-ish interval
// t(e) = (start, start + dur). get_max_concurrency sorts by start and
// sweeps with a min-heap of end times; two events are concurrent when
// the earlier one's end is strictly greater than the later one's start
// ("the end time of the first event is greater than the start time of
// the last event").
#pragma once

#include <cstddef>
#include <vector>

#include "model/event.hpp"

namespace st::dfg {

struct Interval {
  Micros start = 0;
  Micros end = 0;

  [[nodiscard]] bool operator==(const Interval&) const = default;
};

/// Highest number of simultaneously open intervals. Zero-length
/// intervals never overlap anything. O(k log k).
[[nodiscard]] std::size_t get_max_concurrency(std::vector<Interval> intervals);

/// Interval of one event plus its owning case — the rows of the
/// timeline plot.
struct TimelineEntry {
  model::CaseId case_id;
  Interval interval;
};

}  // namespace st::dfg
