// Per-activity duration distributions.
//
// The mean-based statistics of Sec. IV-B hide tail behaviour; lock
// convoys and token revocation produce heavily skewed durations (the
// first SSF open is fast, the 96th pays 95 revocations). This module
// computes nearest-rank percentiles of e[dur] per activity, exposing
// the skew that Load alone cannot show. An extension beyond the paper
// (DESIGN.md §5).
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "model/event_log.hpp"
#include "model/mapping.hpp"

namespace st::dfg {

struct DurationProfile {
  std::size_t samples = 0;
  Micros min = 0;
  Micros p50 = 0;   ///< median
  Micros p90 = 0;
  Micros p99 = 0;
  Micros max = 0;

  /// max/p50 — a quick skew indicator (1 == uniform durations).
  [[nodiscard]] double tail_ratio() const {
    return p50 > 0 ? static_cast<double>(max) / static_cast<double>(p50) : 0.0;
  }
};

class DurationProfiles {
 public:
  /// One pass + per-activity sort: O(n log(n/m)).
  [[nodiscard]] static DurationProfiles compute(const model::EventLog& log,
                                                const model::Mapping& f);

  [[nodiscard]] const std::map<model::Activity, DurationProfile>& per_activity() const {
    return profiles_;
  }
  [[nodiscard]] const DurationProfile* find(const model::Activity& a) const;

  /// Text table (one row per activity), deterministic.
  [[nodiscard]] std::string render() const;

 private:
  std::map<model::Activity, DurationProfile> profiles_;
};

/// Nearest-rank percentile of a sorted sample vector (q in [0, 100]).
[[nodiscard]] Micros percentile_sorted(const std::vector<Micros>& sorted, double q);

}  // namespace st::dfg
