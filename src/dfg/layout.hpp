// Layered graph layout for DFGs.
//
// Graphviz renders the paper's figures; to keep this repository
// dependency-free we implement the classic Sugiyama pipeline in a
// form sufficient for DFGs (which are almost-DAGs: ● at the top, ■ at
// the bottom, self loops, and occasional back edges):
//
//   1. layer assignment  — longest path from ● (back edges relaxed a
//      bounded number of rounds, then frozen),
//   2. crossing reduction — barycenter sweeps over adjacent layers,
//   3. coordinates       — nodes sized by their label text, centered
//      per layer on a common canvas.
//
// The result is a plain geometry description consumed by the SVG
// renderer (render_svg.hpp) and tested independently of any markup.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "dfg/dfg.hpp"
#include "dfg/stats.hpp"

namespace st::dfg {

struct NodeBox {
  Activity activity;
  std::vector<std::string> label_lines;
  double x = 0;  ///< left edge
  double y = 0;  ///< top edge
  double width = 0;
  double height = 0;
  std::size_t layer = 0;

  [[nodiscard]] double cx() const { return x + width / 2; }
  [[nodiscard]] double cy() const { return y + height / 2; }
};

struct EdgeGeom {
  Activity from;
  Activity to;
  std::uint64_t count = 0;
  bool self_loop = false;
  bool back_edge = false;  ///< points to an earlier or equal layer
};

struct Layout {
  std::vector<NodeBox> nodes;  ///< topological-ish order (by layer)
  std::vector<EdgeGeom> edges;
  double width = 0;   ///< canvas size
  double height = 0;

  [[nodiscard]] const NodeBox* find(const Activity& a) const;
};

struct LayoutOptions {
  double char_width = 7.5;    ///< monospace-ish text metrics
  double line_height = 14.0;
  double node_padding = 8.0;
  double layer_gap = 56.0;
  double node_gap = 28.0;
  std::size_t barycenter_sweeps = 4;
  bool show_stats = true;  ///< include Load/DR lines in labels
};

/// Computes the layout. `stats` may be null (labels are then just the
/// activity text).
[[nodiscard]] Layout layout_dfg(const Dfg& g, const IoStatistics* stats,
                                const LayoutOptions& opts = {});

}  // namespace st::dfg
