#include "dfg/builder.hpp"

#include "parallel/algorithms.hpp"

namespace st::dfg {

void add_case_trace(Dfg& g, const model::Case& c, const model::Mapping& f) {
  // model::activity_trace is THE per-case mapped-event walk
  // (model/case_walk.hpp) — shared with IoStatistics/EdgeStatistics so
  // the graph and the statistics cannot drift on event order.
  g.add_trace(model::activity_trace(c, f), 1);
}

Dfg build_serial(const model::EventLog& log, const model::Mapping& f) {
  Dfg g;
  for (const model::Case& c : log.cases()) add_case_trace(g, c, f);
  return g;
}

Dfg build_parallel(const model::EventLog& log, const model::Mapping& f, ThreadPool& pool) {
  const auto cases = log.cases();
  return map_reduce(
      pool, cases.size(), Dfg{},
      [&](std::size_t lo, std::size_t hi) {
        Dfg partial;
        for (std::size_t i = lo; i < hi; ++i) add_case_trace(partial, cases[i], f);
        return partial;
      },
      [](Dfg acc, const Dfg& part) {
        acc.merge(part);
        return acc;
      });
}

}  // namespace st::dfg
