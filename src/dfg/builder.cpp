#include "dfg/builder.hpp"

#include "parallel/algorithms.hpp"

namespace st::dfg {

void add_case_trace(Dfg& g, const model::Case& c, const model::Mapping& f) {
  model::ActivityTrace trace;
  trace.reserve(c.size());
  for (const model::Event& e : c.events()) {
    if (auto a = f(e)) trace.push_back(std::move(*a));
  }
  g.add_trace(trace, 1);
}

Dfg build_serial(const model::EventLog& log, const model::Mapping& f) {
  Dfg g;
  for (const model::Case& c : log.cases()) add_case_trace(g, c, f);
  return g;
}

Dfg build_parallel(const model::EventLog& log, const model::Mapping& f, ThreadPool& pool) {
  const auto cases = log.cases();
  return map_reduce(
      pool, cases.size(), Dfg{},
      [&](std::size_t lo, std::size_t hi) {
        Dfg partial;
        for (std::size_t i = lo; i < hi; ++i) add_case_trace(partial, cases[i], f);
        return partial;
      },
      [](Dfg acc, const Dfg& part) {
        acc.merge(part);
        return acc;
      });
}

}  // namespace st::dfg
