#include "dfg/validate.hpp"

#include <map>

namespace st::dfg {

std::vector<std::string> validate(const Dfg& g) {
  std::vector<std::string> violations;
  std::map<Activity, std::uint64_t> in_flow;
  std::map<Activity, std::uint64_t> out_flow;

  for (const auto& [edge, count] : g.edges()) {
    const auto& [from, to] = edge;
    if (!g.has_node(from)) violations.push_back("edge from unknown node: " + from);
    if (!g.has_node(to)) violations.push_back("edge to unknown node: " + to);
    if (to == Dfg::start_node()) violations.push_back("in-edge into the start marker");
    if (from == Dfg::end_node()) violations.push_back("out-edge from the end marker");
    out_flow[from] += count;
    in_flow[to] += count;
  }

  if (out_flow[Dfg::start_node()] != g.trace_count()) {
    violations.push_back("start out-flow " + std::to_string(out_flow[Dfg::start_node()]) +
                         " != trace count " + std::to_string(g.trace_count()));
  }
  if (in_flow[Dfg::end_node()] != g.trace_count()) {
    violations.push_back("end in-flow " + std::to_string(in_flow[Dfg::end_node()]) +
                         " != trace count " + std::to_string(g.trace_count()));
  }

  for (const auto& [node, count] : g.nodes()) {
    if (node == Dfg::start_node() || node == Dfg::end_node()) continue;
    if (in_flow[node] != count) {
      violations.push_back("node '" + node + "' in-flow " + std::to_string(in_flow[node]) +
                           " != occurrence count " + std::to_string(count));
    }
    if (out_flow[node] != count) {
      violations.push_back("node '" + node + "' out-flow " + std::to_string(out_flow[node]) +
                           " != occurrence count " + std::to_string(count));
    }
  }
  return violations;
}

}  // namespace st::dfg
