// DFG construction directly from an event log and a mapping.
//
// build_serial is the single-pass O(n) construction of Sec. V step 3;
// build_parallel splits the cases over a thread pool and merges the
// per-chunk partial graphs (the scalable construction of refs
// [24][25]). Both produce identical graphs — a property the test suite
// asserts over randomized logs.
#pragma once

#include <cstddef>

#include "dfg/dfg.hpp"
#include "model/event_log.hpp"
#include "model/mapping.hpp"
#include "parallel/thread_pool.hpp"

namespace st::dfg {

/// One pass over the cases; no intermediate ActivityLog materialized.
[[nodiscard]] Dfg build_serial(const model::EventLog& log, const model::Mapping& f);

/// Map-reduce over case chunks on `pool`.
[[nodiscard]] Dfg build_parallel(const model::EventLog& log, const model::Mapping& f,
                                 ThreadPool& pool);

/// Folds ONE case's activity trace into `g` — the unit step both
/// builders are made of, exported so the streaming pipeline
/// (pipeline/stream.cpp) can grow per-task partial graphs that merge
/// to exactly what build_parallel produces.
void add_case_trace(Dfg& g, const model::Case& c, const model::Mapping& f);

}  // namespace st::dfg
