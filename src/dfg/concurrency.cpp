#include "dfg/concurrency.hpp"

#include <algorithm>
#include <queue>

namespace st::dfg {

std::size_t get_max_concurrency(std::vector<Interval> intervals) {
  std::sort(intervals.begin(), intervals.end(), [](const Interval& a, const Interval& b) {
    return a.start < b.start || (a.start == b.start && a.end < b.end);
  });
  std::priority_queue<Micros, std::vector<Micros>, std::greater<>> open_ends;
  std::size_t best = 0;
  for (const Interval& iv : intervals) {
    // Close every interval whose end is not strictly after this start.
    while (!open_ends.empty() && open_ends.top() <= iv.start) open_ends.pop();
    if (iv.end > iv.start) {
      open_ends.push(iv.end);
      best = std::max(best, open_ends.size());
    }
  }
  return best;
}

}  // namespace st::dfg
