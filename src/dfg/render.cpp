#include "dfg/render.hpp"

#include <algorithm>
#include <map>

#include "support/strings.hpp"

namespace st::dfg {

namespace {

/// Stable DOT identifier for a node ("n0", "n1", ... in map order).
std::map<Activity, std::string> node_ids(const Dfg& g) {
  std::map<Activity, std::string> ids;
  std::size_t next = 0;
  for (const auto& [node, count] : g.nodes()) {
    ids.emplace(node, "n" + std::to_string(next++));
  }
  return ids;
}

std::string node_label(const Activity& a, const IoStatistics* stats, const RenderOptions& opts) {
  std::string label = a;
  if (opts.show_stats && stats != nullptr) {
    if (const ActivityStat* s = stats->find(a)) {
      label += "\n" + s->load_label();
      if (const std::string dr = s->dr_label(); !dr.empty()) label += "\n" + dr;
      if (opts.show_ranks) label += "\nRanks: " + std::to_string(s->rank_count);
    }
  }
  return label;
}

/// Single-line form of an activity for the ASCII table ("read /usr/lib").
std::string flat(const Activity& a) {
  std::string out = a;
  std::replace(out.begin(), out.end(), '\n', ' ');
  return out;
}

}  // namespace

std::string render_dot(const Dfg& g, const IoStatistics* stats, const Styler* styler,
                       const RenderOptions& opts) {
  const auto ids = node_ids(g);
  std::string out = "digraph \"" + dot_escape(opts.graph_name) + "\" {\n";
  out += "  rankdir=TB;\n  node [shape=box, style=\"rounded,filled\", fillcolor=white];\n";
  for (const auto& [node, count] : g.nodes()) {
    out += "  " + ids.at(node);
    std::string label;
    if (node == Dfg::start_node()) {
      label = "●";
      out += " [shape=circle, label=\"" + dot_escape(label) + "\"";
    } else if (node == Dfg::end_node()) {
      label = "■";
      out += " [shape=square, label=\"" + dot_escape(label) + "\"";
    } else {
      label = node_label(node, stats, opts);
      out += " [label=\"" + dot_escape(label) + "\"";
    }
    if (styler != nullptr) {
      const NodeStyle style = styler->node_style(node);
      if (!style.fill.empty()) out += ", fillcolor=\"" + style.fill + "\"";
      if (!style.fontcolor.empty()) out += ", fontcolor=\"" + style.fontcolor + "\"";
    }
    out += "];\n";
  }
  for (const auto& [edge, count] : g.edges()) {
    out += "  " + ids.at(edge.first) + " -> " + ids.at(edge.second);
    out += " [label=\"" + std::to_string(count) + "\"";
    if (styler != nullptr) {
      if (const std::string color = styler->edge_color(edge.first, edge.second); !color.empty()) {
        out += ", color=" + color + ", fontcolor=" + color;
      }
    }
    out += "];\n";
  }
  out += "}\n";
  return out;
}

std::string render_ascii(const Dfg& g, const IoStatistics* stats, const Styler* styler,
                         const RenderOptions& opts) {
  std::string out;
  for (const auto& [node, count] : g.nodes()) {
    if (node == Dfg::start_node() || node == Dfg::end_node()) continue;
    out += "NODE " + flat(node);
    if (opts.show_stats && stats != nullptr) {
      if (const ActivityStat* s = stats->find(node)) {
        out += " | " + s->load_label();
        if (const std::string dr = s->dr_label(); !dr.empty()) out += " | " + dr;
        if (opts.show_ranks) out += " | Ranks: " + std::to_string(s->rank_count);
      }
    }
    if (styler != nullptr) {
      if (const NodeStyle style = styler->node_style(node); !style.tag.empty()) {
        out += " | " + style.tag;
      }
    }
    out += "\n";
  }
  for (const auto& [edge, count] : g.edges()) {
    const std::string from = edge.first == Dfg::start_node() ? "●" : flat(edge.first);
    const std::string to = edge.second == Dfg::end_node() ? "■" : flat(edge.second);
    out += "EDGE " + from + " -> " + to + " [" + std::to_string(count) + "]";
    if (styler != nullptr) {
      if (const std::string color = styler->edge_color(edge.first, edge.second); !color.empty()) {
        out += " " + color;
      }
    }
    out += "\n";
  }
  return out;
}

std::string render_timeline(const std::vector<TimelineEntry>& entries, std::size_t width) {
  if (entries.empty()) return "(empty timeline)\n";
  Micros lo = entries.front().interval.start;
  Micros hi = entries.front().interval.end;
  for (const auto& e : entries) {
    lo = std::min(lo, e.interval.start);
    hi = std::max(hi, e.interval.end);
  }
  const double span = std::max<double>(1.0, static_cast<double>(hi - lo));

  // One row per case, rows ordered by first interval start.
  std::map<model::CaseId, std::string> rows;
  std::size_t name_width = 0;
  for (const auto& e : entries) {
    name_width = std::max(name_width, e.case_id.to_string().size());
  }
  for (const auto& e : entries) {
    auto [it, inserted] = rows.try_emplace(e.case_id, std::string(width, '.'));
    auto scale = [&](Micros t) {
      const double frac = static_cast<double>(t - lo) / span;
      return std::min(width - 1, static_cast<std::size_t>(frac * static_cast<double>(width)));
    };
    const std::size_t a = scale(e.interval.start);
    const std::size_t b = std::max(a, scale(e.interval.end));
    for (std::size_t i = a; i <= b; ++i) it->second[i] = '=';
  }
  std::string out;
  for (const auto& [case_id, bar] : rows) {
    std::string name = case_id.to_string();
    name.resize(std::max(name_width, name.size()), ' ');
    out += name + " |" + bar + "|\n";
  }
  out += "span: " + std::to_string(hi - lo) + " us, " + std::to_string(entries.size()) +
         " events, max-concurrency: " +
         std::to_string(get_max_concurrency([&] {
           std::vector<Interval> ivs;
           ivs.reserve(entries.size());
           for (const auto& e : entries) ivs.push_back(e.interval);
           return ivs;
         }())) +
         "\n";
  return out;
}

}  // namespace st::dfg
