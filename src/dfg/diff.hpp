// Structured graph comparison underlying partition-based coloring
// (paper Sec. IV-C).
//
// Given the DFGs of two mutually exclusive event-log subsets G and R,
// every node/edge of the combined graph falls into one of three
// classes: exclusive to G (green), exclusive to R (red), or common.
// GraphDiff exposes the partition as data so tests and tools can assert
// on it; PartitionColoring (coloring.hpp) turns it into styles.
#pragma once

#include <map>
#include <set>
#include <utility>

#include "dfg/dfg.hpp"

namespace st::dfg {

enum class PartitionClass { Common, GreenOnly, RedOnly };

class GraphDiff {
 public:
  /// `green` and `red` are the DFGs of the two event-log subsets.
  GraphDiff(const Dfg& green, const Dfg& red);

  [[nodiscard]] PartitionClass classify_node(const Activity& a) const;
  [[nodiscard]] PartitionClass classify_edge(const Activity& from, const Activity& to) const;

  [[nodiscard]] const std::set<Activity>& green_nodes() const { return green_nodes_; }
  [[nodiscard]] const std::set<Activity>& red_nodes() const { return red_nodes_; }
  [[nodiscard]] const std::set<Activity>& common_nodes() const { return common_nodes_; }

  using Edge = std::pair<Activity, Activity>;
  [[nodiscard]] const std::set<Edge>& green_edges() const { return green_edges_; }
  [[nodiscard]] const std::set<Edge>& red_edges() const { return red_edges_; }
  [[nodiscard]] const std::set<Edge>& common_edges() const { return common_edges_; }

 private:
  std::set<Activity> green_nodes_;
  std::set<Activity> red_nodes_;
  std::set<Activity> common_nodes_;
  std::set<Edge> green_edges_;
  std::set<Edge> red_edges_;
  std::set<Edge> common_edges_;
};

}  // namespace st::dfg
