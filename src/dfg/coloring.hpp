// Graph coloring strategies (paper Sec. IV-C).
//
//  1. StatisticsColoring — node fill is a shade of blue proportional to
//     the activity's relative duration (Fig. 3b/3c, Fig. 8).
//  2. PartitionColoring — nodes/edges exclusive to subset G are green,
//     exclusive to R red, common ones uncolored (Fig. 3d, Fig. 9).
//
// Stylers are consulted by the DOT and ASCII renderers through the
// Styler interface; styles are plain strings (DOT color syntax) so the
// renderers stay dumb.
#pragma once

#include <memory>
#include <string>

#include "dfg/dfg.hpp"
#include "dfg/diff.hpp"
#include "dfg/stats.hpp"

namespace st::dfg {

struct NodeStyle {
  std::string fill;       ///< DOT fillcolor ("" = unstyled)
  std::string fontcolor;  ///< "" = default
  std::string tag;        ///< ASCII marker ("", "GREEN", "RED", "load=0.43")
};

class Styler {
 public:
  virtual ~Styler() = default;
  [[nodiscard]] virtual NodeStyle node_style(const Activity& a) const = 0;
  /// DOT color for an edge; "" = default black.
  [[nodiscard]] virtual std::string edge_color(const Activity& from, const Activity& to) const = 0;
};

/// Darker blue == larger relative duration. The shade scales against
/// the maximum rel_dur in the statistics so the busiest activity is
/// always the darkest.
class StatisticsColoring final : public Styler {
 public:
  explicit StatisticsColoring(const IoStatistics& stats);

  [[nodiscard]] NodeStyle node_style(const Activity& a) const override;
  [[nodiscard]] std::string edge_color(const Activity& from, const Activity& to) const override;

 private:
  const IoStatistics& stats_;
  double max_rel_dur_;
};

/// Green/red/uncolored per the G/R partition.
class PartitionColoring final : public Styler {
 public:
  PartitionColoring(const Dfg& green, const Dfg& red) : diff_(green, red) {}

  [[nodiscard]] NodeStyle node_style(const Activity& a) const override;
  [[nodiscard]] std::string edge_color(const Activity& from, const Activity& to) const override;

  [[nodiscard]] const GraphDiff& diff() const { return diff_; }

 private:
  GraphDiff diff_;
};

}  // namespace st::dfg
