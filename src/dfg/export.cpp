#include "dfg/export.hpp"

#include <algorithm>

#include "support/si.hpp"

namespace st::dfg {

namespace {

std::string flat(const model::Activity& a) {
  std::string out = a;
  std::replace(out.begin(), out.end(), '\n', ' ');
  return out;
}

}  // namespace

std::string csv_field(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string out = "\"";
  for (const char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string stats_to_csv(const IoStatistics& stats) {
  std::string out =
      "activity,events,rel_dur,total_dur_us,bytes,mean_rate_bps,max_concurrency,ranks\n";
  for (const auto& [activity, s] : stats.per_activity()) {
    out += csv_field(flat(activity)) + "," + std::to_string(s.event_count) + "," +
           format_fixed(s.rel_dur, 6) + "," + std::to_string(s.total_dur) + "," +
           (s.has_bytes ? std::to_string(s.bytes) : std::string{}) + "," +
           (s.rate_samples > 0 ? format_fixed(s.mean_rate, 1) : std::string{}) + "," +
           std::to_string(s.max_concurrency) + "," + std::to_string(s.rank_count) + "\n";
  }
  return out;
}

std::string edges_to_csv(const Dfg& g) {
  std::string out = "from,to,count\n";
  for (const auto& [edge, count] : g.edges()) {
    out += csv_field(flat(edge.first)) + "," + csv_field(flat(edge.second)) + "," +
           std::to_string(count) + "\n";
  }
  return out;
}

std::string edge_stats_to_csv(const EdgeStatistics& stats) {
  std::string out = "from,to,count,mean_gap_us,max_gap_us,overlapped\n";
  for (const auto& [edge, s] : stats.per_edge()) {
    out += csv_field(flat(edge.first)) + "," + csv_field(flat(edge.second)) + "," +
           std::to_string(s.count) + "," + format_fixed(s.mean_gap(), 1) + "," +
           std::to_string(s.max_gap) + "," + std::to_string(s.overlapped) + "\n";
  }
  return out;
}

}  // namespace st::dfg
