// Structural invariants of a well-formed DFG.
//
// Any graph produced by Dfg::build / add_trace / merge satisfies flow
// conservation: every activity node is entered exactly as often as it
// is left, and exactly as often as the activity occurs:
//
//   (1) Σ out-edges(●) == Σ in-edges(■) == trace_count
//   (2) for every activity a:
//         Σ in-edges(a) == Σ out-edges(a) == node_count(a)
//   (3) every edge endpoint is a known node; ● has no in-edges and
//       ■ no out-edges.
//
// validate() returns human-readable violations (empty == valid). It is
// used by the property tests and available as a debugging aid for
// hand-built or externally loaded graphs.
#pragma once

#include <string>
#include <vector>

#include "dfg/dfg.hpp"

namespace st::dfg {

[[nodiscard]] std::vector<std::string> validate(const Dfg& g);

}  // namespace st::dfg
