#include "dfg/profile.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/errors.hpp"

namespace st::dfg {

Micros percentile_sorted(const std::vector<Micros>& sorted, double q) {
  if (sorted.empty()) throw LogicError("percentile of empty sample");
  if (q <= 0.0) return sorted.front();
  if (q >= 100.0) return sorted.back();
  // Nearest-rank: ceil(q/100 * N)-th smallest (1-based).
  const auto rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size(), std::max<std::size_t>(rank, 1)) - 1];
}

DurationProfiles DurationProfiles::compute(const model::EventLog& log,
                                           const model::Mapping& f) {
  std::map<model::Activity, std::vector<Micros>> samples;
  for (const model::Case& c : log.cases()) {
    for (const model::Event& e : c.events()) {
      if (auto a = f(e)) samples[std::move(*a)].push_back(e.dur);
    }
  }
  DurationProfiles out;
  for (auto& [activity, durations] : samples) {
    std::sort(durations.begin(), durations.end());
    DurationProfile p;
    p.samples = durations.size();
    p.min = durations.front();
    p.p50 = percentile_sorted(durations, 50);
    p.p90 = percentile_sorted(durations, 90);
    p.p99 = percentile_sorted(durations, 99);
    p.max = durations.back();
    out.profiles_.emplace(activity, p);
  }
  return out;
}

const DurationProfile* DurationProfiles::find(const model::Activity& a) const {
  const auto it = profiles_.find(a);
  return it == profiles_.end() ? nullptr : &it->second;
}

std::string DurationProfiles::render() const {
  std::string out = "activity                          n      min      p50      p90      p99      max (us)\n";
  for (const auto& [activity, p] : profiles_) {
    std::string flat = activity;
    std::replace(flat.begin(), flat.end(), '\n', ' ');
    flat.resize(std::max<std::size_t>(32, flat.size()), ' ');
    auto pad = [](Micros v) {
      std::string s = std::to_string(v);
      return std::string(s.size() >= 8 ? 1 : 8 - s.size(), ' ') + s;
    };
    out += flat + pad(static_cast<Micros>(p.samples)) + pad(p.min) + pad(p.p50) + pad(p.p90) +
           pad(p.p99) + pad(p.max) + "\n";
  }
  return out;
}

}  // namespace st::dfg
