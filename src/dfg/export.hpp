// Tabular export of DFG analysis results.
//
// The paper's workflow ends in rendered graphs; downstream tooling
// (spreadsheets, regression dashboards) wants the same data as CSV.
// Activities with embedded newlines are flattened to "call path" form;
// fields are RFC-4180-quoted when needed.
#pragma once

#include <string>

#include "dfg/dfg.hpp"
#include "dfg/edge_stats.hpp"
#include "dfg/stats.hpp"

namespace st::dfg {

/// One row per activity:
/// activity,events,rel_dur,total_dur_us,bytes,mean_rate_bps,max_concurrency,ranks
[[nodiscard]] std::string stats_to_csv(const IoStatistics& stats);

/// One row per edge: from,to,count
[[nodiscard]] std::string edges_to_csv(const Dfg& g);

/// One row per edge with gap statistics:
/// from,to,count,mean_gap_us,max_gap_us,overlapped
[[nodiscard]] std::string edge_stats_to_csv(const EdgeStatistics& stats);

/// RFC-4180 field quoting (used by all exporters; exposed for tests).
[[nodiscard]] std::string csv_field(const std::string& value);

}  // namespace st::dfg
