// Edge-level statistics — an extension beyond the paper (DESIGN.md §5).
//
// The DFG's edges carry frequencies; this module adds *gap timing*: for
// every directly-follows pair (a1, a2) observed within a case, the gap
// is the time between the end of the a1 event and the start of the a2
// event. Long gaps on an edge reveal think-time or synchronization
// stalls between I/O phases that node statistics cannot show (e.g. the
// barrier wait between the write and read phases of IOR appears as a
// large write->openat gap).
//
// Negative gaps are possible in SMT cases (the next event may start
// before the previous returns) and are clamped into the `overlapped`
// counter instead of polluting the mean.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "model/event_log.hpp"
#include "model/mapping.hpp"

namespace st::dfg {

struct EdgeStat {
  std::uint64_t count = 0;        ///< directly-follows observations
  Micros total_gap = 0;           ///< Σ max(0, gap)
  Micros max_gap = 0;
  std::uint64_t overlapped = 0;   ///< observations with negative gap

  [[nodiscard]] double mean_gap() const {
    return count > 0 ? static_cast<double>(total_gap) / static_cast<double>(count) : 0.0;
  }
};

class EdgeStatistics {
 public:
  using Edge = std::pair<model::Activity, model::Activity>;

  /// Single pass over the cases; start/end markers carry no gaps and
  /// are not included.
  [[nodiscard]] static EdgeStatistics compute(const model::EventLog& log,
                                              const model::Mapping& f);

  [[nodiscard]] const std::map<Edge, EdgeStat>& per_edge() const { return stats_; }
  [[nodiscard]] const EdgeStat* find(const model::Activity& from,
                                     const model::Activity& to) const;

  /// Edge with the largest mean gap — the dominant stall.
  [[nodiscard]] const Edge* slowest_edge() const;

 private:
  std::map<Edge, EdgeStat> stats_;
};

}  // namespace st::dfg
