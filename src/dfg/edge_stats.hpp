// Edge-level statistics — an extension beyond the paper (DESIGN.md §5).
//
// The DFG's edges carry frequencies; this module adds *gap timing*: for
// every directly-follows pair (a1, a2) observed within a case, the gap
// is the time between the end of the a1 event and the start of the a2
// event. Long gaps on an edge reveal think-time or synchronization
// stalls between I/O phases that node statistics cannot show (e.g. the
// barrier wait between the write and read phases of IOR appears as a
// large write->openat gap).
//
// Negative gaps are possible in SMT cases (the next event may start
// before the previous returns) and are clamped into the `overlapped`
// counter instead of polluting the mean.
//
// Every accumulator here is an integer, so the per-case Partial merge
// below is a plain commutative sum: any grouping of cases — worker
// partials, shard blobs, the serial loop — produces identical maps,
// and compute() delegates to it (ISSUE 7).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "model/event_log.hpp"
#include "model/mapping.hpp"

namespace st::dfg {

struct EdgeStat {
  std::uint64_t count = 0;        ///< directly-follows observations
  Micros total_gap = 0;           ///< Σ max(0, gap)
  Micros max_gap = 0;
  std::uint64_t overlapped = 0;   ///< observations with negative gap

  [[nodiscard]] double mean_gap() const {
    return count > 0 ? static_cast<double>(total_gap) / static_cast<double>(count) : 0.0;
  }

  [[nodiscard]] bool operator==(const EdgeStat&) const = default;
};

class EdgeStatistics {
 public:
  using Edge = std::pair<model::Activity, model::Activity>;

  /// Per-case partial: the same std::map the final statistics hold, so
  /// merge is an integer fold and finalize a move. All paths (serial
  /// compute, streamed EdgeStatsSink, decoded shard blobs) are exact.
  class Partial {
   public:
    /// Folds one case's directly-follows gaps (edges never span cases).
    void add_case(const model::Case& c, const model::Mapping& f);

    /// Integer sums per edge: counts and gaps add, max_gap maxes.
    void merge(Partial&& other);

    [[nodiscard]] EdgeStatistics finalize() const;

    [[nodiscard]] const std::map<Edge, EdgeStat>& stats() const { return stats_; }

    /// Serialization hook (pipeline/partial_codec).
    [[nodiscard]] static Partial from_stats(std::map<Edge, EdgeStat> stats);

    [[nodiscard]] bool operator==(const Partial&) const = default;

   private:
    std::map<Edge, EdgeStat> stats_;
  };

  /// Single pass over the cases; start/end markers carry no gaps and
  /// are not included. Delegates to the Partial path above.
  [[nodiscard]] static EdgeStatistics compute(const model::EventLog& log,
                                              const model::Mapping& f);

  [[nodiscard]] const std::map<Edge, EdgeStat>& per_edge() const { return stats_; }
  [[nodiscard]] const EdgeStat* find(const model::Activity& from,
                                     const model::Activity& to) const;

  /// Edge with the largest mean gap — the dominant stall. Tie-break is
  /// pinned: strict > over the ordered edge map, so among equal means
  /// the LEXICOGRAPHICALLY SMALLEST edge wins, on every path (sharded
  /// and in-process reports must render byte-identical labels).
  [[nodiscard]] const Edge* slowest_edge() const;

 private:
  friend class Partial;
  std::map<Edge, EdgeStat> stats_;
};

}  // namespace st::dfg
