// DFG renderers.
//
// render_dot emits Graphviz DOT (the paper renders through Graphviz;
// DOT text is the stable, dependency-free interface). Node labels
// follow Fig. 3a's semantics:
//
//     <CALL_NAME>\n<DIRECTORY_PATH>
//     Load: <RELATIVE_DUR> (<BYTES_MOVED>)
//     DR: <MAX_CONC> x <PROCESS_DATA_RATE>
//     [Ranks: <N>]
//
// render_ascii produces a deterministic plain-text table (one NODE row
// per activity, one EDGE row per relation) — the form the bench
// binaries print and the tests assert against.
//
// render_timeline draws the Fig. 5 per-case interval chart.
#pragma once

#include <string>
#include <vector>

#include "dfg/coloring.hpp"
#include "dfg/concurrency.hpp"
#include "dfg/dfg.hpp"
#include "dfg/stats.hpp"

namespace st::dfg {

struct RenderOptions {
  bool show_stats = true;   ///< append Load/DR lines to node labels
  bool show_ranks = false;  ///< append "Ranks: N" (Fig. 3c annotation)
  std::string graph_name = "DFG";
};

/// Graphviz DOT text. `stats` and `styler` may be null.
[[nodiscard]] std::string render_dot(const Dfg& g, const IoStatistics* stats,
                                     const Styler* styler, const RenderOptions& opts = {});

/// Deterministic text table. `stats` and `styler` may be null.
[[nodiscard]] std::string render_ascii(const Dfg& g, const IoStatistics* stats,
                                       const Styler* styler, const RenderOptions& opts = {});

/// ASCII timeline chart of event intervals (one row per case),
/// `width` columns wide. Matches Fig. 5's layout.
[[nodiscard]] std::string render_timeline(const std::vector<TimelineEntry>& entries,
                                          std::size_t width = 60);

}  // namespace st::dfg
