// Activity statistics (paper Sec. IV-B).
//
// For every activity a in A_f over an event log C:
//   relative duration rd_f(a,C)   Eq. 6–8   share of total I/O time
//   total bytes moved b_f(a,C)    Eq. 9     Σ e[size] (transfer calls only)
//   process data rate dr_f(a,C)   Eq. 11–13 mean of per-event size/dur
//   max concurrency mc_f(a,C)     Eq. 14–16 interval-sweep maximum
// plus the number of distinct ranks (cases) that executed the activity
// — rendered as the "Ranks:" annotation seen in Fig. 3c.
//
// The figures combine them as:
//   "Load: rd (bytes)"   and   "DR: mc x rate MB/s"      (Eq. 10, 17)
//
// Determinism (ISSUE 7): the only floating-point accumulator here is
// the per-activity rate sum, and FP addition is not associative — so
// the statistics are built as per-case Partials whose merge is pure
// CONCATENATION (bitwise exact, associative), and every double is
// summed exactly once, in finalize(), through a fixed-shape pairwise
// tree whose summation order is a function of the input index alone.
// compute(), the streaming IoStatsSink and the shard-parallel
// coordinator all run the identical add_case -> merge -> finalize
// path, so their doubles are bit-identical at any worker or shard
// count.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dfg/concurrency.hpp"
#include "model/event_log.hpp"
#include "model/mapping.hpp"

namespace st::dfg {

struct ActivityStat {
  Micros total_dur = 0;          ///< Σ e[dur] (Eq. 7)
  double rel_dur = 0.0;          ///< Eq. 8
  std::int64_t bytes = 0;        ///< Eq. 9; 0 when no event carried a size
  bool has_bytes = false;        ///< true iff some event carried a size
  double mean_rate = 0.0;        ///< bytes/second, Eq. 13; 0 if no rated event
  std::size_t rate_samples = 0;  ///< events contributing to mean_rate
  std::size_t max_concurrency = 0;  ///< Eq. 16
  std::size_t rank_count = 0;       ///< distinct cases executing the activity
  std::uint64_t event_count = 0;

  /// "Load: 0.22 (14.98 KB)" — bytes omitted when the activity moved
  /// no payload (openat nodes in Fig. 8 show "Load:0.55" only).
  [[nodiscard]] std::string load_label() const;

  /// "DR: 2x10.15 MB/s" — empty when no event produced a data rate.
  [[nodiscard]] std::string dr_label() const;
};

/// Fixed-shape pairwise tree sum: recursively halves [0, n) and adds
/// the two halves' sums. The association shape depends on n alone —
/// never on how the inputs were produced or grouped — so any pipeline
/// that delivers the same value sequence produces the same bits.
[[nodiscard]] double deterministic_pairwise_sum(std::span<const double> xs);

class IoStatistics {
 public:
  /// One case's contribution to one activity: every field a single
  /// in-case event walk can produce. The rate sum is accumulated in
  /// event (start) order within the case — the one place FP addition
  /// happens before finalize().
  struct ActivityContribution {
    Micros total_dur = 0;
    std::uint64_t event_count = 0;
    std::int64_t bytes = 0;
    bool has_bytes = false;
    double rate_sum = 0.0;          ///< Σ size/dur of this case's rated events
    std::uint64_t rate_samples = 0;
    std::vector<Interval> intervals;  ///< in event order

    [[nodiscard]] bool operator==(const ActivityContribution&) const = default;
  };

  struct CaseContribution {
    model::CaseId id;
    std::map<model::Activity, ActivityContribution> activities;

    [[nodiscard]] bool operator==(const CaseContribution&) const = default;
  };

  /// The monoid the statistics are folded through: a sequence of
  /// per-case contributions in input order. merge() concatenates (no
  /// FP arithmetic, so grouping cannot change bits); finalize() is the
  /// single place sums happen, identically on every path.
  class Partial {
   public:
    /// Folds one case (one in-order walk of its mapped events).
    void add_case(const model::Case& c, const model::Mapping& f);

    /// Concatenation: appends `other`'s cases after this one's.
    /// Associative and exact — the double fields are moved, never
    /// added — so ((s0+s1)+s2) and (s0+(s1+s2)) are bitwise equal.
    void merge(Partial&& other);

    /// Sums everything once: integers plainly, the per-case rate sums
    /// through deterministic_pairwise_sum (one leaf per contributing
    /// case, in input order), intervals concatenated into the
    /// (multiset-pure) concurrency sweep.
    [[nodiscard]] IoStatistics finalize() const;

    /// t_f(a, C) from the already-folded contributions: per-case
    /// intervals of `a` in input/event order, sorted by start —
    /// exactly the sequence IoStatistics::timeline builds from a log.
    [[nodiscard]] std::vector<TimelineEntry> timeline(const model::Activity& a) const;

    [[nodiscard]] const std::vector<CaseContribution>& cases() const { return cases_; }
    [[nodiscard]] bool empty() const { return cases_.empty(); }

    /// Serialization hook (pipeline/partial_codec): a decoded partial
    /// is its case sequence, verbatim.
    [[nodiscard]] static Partial from_cases(std::vector<CaseContribution> cases);

    [[nodiscard]] bool operator==(const Partial&) const = default;

   private:
    std::vector<CaseContribution> cases_;
  };

  /// Single pass over the events + per-activity grouping (the O(mn)
  /// step of Sec. V). Delegates to the Partial path above, so the
  /// streamed/sharded runs are bit-identical to this serial compute.
  [[nodiscard]] static IoStatistics compute(const model::EventLog& log, const model::Mapping& f);

  [[nodiscard]] const std::map<model::Activity, ActivityStat>& per_activity() const {
    return stats_;
  }
  [[nodiscard]] const ActivityStat* find(const model::Activity& a) const;
  [[nodiscard]] Micros total_duration() const { return total_dur_; }

  /// t_f(a, C): all event intervals of activity `a` with their owning
  /// case, ordered by start — the input of the Fig. 5 timeline plot.
  [[nodiscard]] static std::vector<TimelineEntry> timeline(const model::EventLog& log,
                                                           const model::Mapping& f,
                                                           const model::Activity& a);

 private:
  friend class Partial;
  std::map<model::Activity, ActivityStat> stats_;
  Micros total_dur_ = 0;
};

}  // namespace st::dfg
