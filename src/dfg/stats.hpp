// Activity statistics (paper Sec. IV-B).
//
// For every activity a in A_f over an event log C:
//   relative duration rd_f(a,C)   Eq. 6–8   share of total I/O time
//   total bytes moved b_f(a,C)    Eq. 9     Σ e[size] (transfer calls only)
//   process data rate dr_f(a,C)   Eq. 11–13 mean of per-event size/dur
//   max concurrency mc_f(a,C)     Eq. 14–16 interval-sweep maximum
// plus the number of distinct ranks (cases) that executed the activity
// — rendered as the "Ranks:" annotation seen in Fig. 3c.
//
// The figures combine them as:
//   "Load: rd (bytes)"   and   "DR: mc x rate MB/s"      (Eq. 10, 17)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dfg/concurrency.hpp"
#include "model/event_log.hpp"
#include "model/mapping.hpp"

namespace st::dfg {

struct ActivityStat {
  Micros total_dur = 0;          ///< Σ e[dur] (Eq. 7)
  double rel_dur = 0.0;          ///< Eq. 8
  std::int64_t bytes = 0;        ///< Eq. 9; 0 when no event carried a size
  bool has_bytes = false;        ///< true iff some event carried a size
  double mean_rate = 0.0;        ///< bytes/second, Eq. 13; 0 if no rated event
  std::size_t rate_samples = 0;  ///< events contributing to mean_rate
  std::size_t max_concurrency = 0;  ///< Eq. 16
  std::size_t rank_count = 0;       ///< distinct cases executing the activity
  std::uint64_t event_count = 0;

  /// "Load: 0.22 (14.98 KB)" — bytes omitted when the activity moved
  /// no payload (openat nodes in Fig. 8 show "Load:0.55" only).
  [[nodiscard]] std::string load_label() const;

  /// "DR: 2x10.15 MB/s" — empty when no event produced a data rate.
  [[nodiscard]] std::string dr_label() const;
};

class IoStatistics {
 public:
  /// Single pass over the events + per-activity grouping (the O(mn)
  /// step of Sec. V).
  [[nodiscard]] static IoStatistics compute(const model::EventLog& log, const model::Mapping& f);

  [[nodiscard]] const std::map<model::Activity, ActivityStat>& per_activity() const {
    return stats_;
  }
  [[nodiscard]] const ActivityStat* find(const model::Activity& a) const;
  [[nodiscard]] Micros total_duration() const { return total_dur_; }

  /// t_f(a, C): all event intervals of activity `a` with their owning
  /// case, ordered by start — the input of the Fig. 5 timeline plot.
  [[nodiscard]] static std::vector<TimelineEntry> timeline(const model::EventLog& log,
                                                           const model::Mapping& f,
                                                           const model::Activity& a);

 private:
  std::map<model::Activity, ActivityStat> stats_;
  Micros total_dur_ = 0;
};

}  // namespace st::dfg
