#include "dfg/stats.hpp"

#include <algorithm>

#include "support/si.hpp"

namespace st::dfg {

std::string ActivityStat::load_label() const {
  std::string out = "Load:" + format_ratio(rel_dur);
  if (has_bytes) out += " (" + format_bytes(static_cast<double>(bytes)) + ")";
  return out;
}

std::string ActivityStat::dr_label() const {
  if (rate_samples == 0) return {};
  return "DR: " + std::to_string(max_concurrency) + "x" + format_rate_mbps(mean_rate);
}

IoStatistics IoStatistics::compute(const model::EventLog& log, const model::Mapping& f) {
  struct Accumulator {
    ActivityStat stat;
    double rate_sum = 0.0;
    std::vector<Interval> intervals;
    std::set<model::CaseId> cases;
  };
  std::map<model::Activity, Accumulator> acc;

  for (const model::Case& c : log.cases()) {
    for (const model::Event& e : c.events()) {
      const auto a = f(e);
      if (!a) continue;
      Accumulator& slot = acc[*a];
      slot.stat.total_dur += e.dur;
      ++slot.stat.event_count;
      if (e.has_size()) {
        slot.stat.bytes += e.size;
        slot.stat.has_bytes = true;
        if (e.dur > 0) {
          slot.rate_sum += static_cast<double>(e.size) /
                           (static_cast<double>(e.dur) / static_cast<double>(kMicrosPerSecond));
          ++slot.stat.rate_samples;
        }
      }
      slot.intervals.push_back(Interval{e.start, e.end()});
      slot.cases.insert(c.id());
    }
  }

  IoStatistics out;
  for (auto& [activity, slot] : acc) {
    out.total_dur_ += slot.stat.total_dur;
  }
  for (auto& [activity, slot] : acc) {
    ActivityStat stat = slot.stat;
    stat.rel_dur = out.total_dur_ > 0
                       ? static_cast<double>(stat.total_dur) / static_cast<double>(out.total_dur_)
                       : 0.0;
    stat.mean_rate = stat.rate_samples > 0 ? slot.rate_sum / static_cast<double>(stat.rate_samples)
                                           : 0.0;
    stat.max_concurrency = get_max_concurrency(std::move(slot.intervals));
    stat.rank_count = slot.cases.size();
    out.stats_.emplace(activity, std::move(stat));
  }
  return out;
}

const ActivityStat* IoStatistics::find(const model::Activity& a) const {
  const auto it = stats_.find(a);
  return it == stats_.end() ? nullptr : &it->second;
}

std::vector<TimelineEntry> IoStatistics::timeline(const model::EventLog& log,
                                                  const model::Mapping& f,
                                                  const model::Activity& a) {
  std::vector<TimelineEntry> out;
  for (const model::Case& c : log.cases()) {
    for (const model::Event& e : c.events()) {
      const auto mapped = f(e);
      if (mapped && *mapped == a) {
        out.push_back(TimelineEntry{c.id(), Interval{e.start, e.end()}});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const TimelineEntry& x, const TimelineEntry& y) {
    return x.interval.start < y.interval.start;
  });
  return out;
}

}  // namespace st::dfg
