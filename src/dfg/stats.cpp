#include "dfg/stats.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "model/case_walk.hpp"
#include "support/si.hpp"

namespace st::dfg {

std::string ActivityStat::load_label() const {
  std::string out = "Load:" + format_ratio(rel_dur);
  if (has_bytes) out += " (" + format_bytes(static_cast<double>(bytes)) + ")";
  return out;
}

std::string ActivityStat::dr_label() const {
  if (rate_samples == 0) return {};
  return "DR: " + std::to_string(max_concurrency) + "x" + format_rate_mbps(mean_rate);
}

double deterministic_pairwise_sum(std::span<const double> xs) {
  // Shape is a pure function of xs.size(): halve, recurse, add.
  if (xs.empty()) return 0.0;
  if (xs.size() == 1) return xs[0];
  const std::size_t half = xs.size() / 2;
  return deterministic_pairwise_sum(xs.first(half)) +
         deterministic_pairwise_sum(xs.subspan(half));
}

void IoStatistics::Partial::add_case(const model::Case& c, const model::Mapping& f) {
  CaseContribution contribution;
  contribution.id = c.id();
  model::for_each_mapped_event(c, f, [&](model::Activity&& a, const model::Event& e) {
    ActivityContribution& slot = contribution.activities[std::move(a)];
    slot.total_dur += e.dur;
    ++slot.event_count;
    if (e.has_size()) {
      slot.bytes += e.size;
      slot.has_bytes = true;
      if (e.dur > 0) {
        slot.rate_sum += static_cast<double>(e.size) /
                         (static_cast<double>(e.dur) / static_cast<double>(kMicrosPerSecond));
        ++slot.rate_samples;
      }
    }
    slot.intervals.push_back(Interval{e.start, e.end()});
  });
  cases_.push_back(std::move(contribution));
}

void IoStatistics::Partial::merge(Partial&& other) {
  if (cases_.empty()) {
    cases_ = std::move(other.cases_);
    return;
  }
  cases_.insert(cases_.end(), std::make_move_iterator(other.cases_.begin()),
                std::make_move_iterator(other.cases_.end()));
  other.cases_.clear();
}

IoStatistics IoStatistics::Partial::finalize() const {
  struct Gathered {
    ActivityStat stat;
    std::vector<double> rate_sums;  ///< one leaf per contributing case, input order
    std::vector<Interval> intervals;
    std::set<model::CaseId> cases;
  };
  std::map<model::Activity, Gathered> acc;

  for (const CaseContribution& c : cases_) {
    for (const auto& [activity, con] : c.activities) {
      Gathered& slot = acc[activity];
      slot.stat.total_dur += con.total_dur;
      slot.stat.event_count += con.event_count;
      slot.stat.bytes += con.bytes;
      slot.stat.has_bytes = slot.stat.has_bytes || con.has_bytes;
      slot.stat.rate_samples += con.rate_samples;
      if (con.rate_samples > 0) slot.rate_sums.push_back(con.rate_sum);
      slot.intervals.insert(slot.intervals.end(), con.intervals.begin(), con.intervals.end());
      slot.cases.insert(c.id);
    }
  }

  IoStatistics out;
  for (const auto& [activity, slot] : acc) {
    out.total_dur_ += slot.stat.total_dur;
  }
  for (auto& [activity, slot] : acc) {
    ActivityStat stat = slot.stat;
    stat.rel_dur = out.total_dur_ > 0
                       ? static_cast<double>(stat.total_dur) / static_cast<double>(out.total_dur_)
                       : 0.0;
    stat.mean_rate = stat.rate_samples > 0
                         ? deterministic_pairwise_sum(slot.rate_sums) /
                               static_cast<double>(stat.rate_samples)
                         : 0.0;
    stat.max_concurrency = get_max_concurrency(std::move(slot.intervals));
    stat.rank_count = slot.cases.size();
    out.stats_.emplace(activity, std::move(stat));
  }
  return out;
}

std::vector<TimelineEntry> IoStatistics::Partial::timeline(const model::Activity& a) const {
  std::vector<TimelineEntry> out;
  for (const CaseContribution& c : cases_) {
    const auto it = c.activities.find(a);
    if (it == c.activities.end()) continue;
    for (const Interval& interval : it->second.intervals) {
      out.push_back(TimelineEntry{c.id, interval});
    }
  }
  // The pre-sort sequence equals IoStatistics::timeline's (cases in
  // input order, intervals in event order), so the same sort yields
  // the same output — ties included.
  std::sort(out.begin(), out.end(), [](const TimelineEntry& x, const TimelineEntry& y) {
    return x.interval.start < y.interval.start;
  });
  return out;
}

IoStatistics::Partial IoStatistics::Partial::from_cases(std::vector<CaseContribution> cases) {
  Partial p;
  p.cases_ = std::move(cases);
  return p;
}

IoStatistics IoStatistics::compute(const model::EventLog& log, const model::Mapping& f) {
  Partial partial;
  for (const model::Case& c : log.cases()) partial.add_case(c, f);
  return partial.finalize();
}

const ActivityStat* IoStatistics::find(const model::Activity& a) const {
  const auto it = stats_.find(a);
  return it == stats_.end() ? nullptr : &it->second;
}

std::vector<TimelineEntry> IoStatistics::timeline(const model::EventLog& log,
                                                  const model::Mapping& f,
                                                  const model::Activity& a) {
  std::vector<TimelineEntry> out;
  for (const model::Case& c : log.cases()) {
    for (const model::Event& e : c.events()) {
      const auto mapped = f(e);
      if (mapped && *mapped == a) {
        out.push_back(TimelineEntry{c.id(), Interval{e.start, e.end()}});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const TimelineEntry& x, const TimelineEntry& y) {
    return x.interval.start < y.interval.start;
  });
  return out;
}

}  // namespace st::dfg
