#include "dfg/dfg.hpp"

#include <utility>

namespace st::dfg {

const Activity& Dfg::start_node() {
  static const Activity kStart = "●";  // ● BLACK CIRCLE
  return kStart;
}

const Activity& Dfg::end_node() {
  static const Activity kEnd = "■";  // ■ BLACK SQUARE
  return kEnd;
}

Dfg Dfg::build(const model::ActivityLog& log) {
  Dfg g;
  for (const auto& [trace, multiplicity] : log.variants()) {
    g.add_trace(trace, multiplicity);
  }
  return g;
}

void Dfg::add_trace(const model::ActivityTrace& trace, std::uint64_t multiplicity) {
  if (multiplicity == 0) return;
  trace_count_ += multiplicity;
  nodes_[start_node()] += multiplicity;
  nodes_[end_node()] += multiplicity;
  const Activity* prev = &start_node();
  for (const Activity& a : trace) {
    nodes_[a] += multiplicity;
    edges_[{*prev, a}] += multiplicity;
    prev = &a;
  }
  edges_[{*prev, end_node()}] += multiplicity;
}

void Dfg::merge(const Dfg& other) {
  for (const auto& [node, count] : other.nodes_) nodes_[node] += count;
  for (const auto& [edge, count] : other.edges_) edges_[edge] += count;
  trace_count_ += other.trace_count_;
}

Dfg Dfg::from_parts(std::map<Activity, std::uint64_t> nodes,
                    std::map<std::pair<Activity, Activity>, std::uint64_t> edges,
                    std::uint64_t trace_count) {
  Dfg g;
  g.nodes_ = std::move(nodes);
  g.edges_ = std::move(edges);
  g.trace_count_ = trace_count;
  return g;
}

std::uint64_t Dfg::node_count(const Activity& a) const {
  const auto it = nodes_.find(a);
  return it == nodes_.end() ? 0 : it->second;
}

std::uint64_t Dfg::edge_count(const Activity& from, const Activity& to) const {
  const auto it = edges_.find({from, to});
  return it == edges_.end() ? 0 : it->second;
}

std::set<Activity> Dfg::activities() const {
  std::set<Activity> out;
  for (const auto& [node, count] : nodes_) {
    if (node != start_node() && node != end_node()) out.insert(node);
  }
  return out;
}

}  // namespace st::dfg
