#include "dfg/render_svg.hpp"

#include <cmath>

#include "support/si.hpp"

namespace st::dfg {

namespace {

std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string num(double v) { return format_fixed(v, 1); }

void draw_node(std::string& svg, const NodeBox& box, const Styler* styler,
               const LayoutOptions& layout) {
  std::string fill = "#FFFFFF";
  std::string fontcolor = "black";
  if (styler != nullptr) {
    const NodeStyle style = styler->node_style(box.activity);
    if (!style.fill.empty()) fill = style.fill;
    if (!style.fontcolor.empty()) fontcolor = style.fontcolor;
  }
  const bool marker = box.activity == Dfg::start_node() || box.activity == Dfg::end_node();
  if (marker) {
    if (box.activity == Dfg::start_node()) {
      svg += "<circle cx=\"" + num(box.cx()) + "\" cy=\"" + num(box.cy()) + "\" r=\"9\" fill=\"black\"/>\n";
    } else {
      svg += "<rect x=\"" + num(box.cx() - 8) + "\" y=\"" + num(box.cy() - 8) +
             "\" width=\"16\" height=\"16\" fill=\"black\"/>\n";
    }
    return;
  }
  svg += "<rect x=\"" + num(box.x) + "\" y=\"" + num(box.y) + "\" width=\"" + num(box.width) +
         "\" height=\"" + num(box.height) + "\" rx=\"6\" fill=\"" + fill +
         "\" stroke=\"#333333\"/>\n";
  double ty = box.y + layout.node_padding + layout.line_height * 0.75;
  for (const auto& line : box.label_lines) {
    svg += "<text x=\"" + num(box.cx()) + "\" y=\"" + num(ty) +
           "\" text-anchor=\"middle\" font-family=\"monospace\" font-size=\"11\" fill=\"" +
           fontcolor + "\">" + xml_escape(line) + "</text>\n";
    ty += layout.line_height;
  }
}

void draw_edge(std::string& svg, const Layout& layout, const EdgeGeom& edge,
               const Styler* styler) {
  const NodeBox* from = layout.find(edge.from);
  const NodeBox* to = layout.find(edge.to);
  if (from == nullptr || to == nullptr) return;
  std::string color = "#555555";
  if (styler != nullptr) {
    if (const std::string c = styler->edge_color(edge.from, edge.to); !c.empty()) color = c;
  }
  const std::string label = std::to_string(edge.count);

  if (edge.self_loop) {
    // Side arc on the right edge of the box.
    const double x = from->x + from->width;
    const double y = from->cy();
    svg += "<path d=\"M " + num(x) + " " + num(y - 8) + " C " + num(x + 26) + " " + num(y - 14) +
           ", " + num(x + 26) + " " + num(y + 14) + ", " + num(x) + " " + num(y + 8) +
           "\" fill=\"none\" stroke=\"" + color + "\" marker-end=\"url(#arrow)\"/>\n";
    svg += "<text x=\"" + num(x + 30) + "\" y=\"" + num(y + 4) +
           "\" font-family=\"monospace\" font-size=\"10\" fill=\"" + color + "\">" + label +
           "</text>\n";
    return;
  }

  const double x1 = from->cx();
  const double y1 = from->y + from->height;
  const double x2 = to->cx();
  const double y2 = to->y;
  if (edge.back_edge) {
    // Route around the left side.
    const double detour = std::min(from->x, to->x) - 24;
    svg += "<path d=\"M " + num(from->x) + " " + num(from->cy()) + " C " + num(detour) + " " +
           num(from->cy()) + ", " + num(detour) + " " + num(to->cy()) + ", " + num(to->x) + " " +
           num(to->cy()) + "\" fill=\"none\" stroke=\"" + color +
           "\" stroke-dasharray=\"4 2\" marker-end=\"url(#arrow)\"/>\n";
    svg += "<text x=\"" + num(detour + 4) + "\" y=\"" + num((from->cy() + to->cy()) / 2) +
           "\" font-family=\"monospace\" font-size=\"10\" fill=\"" + color + "\">" + label +
           "</text>\n";
    return;
  }
  const double midy = (y1 + y2) / 2;
  svg += "<path d=\"M " + num(x1) + " " + num(y1) + " C " + num(x1) + " " + num(midy) + ", " +
         num(x2) + " " + num(midy) + ", " + num(x2) + " " + num(y2) +
         "\" fill=\"none\" stroke=\"" + color + "\" marker-end=\"url(#arrow)\"/>\n";
  svg += "<text x=\"" + num((x1 + x2) / 2 + 4) + "\" y=\"" + num(midy) +
         "\" font-family=\"monospace\" font-size=\"10\" fill=\"" + color + "\">" + label +
         "</text>\n";
}

}  // namespace

std::string render_svg(const Dfg& g, const IoStatistics* stats, const Styler* styler,
                       const SvgOptions& opts) {
  const Layout layout = layout_dfg(g, stats, opts.layout);
  std::string svg = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" + num(layout.width) +
                    "\" height=\"" + num(layout.height) + "\" viewBox=\"0 0 " +
                    num(layout.width) + " " + num(layout.height) + "\">\n";
  svg += "<title>" + xml_escape(opts.title) + "</title>\n";
  svg +=
      "<defs><marker id=\"arrow\" viewBox=\"0 0 10 10\" refX=\"9\" refY=\"5\" "
      "markerWidth=\"7\" markerHeight=\"7\" orient=\"auto-start-reverse\">"
      "<path d=\"M 0 0 L 10 5 L 0 10 z\" fill=\"#555555\"/></marker></defs>\n";
  svg += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  // Edges below nodes.
  for (const auto& edge : layout.edges) draw_edge(svg, layout, edge, styler);
  for (const auto& box : layout.nodes) draw_node(svg, box, styler, opts.layout);
  svg += "</svg>\n";
  return svg;
}

}  // namespace st::dfg
