// Syscall service-time model for the simulated storage stack.
//
// The model is deliberately simple but captures the three effects the
// paper's IOR experiments expose:
//
//  1. Shared-file open contention: opening an inode that other
//     processes already hold open pays a token-revocation cost per
//     existing opener (GPFS-like lock-token management). With 96 ranks
//     opening one shared file this dominates — Fig. 8's
//     "openat $SCRATCH/ssf Load: 0.54".
//  2. Shared-file write contention: concurrent writers on the same
//     inode dilate each other's service time by `write_contention_alpha`
//     per extra writer (lock churn / false sharing on blocks). With
//     96 concurrent writers the average SSF write runs ~20x slower
//     than an FPP write — the Fig. 8b write-load gap.
//
// The default constants are calibrated so the 96-rank SSF+FPP campaign
// reproduces the paper's Fig. 8 load ordering:
//     rd(openat,$SCRATCH/ssf) ≳ rd(write,$SCRATCH/ssf) ≫ rd(read, ...)
// with both FPP loads near zero (see EXPERIMENTS.md for measured
// values, and bench/abl_contention for the sensitivity to alpha).
//  3. Metadata-server queueing: creates are serviced by a finite-slot
//     MDS resource; FPP's 96 creates queue there (the "metadata wall"),
//     which keeps FPP opens visible but far cheaper than SSF opens.
//
// All times are virtual microseconds; bandwidths are MB/s (1e6 B/s).
// Service times receive deterministic lognormal jitter so traces look
// organic and timeline overlaps are non-degenerate.
#pragma once

#include <cstddef>

namespace st::iosim {

struct CostModel {
  // -- open/close/metadata ------------------------------------------
  double open_base_us = 25.0;        ///< path resolution + fd setup
  double open_create_us = 180.0;     ///< MDS create (first open of a file)
  double token_revoke_us = 11000.0;  ///< per existing opener (write-mode opens only)
  std::size_t mds_capacity = 16;     ///< concurrent MDS operations
  double close_us = 4.0;
  double lseek_us = 1.5;
  /// ptrace-stop cost added to every traced syscall: the workload runs
  /// under strace, which stops the tracee twice per call. This is the
  /// instrumentation overhead the paper's Sec. V discusses; it is also
  /// why issuing fewer syscalls (MPI-IO's pread/pwrite vs lseek+read/
  /// write) measurably reduces total I/O time in the traces.
  double trace_overhead_us = 15.0;
  double fsync_base_us = 350.0;
  double fsync_per_mb_us = 40.0;     ///< flush cost per dirty MB

  // -- data movement -------------------------------------------------
  double write_bw_mbps = 3400.0;     ///< per-process streaming write
  double read_bw_mbps = 4800.0;      ///< per-process streaming read
  double cache_read_bw_mbps = 14000.0;  ///< page-cache (DRAM) read path
  std::int64_t cache_block_bytes = 65536;  ///< page-cache tracking granularity
  double write_contention_alpha = 0.30;   ///< dilation per extra same-inode writer
  double read_contention_alpha = 0.005;   ///< reads scale much better
  double small_io_floor_us = 3.0;    ///< minimum service (page-cache hit)

  // -- jitter ----------------------------------------------------------
  double jitter_sigma = 0.06;  ///< lognormal sigma on every service time

  /// Pure transfer time for `bytes` at `bw_mbps`.
  [[nodiscard]] double transfer_us(double bytes, double bw_mbps) const {
    if (bw_mbps <= 0.0) return small_io_floor_us;
    return bytes / bw_mbps;  // bytes / (MB/s) == bytes/1e6 s == us
  }
};

}  // namespace st::iosim
