// Virtual file system: path -> inode state shared by all simulated
// processes. Tracks exactly what the cost model needs — existence,
// size, how many processes hold the file open, and how many are
// concurrently inside read/write calls on it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

namespace st::iosim {

struct Inode {
  std::string path;
  std::int64_t size = 0;
  bool exists = false;
  std::size_t openers = 0;          ///< processes holding an open fd
  std::size_t active_writers = 0;   ///< processes inside a write call
  std::size_t active_readers = 0;   ///< processes inside a read call
  std::int64_t dirty_bytes = 0;     ///< unsynced bytes (fsync cost)
  /// Per-host page cache at block granularity: cached_blocks[host]
  /// holds the indices (offset / cache_block_bytes) a host's DRAM
  /// caches after writing them. A read is cache-fast only when every
  /// block it touches is cached on the reading host — which is why
  /// IOR's -C (read the neighbour node's offsets) defeats the cache
  /// even on a single shared file.
  std::map<std::string, std::set<std::int64_t>> cached_blocks;

  void mark_cached(const std::string& host, std::int64_t offset, std::int64_t bytes,
                   std::int64_t block_bytes) {
    auto& blocks = cached_blocks[host];
    for (std::int64_t b = offset / block_bytes; b * block_bytes < offset + bytes; ++b) {
      blocks.insert(b);
    }
  }

  [[nodiscard]] bool is_cached(const std::string& host, std::int64_t offset, std::int64_t bytes,
                               std::int64_t block_bytes) const {
    const auto it = cached_blocks.find(host);
    if (it == cached_blocks.end()) return false;
    for (std::int64_t b = offset / block_bytes; b * block_bytes < offset + bytes; ++b) {
      if (!it->second.contains(b)) return false;
    }
    return true;
  }
};

class VirtualFs {
 public:
  /// Finds or creates the inode record (creation does not mark the
  /// file as existing — that happens on the first open-for-create).
  [[nodiscard]] Inode& inode(const std::string& path);

  [[nodiscard]] const Inode* find(const std::string& path) const;
  [[nodiscard]] std::size_t file_count() const { return inodes_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Inode>> inodes_;
};

}  // namespace st::iosim
