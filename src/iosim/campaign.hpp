// Pre-configured experiment campaigns — the runs behind the paper's
// evaluation figures, shared by examples, benches and tests.
//
//   ssf_fpp_campaign    -> Fig. 8 (SSF vs FPP, POSIX API)
//   mpiio_campaign      -> Fig. 9 (POSIX vs naive MPI-IO, SSF)
//
// Each returns the *combined* event log (both runs merged, like the
// paper's CX / CY logs) already restricted to the system calls the
// paper recorded for that experiment.
#pragma once

#include <cstdint>

#include "iosim/cost_model.hpp"
#include "iosim/ior.hpp"
#include "model/event_log.hpp"

namespace st::iosim {

struct CampaignScale {
  int num_ranks = 96;
  int ranks_per_node = 48;
  std::int64_t transfer_size = 1 << 20;
  std::int64_t block_size = 16 << 20;
  int segments = 3;
  std::uint64_t seed = 42;

  /// Reduced-size preset for unit tests and quick examples (8 ranks,
  /// 4 transfers per block) — same shape, ~100x fewer events.
  [[nodiscard]] static CampaignScale small();
};

/// Base IOR options for one run of the SSF-vs-FPP experiment.
[[nodiscard]] IorOptions make_ssf_options(const CampaignScale& scale);
[[nodiscard]] IorOptions make_fpp_options(const CampaignScale& scale);

/// CX of Sec. V-A: 2 x num_ranks cases (cids "ssf" and "fpp"),
/// restricted to variants of openat/read/write, as in the paper.
[[nodiscard]] model::EventLog ssf_fpp_campaign(const CampaignScale& scale,
                                               const CostModel& model = {});

/// Options for one run of the MPI-IO experiment (both SSF mode).
[[nodiscard]] IorOptions make_posix_options(const CampaignScale& scale);
[[nodiscard]] IorOptions make_mpiio_options(const CampaignScale& scale);

/// CY of Sec. V-B: cids "po" and "mpiio", restricted to variants of
/// openat/read/write plus lseek.
[[nodiscard]] model::EventLog mpiio_campaign(const CampaignScale& scale,
                                             const CostModel& model = {});

}  // namespace st::iosim
