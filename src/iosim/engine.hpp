// The syscall engine: simulated processes issue POSIX-level I/O calls
// which advance virtual time (service + contention waits) and emit
// strace-compatible RawRecords.
//
// Every sys_* coroutine follows the same shape:
//   start = now
//   [acquire contended resources]           -> wait time
//   co_await delay(jittered service time)   -> service time
//   [release]
//   emit record{timestamp=start, duration=now-start, ...}
// so recorded durations include queueing delay — precisely how a real
// strace sees contention (the kernel call does not return earlier just
// because the time was spent waiting on a lock).
//
// Argument strings are synthesized in strace's own syntax (fd
// annotations, quoted paths, byte counts), so emitted traces round-trip
// through the strace parser of this library.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "des/resource.hpp"
#include "des/simulator.hpp"
#include "iosim/cost_model.hpp"
#include "iosim/vfs.hpp"
#include "strace/arena.hpp"
#include "strace/record.hpp"
#include "support/rng.hpp"

namespace st::iosim {

/// Per-process (per-rank) state: pid, fd table, recorded trace, and
/// per-process jitter streams.
///
/// Jitter is drawn from two *per-process* generators — one for data
/// transfers, one for metadata calls — so that two runs with the same
/// seed draw identical jitter for corresponding data operations even
/// when their metadata call patterns differ (common-random-numbers
/// variance reduction, which makes paired comparisons like POSIX vs
/// MPI-IO noise-free on the shared part of the workload).
class ProcessContext {
 public:
  ProcessContext(std::uint64_t pid, Micros wallclock_base, std::uint64_t seed = 1,
                 std::string host = "node1")
      : pid_(pid),
        wallclock_base_(wallclock_base),
        host_(std::move(host)),
        data_rng_(SplitMix64(seed).next()),
        meta_rng_(SplitMix64(seed ^ 0x5DEECE66DULL).next()) {}

  [[nodiscard]] std::uint64_t pid() const { return pid_; }
  [[nodiscard]] Micros wallclock_base() const { return wallclock_base_; }
  [[nodiscard]] const std::string& host() const { return host_; }
  [[nodiscard]] Xoshiro256& data_rng() { return data_rng_; }
  [[nodiscard]] Xoshiro256& meta_rng() { return meta_rng_; }

  [[nodiscard]] const std::vector<strace::RawRecord>& records() const { return records_; }
  [[nodiscard]] std::vector<strace::RawRecord> take_records() { return std::move(records_); }
  void emit(strace::RawRecord rec) { records_.push_back(std::move(rec)); }

  // Record strings (argument text, paths) synthesized for this
  // process's trace intern here; whoever takes the records must also
  // keep the arena alive (TraceSet does).
  [[nodiscard]] strace::StringArena& arena() { return *arena_; }
  [[nodiscard]] std::shared_ptr<strace::StringArena> share_arena() const { return arena_; }
  /// Interns `path` once and returns the same view on repeat calls.
  [[nodiscard]] std::string_view intern_path(const std::string& path) {
    const auto it = path_cache_.find(path);
    if (it != path_cache_.end()) return it->second;
    const auto view = arena_->intern(path);
    path_cache_.emplace(path, view);
    return view;
  }

  // fd table ----------------------------------------------------------
  int allocate_fd(const std::string& path) {
    const int fd = next_fd_++;
    fd_table_[fd] = FdState{path, 0};
    return fd;
  }
  struct FdState {
    std::string path;
    std::int64_t offset = 0;
  };
  [[nodiscard]] FdState& fd_state(int fd);
  void release_fd(int fd) { fd_table_.erase(fd); }

 private:
  std::uint64_t pid_;
  Micros wallclock_base_;
  std::string host_;
  Xoshiro256 data_rng_;
  Xoshiro256 meta_rng_;
  int next_fd_ = 3;
  std::map<int, FdState> fd_table_;
  std::vector<strace::RawRecord> records_;
  std::shared_ptr<strace::StringArena> arena_ = std::make_shared<strace::StringArena>();
  std::unordered_map<std::string, std::string_view> path_cache_;
};

/// Shared simulated I/O system (one per experiment run). The `seed`
/// parameter is the base from which callers derive per-process seeds;
/// the system itself draws no randomness (jitter lives in the
/// per-process streams).
class IoSystem {
 public:
  IoSystem(des::Simulator& sim, CostModel model, std::uint64_t seed)
      : sim_(sim), model_(model), base_seed_(seed), mds_(sim, model.mds_capacity) {}

  [[nodiscard]] std::uint64_t base_seed() const { return base_seed_; }

  [[nodiscard]] des::Simulator& sim() { return sim_; }
  [[nodiscard]] VirtualFs& fs() { return fs_; }
  [[nodiscard]] const CostModel& model() const { return model_; }

  /// openat(AT_FDCWD, path, flags). `create` pays the MDS create cost
  /// on the first open; opening an inode other processes hold open
  /// pays token revocation per opener. Returns the new fd.
  des::Proc<int> sys_openat(ProcessContext& proc, std::string path, bool create);

  /// read/write at the fd's current offset (advances it).
  des::Proc<std::int64_t> sys_read(ProcessContext& proc, int fd, std::int64_t bytes);
  des::Proc<std::int64_t> sys_write(ProcessContext& proc, int fd, std::int64_t bytes);

  /// Positioned variants (MPI-IO path): no offset state touched.
  des::Proc<std::int64_t> sys_pread64(ProcessContext& proc, int fd, std::int64_t bytes,
                                      std::int64_t offset);
  des::Proc<std::int64_t> sys_pwrite64(ProcessContext& proc, int fd, std::int64_t bytes,
                                       std::int64_t offset);

  des::Proc<void> sys_lseek(ProcessContext& proc, int fd, std::int64_t offset);
  /// Metadata query (newfstatat); returns 0 or -1 (ENOENT).
  des::Proc<std::int64_t> sys_stat(ProcessContext& proc, std::string path);
  /// Removes the file through the metadata server (unlinkat).
  des::Proc<void> sys_unlink(ProcessContext& proc, std::string path);
  des::Proc<void> sys_fsync(ProcessContext& proc, int fd);
  des::Proc<void> sys_close(ProcessContext& proc, int fd);

 private:
  /// Jittered service time from the given per-process stream,
  /// >= small_io_floor_us, plus the per-syscall ptrace-stop overhead.
  [[nodiscard]] des::SimTime service(Xoshiro256& rng, double base_us) const;

  /// `call` must have static storage (a literal); `args` must already
  /// be interned in the process arena; `path` is interned here.
  void emit(ProcessContext& proc, des::SimTime start, std::string_view call,
            std::string_view args, std::int64_t retval, const std::string& path);

  des::Simulator& sim_;
  CostModel model_;
  VirtualFs fs_;
  std::uint64_t base_seed_;
  des::Resource mds_;
};

}  // namespace st::iosim
