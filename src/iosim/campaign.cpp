#include "iosim/campaign.hpp"

namespace st::iosim {

CampaignScale CampaignScale::small() {
  CampaignScale s;
  s.num_ranks = 8;
  s.ranks_per_node = 4;
  s.transfer_size = 1 << 18;  // 256 KiB
  s.block_size = 1 << 20;     // 4 transfers per block
  s.segments = 2;
  return s;
}

namespace {

IorOptions base_options(const CampaignScale& scale) {
  IorOptions opt;
  opt.num_ranks = scale.num_ranks;
  opt.ranks_per_node = scale.ranks_per_node;
  opt.transfer_size = scale.transfer_size;
  opt.block_size = scale.block_size;
  opt.segments = scale.segments;
  opt.seed = scale.seed;
  return opt;
}

}  // namespace

IorOptions make_ssf_options(const CampaignScale& scale) {
  IorOptions opt = base_options(scale);
  opt.file_per_process = false;
  opt.test_file = "/p/scratch/ssf/test";
  opt.cid = "ssf";
  opt.base_rid = 20000;
  return opt;
}

IorOptions make_fpp_options(const CampaignScale& scale) {
  IorOptions opt = base_options(scale);
  opt.file_per_process = true;
  opt.test_file = "/p/scratch/fpp/test";
  opt.cid = "fpp";
  opt.base_rid = 30000;
  // Same seed as the SSF run: common random numbers across the pair.
  return opt;
}

model::EventLog ssf_fpp_campaign(const CampaignScale& scale, const CostModel& model) {
  const model::EventLog ssf = run_ior(make_ssf_options(scale), model).to_event_log();
  const model::EventLog fpp = run_ior(make_fpp_options(scale), model).to_event_log();
  // The paper records "events related to variants of read, write and
  // openat system calls" for this experiment.
  return filter_call_families(model::EventLog::merge(ssf, fpp), {"openat", "read", "write"});
}

IorOptions make_posix_options(const CampaignScale& scale) {
  IorOptions opt = base_options(scale);
  opt.api = IorOptions::Api::Posix;
  opt.test_file = "/p/scratch/ssf/test";
  opt.cid = "po";
  opt.base_rid = 40000;
  return opt;
}

IorOptions make_mpiio_options(const CampaignScale& scale) {
  IorOptions opt = base_options(scale);
  opt.api = IorOptions::Api::Mpiio;
  opt.test_file = "/p/scratch/ssf/test";
  opt.cid = "mpiio";
  opt.base_rid = 50000;
  // Same seed as the POSIX run: common random numbers across the pair.
  return opt;
}

model::EventLog mpiio_campaign(const CampaignScale& scale, const CostModel& model) {
  const model::EventLog posix = run_ior(make_posix_options(scale), model).to_event_log();
  const model::EventLog mpiio = run_ior(make_mpiio_options(scale), model).to_event_log();
  // "In addition to variants of read, write, and openat, we also
  // record the events related to lseek" (Sec. V-B).
  return filter_call_families(model::EventLog::merge(posix, mpiio),
                              {"openat", "read", "write", "lseek"});
}

}  // namespace st::iosim
