// IOR-compatible workload engine (paper Sec. V, Fig. 7).
//
// Reproduces the benchmark's access pattern:
//   - each rank writes `segments` segments; a segment holds one block
//     per rank; a block is written in block_size/transfer_size
//     transfers (-s / -b / -t),
//   - SSF mode interleaves all ranks' blocks in one shared file; FPP
//     (-F) gives each rank its own file "<test_file>.<rank 8 digits>",
//   - -C makes each rank read back the data written by the rank one
//     node away (defeats the page cache in the real experiment),
//   - -e fsyncs after the write phase,
//   - the POSIX API issues lseek+read/write per transfer; the MPI-IO
//     API (-a mpiio) issues pread64/pwrite64 (the naive replacement
//     the paper analyses in Fig. 9),
//   - an optional startup phase models what the real binary does
//     before I/O testing: loading shared libraries from $SOFTWARE,
//     reading configuration from $HOME and writing MPI shared-memory
//     segments under /dev/shm (the "Node Local" activities of Fig. 8a).
//
// Ranks run as DES processes synchronized by barriers; every rank
// records its own strace-format trace, exactly like `srun -n N
// strace ...` in Fig. 1.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "iosim/cost_model.hpp"
#include "model/event_log.hpp"
#include "strace/arena.hpp"
#include "strace/filename.hpp"
#include "strace/record.hpp"

namespace st::iosim {

struct IorOptions {
  std::int64_t transfer_size = 1 << 20;  ///< -t (bytes)
  std::int64_t block_size = 16 << 20;    ///< -b (bytes)
  int segments = 3;                      ///< -s
  bool do_write = true;                  ///< -w
  bool do_read = true;                   ///< -r
  bool reorder_tasks = true;             ///< -C
  bool fsync_after_write = true;         ///< -e
  /// IOR removes its test files when done unless -k is given; rank 0
  /// (thread 0) issues the unlinkat calls after the read phase.
  bool keep_files = false;               ///< -k
  bool file_per_process = false;         ///< -F
  enum class Api { Posix, Mpiio };
  Api api = Api::Posix;                  ///< -a posix|mpiio
  std::string test_file = "/p/scratch/ssf/test";  ///< -o

  int num_ranks = 96;
  int ranks_per_node = 48;
  /// Child processes forked per rank (SMT / multi-threaded mode,
  /// Sec. III). With > 1, each rank's transfers are divided among its
  /// children; their overlapping calls appear in the rank's trace file
  /// as <unfinished ...> / <... resumed> pairs (Fig. 2c), exercising
  /// the ResumeMerger path end to end.
  int threads_per_rank = 1;
  std::string cid = "s";            ///< command id for the trace files
  std::uint64_t base_rid = 9000;    ///< rid of rank 0; rank i gets base_rid + i
  Micros wallclock_base = 10LL * 3600 * kMicrosPerSecond;  ///< 10:00:00
  std::uint64_t seed = 42;
  bool simulate_startup = true;

  /// Number of transfers per block (-b / -t).
  [[nodiscard]] int transfers_per_block() const {
    return static_cast<int>(block_size / transfer_size);
  }

  /// The equivalent command line (Fig. 7b).
  [[nodiscard]] std::string command_line() const;

  /// Data file accessed by `rank` ("test" or "test.00000007").
  [[nodiscard]] std::string file_for_rank(int rank) const;

  /// Rank whose data this rank reads back (-C: one node away).
  [[nodiscard]] int read_peer(int rank) const;
};

/// One rank's recorded trace.
struct RankTrace {
  strace::TraceFileId id;
  std::vector<strace::RawRecord> records;
};

/// All traces of one simulated run.
struct TraceSet {
  std::vector<RankTrace> traces;
  /// Arenas owning the synthesized strings the records view into; the
  /// records of `traces` are valid only while this TraceSet is alive.
  std::vector<std::shared_ptr<strace::StringArena>> arenas;

  /// Converts to the event model (one case per rank). The returned log
  /// shares the arenas, so it remains valid after this TraceSet dies.
  [[nodiscard]] model::EventLog to_event_log() const;

  /// Writes cid_host_rid.st text files into `dir` (created if needed).
  void write_files(const std::string& dir) const;
};

/// Runs the full simulated IOR job; deterministic for fixed options.
[[nodiscard]] TraceSet run_ior(const IorOptions& options, const CostModel& model = {});

/// Keeps only events whose call is one of the given families
/// ("read" also matches pread64/readv/..., mirroring the paper's
/// "variants of read" trace selection).
[[nodiscard]] model::EventLog filter_call_families(const model::EventLog& log,
                                                   const std::vector<std::string>& families);

}  // namespace st::iosim
