#include "iosim/engine.hpp"

#include <algorithm>

#include "support/errors.hpp"

namespace st::iosim {

ProcessContext::FdState& ProcessContext::fd_state(int fd) {
  const auto it = fd_table_.find(fd);
  if (it == fd_table_.end()) {
    throw LogicError("iosim: bad fd " + std::to_string(fd) + " in pid " + std::to_string(pid_));
  }
  return it->second;
}

des::SimTime IoSystem::service(Xoshiro256& rng, double base_us) const {
  // Every traced syscall pays the ptrace-stop overhead on top of its
  // jittered service time.
  const double jittered = rng.lognormal(std::max(base_us, model_.small_io_floor_us),
                                        model_.jitter_sigma);
  return std::max<des::SimTime>(
      1, static_cast<des::SimTime>(jittered + model_.trace_overhead_us));
}

void IoSystem::emit(ProcessContext& proc, des::SimTime start, std::string_view call,
                    std::string_view args, std::int64_t retval, const std::string& path) {
  strace::RawRecord rec;
  rec.pid = proc.pid();
  rec.timestamp = proc.wallclock_base() + start;
  rec.kind = strace::RecordKind::Complete;
  rec.call = call;
  rec.args = args;
  rec.retval = retval;
  rec.duration = sim_.now() - start;
  rec.path = proc.intern_path(path);
  proc.emit(std::move(rec));
}

des::Proc<int> IoSystem::sys_openat(ProcessContext& proc, std::string path, bool create) {
  const des::SimTime start = sim_.now();
  Inode& node = fs_.inode(path);

  // Token revocation: a *write-mode* open must downgrade the token of
  // every process that arrived at this inode before it (and has not
  // closed it) — GPFS-like behaviour and the dominant SSF cost.
  // Read-only opens take a shared token and pay nothing extra, which
  // is why openat on the shared libraries under $SOFTWARE stays cheap
  // (Fig. 8a). Counting at *entry* makes N simultaneous shared opens
  // pay 0, 1, ..., N-1 revocations — the convoy a token manager forms.
  const std::size_t prior_openers = node.openers;
  ++node.openers;
  double cost = model_.open_base_us;
  if (create) {
    cost += model_.token_revoke_us * static_cast<double>(prior_openers);
  }

  const bool creating = create && !node.exists;
  if (creating) {
    // Creates queue at the finite-capacity metadata server.
    co_await mds_.acquire();
    co_await sim_.delay(service(proc.meta_rng(), model_.open_create_us));
    mds_.release();
    node.exists = true;
  }
  co_await sim_.delay(service(proc.meta_rng(), cost));

  const int fd = proc.allocate_fd(path);
  const std::string_view args = proc.arena().concat(
      {"AT_FDCWD, \"", path, "\", ", creating || create ? "O_RDWR|O_CREAT, 0644" : "O_RDONLY"});
  emit(proc, start, "openat", args, fd, path);
  co_return fd;
}

des::Proc<std::int64_t> IoSystem::sys_read(ProcessContext& proc, int fd, std::int64_t bytes) {
  const des::SimTime start = sim_.now();
  auto& state = proc.fd_state(fd);
  Inode& node = fs_.inode(state.path);

  ++node.active_readers;
  // Reads of blocks this host wrote come from the page cache (DRAM)
  // and bypass storage contention — the effect IOR's -C flag defeats.
  const bool cached =
      node.is_cached(proc.host(), state.offset, bytes, model_.cache_block_bytes);
  const double bw = cached ? model_.cache_read_bw_mbps : model_.read_bw_mbps;
  const double dilation =
      cached ? 1.0
             : 1.0 + model_.read_contention_alpha * static_cast<double>(node.active_readers - 1);
  co_await sim_.delay(service(proc.data_rng(),
                              model_.transfer_us(static_cast<double>(bytes), bw) * dilation));
  --node.active_readers;

  state.offset += bytes;
  const std::string_view args = proc.arena().concat(
      {std::to_string(fd), "<", state.path, ">, \"\"..., ", std::to_string(bytes)});
  emit(proc, start, "read", args, bytes, state.path);
  co_return bytes;
}

des::Proc<std::int64_t> IoSystem::sys_write(ProcessContext& proc, int fd, std::int64_t bytes) {
  const des::SimTime start = sim_.now();
  auto& state = proc.fd_state(fd);
  Inode& node = fs_.inode(state.path);

  ++node.active_writers;
  const double dilation =
      1.0 + model_.write_contention_alpha * static_cast<double>(node.active_writers - 1);
  co_await sim_.delay(service(proc.data_rng(),
                              model_.transfer_us(static_cast<double>(bytes),
                                                 model_.write_bw_mbps) * dilation));
  --node.active_writers;

  node.mark_cached(proc.host(), state.offset, bytes, model_.cache_block_bytes);
  state.offset += bytes;
  node.size = std::max(node.size, state.offset);
  node.dirty_bytes += bytes;
  const std::string_view args = proc.arena().concat(
      {std::to_string(fd), "<", state.path, ">, \"\"..., ", std::to_string(bytes)});
  emit(proc, start, "write", args, bytes, state.path);
  co_return bytes;
}

des::Proc<std::int64_t> IoSystem::sys_pread64(ProcessContext& proc, int fd, std::int64_t bytes,
                                              std::int64_t offset) {
  const des::SimTime start = sim_.now();
  auto& state = proc.fd_state(fd);
  Inode& node = fs_.inode(state.path);

  ++node.active_readers;
  const bool cached = node.is_cached(proc.host(), offset, bytes, model_.cache_block_bytes);
  const double bw = cached ? model_.cache_read_bw_mbps : model_.read_bw_mbps;
  const double dilation =
      cached ? 1.0
             : 1.0 + model_.read_contention_alpha * static_cast<double>(node.active_readers - 1);
  co_await sim_.delay(service(proc.data_rng(),
                              model_.transfer_us(static_cast<double>(bytes), bw) * dilation));
  --node.active_readers;

  const std::string_view args = proc.arena().concat(
      {std::to_string(fd), "<", state.path, ">, \"\"..., ", std::to_string(bytes), ", ",
       std::to_string(offset)});
  emit(proc, start, "pread64", args, bytes, state.path);
  co_return bytes;
}

des::Proc<std::int64_t> IoSystem::sys_pwrite64(ProcessContext& proc, int fd, std::int64_t bytes,
                                               std::int64_t offset) {
  const des::SimTime start = sim_.now();
  auto& state = proc.fd_state(fd);
  Inode& node = fs_.inode(state.path);

  ++node.active_writers;
  const double dilation =
      1.0 + model_.write_contention_alpha * static_cast<double>(node.active_writers - 1);
  co_await sim_.delay(service(proc.data_rng(),
                              model_.transfer_us(static_cast<double>(bytes),
                                                 model_.write_bw_mbps) * dilation));
  --node.active_writers;

  node.mark_cached(proc.host(), offset, bytes, model_.cache_block_bytes);
  node.size = std::max(node.size, offset + bytes);
  node.dirty_bytes += bytes;
  const std::string_view args = proc.arena().concat(
      {std::to_string(fd), "<", state.path, ">, \"\"..., ", std::to_string(bytes), ", ",
       std::to_string(offset)});
  emit(proc, start, "pwrite64", args, bytes, state.path);
  co_return bytes;
}

des::Proc<void> IoSystem::sys_lseek(ProcessContext& proc, int fd, std::int64_t offset) {
  const des::SimTime start = sim_.now();
  auto& state = proc.fd_state(fd);
  co_await sim_.delay(service(proc.meta_rng(), model_.lseek_us));
  state.offset = offset;
  const std::string_view args = proc.arena().concat(
      {std::to_string(fd), "<", state.path, ">, ", std::to_string(offset), ", SEEK_SET"});
  emit(proc, start, "lseek", args, offset, state.path);
}

des::Proc<std::int64_t> IoSystem::sys_stat(ProcessContext& proc, std::string path) {
  const des::SimTime start = sim_.now();
  Inode& node = fs_.inode(path);
  // Metadata reads are served by the MDS but do not require exclusive
  // tokens; a fixed base cost suffices.
  co_await sim_.delay(service(proc.meta_rng(), model_.open_base_us / 2));
  const std::int64_t ret = node.exists ? 0 : -1;
  strace::RawRecord rec;
  rec.pid = proc.pid();
  rec.timestamp = proc.wallclock_base() + start;
  rec.call = "newfstatat";
  rec.args = proc.arena().concat({"AT_FDCWD, \"", path, "\", {st_mode=S_IFREG|0644, st_size=",
                                  std::to_string(node.size), ", ...}, 0"});
  rec.retval = ret;
  if (ret < 0) rec.errno_name = "ENOENT";
  rec.duration = sim_.now() - start;
  rec.path = proc.intern_path(path);
  proc.emit(std::move(rec));
  co_return ret;
}

des::Proc<void> IoSystem::sys_unlink(ProcessContext& proc, std::string path) {
  const des::SimTime start = sim_.now();
  Inode& node = fs_.inode(path);
  // Unlink is an MDS transaction like create.
  co_await mds_.acquire();
  co_await sim_.delay(service(proc.meta_rng(), model_.open_create_us));
  mds_.release();
  node.exists = false;
  node.size = 0;
  node.dirty_bytes = 0;
  node.cached_blocks.clear();
  const std::string_view args = proc.arena().concat({"AT_FDCWD, \"", path, "\", 0"});
  emit(proc, start, "unlinkat", args, 0, path);
}

des::Proc<void> IoSystem::sys_fsync(ProcessContext& proc, int fd) {
  const des::SimTime start = sim_.now();
  auto& state = proc.fd_state(fd);
  Inode& node = fs_.inode(state.path);
  const double dirty_mb = static_cast<double>(node.dirty_bytes) / 1e6;
  co_await sim_.delay(
      service(proc.meta_rng(), model_.fsync_base_us + model_.fsync_per_mb_us * dirty_mb));
  node.dirty_bytes = 0;
  const std::string_view args =
      proc.arena().concat({std::to_string(fd), "<", state.path, ">"});
  emit(proc, start, "fsync", args, 0, state.path);
}

des::Proc<void> IoSystem::sys_close(ProcessContext& proc, int fd) {
  const des::SimTime start = sim_.now();
  auto& state = proc.fd_state(fd);
  const std::string path = state.path;
  Inode& node = fs_.inode(path);
  co_await sim_.delay(service(proc.meta_rng(), model_.close_us));
  if (node.openers > 0) --node.openers;
  const std::string_view args = proc.arena().concat({std::to_string(fd), "<", path, ">"});
  proc.release_fd(fd);
  emit(proc, start, "close", args, 0, path);
}

}  // namespace st::iosim
