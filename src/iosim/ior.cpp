#include "iosim/ior.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "des/resource.hpp"
#include "des/simulator.hpp"
#include "iosim/engine.hpp"
#include "model/from_strace.hpp"
#include "model/query.hpp"
#include "strace/writer.hpp"
#include "support/errors.hpp"

namespace st::iosim {

std::string IorOptions::command_line() const {
  std::string cmd = "srun -n " + std::to_string(num_ranks) + " ./strace.sh ./ior";
  cmd += " -t " + std::to_string(transfer_size >> 20) + "m";
  cmd += " -b " + std::to_string(block_size >> 20) + "m";
  cmd += " -s " + std::to_string(segments);
  if (do_write) cmd += " -w";
  if (do_read) cmd += " -r";
  if (reorder_tasks) cmd += " -C";
  if (fsync_after_write) cmd += " -e";
  if (keep_files) cmd += " -k";
  if (file_per_process) cmd += " -F";
  if (api == Api::Mpiio) cmd += " -a mpiio";
  cmd += " -o " + test_file;
  return cmd;
}

std::string IorOptions::file_for_rank(int rank) const {
  if (!file_per_process) return test_file;
  std::array<char, 16> suffix{};
  std::snprintf(suffix.data(), suffix.size(), ".%08d", rank);
  return test_file + suffix.data();
}

int IorOptions::read_peer(int rank) const {
  if (!reorder_tasks) return rank;
  return (rank + ranks_per_node) % num_ranks;
}

model::EventLog TraceSet::to_event_log() const {
  model::EventLog log;
  // The events' call/fp view into the simulator's per-process arenas;
  // sharing them with the log decouples its lifetime from this
  // TraceSet. cid/host intern into the log's own arena.
  for (const auto& arena : arenas) log.adopt(arena);
  for (const RankTrace& t : traces) {
    log.add_case(model::case_from_records(t.id, t.records, log.arena()));
  }
  return log;
}

void TraceSet::write_files(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  for (const RankTrace& t : traces) {
    const std::string path = dir + "/" + strace::format_trace_filename(t.id);
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw IoError("cannot create trace file: " + path);
    out << strace::format_trace_interleaved(t.records);
  }
}

namespace {

/// Software stack files loaded during startup (the $SOFTWARE reads and
/// lseeks of Fig. 8a / Fig. 9).
const std::vector<std::string>& startup_libs() {
  static const std::vector<std::string> kLibs = {
      "/p/software/mpi/lib/libmpi.so.40",
      "/p/software/compiler/lib/libstdc++.so.6",
      "/p/software/tools/lib/libior-aiori.so",
  };
  return kLibs;
}

des::Proc<void> startup_phase(IoSystem& io, ProcessContext& proc, const IorOptions& opt,
                              int rank, const std::string& host) {
  // Shared libraries: open, header read, seek to sections, bulk reads.
  for (const std::string& lib : startup_libs()) {
    const int fd = co_await io.sys_openat(proc, lib, /*create=*/false);
    co_await io.sys_read(proc, fd, 832);  // ELF header probe
    co_await io.sys_lseek(proc, fd, 4096);
    for (int i = 0; i < 8; ++i) co_await io.sys_read(proc, fd, 2048);
    co_await io.sys_close(proc, fd);
  }
  // $HOME configuration.
  const int cfg = co_await io.sys_openat(proc, "/p/home/user/.ior.conf", /*create=*/false);
  co_await io.sys_read(proc, cfg, 1024);
  co_await io.sys_close(proc, cfg);
  // Node-local MPI shared-memory segment (the "Node Local" writes).
  const std::string shm = "/dev/shm/mpi_shmem_" + host + "_" + std::to_string(rank);
  const int shm_fd = co_await io.sys_openat(proc, shm, /*create=*/true);
  co_await io.sys_lseek(proc, shm_fd, 0);
  for (int i = 0; i < 65; ++i) co_await io.sys_write(proc, shm_fd, 66000);
  co_await io.sys_close(proc, shm_fd);
  (void)opt;
}

/// Offset of transfer `x` of segment `seg` for `rank` (IOR layout,
/// Fig. 7a). In FPP mode each file only holds the rank's own blocks.
std::int64_t transfer_offset(const IorOptions& opt, int rank, int seg, int x) {
  const std::int64_t in_block = static_cast<std::int64_t>(x) * opt.transfer_size;
  if (opt.file_per_process) {
    return static_cast<std::int64_t>(seg) * opt.block_size + in_block;
  }
  const std::int64_t segment_bytes = static_cast<std::int64_t>(opt.num_ranks) * opt.block_size;
  return static_cast<std::int64_t>(seg) * segment_bytes +
         static_cast<std::int64_t>(rank) * opt.block_size + in_block;
}

/// One simulated traced process: thread 0 of a rank performs the
/// startup phase; all threads share the rank's transfers round-robin
/// ((seg * transfers_per_block + x) % threads_per_rank == thread).
/// The barrier spans num_ranks x threads_per_rank participants and
/// every thread arrives the same number of times.
des::Proc<void> thread_process(IoSystem& io, ProcessContext& proc, const IorOptions& opt,
                               int rank, int thread, const std::string& host,
                               des::Barrier& barrier) {
  if (opt.simulate_startup && thread == 0) {
    co_await startup_phase(io, proc, opt, rank, host);
  }
  co_await barrier.arrive();

  const auto mine = [&](int seg, int x) {
    return (seg * opt.transfers_per_block() + x) % opt.threads_per_rank == thread;
  };

  // -- write phase ----------------------------------------------------
  if (opt.do_write) {
    const std::string file = opt.file_for_rank(rank);
    const int fd = co_await io.sys_openat(proc, file, /*create=*/true);
    // IOR synchronizes after the open before timing the write phase;
    // this is also what makes all ranks' writes overlap (and contend)
    // on the shared file.
    co_await barrier.arrive();
    bool wrote = false;
    for (int seg = 0; seg < opt.segments; ++seg) {
      for (int x = 0; x < opt.transfers_per_block(); ++x) {
        if (!mine(seg, x)) continue;
        const std::int64_t offset = transfer_offset(opt, rank, seg, x);
        if (opt.api == IorOptions::Api::Posix) {
          co_await io.sys_lseek(proc, fd, offset);
          co_await io.sys_write(proc, fd, opt.transfer_size);
        } else {
          co_await io.sys_pwrite64(proc, fd, opt.transfer_size, offset);
        }
        wrote = true;
      }
    }
    if (opt.fsync_after_write && wrote) co_await io.sys_fsync(proc, fd);
    co_await io.sys_close(proc, fd);
  }
  co_await barrier.arrive();

  // -- read phase (-C: read the neighbour node's data) ----------------
  if (opt.do_read) {
    const int peer = opt.read_peer(rank);
    const std::string file = opt.file_for_rank(peer);
    const int fd = co_await io.sys_openat(proc, file, /*create=*/false);
    co_await barrier.arrive();
    for (int seg = 0; seg < opt.segments; ++seg) {
      for (int x = 0; x < opt.transfers_per_block(); ++x) {
        if (!mine(seg, x)) continue;
        const std::int64_t offset = transfer_offset(opt, peer, seg, x);
        if (opt.api == IorOptions::Api::Posix) {
          co_await io.sys_lseek(proc, fd, offset);
          co_await io.sys_read(proc, fd, opt.transfer_size);
        } else {
          co_await io.sys_pread64(proc, fd, opt.transfer_size, offset);
        }
      }
    }
    co_await io.sys_close(proc, fd);
  }
  co_await barrier.arrive();

  // -- cleanup (no -k): rank 0 removes the test file(s) ----------------
  if (!opt.keep_files && rank == 0 && thread == 0) {
    if (opt.file_per_process) {
      for (int r = 0; r < opt.num_ranks; ++r) {
        co_await io.sys_unlink(proc, opt.file_for_rank(r));
      }
    } else {
      co_await io.sys_unlink(proc, opt.test_file);
    }
  }
}

}  // namespace

TraceSet run_ior(const IorOptions& options, const CostModel& model) {
  if (options.num_ranks <= 0) throw LogicError("IOR: num_ranks must be positive");
  if (options.ranks_per_node <= 0) throw LogicError("IOR: ranks_per_node must be positive");
  if (options.block_size % options.transfer_size != 0) {
    throw LogicError("IOR: block_size must be a multiple of transfer_size");
  }

  if (options.threads_per_rank <= 0) throw LogicError("IOR: threads_per_rank must be positive");

  des::Simulator sim;
  IoSystem io(sim, model, options.seed);
  const int threads = options.threads_per_rank;
  des::Barrier barrier(sim, static_cast<std::size_t>(options.num_ranks) *
                                static_cast<std::size_t>(threads));

  // contexts[rank * threads + thread]; one trace file per rank merges
  // all of its children's records, exactly as strace -f -o does.
  std::vector<std::unique_ptr<ProcessContext>> contexts;
  std::vector<std::string> hosts;
  contexts.reserve(static_cast<std::size_t>(options.num_ranks) *
                   static_cast<std::size_t>(threads));
  // Per-process seeds derive from (seed, rank, thread) only — NOT from
  // cid/rid — so paired runs (e.g. POSIX vs MPI-IO with the same seed)
  // draw common random numbers per process (variance-free comparisons).
  SplitMix64 seeder(options.seed);
  for (int rank = 0; rank < options.num_ranks; ++rank) {
    const int node = rank / options.ranks_per_node;
    hosts.push_back("node" + std::to_string(node + 1));
    const std::uint64_t rid = options.base_rid + static_cast<std::uint64_t>(rank);
    for (int t = 0; t < threads; ++t) {
      // The MPI launcher forks the traced command; pid != rid (Sec. III).
      contexts.push_back(std::make_unique<ProcessContext>(
          rid + 12 + static_cast<std::uint64_t>(t), options.wallclock_base, seeder.next(),
          hosts.back()));
    }
  }
  for (int rank = 0; rank < options.num_ranks; ++rank) {
    for (int t = 0; t < threads; ++t) {
      const auto idx = static_cast<std::size_t>(rank * threads + t);
      sim.spawn(thread_process(io, *contexts[idx], options, rank, t,
                               hosts[static_cast<std::size_t>(rank)], barrier));
    }
  }
  sim.run();

  TraceSet out;
  out.arenas.reserve(contexts.size());
  for (const auto& ctx : contexts) out.arenas.push_back(ctx->share_arena());
  out.traces.reserve(static_cast<std::size_t>(options.num_ranks));
  for (int rank = 0; rank < options.num_ranks; ++rank) {
    RankTrace t;
    t.id = strace::TraceFileId{options.cid, hosts[static_cast<std::size_t>(rank)],
                               options.base_rid + static_cast<std::uint64_t>(rank)};
    for (int thread = 0; thread < threads; ++thread) {
      const auto idx = static_cast<std::size_t>(rank * threads + thread);
      auto recs = contexts[idx]->take_records();
      t.records.insert(t.records.end(), std::make_move_iterator(recs.begin()),
                       std::make_move_iterator(recs.end()));
    }
    std::stable_sort(t.records.begin(), t.records.end(),
                     [](const strace::RawRecord& a, const strace::RawRecord& b) {
                       return a.timestamp < b.timestamp;
                     });
    out.traces.push_back(std::move(t));
  }
  return out;
}

model::EventLog filter_call_families(const model::EventLog& log,
                                     const std::vector<std::string>& families) {
  // "read" matches read, pread64, readv, preadv2, ...; "write"
  // likewise; exact names (lseek, openat) match themselves.
  return model::Query().calls(families).apply(log);
}

}  // namespace st::iosim
