// Synthetic `ls` / `ls -l` traces (paper Fig. 1 / Fig. 2).
//
// The event sequences — call, file path, requested bytes, transferred
// bytes, duration, and inter-event gaps — are transcribed verbatim from
// the trace files printed in Fig. 2a and Fig. 2b, so the DFGs and byte
// statistics of Fig. 3/4 are reproduced exactly (14.98 KB for
// read:/usr/lib, edge frequencies 3/6/3/..., etc.).
//
// Three MPI processes run each command (srun -n 3, Fig. 1); case k is
// shifted by `case_stagger_us * k` to model launcher skew, which is
// what produces the cross-rank overlaps measured by max-concurrency
// (Fig. 5).
#pragma once

#include <cstdint>
#include <vector>

#include "iosim/ior.hpp"
#include "support/timeparse.hpp"

namespace st::iosim {

struct CommandTraceOptions {
  std::uint64_t base_rid = 9042;  ///< rid of the first MPI process
  std::uint64_t pid_offset = 12;  ///< child pid = rid + offset
  int processes = 3;              ///< srun -n 3
  Micros case_stagger_us = 120;   ///< start skew between MPI processes
  Micros wallclock_base = 8LL * 3600 * kMicrosPerSecond + 55LL * 60 * kMicrosPerSecond +
                          54LL * kMicrosPerSecond;  ///< 08:55:54
  std::string host = "host1";
};

/// Ca: the `ls` traces (cid "a"; Fig. 2a rows).
[[nodiscard]] TraceSet make_ls_traces(const CommandTraceOptions& opt = {});

/// Cb: the `ls -l` traces (cid "b"; Fig. 2b rows). Defaults shift
/// base_rid to 9157 and the wall clock by 10 s, as in the paper.
[[nodiscard]] TraceSet make_ls_l_traces(CommandTraceOptions opt = {});

}  // namespace st::iosim
