#include "iosim/commands.hpp"

#include <memory>
#include <string>

namespace st::iosim {

namespace {

/// One row of Fig. 2: relative start (us since command start), call,
/// path, requested bytes, transferred bytes, duration (us).
struct Row {
  Micros rel_start;
  const char* call;
  const char* path;
  std::int64_t requested;
  std::int64_t transferred;
  Micros dur;
};

// Fig. 2a — `ls` on pid 9054 (rid 9042), base 08:55:54.153994.
constexpr Row kLsRows[] = {
    {0, "read", "/usr/lib/x86_64-linux-gnu/libselinux.so.1", 832, 832, 203},
    {2646, "read", "/usr/lib/x86_64-linux-gnu/libc.so.6", 832, 832, 79},
    {5300, "read", "/usr/lib/x86_64-linux-gnu/libpcre2-8.so.0.10.4", 832, 832, 87},
    {8880, "read", "/proc/filesystems", 1024, 478, 52},
    {9055, "read", "/proc/filesystems", 1024, 0, 40},
    {9566, "read", "/etc/locale.alias", 4096, 2996, 41},
    {9685, "read", "/etc/locale.alias", 4096, 0, 44},
    {22266, "write", "/dev/pts/7", 50, 50, 111},
};

// Fig. 2b — `ls -l` on pid 9173 (rid 9157), base 08:56:04.731999.
constexpr Row kLsLRows[] = {
    {0, "read", "/usr/lib/x86_64-linux-gnu/libselinux.so.1", 832, 832, 187},
    {2570, "read", "/usr/lib/x86_64-linux-gnu/libc.so.6", 832, 832, 75},
    {5109, "read", "/usr/lib/x86_64-linux-gnu/libpcre2-8.so.0.10.4", 832, 832, 63},
    {8962, "read", "/proc/filesystems", 1024, 478, 80},
    {9211, "read", "/proc/filesystems", 1024, 0, 67},
    {10238, "read", "/etc/locale.alias", 4096, 2996, 97},
    {10506, "read", "/etc/locale.alias", 4096, 0, 83},
    {22209, "read", "/etc/nsswitch.conf", 4096, 542, 140},
    {22488, "read", "/etc/nsswitch.conf", 4096, 0, 27},
    {23280, "read", "/etc/passwd", 4096, 1612, 37},
    {24741, "read", "/etc/group", 4096, 872, 91},
    {26662, "write", "/dev/pts/7", 9, 9, 74},
    {27174, "read", "/usr/share/zoneinfo/Europe/Berlin", 4096, 2298, 74},
    {27472, "read", "/usr/share/zoneinfo/Europe/Berlin", 4096, 1449, 33},
    {27817, "write", "/dev/pts/7", 74, 74, 99},
    {28044, "write", "/dev/pts/7", 53, 53, 73},
    {28234, "write", "/dev/pts/7", 65, 65, 99},
};

/// The fd number shown in the -y annotation: 1 for the tty, 3/4
/// otherwise (cosmetic; the analysis keys on the path).
int fd_for(const Row& row) {
  const std::string_view path = row.path;
  if (path.starts_with("/dev/pts")) return 1;
  if (path.starts_with("/etc/nsswitch") || path.starts_with("/etc/passwd") ||
      path.starts_with("/etc/group")) {
    return 4;
  }
  return 3;
}

template <std::size_t N>
TraceSet make_traces(const Row (&rows)[N], const char* cid, const CommandTraceOptions& opt) {
  TraceSet out;
  auto arena = std::make_shared<strace::StringArena>();
  out.arenas.push_back(arena);
  // rids follow the paper's pattern 9042/9043/9045: not consecutive —
  // the launcher skipped one pid between processes 2 and 3.
  for (int p = 0; p < opt.processes; ++p) {
    const std::uint64_t rid = opt.base_rid + static_cast<std::uint64_t>(p == 2 ? 3 : p);
    RankTrace trace;
    trace.id = strace::TraceFileId{cid, opt.host, rid};
    const Micros case_base = opt.wallclock_base + opt.case_stagger_us * p;
    for (const Row& row : rows) {
      strace::RawRecord rec;
      rec.pid = rid + opt.pid_offset;
      rec.timestamp = case_base + row.rel_start;
      rec.kind = strace::RecordKind::Complete;
      rec.call = row.call;
      const int fd = fd_for(row);
      rec.args = arena->concat({std::to_string(fd), "<", row.path, ">, \"\"..., ",
                                std::to_string(row.requested)});
      rec.fd = fd;
      rec.path = row.path;
      rec.retval = row.transferred;
      rec.duration = row.dur;
      rec.requested = row.requested;
      trace.records.push_back(std::move(rec));
    }
    out.traces.push_back(std::move(trace));
  }
  return out;
}

}  // namespace

TraceSet make_ls_traces(const CommandTraceOptions& opt) {
  return make_traces(kLsRows, "a", opt);
}

TraceSet make_ls_l_traces(CommandTraceOptions opt) {
  if (opt.base_rid == 9042) opt.base_rid = 9157;  // paper default for cid "b"
  opt.wallclock_base += 10 * kMicrosPerSecond + 731999;  // 08:56:04.731999 base
  return make_traces(kLsLRows, "b", opt);
}

}  // namespace st::iosim
