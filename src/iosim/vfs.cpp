#include "iosim/vfs.hpp"

namespace st::iosim {

Inode& VirtualFs::inode(const std::string& path) {
  auto& slot = inodes_[path];
  if (!slot) {
    slot = std::make_unique<Inode>();
    slot->path = path;
  }
  return *slot;
}

const Inode* VirtualFs::find(const std::string& path) const {
  const auto it = inodes_.find(path);
  return it == inodes_.end() ? nullptr : it->second.get();
}

}  // namespace st::iosim
