// pipeline::run_sharded — "one pass, any scale" (ISSUE 7 tentpole).
//
// The streamed pipeline::run already folds every analytic in one pass
// inside one process. This layer splits the input FILES across shards
// and runs that same pass once per shard, each shard emitting one
// serialized ShardPartial blob (partial_codec.hpp). The coordinator
// decodes the blobs and merges them strictly in shard (= input) order,
// then finalizes — the exact add_case -> merge -> finalize path the
// in-process run takes, so the sharded output is bit-identical to
// pipeline::run at ANY shard count, doubles included (the FP sums all
// happen in finalize(), through the fixed-shape pairwise tree of
// dfg/stats.hpp).
//
// Two execution modes, one result:
//   - fold_shard_exe = ""      each shard folds in-process. The blob
//                              still round-trips through the codec, so
//                              encode/decode stays on the hot path and
//                              the modes cannot drift apart.
//   - fold_shard_exe = <path>  each shard is a spawned subprocess:
//                                <exe> fold-shard <out.partial>
//                                      --map <name> [--threads N]
//                                      [--fp S] [--calls a,b]
//                                      [--keep-going]
//                                      [--shard-index I] <traces...>
//                              (elog_tool implements the verb). The
//                              coordinator posix_spawns all shards and
//                              SUPERVISES them (ISSUE 8): per-shard
//                              deadline with SIGKILL on expiry, bounded
//                              retries with backoff (crashed children,
//                              missing or CRC-rejected blobs are all
//                              retryable; retries scrub ST_FAULTS from
//                              the child environment so injected
//                              one-shot faults heal), and a final
//                              in-process fold_shard fallback — a
//                              transiently failing child still yields
//                              output byte-identical to the clean run.
//                              Only exhausted shards (fallback failed
//                              or disabled) throw, lowest shard index
//                              first. What happened per shard lands in
//                              ShardedAnalytics::shard_report, NEVER in
//                              the analytics warnings (which must stay
//                              byte-identical to the streamed run).
//
// The mapping crosses the process boundary by its short CLI name
// (model::mapping_by_name) — the one registry both sides resolve
// through, so coordinator and workers cannot disagree on f.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dfg/edge_stats.hpp"
#include "dfg/stats.hpp"
#include "pipeline/partial_codec.hpp"
#include "pipeline/sink.hpp"

namespace st::pipeline {

struct ShardOptions {
  /// Number of file splits (>= 1). Files are split contiguously:
  /// shard i gets [i*n/k, (i+1)*n/k); empty splits are skipped.
  std::size_t shards = 2;

  /// Activity mapping by SHORT name (top1|top2|last1|last2|call|site|
  /// site1) — resolved via model::mapping_by_name on both sides of the
  /// process boundary.
  std::string mapping = "top2";

  /// Worker threads per shard pool (0 = hardware).
  std::size_t worker_threads = 0;

  /// Path of the fold-shard subprocess binary (elog_tool); empty runs
  /// every shard in-process (still through the codec).
  std::string fold_shard_exe;

  /// Optional streamed query (QuerySink) — the shard's filtered log
  /// travels in the blob. `query_calls` is comma-separated families.
  std::optional<std::string> query_fp;
  std::optional<std::string> query_calls;

  /// Streaming knobs for in-process folds. Only `keep_going` crosses
  /// the process boundary (as --keep-going — it changes output);
  /// memory-behavior knobs are not forwarded, by the determinism
  /// contract they cannot change any output byte.
  StreamOptions stream;

  // -- supervision (spawned mode only) -----------------------------------

  /// Spawn attempts per shard before falling back (>= 1).
  std::size_t max_attempts = 3;
  /// Sleep before retry r is attempt_backoff_ms * r (linear).
  std::uint32_t retry_backoff_ms = 10;
  /// Wall-clock budget per attempt; expiry SIGKILLs the child and
  /// counts as a failed attempt. 0 disables the deadline.
  std::uint32_t shard_timeout_ms = 120'000;
  /// After the last failed attempt, fold the shard in-process (the
  /// subprocess is an optimization, not the only way to the bytes).
  /// false: exhausted shards throw IoError instead.
  bool fallback_in_process = true;
  /// Keep ST_FAULTS in retried children's environment (tests of the
  /// persistent-failure -> fallback path; default scrubs it so
  /// injected one-shot faults heal on retry).
  bool keep_faults_on_retry = false;
};

/// What supervision did, per shard — surfaced via `elog_tool
/// report-sharded` diagnostics. Deliberately NOT part of the analytics
/// (a recovered run's report must stay byte-identical to a clean one).
struct ShardRunReport {
  struct Shard {
    std::size_t attempts = 0;           ///< spawn attempts made
    bool fell_back = false;             ///< recovered by the in-process fold
    std::vector<std::string> failures;  ///< one line per failed attempt
  };
  std::vector<Shard> shards;

  [[nodiscard]] std::size_t total_retries() const;
  [[nodiscard]] std::size_t total_fallbacks() const;
  /// One human-readable line per shard that needed intervention.
  [[nodiscard]] std::vector<std::string> to_lines() const;
};

/// Everything the merged shard partials finalize into: the same
/// analytics one pipeline::run pass over all files produces.
struct ShardedAnalytics {
  std::uint64_t case_count = 0;
  std::uint64_t total_events = 0;
  std::vector<std::string> warnings;
  dfg::Dfg graph;
  std::vector<model::CaseSummary> case_summaries;
  model::ActivityLog activity_log;
  model::VariantCounts variants;
  dfg::IoStatistics io_stats;
  dfg::EdgeStatistics edge_stats;
  /// The merged (pre-finalize) IoStatistics partial — timelines render
  /// from it without a log.
  dfg::IoStatistics::Partial io_partial;
  /// Present iff a query ran: the filtered log, cases in input order.
  std::optional<model::EventLog> filtered;
  /// Data-health counters summed across shards + warning classes
  /// recomputed from the merged warning list (== the streamed run's).
  DataHealth health;
  /// Supervision outcome (spawned mode; empty shards otherwise).
  ShardRunReport shard_report;
};

/// One shard's whole job: streams `paths` through pipeline::run with
/// every analytic sink (plus a QuerySink when opts carries a query)
/// and returns the encoded ShardPartial blob. This is the body of the
/// `elog_tool fold-shard` verb and of in-process sharding alike.
[[nodiscard]] std::string fold_shard(const std::vector<std::string>& paths,
                                     const ShardOptions& opts);

/// Input-order merge + finalize of decoded shard partials — the
/// coordinator's reduce step, exposed for tests and merge-partials.
[[nodiscard]] ShardedAnalytics finalize_shards(std::vector<ShardPartial> parts);

/// Splits `paths` across opts.shards shards, folds each (subprocess or
/// in-process per opts.fold_shard_exe), decodes and merges the blobs
/// in shard order. Spawned shards run under supervision (retry /
/// timeout / fallback, see ShardOptions); only an unrecoverable shard
/// throws — the lowest-shard-index failure first, IoError for
/// subprocess/blob problems.
[[nodiscard]] ShardedAnalytics run_sharded(const std::vector<std::string>& paths,
                                           const ShardOptions& opts);

}  // namespace st::pipeline
