#include "pipeline/shard.hpp"

#include <spawn.h>
#include <sys/wait.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <utility>

#include "model/mapping.hpp"
#include "model/query.hpp"
#include "parallel/thread_pool.hpp"
#include "strace/filename.hpp"
#include "support/errors.hpp"
#include "support/strings.hpp"

extern char** environ;

namespace st::pipeline {

namespace {

[[nodiscard]] std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open shard partial: " + path);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  if (in.bad()) throw IoError("cannot read shard partial: " + path);
  return std::move(bytes).str();
}

/// mkdtemp-backed scratch directory for the shard blobs, removed on
/// scope exit (including the error paths).
struct TempDir {
  std::string path;

  TempDir() {
    std::string templ =
        (std::filesystem::temp_directory_path() / "st_shard_XXXXXX").string();
    if (mkdtemp(templ.data()) == nullptr) {
      throw IoError("cannot create shard temp dir: " + std::string(std::strerror(errno)));
    }
    path = std::move(templ);
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// Spawns one fold-shard subprocess per split, waits for ALL of them,
/// then surfaces the lowest-shard-index failure (matching the
/// lowest-input-index-wins error contract of pipeline::run). Blobs are
/// read back in shard order.
[[nodiscard]] std::vector<std::string> fold_shards_spawned(
    const std::vector<std::vector<std::string>>& splits, const ShardOptions& opts) {
  const TempDir tmp;
  struct Child {
    pid_t pid = -1;
    std::string out;
    std::string error;
  };
  std::vector<Child> children(splits.size());

  for (std::size_t i = 0; i < splits.size(); ++i) {
    Child& child = children[i];
    child.out = tmp.path + "/shard_" + std::to_string(i) + ".partial";
    std::vector<std::string> args = {opts.fold_shard_exe, "fold-shard", child.out,
                                     "--map", opts.mapping};
    if (opts.worker_threads != 0) {
      args.emplace_back("--threads");
      args.emplace_back(std::to_string(opts.worker_threads));
    }
    if (opts.query_fp) {
      args.emplace_back("--fp");
      args.emplace_back(*opts.query_fp);
    }
    if (opts.query_calls) {
      args.emplace_back("--calls");
      args.emplace_back(*opts.query_calls);
    }
    args.insert(args.end(), splits[i].begin(), splits[i].end());

    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    pid_t pid = -1;
    const int rc = posix_spawn(&pid, opts.fold_shard_exe.c_str(), nullptr, nullptr, argv.data(),
                               environ);
    if (rc != 0) {
      child.error = "shard " + std::to_string(i) + ": cannot spawn " + opts.fold_shard_exe +
                    ": " + std::strerror(rc);
    } else {
      child.pid = pid;
    }
  }

  // Await every child before throwing, so no shard is left running
  // against a deleted temp dir.
  for (std::size_t i = 0; i < children.size(); ++i) {
    Child& child = children[i];
    if (child.pid < 0) continue;
    int status = 0;
    if (waitpid(child.pid, &status, 0) < 0) {
      child.error = "shard " + std::to_string(i) + ": waitpid failed: " + std::strerror(errno);
    } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      child.error = "shard " + std::to_string(i) + ": fold-shard subprocess failed (" +
                    opts.fold_shard_exe + ")";
    }
  }
  for (const Child& child : children) {
    if (!child.error.empty()) throw IoError(child.error);
  }

  std::vector<std::string> blobs;
  blobs.reserve(children.size());
  for (const Child& child : children) blobs.push_back(read_file_bytes(child.out));
  return blobs;
}

}  // namespace

std::string fold_shard(const std::vector<std::string>& paths, const ShardOptions& opts) {
  const model::Mapping f = model::mapping_by_name(opts.mapping);
  ThreadPool pool(opts.worker_threads);

  DfgSink graph_sink(f);
  CaseStatsSink stats_sink;
  ActivityLogSink activity_sink(f);
  VariantsSink variants_sink(f);
  IoStatsSink io_sink(f);
  EdgeStatsSink edge_sink(f);
  std::optional<QuerySink> query_sink;
  std::vector<CaseSink*> sinks = {&graph_sink, &stats_sink,
                                  &activity_sink, &variants_sink,
                                  &io_sink, &edge_sink};
  if (opts.query_fp || opts.query_calls) {
    model::Query query;
    if (opts.query_fp) query = query.fp_contains(*opts.query_fp);
    if (opts.query_calls) {
      std::vector<std::string> families;
      for (const auto part : split(*opts.query_calls, ',')) families.emplace_back(part);
      query = query.calls(std::move(families));
    }
    query_sink.emplace(std::move(query));
    sinks.push_back(&*query_sink);
  }

  const model::EventLog log =
      run(paths, pool, std::span<CaseSink* const>(sinks), opts.stream);

  ShardPartial p;
  p.case_count = log.case_count();
  p.total_events = log.total_events();
  p.warnings = log.warnings();
  p.graph = graph_sink.take_graph();
  p.case_summaries = stats_sink.take_summaries();
  p.activity_log = activity_sink.take_log();
  p.variants = variants_sink.take_variants();
  p.io = io_sink.take_partial();
  p.edges = edge_sink.take_partial();
  if (query_sink) p.filtered = query_sink->take_log();
  return encode_shard_partial(p);
}

ShardedAnalytics finalize_shards(std::vector<ShardPartial> parts) {
  ShardPartial total;
  for (ShardPartial& p : parts) total.merge(std::move(p));

  ShardedAnalytics out;
  out.case_count = total.case_count;
  out.total_events = total.total_events;
  out.warnings = std::move(total.warnings);
  out.graph = std::move(total.graph);
  out.case_summaries = std::move(total.case_summaries);
  out.activity_log = std::move(total.activity_log);
  out.variants = std::move(total.variants);
  out.io_stats = total.io.finalize();
  out.edge_stats = total.edges.finalize();
  out.io_partial = std::move(total.io);
  out.filtered = std::move(total.filtered);
  return out;
}

ShardedAnalytics run_sharded(const std::vector<std::string>& paths, const ShardOptions& opts) {
  if (opts.shards == 0) throw LogicError("run_sharded: shards must be >= 1");
  // Same pre-I/O filename validation (and first-offender-in-input-order
  // error) as pipeline::run, BEFORE any subprocess spawns.
  for (const std::string& path : paths) {
    if (!strace::parse_trace_filename(path)) {
      throw ParseError("trace file name does not follow cid_host_rid.st: " + path);
    }
  }

  std::vector<std::vector<std::string>> splits;
  const std::size_t n = paths.size();
  for (std::size_t i = 0; i < opts.shards; ++i) {
    const std::size_t lo = i * n / opts.shards;
    const std::size_t hi = (i + 1) * n / opts.shards;
    if (lo < hi) splits.emplace_back(paths.begin() + lo, paths.begin() + hi);
  }

  std::vector<std::string> blobs;
  if (opts.fold_shard_exe.empty()) {
    blobs.reserve(splits.size());
    for (const std::vector<std::string>& s : splits) blobs.push_back(fold_shard(s, opts));
  } else {
    blobs = fold_shards_spawned(splits, opts);
  }

  std::vector<ShardPartial> parts;
  parts.reserve(blobs.size());
  for (const std::string& blob : blobs) parts.push_back(decode_shard_partial(blob));
  return finalize_shards(std::move(parts));
}

}  // namespace st::pipeline
