#include "pipeline/shard.hpp"

#include <dirent.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <thread>
#include <utility>

#include "model/mapping.hpp"
#include "model/query.hpp"
#include "parallel/thread_pool.hpp"
#include "strace/filename.hpp"
#include "support/errors.hpp"
#include "support/faultpoint.hpp"
#include "support/strings.hpp"

extern char** environ;

namespace st::pipeline {

namespace {

[[nodiscard]] std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot open shard partial: " + path + ": " + std::strerror(errno));
  }
  std::ostringstream bytes;
  bytes << in.rdbuf();
  if (in.bad()) {
    throw IoError("cannot read shard partial: " + path + ": " + std::strerror(errno));
  }
  std::string out = std::move(bytes).str();
  FAULT_POINT_DATA("shard.blob_read", out);
  return out;
}

/// mkdtemp-backed scratch directory for the shard blobs, removed on
/// scope exit (including the error paths).
struct TempDir {
  std::string path;

  TempDir() {
    std::string templ =
        (std::filesystem::temp_directory_path() / "st_shard_XXXXXX").string();
    if (mkdtemp(templ.data()) == nullptr) {
      throw IoError("cannot create shard temp dir: " + std::string(std::strerror(errno)));
    }
    path = std::move(templ);
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// EINTR-retried waitpid (a debugger or profiler signal must not turn
/// into a phantom shard failure).
[[nodiscard]] pid_t waitpid_retry(pid_t pid, int* status, int flags) {
  while (true) {
    const pid_t r = ::waitpid(pid, status, flags);
    if (r >= 0 || errno != EINTR) return r;
  }
}

/// Human-readable wait(2) status: the WIFSIGNALED/WTERMSIG/exit-status
/// detail a coordinator needs to tell a crash from a nonzero exit.
[[nodiscard]] std::string exit_detail(int status) {
  if (WIFEXITED(status)) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = ::strsignal(sig);
    return "killed by signal " + std::to_string(sig) +
           (name != nullptr ? " (" + std::string(name) + ")" : std::string());
  }
  return "ended with wait status " + std::to_string(status);
}

/// Queues a close action for every inherited fd above stdio, so
/// long-lived children can't pin the coordinator's mmaps, pipes or
/// temp files. Best effort: without /proc the child just inherits, as
/// before. The list is snapshotted under no lock — a racing close would
/// make an addclose action fail the spawn, which the retry/fallback
/// path absorbs like any other transient spawn failure.
void add_close_inherited_fds(posix_spawn_file_actions_t& actions) {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return;
  const int self = ::dirfd(dir);
  std::vector<int> fds;
  while (dirent* entry = ::readdir(dir)) {
    char* end = nullptr;
    const long fd = std::strtol(entry->d_name, &end, 10);
    if (end == entry->d_name || *end != '\0') continue;
    if (fd <= 2 || fd == self) continue;
    fds.push_back(static_cast<int>(fd));
  }
  ::closedir(dir);
  for (const int fd : fds) ::posix_spawn_file_actions_addclose(&actions, fd);
}

struct SpawnedResult {
  std::vector<ShardPartial> parts;  ///< shard order
  ShardRunReport report;
};

/// The supervising coordinator (ISSUE 8). Spawns one fold-shard
/// subprocess per split and polls them: a clean exit's blob is read and
/// decoded (missing, unreadable or CRC-rejected blobs are RETRYABLE
/// failures, same as a crash or a deadline kill); a failed attempt
/// respawns with backoff, up to opts.max_attempts, with ST_FAULTS
/// scrubbed from the retry environment; an exhausted shard falls back
/// to an in-process fold. Only a shard whose fallback also failed (or
/// was disabled) is fatal — reported lowest shard index first.
class Supervisor {
 public:
  Supervisor(const std::vector<std::vector<std::string>>& splits, const ShardOptions& opts)
      : splits_(splits), opts_(opts), shards_(splits.size()) {
    result_.report.shards.resize(splits.size());
    for (std::size_t i = 0; i < splits.size(); ++i) {
      shards_[i].out_path = tmp_.path + "/shard_" + std::to_string(i) + ".partial";
    }
  }

  [[nodiscard]] SpawnedResult run() {
    for (std::size_t i = 0; i < shards_.size(); ++i) start_attempt(i);
    poll_until_settled();

    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (!shards_[i].fatal.empty()) throw IoError(shards_[i].fatal);
    }
    result_.parts.reserve(shards_.size());
    for (ShardState& s : shards_) result_.parts.push_back(std::move(*s.part));
    return std::move(result_);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct ShardState {
    std::string out_path;
    pid_t pid = -1;
    std::size_t attempts = 0;
    Clock::time_point deadline{};
    bool timed_out = false;  ///< current attempt hit its deadline
    std::optional<ShardPartial> part;
    std::string fatal;

    [[nodiscard]] bool settled() const { return part.has_value() || !fatal.empty(); }
  };

  void start_attempt(std::size_t i) {
    ShardState& s = shards_[i];
    ++s.attempts;
    ++result_.report.shards[i].attempts;
    s.timed_out = false;
    // A killed attempt may have left a stale/partial blob behind.
    std::error_code ec;
    std::filesystem::remove(s.out_path, ec);

    std::vector<std::string> args = {opts_.fold_shard_exe, "fold-shard", s.out_path,
                                     "--map", opts_.mapping};
    if (opts_.worker_threads != 0) {
      args.emplace_back("--threads");
      args.emplace_back(std::to_string(opts_.worker_threads));
    }
    if (opts_.query_fp) {
      args.emplace_back("--fp");
      args.emplace_back(*opts_.query_fp);
    }
    if (opts_.query_calls) {
      args.emplace_back("--calls");
      args.emplace_back(*opts_.query_calls);
    }
    if (opts_.stream.keep_going) args.emplace_back("--keep-going");
    args.emplace_back("--shard-index");
    args.emplace_back(std::to_string(i));
    args.insert(args.end(), splits_[i].begin(), splits_[i].end());

    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    try {
      FAULT_POINT("shard.spawn");
      posix_spawn_file_actions_t actions;
      ::posix_spawn_file_actions_init(&actions);
      add_close_inherited_fds(actions);
      pid_t pid = -1;
      char** env =
          s.attempts == 1 || opts_.keep_faults_on_retry ? environ : retry_environment();
      const int rc = ::posix_spawn(&pid, opts_.fold_shard_exe.c_str(), &actions, nullptr,
                                   argv.data(), env);
      ::posix_spawn_file_actions_destroy(&actions);
      if (rc != 0) {
        throw IoError("cannot spawn " + opts_.fold_shard_exe + ": " + std::strerror(rc));
      }
      s.pid = pid;
      if (opts_.shard_timeout_ms != 0) {
        s.deadline = Clock::now() + std::chrono::milliseconds(opts_.shard_timeout_ms);
      }
    } catch (const Error& e) {
      s.pid = -1;
      attempt_failed(i, e.what());
    }
  }

  void attempt_failed(std::size_t i, std::string detail) {
    ShardState& s = shards_[i];
    s.pid = -1;
    auto& rep = result_.report.shards[i];
    rep.failures.push_back("attempt " + std::to_string(s.attempts) + ": " +
                           std::move(detail));
    if (s.attempts < opts_.max_attempts) {
      if (opts_.retry_backoff_ms != 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(static_cast<std::uint64_t>(opts_.retry_backoff_ms) *
                                      s.attempts));
      }
      start_attempt(i);  // bounded mutual recursion: depth <= max_attempts
      return;
    }
    if (opts_.fallback_in_process) {
      try {
        // The subprocess was an optimization; the bytes are still
        // reachable right here. Still through the codec, so the two
        // paths cannot drift.
        s.part = decode_shard_partial(fold_shard(splits_[i], opts_));
        rep.fell_back = true;
        return;
      } catch (const Error& e) {
        s.fatal = "shard " + std::to_string(i) + ": in-process fallback failed: " + e.what();
        return;
      }
    }
    s.fatal = "shard " + std::to_string(i) + ": fold-shard failed after " +
              std::to_string(s.attempts) + " attempt(s): " + rep.failures.back();
  }

  void poll_until_settled() {
    while (true) {
      bool progressed = false;
      bool pending = false;
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        ShardState& s = shards_[i];
        if (s.settled() || s.pid < 0) continue;
        int status = 0;
        const pid_t r = waitpid_retry(s.pid, &status, WNOHANG);
        if (r == 0) {
          pending = true;
          if (opts_.shard_timeout_ms != 0 && !s.timed_out && Clock::now() >= s.deadline) {
            ::kill(s.pid, SIGKILL);  // reaped (as signaled) on a later poll
            s.timed_out = true;
          }
          continue;
        }
        progressed = true;
        if (r < 0) {
          attempt_failed(i, std::string("waitpid failed: ") + std::strerror(errno));
        } else if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          try {
            s.part = decode_shard_partial(read_file_bytes(s.out_path));
          } catch (const Error& e) {
            attempt_failed(i, std::string("shard partial rejected: ") + e.what());
          }
        } else {
          std::string detail = exit_detail(status);
          if (s.timed_out) {
            detail += " after the " + std::to_string(opts_.shard_timeout_ms) +
                      "ms deadline expired";
          }
          attempt_failed(i, std::move(detail));
        }
        pending = pending || (!s.settled() && s.pid >= 0);
      }
      if (!pending) return;
      if (!progressed) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  /// The retry environment: the coordinator's, minus ST_FAULTS. Every
  /// child parses ST_FAULTS afresh at startup, so an env-injected
  /// "nth=1" fault would otherwise re-fire in EVERY respawn — scrubbing
  /// is what makes retries heal injected faults (the supervised
  /// analogue of a transient failure not recurring).
  [[nodiscard]] char** retry_environment() {
    if (retry_env_.empty()) {
      for (char** e = environ; *e != nullptr; ++e) {
        if (std::strncmp(*e, "ST_FAULTS=", 10) == 0) continue;
        retry_store_.emplace_back(*e);
      }
      retry_env_.reserve(retry_store_.size() + 1);
      for (std::string& v : retry_store_) retry_env_.push_back(v.data());
      retry_env_.push_back(nullptr);
    }
    return retry_env_.data();
  }

  const std::vector<std::vector<std::string>>& splits_;
  const ShardOptions& opts_;
  const TempDir tmp_;
  std::vector<ShardState> shards_;
  SpawnedResult result_;
  std::vector<std::string> retry_store_;
  std::vector<char*> retry_env_;
};

}  // namespace

std::size_t ShardRunReport::total_retries() const {
  std::size_t retries = 0;
  for (const Shard& s : shards) retries += s.attempts > 1 ? s.attempts - 1 : 0;
  return retries;
}

std::size_t ShardRunReport::total_fallbacks() const {
  return static_cast<std::size_t>(
      std::count_if(shards.begin(), shards.end(), [](const Shard& s) { return s.fell_back; }));
}

std::vector<std::string> ShardRunReport::to_lines() const {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const Shard& s = shards[i];
    if (s.attempts <= 1 && !s.fell_back && s.failures.empty()) continue;
    std::string line =
        "shard " + std::to_string(i) + ": " + std::to_string(s.attempts) + " attempt(s)";
    if (s.fell_back) line += ", recovered by in-process fallback";
    for (const std::string& failure : s.failures) {
      line += "; ";
      line += failure;
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

std::string fold_shard(const std::vector<std::string>& paths, const ShardOptions& opts) {
  const model::Mapping f = model::mapping_by_name(opts.mapping);
  ThreadPool pool(opts.worker_threads);

  DfgSink graph_sink(f);
  CaseStatsSink stats_sink;
  ActivityLogSink activity_sink(f);
  VariantsSink variants_sink(f);
  IoStatsSink io_sink(f);
  EdgeStatsSink edge_sink(f);
  std::optional<QuerySink> query_sink;
  std::vector<CaseSink*> sinks = {&graph_sink, &stats_sink,
                                  &activity_sink, &variants_sink,
                                  &io_sink, &edge_sink};
  if (opts.query_fp || opts.query_calls) {
    model::Query query;
    if (opts.query_fp) query = query.fp_contains(*opts.query_fp);
    if (opts.query_calls) {
      std::vector<std::string> families;
      for (const auto part : split(*opts.query_calls, ',')) families.emplace_back(part);
      query = query.calls(std::move(families));
    }
    query_sink.emplace(std::move(query));
    sinks.push_back(&*query_sink);
  }

  DataHealth health;
  const model::EventLog log =
      run(paths, pool, std::span<CaseSink* const>(sinks), opts.stream, &health);

  ShardPartial p;
  p.case_count = log.case_count();
  p.total_events = log.total_events();
  p.warnings = log.warnings();
  p.health = std::move(health);  // only the counters travel in the blob
  p.graph = graph_sink.take_graph();
  p.case_summaries = stats_sink.take_summaries();
  p.activity_log = activity_sink.take_log();
  p.variants = variants_sink.take_variants();
  p.io = io_sink.take_partial();
  p.edges = edge_sink.take_partial();
  if (query_sink) p.filtered = query_sink->take_log();
  return encode_shard_partial(p);
}

ShardedAnalytics finalize_shards(std::vector<ShardPartial> parts) {
  ShardPartial total;
  for (ShardPartial& p : parts) total.merge(std::move(p));

  ShardedAnalytics out;
  out.case_count = total.case_count;
  out.total_events = total.total_events;
  out.warnings = std::move(total.warnings);
  out.graph = std::move(total.graph);
  out.case_summaries = std::move(total.case_summaries);
  out.activity_log = std::move(total.activity_log);
  out.variants = std::move(total.variants);
  out.io_stats = total.io.finalize();
  out.edge_stats = total.edges.finalize();
  out.io_partial = std::move(total.io);
  out.filtered = std::move(total.filtered);
  // Counters summed shard by shard; the class tally is recomputed from
  // the merged warning list so it matches the streamed run exactly.
  out.health = std::move(total.health);
  out.health.warnings_by_class.clear();
  out.health.classify(out.warnings);
  return out;
}

ShardedAnalytics run_sharded(const std::vector<std::string>& paths, const ShardOptions& opts) {
  if (opts.shards == 0) throw LogicError("run_sharded: shards must be >= 1");
  if (opts.max_attempts == 0) throw LogicError("run_sharded: max_attempts must be >= 1");
  // Same pre-I/O filename validation (and first-offender-in-input-order
  // error) as pipeline::run, BEFORE any subprocess spawns. Under
  // keep_going the offenders stay in their split — each shard's run
  // quarantines them with the exact warning the streamed run emits.
  if (!opts.stream.keep_going) {
    for (const std::string& path : paths) {
      if (!strace::parse_trace_filename(path)) {
        throw ParseError("trace file name does not follow cid_host_rid.st: " + path);
      }
    }
  }

  std::vector<std::vector<std::string>> splits;
  const std::size_t n = paths.size();
  for (std::size_t i = 0; i < opts.shards; ++i) {
    const std::size_t lo = i * n / opts.shards;
    const std::size_t hi = (i + 1) * n / opts.shards;
    if (lo < hi) splits.emplace_back(paths.begin() + lo, paths.begin() + hi);
  }

  std::vector<ShardPartial> parts;
  ShardRunReport report;
  if (opts.fold_shard_exe.empty()) {
    parts.reserve(splits.size());
    for (const std::vector<std::string>& s : splits) {
      parts.push_back(decode_shard_partial(fold_shard(s, opts)));
    }
  } else {
    SpawnedResult spawned = Supervisor(splits, opts).run();
    parts = std::move(spawned.parts);
    report = std::move(spawned.report);
  }

  ShardedAnalytics out = finalize_shards(std::move(parts));
  out.shard_report = std::move(report);
  return out;
}

}  // namespace st::pipeline
