// CaseSink: the composable consumer side of the streaming pipeline —
// the abstraction that turns the PR 4 trace -> EventLog -> DFG chain
// into the repo's analytics substrate. One streamed pass over the
// trace bytes can now feed ANY set of analytics, instead of the DFG
// alone: the graph build, per-case summaries, trace variants, a full
// activity log and query pre-filtering all ride the same conversion
// tasks on the same ThreadPool, where previously each of them was a
// separate barrier-delimited walk over a fully materialized EventLog.
//
// A sink is monoid-shaped, mirroring the Dfg merge the DFG build has
// always used (refs [24][25] of the paper):
//
//   make_partial()      a fresh accumulator, created per conversion
//                       task on the pool thread running it;
//   fold(partial, ctx)  folds one completed Case into that partial,
//                       right where trace_to_dfg used to fold its
//                       per-task Dfg — on the pool thread, overlapped
//                       with parsing of later files. `const`: sinks
//                       keep all mutable state in the partial, so
//                       concurrent folds into distinct partials are
//                       safe by construction;
//   merge(partial)      input-order fold of the partials into the
//                       sink's output, at assembly on the calling
//                       thread — the same place (and order) the
//                       pipeline assembles cases and warnings.
//
// Determinism contract (same as the PR 4 pipeline, asserted by
// tests/test_pipeline_sinks.cpp): every sink's output is byte-identical
// to its staged counterpart at any worker count and any queue
// capacity, merge() runs strictly in input order, errors propagate
// with lowest-input-index-wins (a sink fold that throws competes with
// parse errors on input index), and NO merge() runs on a failing run —
// a sink is either fully folded or still empty, never half-merged.
// Lifetime: the per-task arena and TraceBuffer of a case reach fold()
// through the context, so sinks whose output escapes the run
// (QuerySink's filtered log) can adopt them; the run adopts them into
// its primary EventLog before anything escapes either way.
//
// Usage — one pass, many analytics:
//
//   st::ThreadPool pool(8);
//   st::pipeline::DfgSink graph(f);
//   st::pipeline::CaseStatsSink stats;
//   st::pipeline::VariantsSink variants(f);
//   st::model::EventLog log =
//       st::pipeline::run(paths, pool, {&graph, &stats, &variants});
//   use(graph.take_graph(), stats.take_summaries(), variants.take_variants());
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dfg/dfg.hpp"
#include "dfg/edge_stats.hpp"
#include "dfg/stats.hpp"
#include "model/activity_log.hpp"
#include "model/case_stats.hpp"
#include "model/event_log.hpp"
#include "model/mapping.hpp"
#include "model/query.hpp"
#include "strace/reader.hpp"
#include "support/run_policy.hpp"

namespace st {
class ThreadPool;
}  // namespace st

namespace st::pipeline {

/// Error policy lives in the inherited RunPolicy (support/
/// run_policy.hpp). keep_going == false (default): fail fast — the
/// first data problem (unopenable file, bad file name, parse/convert
/// failure) aborts the run with a typed error and no sink sees a
/// merge. true: data-shaped failures (IoError/ParseError) quarantine
/// the offending FILE with a structured warning ("<path>: skipped:
/// ..." before conversion, "<path>: case quarantined: ..." after) and
/// the run completes over the surviving inputs; LogicError and
/// foreign exceptions still abort either way.
struct StreamOptions : strace::ParallelReadOptions, RunPolicy {
  /// Capacity of the completion queue between the parse and convert
  /// stages; 0 = 2x the pool size. Smaller values bound memory on huge
  /// batches (parse stalls until conversion catches up — capacity 1 is
  /// the maximal-backpressure degeneration and still byte-identical),
  /// larger values decouple the stages further.
  std::size_t queue_capacity = 0;
};

/// What a run ingested, dropped and complained about — the report's
/// "Data health" section. Counters travel through shard partials and
/// sum; warnings_by_class is recomputed from the (deterministic)
/// warning list, so sharded and streamed runs agree byte for byte.
struct DataHealth {
  std::uint64_t files_requested = 0;
  std::uint64_t files_ingested = 0;
  std::uint64_t files_skipped = 0;      ///< unopenable/unparseable, keep_going only
  std::uint64_t cases_quarantined = 0;  ///< converted/folded cases dropped, keep_going only
  std::map<std::string, std::uint64_t> warnings_by_class;

  /// Tallies warnings_by_class over a warning list (additive).
  void classify(std::span<const std::string> warnings);
  /// Sums the counters only — classify() the merged warning list
  /// separately so the classes match the streamed run exactly.
  void merge_counters(const DataHealth& other);

  bool operator==(const DataHealth&) const = default;
};

/// Stable warning taxonomy for DataHealth::warnings_by_class.
[[nodiscard]] std::string_view classify_warning(std::string_view warning);

/// One sink's per-conversion-task accumulator. Sinks define their own
/// derived type and downcast in fold()/merge().
class SinkPartial {
 public:
  virtual ~SinkPartial() = default;
};

/// What fold() sees of one converted case, beyond the case itself: the
/// owners of its string storage. `arena` holds the case's interned
/// cid/host, `buffer` the parsed trace bytes its call/fp views point
/// into (null for cases that did not come from a parsed buffer). Copy
/// the shared_ptrs into the partial if the sink's output outlives the
/// run with views intact.
struct CaseContext {
  const model::Case& c;
  const std::shared_ptr<strace::StringArena>& arena;
  const std::shared_ptr<strace::TraceBuffer>& buffer;
};

class CaseSink {
 public:
  virtual ~CaseSink() = default;

  [[nodiscard]] virtual std::unique_ptr<SinkPartial> make_partial() const = 0;

  /// Folds one case into `p`. Runs on a pool thread; must touch no
  /// sink state outside `p`.
  virtual void fold(SinkPartial& p, const CaseContext& ctx) const = 0;

  /// Folds a task's partial into the sink's output. Called on the
  /// thread running pipeline::run, strictly in input order, only on
  /// successful runs.
  virtual void merge(std::unique_ptr<SinkPartial> p) = 0;
};

/// Drives one streamed parse -> convert pass over `paths` and folds
/// every completed Case into every sink, all on `pool` (the PR 4
/// overlap: conversion and sink folds of early files run while later
/// files still parse). Returns the assembled EventLog — byte-identical
/// to the staged per-file build (case, event and warning order), with
/// per-task arenas and TraceBuffers adopted before it escapes. File
/// names must follow cid_host_rid.st (ParseError for the first
/// offender, checked before any I/O); on any failure every task is
/// awaited, the lowest-input-index error is rethrown and no sink sees
/// a merge. Under opts.keep_going data failures quarantine their file
/// instead (see StreamOptions). `health`, when non-null, receives the
/// run's DataHealth either way. `opts.pool` is ignored — `pool` is
/// used.
[[nodiscard]] model::EventLog run(const std::vector<std::string>& paths, ThreadPool& pool,
                                  std::span<CaseSink* const> sinks,
                                  const StreamOptions& opts = {}, DataHealth* health = nullptr);

/// Brace-list convenience: run(paths, pool, {&graph, &stats}).
[[nodiscard]] model::EventLog run(const std::vector<std::string>& paths, ThreadPool& pool,
                                  std::initializer_list<CaseSink*> sinks,
                                  const StreamOptions& opts = {}, DataHealth* health = nullptr);

// ---- the analytics, re-expressed as sinks ------------------------------

/// Per-case DFG construction (dfg::add_case_trace folded through the
/// Dfg monoid). trace_to_dfg is a thin wrapper over run() with this
/// sink; the result equals dfg::build_parallel / build_serial on the
/// returned log. `f` must outlive the run.
class DfgSink final : public CaseSink {
 public:
  explicit DfgSink(const model::Mapping& f) : f_(&f) {}

  [[nodiscard]] std::unique_ptr<SinkPartial> make_partial() const override;
  void fold(SinkPartial& p, const CaseContext& ctx) const override;
  void merge(std::unique_ptr<SinkPartial> p) override;

  [[nodiscard]] const dfg::Dfg& graph() const { return graph_; }
  [[nodiscard]] dfg::Dfg take_graph() { return std::move(graph_); }

 private:
  const model::Mapping* f_;
  dfg::Dfg graph_;
};

/// Per-case summaries (model/case_stats.hpp) in case order —
/// byte-identical to summarize_cases on the returned log.
class CaseStatsSink final : public CaseSink {
 public:
  [[nodiscard]] std::unique_ptr<SinkPartial> make_partial() const override;
  void fold(SinkPartial& p, const CaseContext& ctx) const override;
  void merge(std::unique_ptr<SinkPartial> p) override;

  [[nodiscard]] const std::vector<model::CaseSummary>& summaries() const {
    return acc_.summaries;
  }
  [[nodiscard]] std::vector<model::CaseSummary> take_summaries() {
    return std::move(acc_.summaries);
  }

 private:
  model::CaseSummaries acc_;
};

/// Full activity log L_f(C) — identical to ActivityLog::build on the
/// returned log. `f` must outlive the run.
class ActivityLogSink final : public CaseSink {
 public:
  explicit ActivityLogSink(const model::Mapping& f) : f_(&f) {}

  [[nodiscard]] std::unique_ptr<SinkPartial> make_partial() const override;
  void fold(SinkPartial& p, const CaseContext& ctx) const override;
  void merge(std::unique_ptr<SinkPartial> p) override;

  [[nodiscard]] const model::ActivityLog& log() const { return log_; }
  [[nodiscard]] model::ActivityLog take_log() { return std::move(log_); }

 private:
  const model::Mapping* f_;
  model::ActivityLog log_;
};

/// Just the variant multiset — byte-identical to
/// ActivityLog::build(log, f).variants(), without carrying per-case
/// traces when only the multiplicities matter. `f` must outlive the run.
class VariantsSink final : public CaseSink {
 public:
  explicit VariantsSink(const model::Mapping& f) : f_(&f) {}

  [[nodiscard]] std::unique_ptr<SinkPartial> make_partial() const override;
  void fold(SinkPartial& p, const CaseContext& ctx) const override;
  void merge(std::unique_ptr<SinkPartial> p) override;

  [[nodiscard]] const model::VariantCounts& variants() const { return variants_; }
  [[nodiscard]] model::VariantCounts take_variants() { return std::move(variants_); }

 private:
  const model::Mapping* f_;
  model::VariantCounts variants_;
};

/// Activity statistics (Load / bytes / DR / max-concurrency / ranks)
/// as a sink: fold() walks one case into an IoStatistics::Partial,
/// merge() CONCATENATES partials in input order (no FP arithmetic, so
/// worker count cannot change bits), and finalize() runs the
/// fixed-shape pairwise double-sum tree — bit-identical to
/// IoStatistics::compute on the returned log, asserted with exact
/// double equality by test_stats_sinks. `f` must outlive the run.
class IoStatsSink final : public CaseSink {
 public:
  explicit IoStatsSink(const model::Mapping& f) : f_(&f) {}

  [[nodiscard]] std::unique_ptr<SinkPartial> make_partial() const override;
  void fold(SinkPartial& p, const CaseContext& ctx) const override;
  void merge(std::unique_ptr<SinkPartial> p) override;

  /// The merged (un-finalized) partial — what a shard worker encodes,
  /// and what timeline() renders from.
  [[nodiscard]] const dfg::IoStatistics::Partial& partial() const { return partial_; }
  [[nodiscard]] dfg::IoStatistics::Partial take_partial() { return std::move(partial_); }

  /// Runs the deterministic summation tree over the folded cases.
  [[nodiscard]] dfg::IoStatistics finalize() const { return partial_.finalize(); }

 private:
  const model::Mapping* f_;
  dfg::IoStatistics::Partial partial_;
};

/// Directly-follows gap statistics as a sink — all-integer partials,
/// bit-identical to EdgeStatistics::compute on the returned log at any
/// worker count. `f` must outlive the run.
class EdgeStatsSink final : public CaseSink {
 public:
  explicit EdgeStatsSink(const model::Mapping& f) : f_(&f) {}

  [[nodiscard]] std::unique_ptr<SinkPartial> make_partial() const override;
  void fold(SinkPartial& p, const CaseContext& ctx) const override;
  void merge(std::unique_ptr<SinkPartial> p) override;

  [[nodiscard]] const dfg::EdgeStatistics::Partial& partial() const { return partial_; }
  [[nodiscard]] dfg::EdgeStatistics::Partial take_partial() { return std::move(partial_); }
  [[nodiscard]] dfg::EdgeStatistics finalize() const { return partial_.finalize(); }

 private:
  const model::Mapping* f_;
  dfg::EdgeStatistics::Partial partial_;
};

/// Streaming pre-filter: applies a Query (its precompiled flat
/// call-family set does a binary search per event) to every case as it
/// converts, producing a filtered EventLog byte-identical to
/// Query::apply on the returned log — cases the query drops never
/// reach assembly. The filtered log adopts each kept case's arena and
/// TraceBuffer, so it stands alone (correct owner adoption); like
/// every derived log it carries no ingestion warnings.
class QuerySink final : public CaseSink {
 public:
  explicit QuerySink(model::Query q) : query_(std::move(q)) {}

  [[nodiscard]] std::unique_ptr<SinkPartial> make_partial() const override;
  void fold(SinkPartial& p, const CaseContext& ctx) const override;
  void merge(std::unique_ptr<SinkPartial> p) override;

  [[nodiscard]] const model::Query& query() const { return query_; }
  [[nodiscard]] const model::EventLog& log() const { return log_; }
  [[nodiscard]] model::EventLog take_log() { return std::move(log_); }

 private:
  model::Query query_;
  model::EventLog log_;
};

}  // namespace st::pipeline
