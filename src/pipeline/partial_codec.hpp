// Serialized CaseSink partials — the wire format of the shard-parallel
// pipeline (ISSUE 7 / ROADMAP item 3b).
//
// Every analytic the pipeline folds is a monoid; this codec makes the
// monoid's elements portable across process (and eventually machine)
// boundaries: an `elog_tool fold-shard` worker streams its file split
// through pipeline::run and encodes ONE blob holding every partial;
// the coordinator decodes the blobs and merges them in input order,
// so the sharded result is bit-identical to the in-process run.
//
// Blob layout (all integers little-endian, elog primitives):
//
//   blob    := magic "STPART1\0" | u32 section_count | section*
//   section := u32 kind | u32 reserved(0) | u64 length
//            | payload[length] | u32 crc32(payload)
//
// The string pool (kind 1) is always the first section; every other
// payload references strings by pool id (LEB128 varints, zigzag for
// signed values, doubles as raw IEEE-754 u64 bit patterns so decoded
// partials are bitwise equal to encoded ones). Integrity follows the
// elog v2 contract: every payload is CRC-protected, decoding is
// bounds-checked, unknown/duplicate/misplaced sections and trailing
// bytes are rejected — ANY truncation or bit flip surfaces as IoError
// (exhaustive single-bit-flip sweep in test_partial_codec), never as
// silently wrong analytics.
//
// Section kinds:
//   1 StringPool   u32 count | u32 reserved(0) | u32 end_offset[count] | blob
//   2 Meta         case_count, total_events, ingestion warnings,
//                  data-health counters (requested/ingested/skipped/
//                  quarantined)
//   3 Dfg          nodes, edges, trace count
//   4 CaseStats    CaseSummary sequence (input order)
//   5 ActivityLog  variants + per-case traces + activity set + counters
//   6 Variants     the variant multiset alone
//   7 QueryLog     the query-filtered EventLog as embedded elog v2 bytes
//   8 IoStats      IoStatistics::Partial (per-case contributions)
//   9 EdgeStats    EdgeStatistics::Partial (integer edge-gap map)
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dfg/dfg.hpp"
#include "dfg/edge_stats.hpp"
#include "dfg/stats.hpp"
#include "model/activity_log.hpp"
#include "model/case_stats.hpp"
#include "model/event_log.hpp"
#include "pipeline/sink.hpp"

namespace st::pipeline {

inline constexpr std::string_view kPartialMagic{"STPART1\0", 8};

enum class PartialSection : std::uint32_t {
  kStringPool = 1,
  kMeta = 2,
  kDfg = 3,
  kCaseStats = 4,
  kActivityLog = 5,
  kVariants = 6,
  kQueryLog = 7,
  kIoStats = 8,
  kEdgeStats = 9,
};

/// Builds one blob: encode_* calls intern strings and add sections in
/// any order; finish() emits the pool first, then the sections in the
/// order they were added.
class PartialWriter {
 public:
  /// Pool id of `s`, interning it on first use.
  [[nodiscard]] std::uint32_t intern(std::string_view s);

  /// Adds a section (one per kind; LogicError on duplicates).
  void add_section(PartialSection kind, std::string payload);

  [[nodiscard]] std::string finish() const;

 private:
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint32_t, SvHash, std::equal_to<>> ids_;
  std::vector<std::pair<PartialSection, std::string>> sections_;
};

/// Opens a blob, validating EVERYTHING eagerly: magic, section
/// structure, per-section CRCs, pool shape, no unknown or duplicate
/// kinds, no trailing bytes. Throws IoError on any defect. The blob
/// bytes must outlive the reader (sections are views).
class PartialReader {
 public:
  explicit PartialReader(std::string_view blob);

  [[nodiscard]] bool has_section(PartialSection kind) const;
  /// Payload of `kind`; IoError when the blob does not carry it.
  [[nodiscard]] std::string_view section(PartialSection kind) const;
  /// Pool lookup; IoError on out-of-range ids (a flipped id byte in a
  /// CRC-colliding payload must still fail loudly).
  [[nodiscard]] std::string_view pool_string(std::uint64_t id) const;

 private:
  std::string_view sections_[10];  ///< indexed by kind; empty view = absent
  bool present_[10] = {};
  std::uint32_t pool_count_ = 0;
  const char* pool_ends_ = nullptr;
  const char* pool_blob_ = nullptr;
};

// ---- per-sink encode/decode pairs --------------------------------------
// Each pair is exact: decode(encode(x)) == x, bit for bit (doubles
// travel as u64 bit patterns). Tested per type in test_partial_codec.

void encode_dfg_partial(PartialWriter& w, const dfg::Dfg& g);
[[nodiscard]] dfg::Dfg decode_dfg_partial(const PartialReader& r);

void encode_case_stats_partial(PartialWriter& w, const std::vector<model::CaseSummary>& s);
[[nodiscard]] std::vector<model::CaseSummary> decode_case_stats_partial(const PartialReader& r);

void encode_activity_log_partial(PartialWriter& w, const model::ActivityLog& log);
[[nodiscard]] model::ActivityLog decode_activity_log_partial(const PartialReader& r);

void encode_variants_partial(PartialWriter& w, const model::VariantCounts& v);
[[nodiscard]] model::VariantCounts decode_variants_partial(const PartialReader& r);

/// The filtered log travels as embedded elog v2 bytes; the decoded log
/// owns its storage (it adopts the in-memory container buffer).
void encode_query_log_partial(PartialWriter& w, const model::EventLog& log);
[[nodiscard]] model::EventLog decode_query_log_partial(const PartialReader& r);

void encode_io_stats_partial(PartialWriter& w, const dfg::IoStatistics::Partial& p);
[[nodiscard]] dfg::IoStatistics::Partial decode_io_stats_partial(const PartialReader& r);

void encode_edge_stats_partial(PartialWriter& w, const dfg::EdgeStatistics::Partial& p);
[[nodiscard]] dfg::EdgeStatistics::Partial decode_edge_stats_partial(const PartialReader& r);

// ---- the shard unit ----------------------------------------------------

/// Everything one shard's pipeline::run pass produced: the partial of
/// every analytic sink plus the run metadata. The unit fold-shard
/// encodes, the coordinator merges.
struct ShardPartial {
  std::uint64_t case_count = 0;
  std::uint64_t total_events = 0;
  std::vector<std::string> warnings;  ///< path-prefixed, input order
  /// Counters only (warnings_by_class is recomputed by the coordinator
  /// from the merged warning list so classes match the streamed run).
  DataHealth health;
  dfg::Dfg graph;
  std::vector<model::CaseSummary> case_summaries;
  model::ActivityLog activity_log;
  model::VariantCounts variants;
  dfg::IoStatistics::Partial io;
  dfg::EdgeStatistics::Partial edges;
  /// Present iff the shard ran a query; the filtered log.
  std::optional<model::EventLog> filtered;

  /// Input-order monoid fold — mirrors, analytic by analytic, exactly
  /// what pipeline::run's per-task merges do, so folding shard
  /// partials in shard order equals one in-process run.
  void merge(ShardPartial&& other);
};

[[nodiscard]] std::string encode_shard_partial(const ShardPartial& p);
[[nodiscard]] ShardPartial decode_shard_partial(std::string_view blob);

}  // namespace st::pipeline
