#include "pipeline/sink.hpp"

#include <cstddef>
#include <exception>
#include <future>
#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "dfg/builder.hpp"
#include "model/from_strace.hpp"
#include "parallel/stage_queue.hpp"
#include "parallel/thread_pool.hpp"
#include "strace/filename.hpp"
#include "support/errors.hpp"
#include "support/faultpoint.hpp"

namespace st::pipeline {

namespace {

/// Output of one file's convert task (stage B): the case, its string
/// owners, and one folded partial per sink.
struct Converted {
  model::Case c;
  std::shared_ptr<strace::StringArena> arena;  ///< the case's interned cid/host
  std::shared_ptr<strace::TraceBuffer> buffer;  ///< the records' storage
  std::vector<std::string> warnings;            ///< raw reader warnings
  std::vector<std::unique_ptr<SinkPartial>> partials;  ///< one per sink, sink order
};

/// One parsed file travelling from stage A to stage B.
struct Ready {
  std::size_t index = 0;
  strace::ReadResult result;
};

constexpr std::size_t kNoError = std::numeric_limits<std::size_t>::max();

/// What happened to one input file, in input-index order.
enum class Disp : unsigned char {
  kOk,           ///< parsed, converted, merged
  kSkipped,      ///< never ingested (bad name, unopenable, unparseable)
  kQuarantined,  ///< parsed, but its case failed to convert or fold
};

/// Rethrows `e` to classify it. Data-shaped failures — IoError and
/// ParseError, which include injected faults — may be quarantined
/// under keep_going; LogicError and foreign exceptions never are.
bool quarantinable(const std::exception_ptr& e, std::string& what) {
  try {
    std::rethrow_exception(e);
  } catch (const LogicError&) {
    return false;
  } catch (const ParseError& err) {
    what = err.what();
    return true;
  } catch (const IoError& err) {
    what = err.what();
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

std::string_view classify_warning(std::string_view warning) {
  // Order matters: a skip/quarantine message embeds the original error
  // text, which may itself look like a line-level parse warning.
  if (warning.find(": skipped: ") != std::string_view::npos) return "file-skipped";
  if (warning.find("quarantined: ") != std::string_view::npos) return "case-quarantined";
  if (warning.find("unfinished call never resumed") != std::string_view::npos) {
    return "unfinished-call";
  }
  if (warning.find(": line ") != std::string_view::npos) return "malformed-line";
  return "other";
}

void DataHealth::classify(std::span<const std::string> warnings) {
  for (const auto& warning : warnings) {
    ++warnings_by_class[std::string(classify_warning(warning))];
  }
}

void DataHealth::merge_counters(const DataHealth& other) {
  files_requested += other.files_requested;
  files_ingested += other.files_ingested;
  files_skipped += other.files_skipped;
  cases_quarantined += other.cases_quarantined;
}

model::EventLog run(const std::vector<std::string>& paths, ThreadPool& pool,
                    std::span<CaseSink* const> sinks, const StreamOptions& opts,
                    DataHealth* health) {
  const std::size_t n = paths.size();
  const bool keep_going = opts.keep_going;

  // Per-input-file disposition, settled as the stages advance; under
  // keep_going a data failure flips a file to kSkipped/kQuarantined
  // with the reason instead of aborting the run.
  std::vector<Disp> disp(n, Disp::kOk);
  std::vector<std::string> reason(n);

  // Validate every file name before any I/O: the error for a bad name
  // is deterministic (first offender in input order) and cheap.
  std::vector<strace::TraceFileId> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto id = strace::parse_trace_filename(paths[i]);
    if (!id) {
      const ParseError err("trace file name does not follow cid_host_rid.st: " + paths[i]);
      if (!keep_going) throw err;
      disp[i] = Disp::kSkipped;
      reason[i] = err.what();
      continue;
    }
    ids[i] = std::move(*id);
  }

  // Open every surviving file in input order (same first-unopenable
  // IoError contract read_trace_files_streamed had). Live indices are
  // dense over the files that actually parse; input order is preserved,
  // so lowest-live-index error ranking equals lowest-input-index.
  std::vector<std::shared_ptr<strace::TraceBuffer>> buffers;
  std::vector<std::size_t> live_to_orig;
  std::vector<std::size_t> orig_to_live(n, kNoError);
  buffers.reserve(n);
  live_to_orig.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (disp[i] != Disp::kOk) continue;
    try {
      auto buffer = strace::TraceBuffer::from_file_mmap(paths[i]);
      orig_to_live[i] = buffers.size();
      live_to_orig.push_back(i);
      buffers.push_back(std::move(buffer));
    } catch (const IoError& e) {
      if (!keep_going) throw;
      disp[i] = Disp::kSkipped;
      reason[i] = e.what();
    }
  }
  const std::size_t live = buffers.size();

  strace::ParallelReadOptions read_opts = opts;
  read_opts.pool = &pool;

  // Stage A -> B hand-off. The queue is shared_ptr-held because the
  // callbacks run on pool threads; the handle's join() below ensures
  // they are all gone before this frame unwinds either way.
  const std::size_t capacity =
      opts.queue_capacity != 0 ? opts.queue_capacity : 2 * pool.size();
  auto queue = std::make_shared<StageQueue<Ready>>(capacity);

  auto handle = strace::read_trace_buffers_streamed(
      std::move(buffers), read_opts,
      [queue](std::size_t i, strace::ReadResult&& r) {
        // A throw here (injected) lands in the parse stage's per-file
        // error slot: the file quarantines or aborts like any parse
        // failure, and its Ready never reaches the dispatcher.
        FAULT_POINT("queue.push");
        // push() blocks while the dispatcher is behind — backpressure
        // on the parse stage. A false return (queue closed early by the
        // unwind guard below) just drops the result of a failing run.
        (void)queue->push(Ready{i, std::move(r)});
      },
      [queue] { queue->close(); });

  // Close the queue on EVERY exit path. If this frame unwinds before
  // the dispatcher loop drains the queue (allocation failure below),
  // pool workers blocked in push() must wake BEFORE ~StreamedParse
  // joins them — close() is what wakes them, and it is idempotent, so
  // the normal path's on-all-done close makes this a no-op.
  struct QueueCloser {
    StageQueue<Ready>* q;
    ~QueueCloser() { q->close(); }
  } queue_closer{queue.get()};

  // Dispatcher: the moment a file's parse finishes, its conversion —
  // and every sink's fold of the resulting case — goes onto the same
  // pool, so parse, convert and analytics overlap. `converted` is
  // allocated HERE, before any conversion is dispatched: no throwing
  // operation may sit between dispatch and the await loop, or the
  // frame could unwind while tasks still point into `ids`/`sinks`.
  std::vector<std::future<Converted>> futures(live);
  std::vector<Converted> converted(live);
  std::exception_ptr dispatch_error;
  while (auto ready = queue->pop()) {
    if (dispatch_error) continue;  // keep draining so stage A can finish
    const std::size_t i = ready->index;
    try {
      futures[i] = pool.submit(
          [sinks, id = &ids[live_to_orig[i]], result = std::move(ready->result)]() mutable {
            FAULT_POINT("pipeline.convert");
            Converted out;
            // Small blocks: this arena holds exactly one case's
            // interned cid/host, and a swarm of small trace files must
            // not pin a 64 KiB block each.
            out.arena = std::make_shared<strace::StringArena>(256);
            out.c = model::case_from_records(*id, result.records, *out.arena);
            out.warnings = std::move(result.warnings);
            out.buffer = std::move(result.buffer);
            out.partials.reserve(sinks.size());
            const CaseContext ctx{out.c, out.arena, out.buffer};
            FAULT_POINT("sink.fold");
            for (CaseSink* sink : sinks) {
              auto partial = sink->make_partial();
              sink->fold(*partial, ctx);
              out.partials.push_back(std::move(partial));
            }
            return out;
          });
    } catch (...) {
      dispatch_error = std::current_exception();
    }
  }

  // Queue closed: stage A has settled every file. Join the parse side,
  // then await EVERY conversion before any exception may propagate —
  // nothing may still reference ids/futures/sinks when this frame
  // unwinds. A sink fold that threw surfaces here through its task's
  // future, competing with parse errors under the same
  // lowest-input-index-wins rule.
  handle.join();
  std::size_t err_index = kNoError;
  std::exception_ptr err;
  const auto note = [&](std::size_t i, std::exception_ptr e) {
    if (i < err_index) {
      err_index = i;
      err = std::move(e);
    }
  };
  for (std::size_t i = 0; i < live; ++i) {
    if (!futures[i].valid()) continue;  // parse failed or dispatch stopped
    try {
      converted[i] = futures[i].get();
    } catch (...) {
      auto e = std::current_exception();
      std::string what;
      if (keep_going && quarantinable(e, what)) {
        disp[live_to_orig[i]] = Disp::kQuarantined;
        reason[live_to_orig[i]] = std::move(what);
      } else {
        note(i, std::move(e));
      }
    }
  }
  // A file either failed to parse or failed to convert, never both, so
  // each input index settles exactly once across the two loops.
  for (const auto& parse_error : handle.errors()) {
    std::string what;
    if (keep_going && quarantinable(parse_error.error, what)) {
      disp[live_to_orig[parse_error.file_index]] = Disp::kSkipped;
      reason[live_to_orig[parse_error.file_index]] = std::move(what);
    } else {
      note(parse_error.file_index, parse_error.error);
    }
  }
  if (!err && dispatch_error) err = dispatch_error;
  if (err) std::rethrow_exception(err);  // before any merge: sinks stay empty

  // The one shot the injection matrix gets at the merge phase: BEFORE
  // the first merge, so a firing fault still leaves every sink empty —
  // never half-merged.
  FAULT_POINT("sink.merge");

  // Assembly, strictly in input order: case order, event order and
  // warning order come out byte-identical to the staged path, and
  // every sink's partials merge in the same order. Arenas and buffers
  // are adopted before the log escapes (lifetime contract). Skipped
  // and quarantined files contribute their structured warning at their
  // input-order slot and nothing else.
  model::EventLog log;
  DataHealth h;
  h.files_requested = n;
  std::string prefixed;  // reused "<path>: <warning>" buffer
  const auto add_warning = [&log](std::string& text) {
    // A malformed region repeating the same defect floods the log
    // with copies of one message; keep the first of each run.
    if (!log.warnings().empty() && log.warnings().back() == text) return;
    log.add_warning(text);
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (disp[i] != Disp::kOk) {
      prefixed.clear();
      prefixed += paths[i];
      prefixed += disp[i] == Disp::kSkipped ? ": skipped: " : ": case quarantined: ";
      prefixed += reason[i];
      add_warning(prefixed);
      ++(disp[i] == Disp::kSkipped ? h.files_skipped : h.cases_quarantined);
      continue;
    }
    Converted& cv = converted[orig_to_live[i]];
    if (cv.arena) log.adopt(std::move(cv.arena));
    log.add_case(std::move(cv.c));
    if (cv.buffer) log.adopt(std::move(cv.buffer));
    for (const auto& warning : cv.warnings) {
      prefixed.clear();
      prefixed.reserve(paths[i].size() + 2 + warning.size());
      prefixed += paths[i];
      prefixed += ": ";
      prefixed += warning;
      add_warning(prefixed);
    }
    for (std::size_t s = 0; s < sinks.size(); ++s) {
      sinks[s]->merge(std::move(cv.partials[s]));
    }
  }
  if (health != nullptr) {
    h.files_ingested = n - h.files_skipped - h.cases_quarantined;
    h.classify(log.warnings());
    *health = std::move(h);
  }
  return log;
}

model::EventLog run(const std::vector<std::string>& paths, ThreadPool& pool,
                    std::initializer_list<CaseSink*> sinks, const StreamOptions& opts,
                    DataHealth* health) {
  return run(paths, pool, std::span<CaseSink* const>(sinks.begin(), sinks.size()), opts,
             health);
}

// ---- DfgSink -----------------------------------------------------------

namespace {
struct DfgPartial final : SinkPartial {
  dfg::Dfg graph;
};
}  // namespace

std::unique_ptr<SinkPartial> DfgSink::make_partial() const {
  return std::make_unique<DfgPartial>();
}

void DfgSink::fold(SinkPartial& p, const CaseContext& ctx) const {
  dfg::add_case_trace(static_cast<DfgPartial&>(p).graph, ctx.c, *f_);
}

void DfgSink::merge(std::unique_ptr<SinkPartial> p) {
  graph_.merge(static_cast<DfgPartial&>(*p).graph);
}

// ---- CaseStatsSink -----------------------------------------------------

namespace {
struct CaseStatsPartial final : SinkPartial {
  model::CaseSummaries acc;
};
}  // namespace

std::unique_ptr<SinkPartial> CaseStatsSink::make_partial() const {
  return std::make_unique<CaseStatsPartial>();
}

void CaseStatsSink::fold(SinkPartial& p, const CaseContext& ctx) const {
  static_cast<CaseStatsPartial&>(p).acc.add(ctx.c);
}

void CaseStatsSink::merge(std::unique_ptr<SinkPartial> p) {
  acc_.merge(std::move(static_cast<CaseStatsPartial&>(*p).acc));
}

// ---- ActivityLogSink ---------------------------------------------------

namespace {
struct ActivityLogPartial final : SinkPartial {
  model::ActivityLog log;
};
}  // namespace

std::unique_ptr<SinkPartial> ActivityLogSink::make_partial() const {
  return std::make_unique<ActivityLogPartial>();
}

void ActivityLogSink::fold(SinkPartial& p, const CaseContext& ctx) const {
  static_cast<ActivityLogPartial&>(p).log.add_case(ctx.c, *f_);
}

void ActivityLogSink::merge(std::unique_ptr<SinkPartial> p) {
  log_.merge(std::move(static_cast<ActivityLogPartial&>(*p).log));
}

// ---- VariantsSink ------------------------------------------------------

namespace {
struct VariantsPartial final : SinkPartial {
  model::VariantCounts counts;
};
}  // namespace

std::unique_ptr<SinkPartial> VariantsSink::make_partial() const {
  return std::make_unique<VariantsPartial>();
}

void VariantsSink::fold(SinkPartial& p, const CaseContext& ctx) const {
  // model::activity_trace is the same definition ActivityLog::add_case
  // folds, so the multiset is byte-identical to
  // ActivityLog::build(log, f).variants().
  ++static_cast<VariantsPartial&>(p).counts[model::activity_trace(ctx.c, *f_)];
}

void VariantsSink::merge(std::unique_ptr<SinkPartial> p) {
  model::merge_variant_counts(variants_, std::move(static_cast<VariantsPartial&>(*p).counts));
}

// ---- IoStatsSink -------------------------------------------------------

namespace {
struct IoStatsPartial final : SinkPartial {
  dfg::IoStatistics::Partial p;
};
}  // namespace

std::unique_ptr<SinkPartial> IoStatsSink::make_partial() const {
  return std::make_unique<IoStatsPartial>();
}

void IoStatsSink::fold(SinkPartial& p, const CaseContext& ctx) const {
  static_cast<IoStatsPartial&>(p).p.add_case(ctx.c, *f_);
}

void IoStatsSink::merge(std::unique_ptr<SinkPartial> p) {
  partial_.merge(std::move(static_cast<IoStatsPartial&>(*p).p));
}

// ---- EdgeStatsSink -----------------------------------------------------

namespace {
struct EdgeStatsPartial final : SinkPartial {
  dfg::EdgeStatistics::Partial p;
};
}  // namespace

std::unique_ptr<SinkPartial> EdgeStatsSink::make_partial() const {
  return std::make_unique<EdgeStatsPartial>();
}

void EdgeStatsSink::fold(SinkPartial& p, const CaseContext& ctx) const {
  static_cast<EdgeStatsPartial&>(p).p.add_case(ctx.c, *f_);
}

void EdgeStatsSink::merge(std::unique_ptr<SinkPartial> p) {
  partial_.merge(std::move(static_cast<EdgeStatsPartial&>(*p).p));
}

// ---- QuerySink ---------------------------------------------------------

namespace {
struct QueryPartial final : SinkPartial {
  std::optional<model::Case> kept;  ///< nullopt: case-level restrictions drop it
  std::shared_ptr<strace::StringArena> arena;
  std::shared_ptr<strace::TraceBuffer> buffer;
};
}  // namespace

std::unique_ptr<SinkPartial> QuerySink::make_partial() const {
  return std::make_unique<QueryPartial>();
}

void QuerySink::fold(SinkPartial& p, const CaseContext& ctx) const {
  auto& partial = static_cast<QueryPartial&>(p);
  partial.kept = query_.apply_case(ctx.c);
  if (partial.kept) {
    // The filtered case's events still view into the source storage;
    // the filtered log must own it independently of the primary log.
    partial.arena = ctx.arena;
    partial.buffer = ctx.buffer;
  }
}

void QuerySink::merge(std::unique_ptr<SinkPartial> p) {
  auto& partial = static_cast<QueryPartial&>(*p);
  if (!partial.kept) return;
  if (partial.arena) log_.adopt(std::move(partial.arena));
  log_.add_case(std::move(*partial.kept));
  if (partial.buffer) log_.adopt(std::move(partial.buffer));
}

}  // namespace st::pipeline
