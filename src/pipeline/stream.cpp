#include "pipeline/stream.hpp"

#include <cstddef>
#include <exception>
#include <future>
#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "dfg/builder.hpp"
#include "model/from_strace.hpp"
#include "parallel/stage_queue.hpp"
#include "parallel/thread_pool.hpp"
#include "strace/filename.hpp"
#include "support/errors.hpp"

namespace st::pipeline {

namespace {

/// Output of one file's convert task (stage B).
struct Converted {
  model::Case c;
  std::shared_ptr<strace::StringArena> arena;  ///< the case's interned cid/host
  std::shared_ptr<strace::TraceBuffer> buffer;  ///< the records' storage
  std::vector<std::string> warnings;            ///< raw reader warnings
  dfg::Dfg partial;                             ///< this case's graph (trace_to_dfg only)
};

/// One parsed file travelling from stage A to stage B.
struct Ready {
  std::size_t index = 0;
  strace::ReadResult result;
};

constexpr std::size_t kNoError = std::numeric_limits<std::size_t>::max();

/// The shared core of event_log_streamed / trace_to_dfg. When `f` is
/// non-null, conversion tasks also fold their case into a partial Dfg
/// and the merged graph lands in *graph_out.
model::EventLog run_stream(const std::vector<std::string>& paths, ThreadPool& pool,
                           const StreamOptions& opts, const model::Mapping* f,
                           dfg::Dfg* graph_out) {
  // Validate every file name before any I/O: the error for a bad name
  // is deterministic (first offender in input order) and cheap.
  std::vector<strace::TraceFileId> ids;
  ids.reserve(paths.size());
  for (const auto& path : paths) {
    auto id = strace::parse_trace_filename(path);
    if (!id) throw ParseError("trace file name does not follow cid_host_rid.st: " + path);
    ids.push_back(std::move(*id));
  }
  const std::size_t n = paths.size();

  strace::ParallelReadOptions read_opts = opts;
  read_opts.pool = &pool;

  // Stage A -> B hand-off. The queue is shared_ptr-held because the
  // callbacks run on pool threads; the handle's join() below ensures
  // they are all gone before this frame unwinds either way.
  const std::size_t capacity =
      opts.queue_capacity != 0 ? opts.queue_capacity : 2 * pool.size();
  auto queue = std::make_shared<StageQueue<Ready>>(capacity);

  auto handle = strace::read_trace_files_streamed(
      paths, read_opts,
      [queue](std::size_t i, strace::ReadResult&& r) {
        // push() blocks while the dispatcher is behind — backpressure
        // on the parse stage. A false return (queue closed early by the
        // unwind guard below) just drops the result of a failing run.
        (void)queue->push(Ready{i, std::move(r)});
      },
      [queue] { queue->close(); });

  // Close the queue on EVERY exit path. If this frame unwinds before
  // the dispatcher loop drains the queue (allocation failure below),
  // pool workers blocked in push() must wake BEFORE ~StreamedParse
  // joins them — close() is what wakes them, and it is idempotent, so
  // the normal path's on-all-done close makes this a no-op.
  struct QueueCloser {
    StageQueue<Ready>* q;
    ~QueueCloser() { q->close(); }
  } queue_closer{queue.get()};

  // Dispatcher: the moment a file's parse finishes, its conversion
  // goes onto the same pool — parse, convert (and DFG build) overlap.
  // `converted` is allocated HERE, before any conversion is dispatched:
  // no throwing operation may sit between dispatch and the await loop,
  // or the frame could unwind while tasks still point into `ids`.
  std::vector<std::future<Converted>> futures(n);
  std::vector<Converted> converted(n);
  std::exception_ptr dispatch_error;
  while (auto ready = queue->pop()) {
    if (dispatch_error) continue;  // keep draining so stage A can finish
    const std::size_t i = ready->index;
    try {
      futures[i] = pool.submit(
          [f, id = &ids[i], result = std::move(ready->result)]() mutable {
            Converted out;
            // Small blocks: this arena holds exactly one case's
            // interned cid/host, and a swarm of small trace files must
            // not pin a 64 KiB block each.
            out.arena = std::make_shared<strace::StringArena>(256);
            out.c = model::case_from_records(*id, result.records, *out.arena);
            out.warnings = std::move(result.warnings);
            out.buffer = std::move(result.buffer);
            if (f) dfg::add_case_trace(out.partial, out.c, *f);
            return out;
          });
    } catch (...) {
      dispatch_error = std::current_exception();
    }
  }

  // Queue closed: stage A has settled every file. Join the parse side,
  // then await EVERY conversion before any exception may propagate —
  // nothing may still reference ids/futures when this frame unwinds.
  handle.join();
  std::size_t err_index = kNoError;
  std::exception_ptr err;
  for (std::size_t i = 0; i < n; ++i) {
    if (!futures[i].valid()) continue;  // parse failed or dispatch stopped
    try {
      converted[i] = futures[i].get();
    } catch (...) {
      if (i < err_index) {
        err_index = i;
        err = std::current_exception();
      }
    }
  }
  if (const auto parse_error = handle.error()) {
    // A file either failed to parse or failed to convert, never both.
    if (parse_error->file_index < err_index) {
      err_index = parse_error->file_index;
      err = parse_error->error;
    }
  }
  if (!err && dispatch_error) err = dispatch_error;
  if (err) std::rethrow_exception(err);

  // Assembly, strictly in input order: case order, event order and
  // warning order come out byte-identical to the staged path. Arenas
  // and buffers are adopted before the log escapes (lifetime contract).
  model::EventLog log;
  dfg::Dfg graph;
  std::string prefixed;  // reused "<path>: <warning>" buffer
  for (std::size_t i = 0; i < n; ++i) {
    Converted& cv = converted[i];
    if (cv.arena) log.adopt(std::move(cv.arena));
    log.add_case(std::move(cv.c));
    if (cv.buffer) log.adopt(std::move(cv.buffer));
    for (const auto& warning : cv.warnings) {
      prefixed.clear();
      prefixed.reserve(paths[i].size() + 2 + warning.size());
      prefixed += paths[i];
      prefixed += ": ";
      prefixed += warning;
      // A malformed region repeating the same defect floods the log
      // with copies of one message; keep the first of each run.
      if (!log.warnings().empty() && log.warnings().back() == prefixed) continue;
      log.add_warning(prefixed);
    }
    if (graph_out) graph.merge(cv.partial);
  }
  if (graph_out) *graph_out = std::move(graph);
  return log;
}

}  // namespace

model::EventLog event_log_streamed(const std::vector<std::string>& paths, ThreadPool& pool,
                                   const StreamOptions& opts) {
  return run_stream(paths, pool, opts, nullptr, nullptr);
}

TraceDfg trace_to_dfg(const std::vector<std::string>& paths, const model::Mapping& f,
                      ThreadPool& pool, const StreamOptions& opts) {
  TraceDfg out;
  out.log = run_stream(paths, pool, opts, &f, &out.graph);
  return out;
}

}  // namespace st::pipeline
