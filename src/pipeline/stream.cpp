#include "pipeline/stream.hpp"

#include <utility>

#include "pipeline/sink.hpp"

namespace st::pipeline {

model::EventLog event_log_streamed(const std::vector<std::string>& paths, ThreadPool& pool,
                                   const StreamOptions& opts) {
  return run(paths, pool, std::span<CaseSink* const>(), opts);
}

TraceDfg trace_to_dfg(const std::vector<std::string>& paths, const model::Mapping& f,
                      ThreadPool& pool, const StreamOptions& opts) {
  DfgSink sink(f);
  TraceDfg out;
  out.log = run(paths, pool, {&sink}, opts);
  out.graph = sink.take_graph();
  return out;
}

}  // namespace st::pipeline
