#include "pipeline/partial_codec.hpp"

#include <bit>
#include <sstream>
#include <utility>

#include "elog/format.hpp"
#include "elog/v2_format.hpp"
#include "elog/v2_store.hpp"
#include "strace/trace_buffer.hpp"
#include "support/crc32.hpp"
#include "support/errors.hpp"
#include "support/faultpoint.hpp"

namespace st::pipeline {

namespace {

using elog::load_u32;
using elog::load_u64;
using elog::put_u32;
using elog::put_u64;
using elog::put_uvarint;
using elog::read_uvarint;
using elog::zigzag_decode;
using elog::zigzag_encode;

[[noreturn]] void fail(const std::string& what) { throw IoError("partial blob: " + what); }

void put_svarint(std::string& out, std::int64_t v) { put_uvarint(out, zigzag_encode(v)); }

void put_double(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

/// Bounds-checked decode cursor over one (already CRC-validated)
/// section payload. Every read throws IoError past the end, element
/// counts are bounded against the bytes left before anything
/// allocates, and sections must be read to exactly their last byte.
class Cursor {
 public:
  explicit Cursor(std::string_view payload)
      : p_(payload.data()), end_(payload.data() + payload.size()) {}

  [[nodiscard]] std::uint64_t uvarint() { return read_uvarint(&p_, end_); }
  [[nodiscard]] std::int64_t svarint() { return zigzag_decode(uvarint()); }

  [[nodiscard]] std::uint64_t u64() {
    if (remaining() < 8) fail("truncated section payload");
    const std::uint64_t v = load_u64(p_);
    p_ += 8;
    return v;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] bool boolean() {
    if (remaining() < 1) fail("truncated section payload");
    const unsigned char b = static_cast<unsigned char>(*p_++);
    if (b > 1) fail("boolean field out of range");
    return b == 1;
  }

  /// An element count, bounded by the bytes left (every encoded
  /// element occupies at least one byte) so a corrupted count can
  /// never become a giant allocation.
  [[nodiscard]] std::size_t count() {
    const std::uint64_t n = uvarint();
    if (n > remaining()) fail("element count exceeds section payload");
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

  void expect_exhausted() const {
    if (p_ != end_) fail("trailing bytes in section payload");
  }

 private:
  const char* p_;
  const char* end_;
};

void put_case_id(PartialWriter& w, std::string& out, const model::CaseId& id) {
  put_uvarint(out, w.intern(id.cid));
  put_uvarint(out, w.intern(id.host));
  put_uvarint(out, id.rid);
}

[[nodiscard]] model::CaseId read_case_id(const PartialReader& r, Cursor& c) {
  model::CaseId id;
  id.cid = std::string(r.pool_string(c.uvarint()));
  id.host = std::string(r.pool_string(c.uvarint()));
  id.rid = c.uvarint();
  return id;
}

void put_variant_counts(PartialWriter& w, std::string& out, const model::VariantCounts& v) {
  put_uvarint(out, v.size());
  for (const auto& [trace, multiplicity] : v) {
    put_uvarint(out, multiplicity);
    put_uvarint(out, trace.size());
    for (const model::Activity& a : trace) put_uvarint(out, w.intern(a));
  }
}

[[nodiscard]] model::VariantCounts read_variant_counts(const PartialReader& r, Cursor& c) {
  model::VariantCounts out;
  const std::size_t n = c.count();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t multiplicity = c.uvarint();
    const std::size_t len = c.count();
    model::ActivityTrace trace;
    trace.reserve(len);
    for (std::size_t j = 0; j < len; ++j) trace.emplace_back(r.pool_string(c.uvarint()));
    out.emplace_hint(out.end(), std::move(trace), static_cast<std::size_t>(multiplicity));
  }
  return out;
}

}  // namespace

// ---- PartialWriter -----------------------------------------------------

std::uint32_t PartialWriter::intern(std::string_view s) {
  if (const auto it = ids_.find(s); it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

void PartialWriter::add_section(PartialSection kind, std::string payload) {
  for (const auto& [existing, bytes] : sections_) {
    if (existing == kind) throw LogicError("partial blob: duplicate section kind");
  }
  sections_.emplace_back(kind, std::move(payload));
}

std::string PartialWriter::finish() const {
  std::string pool;
  put_u32(pool, static_cast<std::uint32_t>(strings_.size()));
  put_u32(pool, 0);
  std::uint32_t end = 0;
  for (const std::string& s : strings_) {
    end += static_cast<std::uint32_t>(s.size());
    put_u32(pool, end);
  }
  for (const std::string& s : strings_) pool.append(s);

  std::string out{kPartialMagic};
  put_u32(out, static_cast<std::uint32_t>(1 + sections_.size()));
  const auto emit = [&out](PartialSection kind, std::string_view payload) {
    put_u32(out, static_cast<std::uint32_t>(kind));
    put_u32(out, 0);
    put_u64(out, payload.size());
    out.append(payload);
    put_u32(out, Crc32::of(payload.data(), payload.size()));
  };
  emit(PartialSection::kStringPool, pool);
  for (const auto& [kind, payload] : sections_) emit(kind, payload);
  return out;
}

// ---- PartialReader -----------------------------------------------------

PartialReader::PartialReader(std::string_view blob) {
  if (blob.size() < kPartialMagic.size() + 4) fail("truncated header");
  if (blob.substr(0, kPartialMagic.size()) != kPartialMagic) fail("bad magic");
  const char* p = blob.data() + kPartialMagic.size();
  const char* end = blob.data() + blob.size();
  const std::uint32_t count = load_u32(p);
  p += 4;

  for (std::uint32_t i = 0; i < count; ++i) {
    if (static_cast<std::size_t>(end - p) < 16) fail("truncated section header");
    const std::uint32_t kind = load_u32(p);
    const std::uint32_t reserved = load_u32(p + 4);
    const std::uint64_t length = load_u64(p + 8);
    p += 16;
    if (reserved != 0) fail("nonzero reserved field");
    if (kind < 1 || kind > 9) fail("unknown section kind");
    if (length > static_cast<std::uint64_t>(end - p) ||
        static_cast<std::uint64_t>(end - p) - length < 4)
      fail("section length exceeds blob");
    const std::string_view payload(p, static_cast<std::size_t>(length));
    p += length;
    const std::uint32_t crc = load_u32(p);
    p += 4;
    if (crc != Crc32::of(payload.data(), payload.size())) fail("section checksum mismatch");
    if (i == 0 && kind != static_cast<std::uint32_t>(PartialSection::kStringPool))
      fail("string pool is not the first section");
    if (present_[kind]) fail("duplicate section kind");
    present_[kind] = true;
    sections_[kind] = payload;
  }
  if (p != end) fail("trailing bytes after last section");
  if (!present_[static_cast<std::size_t>(PartialSection::kStringPool)])
    fail("missing string pool");

  const std::string_view pool = sections_[static_cast<std::size_t>(PartialSection::kStringPool)];
  if (pool.size() < 8) fail("truncated string pool");
  pool_count_ = load_u32(pool.data());
  if (load_u32(pool.data() + 4) != 0) fail("nonzero reserved field");
  if (static_cast<std::uint64_t>(pool_count_) * 4 > pool.size() - 8)
    fail("string pool count exceeds section");
  pool_ends_ = pool.data() + 8;
  pool_blob_ = pool_ends_ + std::size_t{pool_count_} * 4;
  const std::size_t blob_len = pool.size() - 8 - std::size_t{pool_count_} * 4;
  std::uint32_t prev = 0;
  for (std::uint32_t i = 0; i < pool_count_; ++i) {
    const std::uint32_t e = load_u32(pool_ends_ + std::size_t{i} * 4);
    if (e < prev || e > blob_len) fail("string pool offsets not monotonic");
    prev = e;
  }
  if (prev != blob_len) fail("string pool blob size mismatch");
}

bool PartialReader::has_section(PartialSection kind) const {
  return present_[static_cast<std::size_t>(kind)];
}

std::string_view PartialReader::section(PartialSection kind) const {
  if (!has_section(kind)) fail("missing section");
  return sections_[static_cast<std::size_t>(kind)];
}

std::string_view PartialReader::pool_string(std::uint64_t id) const {
  if (id >= pool_count_) fail("string id out of range");
  const std::uint32_t begin = id == 0 ? 0 : load_u32(pool_ends_ + (id - 1) * 4);
  const std::uint32_t end = load_u32(pool_ends_ + id * 4);
  return {pool_blob_ + begin, end - begin};
}

// ---- per-sink pairs ----------------------------------------------------

void encode_dfg_partial(PartialWriter& w, const dfg::Dfg& g) {
  std::string s;
  put_uvarint(s, g.nodes().size());
  for (const auto& [a, n] : g.nodes()) {
    put_uvarint(s, w.intern(a));
    put_uvarint(s, n);
  }
  put_uvarint(s, g.edges().size());
  for (const auto& [edge, n] : g.edges()) {
    put_uvarint(s, w.intern(edge.first));
    put_uvarint(s, w.intern(edge.second));
    put_uvarint(s, n);
  }
  put_uvarint(s, g.trace_count());
  w.add_section(PartialSection::kDfg, std::move(s));
}

dfg::Dfg decode_dfg_partial(const PartialReader& r) {
  Cursor c(r.section(PartialSection::kDfg));
  std::map<dfg::Activity, std::uint64_t> nodes;
  const std::size_t node_count = c.count();
  for (std::size_t i = 0; i < node_count; ++i) {
    dfg::Activity a{r.pool_string(c.uvarint())};
    const std::uint64_t n = c.uvarint();
    nodes.emplace_hint(nodes.end(), std::move(a), n);
  }
  std::map<std::pair<dfg::Activity, dfg::Activity>, std::uint64_t> edges;
  const std::size_t edge_count = c.count();
  for (std::size_t i = 0; i < edge_count; ++i) {
    dfg::Activity from{r.pool_string(c.uvarint())};
    dfg::Activity to{r.pool_string(c.uvarint())};
    const std::uint64_t n = c.uvarint();
    edges.emplace_hint(edges.end(), std::make_pair(std::move(from), std::move(to)), n);
  }
  const std::uint64_t trace_count = c.uvarint();
  c.expect_exhausted();
  return dfg::Dfg::from_parts(std::move(nodes), std::move(edges), trace_count);
}

void encode_case_stats_partial(PartialWriter& w, const std::vector<model::CaseSummary>& v) {
  std::string s;
  put_uvarint(s, v.size());
  for (const model::CaseSummary& cs : v) {
    put_case_id(w, s, cs.id);
    put_uvarint(s, cs.events);
    put_uvarint(s, cs.calls.size());
    for (const auto& [call, n] : cs.calls) {
      put_uvarint(s, w.intern(call));
      put_uvarint(s, n);
    }
    put_svarint(s, cs.bytes_read);
    put_svarint(s, cs.bytes_written);
    put_svarint(s, cs.total_dur);
    put_svarint(s, cs.first_start);
    put_svarint(s, cs.last_end);
  }
  w.add_section(PartialSection::kCaseStats, std::move(s));
}

std::vector<model::CaseSummary> decode_case_stats_partial(const PartialReader& r) {
  Cursor c(r.section(PartialSection::kCaseStats));
  std::vector<model::CaseSummary> out;
  const std::size_t n = c.count();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    model::CaseSummary cs;
    cs.id = read_case_id(r, c);
    cs.events = static_cast<std::size_t>(c.uvarint());
    const std::size_t calls = c.count();
    for (std::size_t j = 0; j < calls; ++j) {
      std::string call{r.pool_string(c.uvarint())};
      const std::uint64_t count = c.uvarint();
      cs.calls.emplace_hint(cs.calls.end(), std::move(call), static_cast<std::size_t>(count));
    }
    cs.bytes_read = c.svarint();
    cs.bytes_written = c.svarint();
    cs.total_dur = c.svarint();
    cs.first_start = c.svarint();
    cs.last_end = c.svarint();
    out.push_back(std::move(cs));
  }
  c.expect_exhausted();
  return out;
}

void encode_activity_log_partial(PartialWriter& w, const model::ActivityLog& log) {
  std::string s;
  put_variant_counts(w, s, log.variants());
  put_uvarint(s, log.per_case().size());
  for (const auto& [id, trace] : log.per_case()) {
    put_case_id(w, s, id);
    put_uvarint(s, trace.size());
    for (const model::Activity& a : trace) put_uvarint(s, w.intern(a));
  }
  put_uvarint(s, log.activities().size());
  for (const model::Activity& a : log.activities()) put_uvarint(s, w.intern(a));
  put_uvarint(s, log.case_count());
  put_uvarint(s, log.total_activity_instances());
  w.add_section(PartialSection::kActivityLog, std::move(s));
}

model::ActivityLog decode_activity_log_partial(const PartialReader& r) {
  Cursor c(r.section(PartialSection::kActivityLog));
  model::VariantCounts variants = read_variant_counts(r, c);
  std::map<model::CaseId, model::ActivityTrace> per_case;
  const std::size_t cases = c.count();
  for (std::size_t i = 0; i < cases; ++i) {
    model::CaseId id = read_case_id(r, c);
    const std::size_t len = c.count();
    model::ActivityTrace trace;
    trace.reserve(len);
    for (std::size_t j = 0; j < len; ++j) trace.emplace_back(r.pool_string(c.uvarint()));
    per_case.emplace_hint(per_case.end(), std::move(id), std::move(trace));
  }
  std::set<model::Activity> activities;
  const std::size_t acts = c.count();
  for (std::size_t i = 0; i < acts; ++i) {
    activities.emplace_hint(activities.end(), r.pool_string(c.uvarint()));
  }
  const auto case_count = static_cast<std::size_t>(c.uvarint());
  const auto total_instances = static_cast<std::size_t>(c.uvarint());
  c.expect_exhausted();
  return model::ActivityLog::from_parts(std::move(variants), std::move(per_case),
                                        std::move(activities), case_count, total_instances);
}

void encode_variants_partial(PartialWriter& w, const model::VariantCounts& v) {
  std::string s;
  put_variant_counts(w, s, v);
  w.add_section(PartialSection::kVariants, std::move(s));
}

model::VariantCounts decode_variants_partial(const PartialReader& r) {
  Cursor c(r.section(PartialSection::kVariants));
  model::VariantCounts out = read_variant_counts(r, c);
  c.expect_exhausted();
  return out;
}

void encode_query_log_partial(PartialWriter& w, const model::EventLog& log) {
  std::ostringstream bytes;
  elog::write_event_log_v2(bytes, log);
  w.add_section(PartialSection::kQueryLog, std::move(bytes).str());
}

model::EventLog decode_query_log_partial(const PartialReader& r) {
  auto buffer = std::make_shared<strace::TraceBuffer>(
      std::string(r.section(PartialSection::kQueryLog)));
  return elog::read_event_log_v2(elog::MappedElog::from_buffer(std::move(buffer)));
}

void encode_io_stats_partial(PartialWriter& w, const dfg::IoStatistics::Partial& p) {
  std::string s;
  put_uvarint(s, p.cases().size());
  for (const dfg::IoStatistics::CaseContribution& cc : p.cases()) {
    put_case_id(w, s, cc.id);
    put_uvarint(s, cc.activities.size());
    for (const auto& [a, contrib] : cc.activities) {
      put_uvarint(s, w.intern(a));
      put_svarint(s, contrib.total_dur);
      put_uvarint(s, contrib.event_count);
      put_svarint(s, contrib.bytes);
      s.push_back(contrib.has_bytes ? '\1' : '\0');
      put_double(s, contrib.rate_sum);
      put_uvarint(s, contrib.rate_samples);
      put_uvarint(s, contrib.intervals.size());
      Micros prev_start = 0;
      for (const dfg::Interval& iv : contrib.intervals) {
        put_svarint(s, iv.start - prev_start);
        put_svarint(s, iv.end - iv.start);
        prev_start = iv.start;
      }
    }
  }
  w.add_section(PartialSection::kIoStats, std::move(s));
}

dfg::IoStatistics::Partial decode_io_stats_partial(const PartialReader& r) {
  Cursor c(r.section(PartialSection::kIoStats));
  std::vector<dfg::IoStatistics::CaseContribution> cases;
  const std::size_t n = c.count();
  cases.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    dfg::IoStatistics::CaseContribution cc;
    cc.id = read_case_id(r, c);
    const std::size_t acts = c.count();
    for (std::size_t j = 0; j < acts; ++j) {
      model::Activity a{r.pool_string(c.uvarint())};
      dfg::IoStatistics::ActivityContribution contrib;
      contrib.total_dur = c.svarint();
      contrib.event_count = c.uvarint();
      contrib.bytes = c.svarint();
      contrib.has_bytes = c.boolean();
      contrib.rate_sum = c.f64();
      contrib.rate_samples = c.uvarint();
      const std::size_t intervals = c.count();
      contrib.intervals.reserve(intervals);
      Micros prev_start = 0;
      for (std::size_t k = 0; k < intervals; ++k) {
        dfg::Interval iv;
        iv.start = prev_start + c.svarint();
        iv.end = iv.start + c.svarint();
        contrib.intervals.push_back(iv);
        prev_start = iv.start;
      }
      cc.activities.emplace_hint(cc.activities.end(), std::move(a), std::move(contrib));
    }
    cases.push_back(std::move(cc));
  }
  c.expect_exhausted();
  return dfg::IoStatistics::Partial::from_cases(std::move(cases));
}

void encode_edge_stats_partial(PartialWriter& w, const dfg::EdgeStatistics::Partial& p) {
  std::string s;
  put_uvarint(s, p.stats().size());
  for (const auto& [edge, es] : p.stats()) {
    put_uvarint(s, w.intern(edge.first));
    put_uvarint(s, w.intern(edge.second));
    put_uvarint(s, es.count);
    put_svarint(s, es.total_gap);
    put_svarint(s, es.max_gap);
    put_uvarint(s, es.overlapped);
  }
  w.add_section(PartialSection::kEdgeStats, std::move(s));
}

dfg::EdgeStatistics::Partial decode_edge_stats_partial(const PartialReader& r) {
  Cursor c(r.section(PartialSection::kEdgeStats));
  std::map<dfg::EdgeStatistics::Edge, dfg::EdgeStat> stats;
  const std::size_t n = c.count();
  for (std::size_t i = 0; i < n; ++i) {
    model::Activity from{r.pool_string(c.uvarint())};
    model::Activity to{r.pool_string(c.uvarint())};
    dfg::EdgeStat es;
    es.count = c.uvarint();
    es.total_gap = c.svarint();
    es.max_gap = c.svarint();
    es.overlapped = c.uvarint();
    stats.emplace_hint(stats.end(), std::make_pair(std::move(from), std::move(to)), es);
  }
  c.expect_exhausted();
  return dfg::EdgeStatistics::Partial::from_stats(std::move(stats));
}

// ---- the shard unit ----------------------------------------------------

void ShardPartial::merge(ShardPartial&& other) {
  case_count += other.case_count;
  total_events += other.total_events;
  health.merge_counters(other.health);
  // Same consecutive-duplicate collapse pipeline::run applies while
  // assembling warnings, re-applied at the shard seam so the
  // concatenation equals one in-process run's warning list.
  for (std::string& warning : other.warnings) {
    if (warnings.empty() || warnings.back() != warning) warnings.push_back(std::move(warning));
  }
  graph.merge(other.graph);
  case_summaries.insert(case_summaries.end(),
                        std::make_move_iterator(other.case_summaries.begin()),
                        std::make_move_iterator(other.case_summaries.end()));
  activity_log.merge(std::move(other.activity_log));
  model::merge_variant_counts(variants, std::move(other.variants));
  io.merge(std::move(other.io));
  edges.merge(std::move(other.edges));
  if (other.filtered) {
    if (!filtered) {
      filtered = std::move(other.filtered);
    } else {
      *filtered = model::EventLog::merge(*filtered, *other.filtered);
    }
  }
}

std::string encode_shard_partial(const ShardPartial& p) {
  PartialWriter w;
  std::string meta;
  put_uvarint(meta, p.case_count);
  put_uvarint(meta, p.total_events);
  put_uvarint(meta, p.warnings.size());
  for (const std::string& warning : p.warnings) put_uvarint(meta, w.intern(warning));
  put_uvarint(meta, p.health.files_requested);
  put_uvarint(meta, p.health.files_ingested);
  put_uvarint(meta, p.health.files_skipped);
  put_uvarint(meta, p.health.cases_quarantined);
  w.add_section(PartialSection::kMeta, std::move(meta));
  encode_dfg_partial(w, p.graph);
  encode_case_stats_partial(w, p.case_summaries);
  encode_activity_log_partial(w, p.activity_log);
  encode_variants_partial(w, p.variants);
  encode_io_stats_partial(w, p.io);
  encode_edge_stats_partial(w, p.edges);
  if (p.filtered) encode_query_log_partial(w, *p.filtered);
  return w.finish();
}

ShardPartial decode_shard_partial(std::string_view blob) {
  // Injection point for the coordinator's corrupt-blob handling: a
  // truncated/bit-flipped view must fail the PartialReader's eager
  // validation below with IoError (retryable at the shard layer).
  std::string scratch;
  if (fault::armed()) blob = fault::corrupt_view("codec.decode", blob, scratch);
  const PartialReader r(blob);
  ShardPartial p;
  Cursor meta(r.section(PartialSection::kMeta));
  p.case_count = meta.uvarint();
  p.total_events = meta.uvarint();
  const std::size_t warnings = meta.count();
  p.warnings.reserve(warnings);
  for (std::size_t i = 0; i < warnings; ++i) {
    p.warnings.emplace_back(r.pool_string(meta.uvarint()));
  }
  p.health.files_requested = meta.uvarint();
  p.health.files_ingested = meta.uvarint();
  p.health.files_skipped = meta.uvarint();
  p.health.cases_quarantined = meta.uvarint();
  meta.expect_exhausted();
  p.graph = decode_dfg_partial(r);
  p.case_summaries = decode_case_stats_partial(r);
  p.activity_log = decode_activity_log_partial(r);
  p.variants = decode_variants_partial(r);
  p.io = decode_io_stats_partial(r);
  p.edges = decode_edge_stats_partial(r);
  if (r.has_section(PartialSection::kQueryLog)) p.filtered = decode_query_log_partial(r);
  return p;
}

}  // namespace st::pipeline
