// Streaming trace -> EventLog -> DFG pipeline: parse, record->Case
// conversion and graph construction overlap on ONE ThreadPool instead
// of meeting at barriers (the scalable Sec. V construction of the
// paper, refs [24][25] in dfg/builder.hpp, taken end-to-end).
//
// Since the CaseSink refactor both entry points here are thin wrappers
// over pipeline::run (pipeline/sink.hpp) — the general "one streamed
// pass feeds any set of analytics" substrate:
//
//   files ──(buffer,chunk) parse tasks──► per-file fold ──StageQueue──►
//     convert tasks (case_from_records + every sink's fold) ──►
//     input-order assembly + input-order sink merges
//
//   - stage A: strace::read_trace_files_streamed enqueues every
//     (file, chunk) parse task; the pool thread that finishes a file's
//     last chunk folds it and pushes the ReadResult onto a bounded
//     StageQueue (backpressure: parsing stalls rather than piling up
//     unconverted files without limit; capacity via
//     StreamOptions::queue_capacity).
//   - stage B: the calling thread pops completions and immediately
//     submits the file's record->Case conversion to the SAME pool, so
//     conversion of early files runs while later files still parse.
//     trace_to_dfg folds each finished Case into a per-task partial
//     Dfg right inside the conversion task (a DfgSink).
//   - assembly: once the queue closes, results are assembled strictly
//     in input order and the partial graphs merge via the existing
//     Dfg monoid — byte-identical to the staged path.
//
// Guarantees (asserted by tests/test_pipeline_stream.cpp and
// tests/test_pipeline_sinks.cpp):
//   - output equals the staged event_log_from_files + build_parallel
//     path byte for byte: case order, event order, warning strings and
//     their order, and graph equality — at any worker count and any
//     queue capacity;
//   - lifetime-correct: per-task conversion arenas and every parsed
//     TraceBuffer are adopted into the EventLog before it escapes;
//   - deterministic on error: every task is awaited, then the
//     exception of the lowest failing input index is rethrown.
//
// Usage:
//
//   st::ThreadPool pool(8);
//   auto [log, graph] = st::pipeline::trace_to_dfg(
//       paths, st::model::Mapping::call_top_dirs(2), pool);
//   // or, when only the log is needed:
//   st::model::EventLog log2 = st::pipeline::event_log_streamed(paths, pool);
#pragma once

#include <string>
#include <vector>

#include "dfg/dfg.hpp"
#include "model/event_log.hpp"
#include "model/mapping.hpp"
#include "pipeline/sink.hpp"

namespace st {
class ThreadPool;
}  // namespace st

namespace st::pipeline {

/// Streaming replacement for the staged "parse all files, then convert
/// all files" event-log construction: each file's record->Case
/// conversion is enqueued the moment that file's parse chunks finish
/// folding. File names must follow cid_host_rid.st (ParseError for the
/// first offender, checked before any I/O). Output is byte-identical
/// to the staged path. `opts.pool` is ignored — `pool` is used.
/// Equivalent to run(paths, pool, {}) with no sinks.
[[nodiscard]] model::EventLog event_log_streamed(const std::vector<std::string>& paths,
                                                 ThreadPool& pool, const StreamOptions& opts = {});

struct TraceDfg {
  model::EventLog log;
  dfg::Dfg graph;  ///< == dfg::build_parallel(log, f, pool)
};

/// Full streaming chain: parse, convert AND per-case DFG construction
/// overlap on `pool`; partial graphs merge via the Dfg monoid exactly
/// like dfg::build_parallel's reduce. The returned graph equals
/// build_parallel(result.log, f, pool) on any input. Thin wrapper over
/// run(paths, pool, {&dfg_sink}).
[[nodiscard]] TraceDfg trace_to_dfg(const std::vector<std::string>& paths,
                                    const model::Mapping& f, ThreadPool& pool,
                                    const StreamOptions& opts = {});

}  // namespace st::pipeline
