#include "model/skew.hpp"

#include <vector>

namespace st::model {

EventLog shift_host_clocks(const EventLog& log, const std::map<std::string, Micros>& offsets) {
  EventLog out;
  out.adopt_owners_of(log);  // shifted events still view the source's storage
  for (const Case& c : log.cases()) {
    const auto it = offsets.find(c.id().host);
    const Micros offset = it == offsets.end() ? 0 : it->second;
    std::vector<Event> events(c.events().begin(), c.events().end());
    for (Event& e : events) e.start += offset;
    out.add_case(Case(c.id(), std::move(events)));
  }
  return out;
}

}  // namespace st::model
