#include "model/case_stats.hpp"

#include <algorithm>

#include "model/query.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "support/si.hpp"

namespace st::model {

CaseSummary summarize_case(const Case& c) {
  CaseSummary s;
  s.id = c.id();
  s.events = c.size();
  bool first = true;
  for (const Event& e : c.events()) {
    ++s.calls[std::string(e.call)];
    if (e.has_size()) {
      if (call_in_family(e.call, "read")) s.bytes_read += e.size;
      if (call_in_family(e.call, "write")) s.bytes_written += e.size;
    }
    s.total_dur += e.dur;
    if (first || e.start < s.first_start) s.first_start = e.start;
    s.last_end = std::max(s.last_end, e.end());
    first = false;
  }
  if (c.empty()) {
    s.first_start = 0;
    s.last_end = 0;
  }
  return s;
}

void CaseSummaries::merge(CaseSummaries&& other) {
  if (summaries.empty()) {
    summaries = std::move(other.summaries);
    return;
  }
  summaries.insert(summaries.end(), std::make_move_iterator(other.summaries.begin()),
                   std::make_move_iterator(other.summaries.end()));
}

std::vector<CaseSummary> summarize_cases(const EventLog& log) {
  CaseSummaries acc;
  acc.summaries.reserve(log.case_count());
  for (const Case& c : log.cases()) acc.add(c);
  return std::move(acc.summaries);
}

std::vector<CaseSummary> summarize_cases(const EventLog& log, ThreadPool& pool) {
  const std::span<const Case> cases = log.cases();
  // Chunked map-reduce over the CaseSummaries monoid: chunks fold
  // left-to-right, so the output order is the case order — identical
  // to the serial overload.
  CaseSummaries acc = map_reduce(
      pool, cases.size(), CaseSummaries{},
      [&cases](std::size_t lo, std::size_t hi) {
        CaseSummaries partial;
        partial.summaries.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) partial.add(cases[i]);
        return partial;
      },
      [](CaseSummaries a, CaseSummaries b) {
        a.merge(std::move(b));
        return a;
      });
  return std::move(acc.summaries);
}

std::string render_case_summaries(const std::vector<CaseSummary>& summaries) {
  std::string out =
      "case                     events   read        written     io-time     span\n";
  for (const CaseSummary& s : summaries) {
    std::string name = s.id.to_string();
    name.resize(std::max<std::size_t>(24, name.size()), ' ');
    auto pad = [](std::string v, std::size_t w) {
      v.resize(std::max(w, v.size()), ' ');
      return v;
    };
    out += name + " " + pad(std::to_string(s.events), 8) +
           pad(format_bytes(static_cast<double>(s.bytes_read)), 11) + " " +
           pad(format_bytes(static_cast<double>(s.bytes_written)), 11) + " " +
           pad(std::to_string(s.total_dur) + " us", 11) + " " +
           std::to_string(s.span()) + " us\n";
  }
  return out;
}

}  // namespace st::model
