#include "model/variants.hpp"

namespace st::model {

namespace {

double coverage(const std::map<ActivityTrace, std::pair<std::size_t, std::size_t>>& common,
                const std::map<ActivityTrace, std::size_t>& exclusive, bool green) {
  std::size_t covered = 0;
  std::size_t total = 0;
  for (const auto& [trace, counts] : common) {
    const std::size_t own = green ? counts.first : counts.second;
    covered += own;
    total += own;
  }
  for (const auto& [trace, count] : exclusive) total += count;
  return total == 0 ? 1.0 : static_cast<double>(covered) / static_cast<double>(total);
}

}  // namespace

double VariantDiff::green_coverage() const { return coverage(common, green_only, true); }

double VariantDiff::red_coverage() const { return coverage(common, red_only, false); }

VariantDiff compare_variant_counts(const VariantCounts& green, const VariantCounts& red) {
  VariantDiff diff;
  for (const auto& [trace, count] : green) {
    const auto it = red.find(trace);
    if (it == red.end()) {
      diff.green_only.emplace(trace, count);
    } else {
      diff.common.emplace(trace, std::make_pair(count, it->second));
    }
  }
  for (const auto& [trace, count] : red) {
    if (!green.contains(trace)) diff.red_only.emplace(trace, count);
  }
  return diff;
}

VariantDiff compare_variants(const ActivityLog& green, const ActivityLog& red) {
  return compare_variant_counts(green.variants(), red.variants());
}

}  // namespace st::model
