// Case and EventLog: the process-mining view of a set of trace files.
//
//   Case      c  = <e1, e2, ... en>   events ordered by start timestamp
//   EventLog  C  = {c1, ..., cn}      the set of cases (Sec. IV)
//
// EventLog supports the operations the paper's Python API exposes:
// file-path filtering (apply_fp_filter), generic event filtering,
// case-level partitioning (PartitionEL, used by partition coloring)
// and union (Cx = Ca ∪ Cb).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "model/event.hpp"

namespace st::model {

class Case {
 public:
  Case() = default;

  /// Takes ownership of `events` and stable-sorts them by start
  /// timestamp (ties keep input order, matching the paper's "start of
  /// e_i is less than or equal to that of e_{i+1}").
  Case(CaseId id, std::vector<Event> events);

  [[nodiscard]] const CaseId& id() const { return id_; }
  [[nodiscard]] std::span<const Event> events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// New case containing only events satisfying `pred` (order kept).
  [[nodiscard]] Case filtered(const std::function<bool(const Event&)>& pred) const;

 private:
  CaseId id_;
  std::vector<Event> events_;
};

class EventLog {
 public:
  EventLog() = default;
  explicit EventLog(std::vector<Case> cases) : cases_(std::move(cases)) {}

  void add_case(Case c) { cases_.push_back(std::move(c)); }

  [[nodiscard]] std::span<const Case> cases() const { return cases_; }
  [[nodiscard]] std::size_t case_count() const { return cases_.size(); }
  [[nodiscard]] std::size_t total_events() const;
  [[nodiscard]] const Case* find_case(const CaseId& id) const;

  /// Keeps only events whose file path contains `substr` (the paper's
  /// apply_fp_filter). Cases that become empty are kept (a case with no
  /// matching events contributes an empty trace).
  [[nodiscard]] EventLog filter_fp(std::string_view substr) const;

  /// Generic event-level filter.
  [[nodiscard]] EventLog filter_events(const std::function<bool(const Event&)>& pred) const;

  /// Keeps only cases satisfying `pred`.
  [[nodiscard]] EventLog filter_cases(const std::function<bool(const Case&)>& pred) const;

  /// Splits cases into (matching, rest) — the G/R partition of
  /// Sec. IV-C.
  [[nodiscard]] std::pair<EventLog, EventLog> partition(
      const std::function<bool(const Case&)>& pred) const;

  /// Union of two event logs (Cx = Ca ∪ Cb). Cases are concatenated;
  /// duplicate CaseIds are rejected with LogicError because no two
  /// events (and hence cases) may be identical (Sec. IV).
  [[nodiscard]] static EventLog merge(const EventLog& a, const EventLog& b);

 private:
  std::vector<Case> cases_;
};

}  // namespace st::model
