// Case and EventLog: the process-mining view of a set of trace files.
//
//   Case      c  = <e1, e2, ... en>   events ordered by start timestamp
//   EventLog  C  = {c1, ..., cn}      the set of cases (Sec. IV)
//
// EventLog supports the operations the paper's Python API exposes:
// file-path filtering (apply_fp_filter), generic event filtering,
// case-level partitioning (PartitionEL, used by partition coloring)
// and union (Cx = Ca ∪ Cb).
//
// Ownership: Event string fields are views; the log carries the
// storage they point into — its own StringArena (arena()) plus any
// adopted owners such as the TraceBuffers of parsed files — as
// shared_ptrs. Every derived log (filter_*, partition, merge) shares
// its source's owners, so holding ANY log in a derivation chain keeps
// all of its events' views alive, exactly like strace::ReadResult.
//
// Ingestion problems (unparseable lines, unmatched resumed records)
// are carried as warnings(): set by the constructing reader, ordered
// by file then line, and deliberately NOT propagated to derived logs —
// they describe the ingestion, not the filtered view.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "model/event.hpp"
#include "strace/arena.hpp"

namespace st::model {

class Case {
 public:
  Case() = default;

  /// Takes ownership of `events` and stable-sorts them by start
  /// timestamp (ties keep input order, matching the paper's "start of
  /// e_i is less than or equal to that of e_{i+1}").
  Case(CaseId id, std::vector<Event> events);

  [[nodiscard]] const CaseId& id() const { return id_; }
  [[nodiscard]] std::span<const Event> events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// New case containing only events satisfying `pred` (order kept).
  [[nodiscard]] Case filtered(const std::function<bool(const Event&)>& pred) const;

 private:
  CaseId id_;
  std::vector<Event> events_;
};

class EventLog {
 public:
  EventLog() = default;
  explicit EventLog(std::vector<Case> cases) : cases_(std::move(cases)) {}

  void add_case(Case c) { cases_.push_back(std::move(c)); }

  [[nodiscard]] std::span<const Case> cases() const { return cases_; }
  [[nodiscard]] std::size_t case_count() const { return cases_.size(); }
  [[nodiscard]] std::size_t total_events() const;
  [[nodiscard]] const Case* find_case(const CaseId& id) const;

  // -- string ownership ------------------------------------------------

  /// The arena this log's Event string fields intern into. Created on
  /// first use and registered as an owner, so views into it survive as
  /// long as the log or any log derived from it. NOT thread-safe:
  /// parallel builders intern into private arenas and adopt() them.
  [[nodiscard]] strace::StringArena& arena();

  /// Registers `owner` (a TraceBuffer, a StringArena, ...) to be kept
  /// alive as long as this log and every log derived from it.
  void adopt(std::shared_ptr<const void> owner) { owners_.push_back(std::move(owner)); }

  /// Shares all owners of `other` — every derived-log operation calls
  /// this so views remain valid through arbitrary derivation chains.
  void adopt_owners_of(const EventLog& other) {
    owners_.insert(owners_.end(), other.owners_.begin(), other.owners_.end());
  }

  // -- ingestion warnings ----------------------------------------------

  /// Reader warnings collected while this log was built from trace
  /// files ("<path>: line N: ..."), ordered by file then line. Empty
  /// for synthesized and derived logs.
  [[nodiscard]] const std::vector<std::string>& warnings() const { return warnings_; }
  void add_warning(std::string warning) { warnings_.push_back(std::move(warning)); }

  // -- queries ----------------------------------------------------------

  /// Keeps only events whose file path contains `substr` (the paper's
  /// apply_fp_filter). Cases that become empty are kept (a case with no
  /// matching events contributes an empty trace).
  [[nodiscard]] EventLog filter_fp(std::string_view substr) const;

  /// Generic event-level filter.
  [[nodiscard]] EventLog filter_events(const std::function<bool(const Event&)>& pred) const;

  /// Keeps only cases satisfying `pred`.
  [[nodiscard]] EventLog filter_cases(const std::function<bool(const Case&)>& pred) const;

  /// Splits cases into (matching, rest) — the G/R partition of
  /// Sec. IV-C.
  [[nodiscard]] std::pair<EventLog, EventLog> partition(
      const std::function<bool(const Case&)>& pred) const;

  /// Union of two event logs (Cx = Ca ∪ Cb). Cases are concatenated;
  /// duplicate CaseIds are rejected with LogicError because no two
  /// events (and hence cases) may be identical (Sec. IV).
  [[nodiscard]] static EventLog merge(const EventLog& a, const EventLog& b);

 private:
  std::vector<Case> cases_;
  std::shared_ptr<strace::StringArena> arena_;       ///< lazily created; also in owners_
  std::vector<std::shared_ptr<const void>> owners_;  ///< storage the events view into
  std::vector<std::string> warnings_;
};

}  // namespace st::model
