// Composable event-log queries.
//
// The paper frames the DFG as "a response to a query applied through f
// on the event-log". This module makes the query side first-class: a
// Query accumulates independent restrictions — file-path substring,
// call families, a wall-clock time window, cid selection — and applies
// them in one pass. Queries are value types; chaining returns a new
// Query (builder style), so partially-built queries can be shared.
//
//   auto q = Query().fp_contains("/p/scratch")
//                   .calls({"read", "write"})
//                   .between(t0, t1);
//   EventLog view = q.apply(log);
#pragma once

#include <limits>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "model/event_log.hpp"

namespace st {
class ThreadPool;
}

namespace st::model {

class Query {
 public:
  /// Keep events whose path contains `substr` (conjunctive with any
  /// previously added path restriction).
  [[nodiscard]] Query fp_contains(std::string substr) const;

  /// Keep events whose call belongs to one of the given families.
  /// A family name matches itself plus its p*/…v variants ("read"
  /// also matches pread64, readv, preadv, preadv2), mirroring the
  /// paper's "variants of read" selections. The finite variant set is
  /// expanded into a flat sorted set here, once per Query, so matches()
  /// does a binary search per event instead of re-deriving the
  /// variants (call_in_family) per event.
  [[nodiscard]] Query calls(std::vector<std::string> families) const;

  /// Keep events with start in [from, to).
  [[nodiscard]] Query between(Micros from, Micros to) const;

  /// Keep cases with one of the given cids.
  [[nodiscard]] Query cids(std::set<std::string> cids) const;

  /// Keep cases on one of the given hosts.
  [[nodiscard]] Query hosts(std::set<std::string> hosts) const;

  /// True iff the event satisfies all event-level restrictions.
  [[nodiscard]] bool matches(const Event& e) const;

  /// True iff the case satisfies all case-level restrictions.
  [[nodiscard]] bool matches_case(const Case& c) const;

  /// The per-case unit of apply(): nullopt when the case-level
  /// restrictions drop the case, otherwise the case filtered to the
  /// matching events (possibly empty — empty cases are kept, like
  /// filter_fp). Both apply() overloads and the streaming QuerySink
  /// are folds of this over the cases; thread-safe (const, uses the
  /// precompiled call set).
  [[nodiscard]] std::optional<Case> apply_case(const Case& c) const;

  /// Applies case restrictions, then event restrictions.
  [[nodiscard]] EventLog apply(const EventLog& log) const;

  /// Same result as apply(log) — case order, per-case event order and
  /// ownership propagation are byte-identical — with the per-case
  /// filtering fanned out over `pool`.
  [[nodiscard]] EventLog apply(const EventLog& log, ThreadPool& pool) const;

  /// Human-readable summary ("fp~/p/scratch calls{read,write}").
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<std::string> fp_substrings_;
  std::vector<std::string> call_families_;
  std::vector<std::string> compiled_calls_;  ///< sorted expansion of call_families_
  Micros from_ = std::numeric_limits<Micros>::min();
  Micros to_ = std::numeric_limits<Micros>::max();
  std::optional<std::set<std::string>> cids_;
  std::optional<std::set<std::string>> hosts_;
};

/// True if `call` belongs to `family` (read -> pread64/readv/...).
/// Allocation-free so it can sit on per-event hot paths.
[[nodiscard]] bool call_in_family(std::string_view call, std::string_view family);

}  // namespace st::model
