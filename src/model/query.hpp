// Composable event-log queries — and the system's wire format.
//
// The paper frames the DFG as "a response to a query applied through f
// on the event-log". This module makes the query side first-class: a
// Query accumulates independent restrictions — file-path substring,
// call families, a wall-clock time window, cid/host selection — and
// applies them in one pass. Queries are value types; chaining returns
// a new Query (builder style), so partially-built queries can be
// shared.
//
//   auto q = Query().fp_contains("/p/scratch")
//                   .calls({"read", "write"})
//                   .between(t0, t1);
//   EventLog view = q.apply(log);
//
// The grammar (ISSUE 9): describe() renders the query as CANONICAL
// text and parse() inverts it, so the same string is simultaneously
//   - the wire format of the trace-query service (corpus/serve.hpp),
//   - the cache fingerprint of corpus::Catalog's memoized artifacts,
//   - the human-readable summary it always was.
// Canonical means: clauses in the fixed order fp / calls / t / cids /
// hosts, one space between clauses, set-valued restrictions sorted and
// deduplicated, and every value atom rendered bare when it is safe or
// double-quoted (\", \\, \xHH escapes) when it is not. On canonical
// strings parse ∘ describe is the identity:
//
//   fp~/p/scratch calls{read,write} t[10,200) cids{a,b} hosts{node1}
//   all                                  (the unrestricted query)
//   fp~"odd atom" calls{"we ird"}        (quoted atoms round-trip too)
//
// parse() accepts lenient spacing and unsorted sets; describe() of the
// result is canonical again (parse-then-describe canonicalizes).
// Malformed input throws QueryParseError, which carries the byte
// offset of the offending character.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "model/event_log.hpp"
#include "support/errors.hpp"

namespace st {
class ThreadPool;
}

namespace st::model {

/// Malformed query text. Derives from ParseError so generic CLI/server
/// error handling keeps working; position() is the byte offset into
/// the parsed string where the problem starts (also in the message).
class QueryParseError : public ParseError {
 public:
  QueryParseError(const std::string& what, std::size_t position)
      : ParseError(what + " at offset " + std::to_string(position)), position_(position) {}

  [[nodiscard]] std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

class Query {
 public:
  /// Keep events whose path contains `substr` (conjunctive with any
  /// previously added path restriction). Restrictions are conjunctive,
  /// so the builder stores them sorted + deduplicated — the canonical
  /// order describe() renders.
  [[nodiscard]] Query fp_contains(std::string substr) const;

  /// Keep events whose call belongs to one of the given families.
  /// A family name matches itself plus its p*/…v variants ("read"
  /// also matches pread64, readv, preadv, preadv2), mirroring the
  /// paper's "variants of read" selections. The finite variant set is
  /// expanded into a flat sorted set here, once per Query, so matches()
  /// does a binary search per event instead of re-deriving the
  /// variants (call_in_family) per event. Families are stored sorted +
  /// deduplicated (canonical form).
  [[nodiscard]] Query calls(std::vector<std::string> families) const;

  /// Keep events with start in [from, to).
  [[nodiscard]] Query between(Micros from, Micros to) const;

  /// Keep cases with one of the given cids.
  [[nodiscard]] Query cids(std::set<std::string> cids) const;

  /// Keep cases on one of the given hosts.
  [[nodiscard]] Query hosts(std::set<std::string> hosts) const;

  /// True iff the event satisfies all event-level restrictions.
  [[nodiscard]] bool matches(const Event& e) const;

  /// True iff the case satisfies all case-level restrictions.
  [[nodiscard]] bool matches_case(const Case& c) const;

  /// The per-case unit of apply(): nullopt when the case-level
  /// restrictions drop the case, otherwise the case filtered to the
  /// matching events (possibly empty — empty cases are kept, like
  /// filter_fp). Both apply() overloads and the streaming QuerySink
  /// are folds of this over the cases; thread-safe (const, uses the
  /// precompiled call set).
  [[nodiscard]] std::optional<Case> apply_case(const Case& c) const;

  /// Applies case restrictions, then event restrictions.
  [[nodiscard]] EventLog apply(const EventLog& log) const;

  /// Same result as apply(log) — case order, per-case event order and
  /// ownership propagation are byte-identical — with the per-case
  /// filtering fanned out over `pool`.
  [[nodiscard]] EventLog apply(const EventLog& log, ThreadPool& pool) const;

  /// The canonical text form (grammar above): wire format, cache
  /// fingerprint and human-readable summary in one. "all" when no
  /// restriction is set.
  [[nodiscard]] std::string describe() const;

  /// Inverts describe(): parses the query grammar (lenient spacing,
  /// unsorted sets accepted). Throws QueryParseError with the byte
  /// offset on malformed input. parse(q.describe()).describe() ==
  /// q.describe() for every Query q.
  [[nodiscard]] static Query parse(std::string_view text);

  /// Two queries are equal iff they restrict identically — exactly
  /// when their canonical forms coincide.
  [[nodiscard]] bool operator==(const Query& other) const;

  // -- read access for the indexed planner (elog/v2_select.hpp) --------
  // The planner compiles these against a file's string dictionary; the
  // semantics stay defined by matches()/matches_case() above, which the
  // equivalence tests hold the indexed path to byte-for-byte.

  /// Conjunctive path substrings (sorted + deduplicated).
  [[nodiscard]] const std::vector<std::string>& fp_substrings() const { return fp_substrings_; }
  /// The expanded call accept-set (sorted; empty = no call restriction).
  [[nodiscard]] const std::vector<std::string>& compiled_calls() const { return compiled_calls_; }
  [[nodiscard]] Micros from() const { return from_; }
  [[nodiscard]] Micros to() const { return to_; }
  [[nodiscard]] bool has_window() const {
    return from_ != std::numeric_limits<Micros>::min() ||
           to_ != std::numeric_limits<Micros>::max();
  }
  [[nodiscard]] const std::optional<std::set<std::string>>& cid_set() const { return cids_; }
  [[nodiscard]] const std::optional<std::set<std::string>>& host_set() const { return hosts_; }

 private:
  std::vector<std::string> fp_substrings_;   ///< sorted + deduplicated
  std::vector<std::string> call_families_;   ///< sorted + deduplicated
  std::vector<std::string> compiled_calls_;  ///< sorted expansion of call_families_
  Micros from_ = std::numeric_limits<Micros>::min();
  Micros to_ = std::numeric_limits<Micros>::max();
  std::optional<std::set<std::string>> cids_;
  std::optional<std::set<std::string>> hosts_;
};

/// True if `call` belongs to `family` (read -> pread64/readv/...).
/// Allocation-free so it can sit on per-event hot paths.
[[nodiscard]] bool call_in_family(std::string_view call, std::string_view family);

}  // namespace st::model
