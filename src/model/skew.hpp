// Host clock skew simulation.
//
// The paper notes (Sec. IV-B) that for processes distributed across
// hosts the system clocks must be synchronized for max-concurrency to
// be exact, but that unsynchronized clocks "do not affect the DFG
// construction or the other metrics". shift_host_clocks makes that
// claim testable: it applies a per-host offset to every event's start
// timestamp (durations untouched), producing the log an unsynchronized
// cluster would have recorded. The property suite asserts the paper's
// claim on the shifted logs.
#pragma once

#include <map>
#include <string>

#include "model/event_log.hpp"

namespace st::model {

/// Returns a copy of `log` with every event's start shifted by the
/// offset of its host (hosts without an entry are unshifted).
[[nodiscard]] EventLog shift_host_clocks(const EventLog& log,
                                         const std::map<std::string, Micros>& offsets);

}  // namespace st::model
