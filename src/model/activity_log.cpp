#include "model/activity_log.hpp"

#include <utility>

#include "model/case_walk.hpp"

namespace st::model {

ActivityTrace activity_trace(const Case& c, const Mapping& f) {
  ActivityTrace trace;
  trace.reserve(c.size());
  for_each_mapped_event(c, f, [&](Activity&& a, const Event&) { trace.push_back(std::move(a)); });
  return trace;
}

void merge_variant_counts(VariantCounts& to, VariantCounts&& from) {
  if (to.empty()) {
    to = std::move(from);
    return;
  }
  while (!from.empty()) {
    auto node = from.extract(from.begin());
    const auto result = to.insert(std::move(node));
    if (!result.inserted) result.position->second += result.node.mapped();
  }
}

void ActivityLog::add_case(const Case& c, const Mapping& f) {
  ActivityTrace trace = activity_trace(c, f);
  for (const Activity& a : trace) activities_.insert(a);
  total_instances_ += trace.size();
  per_case_.emplace(c.id(), trace);
  ++variants_[std::move(trace)];
  ++case_count_;
}

void ActivityLog::merge(ActivityLog&& other) {
  merge_variant_counts(variants_, std::move(other.variants_));
  per_case_.merge(std::move(other.per_case_));  // first-wins, like emplace
  activities_.merge(std::move(other.activities_));
  case_count_ += other.case_count_;
  total_instances_ += other.total_instances_;
}

ActivityLog ActivityLog::from_parts(VariantCounts variants, std::map<CaseId, ActivityTrace> per_case,
                                    std::set<Activity> activities, std::size_t case_count,
                                    std::size_t total_instances) {
  ActivityLog out;
  out.variants_ = std::move(variants);
  out.per_case_ = std::move(per_case);
  out.activities_ = std::move(activities);
  out.case_count_ = case_count;
  out.total_instances_ = total_instances;
  return out;
}

ActivityLog ActivityLog::build(const EventLog& log, const Mapping& f) {
  ActivityLog out;
  for (const Case& c : log.cases()) out.add_case(c, f);
  return out;
}

}  // namespace st::model
