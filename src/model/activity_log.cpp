#include "model/activity_log.hpp"

namespace st::model {

ActivityLog ActivityLog::build(const EventLog& log, const Mapping& f) {
  ActivityLog out;
  for (const Case& c : log.cases()) {
    ActivityTrace trace;
    trace.reserve(c.size());
    for (const Event& e : c.events()) {
      if (auto a = f(e)) {
        out.activities_.insert(*a);
        trace.push_back(std::move(*a));
      }
    }
    out.total_instances_ += trace.size();
    out.per_case_.emplace(c.id(), trace);
    ++out.variants_[std::move(trace)];
    ++out.case_count_;
  }
  return out;
}

}  // namespace st::model
