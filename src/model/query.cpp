#include "model/query.hpp"

#include "support/strings.hpp"

namespace st::model {

bool call_in_family(std::string_view call, std::string_view family) {
  if (call == family) return true;
  // The variants: p<family>64, <family>v, p<family>v, p<family>v2.
  const auto is_variant = [&](bool p_prefix, std::string_view suffix) {
    const std::size_t want = (p_prefix ? 1 : 0) + family.size() + suffix.size();
    if (call.size() != want) return false;
    std::string_view rest = call;
    if (p_prefix) {
      if (rest.front() != 'p') return false;
      rest.remove_prefix(1);
    }
    if (rest.substr(0, family.size()) != family) return false;
    return rest.substr(family.size()) == suffix;
  };
  return is_variant(true, "64") || is_variant(false, "v") || is_variant(true, "v") ||
         is_variant(true, "v2");
}

Query Query::fp_contains(std::string substr) const {
  Query q = *this;
  q.fp_substrings_.push_back(std::move(substr));
  return q;
}

Query Query::calls(std::vector<std::string> families) const {
  Query q = *this;
  for (auto& f : families) q.call_families_.push_back(std::move(f));
  return q;
}

Query Query::between(Micros from, Micros to) const {
  Query q = *this;
  q.from_ = from;
  q.to_ = to;
  return q;
}

Query Query::cids(std::set<std::string> cids) const {
  Query q = *this;
  q.cids_ = std::move(cids);
  return q;
}

Query Query::hosts(std::set<std::string> hosts) const {
  Query q = *this;
  q.hosts_ = std::move(hosts);
  return q;
}

bool Query::matches(const Event& e) const {
  for (const auto& needle : fp_substrings_) {
    if (!contains(e.fp, needle)) return false;
  }
  if (!call_families_.empty()) {
    bool any = false;
    for (const auto& family : call_families_) {
      if (call_in_family(e.call, family)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return e.start >= from_ && e.start < to_;
}

bool Query::matches_case(const Case& c) const {
  if (cids_ && !cids_->contains(c.id().cid)) return false;
  if (hosts_ && !hosts_->contains(c.id().host)) return false;
  return true;
}

EventLog Query::apply(const EventLog& log) const {
  EventLog out;
  out.adopt_owners_of(log);  // the view keeps the source's strings alive
  for (const Case& c : log.cases()) {
    if (!matches_case(c)) continue;
    out.add_case(c.filtered([this](const Event& e) { return matches(e); }));
  }
  return out;
}

std::string Query::describe() const {
  std::string out;
  for (const auto& s : fp_substrings_) out += "fp~" + s + " ";
  if (!call_families_.empty()) {
    out += "calls{";
    for (std::size_t i = 0; i < call_families_.size(); ++i) {
      out += (i > 0 ? "," : "") + call_families_[i];
    }
    out += "} ";
  }
  if (from_ != std::numeric_limits<Micros>::min() ||
      to_ != std::numeric_limits<Micros>::max()) {
    out += "t[" + std::to_string(from_) + "," + std::to_string(to_) + ") ";
  }
  if (cids_) out += "cids(" + std::to_string(cids_->size()) + ") ";
  if (hosts_) out += "hosts(" + std::to_string(hosts_->size()) + ") ";
  if (!out.empty()) out.pop_back();
  return out.empty() ? "all" : out;
}

}  // namespace st::model
