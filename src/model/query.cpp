#include "model/query.hpp"

#include <algorithm>
#include <optional>

#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "support/strings.hpp"

namespace st::model {

bool call_in_family(std::string_view call, std::string_view family) {
  if (call == family) return true;
  // The variants: p<family>64, <family>v, p<family>v, p<family>v2.
  const auto is_variant = [&](bool p_prefix, std::string_view suffix) {
    const std::size_t want = (p_prefix ? 1 : 0) + family.size() + suffix.size();
    if (call.size() != want) return false;
    std::string_view rest = call;
    if (p_prefix) {
      if (rest.front() != 'p') return false;
      rest.remove_prefix(1);
    }
    if (rest.substr(0, family.size()) != family) return false;
    return rest.substr(family.size()) == suffix;
  };
  return is_variant(true, "64") || is_variant(false, "v") || is_variant(true, "v") ||
         is_variant(true, "v2");
}

Query Query::fp_contains(std::string substr) const {
  Query q = *this;
  q.fp_substrings_.push_back(std::move(substr));
  return q;
}

Query Query::calls(std::vector<std::string> families) const {
  Query q = *this;
  for (auto& f : families) q.call_families_.push_back(std::move(f));
  // Precompile the family match: call_in_family accepts exactly five
  // spellings per family, so the whole accept set is finite — expand
  // it into one sorted vector and matches() binary-searches it.
  q.compiled_calls_.clear();
  q.compiled_calls_.reserve(q.call_families_.size() * 5);
  for (const auto& f : q.call_families_) {
    q.compiled_calls_.push_back(f);
    q.compiled_calls_.push_back("p" + f + "64");
    q.compiled_calls_.push_back(f + "v");
    q.compiled_calls_.push_back("p" + f + "v");
    q.compiled_calls_.push_back("p" + f + "v2");
  }
  std::sort(q.compiled_calls_.begin(), q.compiled_calls_.end());
  q.compiled_calls_.erase(std::unique(q.compiled_calls_.begin(), q.compiled_calls_.end()),
                          q.compiled_calls_.end());
  return q;
}

Query Query::between(Micros from, Micros to) const {
  Query q = *this;
  q.from_ = from;
  q.to_ = to;
  return q;
}

Query Query::cids(std::set<std::string> cids) const {
  Query q = *this;
  q.cids_ = std::move(cids);
  return q;
}

Query Query::hosts(std::set<std::string> hosts) const {
  Query q = *this;
  q.hosts_ = std::move(hosts);
  return q;
}

bool Query::matches(const Event& e) const {
  for (const auto& needle : fp_substrings_) {
    if (!contains(e.fp, needle)) return false;
  }
  if (!compiled_calls_.empty()) {
    const auto it = std::lower_bound(
        compiled_calls_.begin(), compiled_calls_.end(), e.call,
        [](const std::string& a, std::string_view b) { return std::string_view(a) < b; });
    if (it == compiled_calls_.end() || *it != e.call) return false;
  }
  return e.start >= from_ && e.start < to_;
}

bool Query::matches_case(const Case& c) const {
  if (cids_ && !cids_->contains(c.id().cid)) return false;
  if (hosts_ && !hosts_->contains(c.id().host)) return false;
  return true;
}

std::optional<Case> Query::apply_case(const Case& c) const {
  if (!matches_case(c)) return std::nullopt;
  return c.filtered([this](const Event& e) { return matches(e); });
}

EventLog Query::apply(const EventLog& log) const {
  EventLog out;
  out.adopt_owners_of(log);  // the view keeps the source's strings alive
  for (const Case& c : log.cases()) {
    if (auto filtered = apply_case(c)) out.add_case(std::move(*filtered));
  }
  return out;
}

EventLog Query::apply(const EventLog& log, ThreadPool& pool) const {
  const std::span<const Case> cases = log.cases();
  EventLog out;
  out.adopt_owners_of(log);
  // Per-case filtering is independent work; nullopt marks cases the
  // case-level restrictions drop. Collecting in input order afterwards
  // reproduces the serial apply() byte for byte.
  std::vector<std::optional<Case>> kept(cases.size());
  parallel_for(pool, 0, cases.size(), [&](std::size_t i) { kept[i] = apply_case(cases[i]); });
  for (auto& k : kept) {
    if (k) out.add_case(std::move(*k));
  }
  return out;
}

std::string Query::describe() const {
  // Clauses joined by single spaces — no build-then-pop trailing-space
  // tricks, so the result never ends in a separator.
  std::string out;
  const auto clause = [&out](std::string_view text) {
    if (!out.empty()) out += ' ';
    out += text;
  };
  for (const auto& s : fp_substrings_) clause("fp~" + s);
  if (!call_families_.empty()) {
    std::string c = "calls{";
    for (std::size_t i = 0; i < call_families_.size(); ++i) {
      if (i > 0) c += ',';
      c += call_families_[i];
    }
    c += '}';
    clause(c);
  }
  if (from_ != std::numeric_limits<Micros>::min() ||
      to_ != std::numeric_limits<Micros>::max()) {
    clause("t[" + std::to_string(from_) + "," + std::to_string(to_) + ")");
  }
  if (cids_) clause("cids(" + std::to_string(cids_->size()) + ")");
  if (hosts_) clause("hosts(" + std::to_string(hosts_->size()) + ")");
  return out.empty() ? "all" : out;
}

}  // namespace st::model
