#include "model/query.hpp"

#include <algorithm>
#include <charconv>
#include <optional>

#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "support/strings.hpp"

namespace st::model {
namespace {

// ---- the wire grammar's value atoms ------------------------------------
//
// An atom is rendered bare when every byte is printable ASCII and none
// of it collides with the grammar's structure (space separates
// clauses; ',' and '}' terminate set members; '"' and '\' introduce
// quoting). Anything else — spaces, control bytes, UTF-8, the
// structural characters themselves — renders double-quoted with \",
// \\ and \xHH escapes. parse_atom accepts both spellings, so
// describe()'s choice is a canonicalization, not a restriction.

bool atom_is_bare(std::string_view a) {
  if (a.empty()) return false;
  for (const unsigned char c : a) {
    if (c <= 0x20 || c >= 0x7f) return false;
    if (c == '"' || c == '\\' || c == ',' || c == '{' || c == '}') return false;
  }
  return true;
}

std::string render_atom(std::string_view a) {
  if (atom_is_bare(a)) return std::string(a);
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "\"";
  for (const unsigned char c : a) {
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c < 0x20 || c >= 0x7f) {
      out += "\\x";
      out += kHex[c >> 4];
      out += kHex[c & 0xf];
    } else {
      out += static_cast<char>(c);
    }
  }
  out += '"';
  return out;
}

/// Renders a brace-set clause: name{atom,atom,...}.
template <class Range>
std::string render_set(std::string_view name, const Range& values) {
  std::string out(name);
  out += '{';
  bool first = true;
  for (const auto& v : values) {
    if (!first) out += ',';
    out += render_atom(v);
    first = false;
  }
  out += '}';
  return out;
}

// ---- the parser --------------------------------------------------------

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  [[nodiscard]] bool done() const { return pos_ >= text_.size(); }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  [[noreturn]] void fail(const std::string& what) const { throw QueryParseError(what, pos_); }

  void skip_spaces() {
    while (!done() && text_[pos_] == ' ') ++pos_;
  }

  /// Consumes `lit` if it is next; false (no movement) otherwise.
  bool consume(std::string_view lit) {
    if (text_.substr(pos_).starts_with(lit)) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  void expect(char c, const char* context) {
    if (done() || peek() != c) {
      fail(std::string("expected '") + c + "' " + context);
    }
    ++pos_;
  }

  /// One value atom: quoted (escapes decoded) or bare. A bare atom
  /// runs until a character of `terminators`, end of input, or a space;
  /// any other non-bare character is an error — quote such values.
  std::string parse_atom(std::string_view terminators) {
    if (!done() && peek() == '"') return parse_quoted();
    const std::size_t start = pos_;
    std::string out;
    while (!done()) {
      const char c = peek();
      if (c == ' ' || terminators.find(c) != std::string_view::npos) break;
      const auto u = static_cast<unsigned char>(c);
      if (u <= 0x20 || u >= 0x7f || c == '"' || c == '\\' || c == ',' || c == '{' || c == '}') {
        fail("character needs a quoted value");
      }
      out += c;
      ++pos_;
    }
    if (pos_ == start) fail("empty value (write it quoted: \"\")");
    return out;
  }

  std::int64_t parse_int() {
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    std::int64_t value = 0;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr == begin) fail("expected integer");
    pos_ += static_cast<std::size_t>(ptr - begin);
    return value;
  }

  /// The members of a brace set, up to and including the closing '}'.
  /// Lenient about spaces around members and separators — the
  /// canonical form has none, but hand-typed requests do.
  std::vector<std::string> parse_atom_list() {
    std::vector<std::string> out;
    skip_spaces();
    if (consume("}")) return out;
    for (;;) {
      out.push_back(parse_atom(",}"));
      skip_spaces();
      if (consume(",")) {
        skip_spaces();
        continue;
      }
      if (consume("}")) break;
      fail("expected ',' or '}' in set");
    }
    return out;
  }

 private:
  std::string parse_quoted() {
    ++pos_;  // the opening quote
    std::string out;
    while (!done()) {
      const char c = peek();
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (done()) fail("truncated escape");
        const char e = peek();
        if (e == '"' || e == '\\') {
          out += e;
          ++pos_;
        } else if (e == 'x') {
          ++pos_;
          if (pos_ + 2 > text_.size()) fail("truncated \\xHH escape");
          const int hi = hex_digit(text_[pos_]);
          const int lo = hex_digit(text_[pos_ + 1]);
          if (hi < 0 || lo < 0) fail("bad \\xHH escape");
          out += static_cast<char>((hi << 4) | lo);
          pos_ += 2;
        } else {
          fail("unknown escape (\\\", \\\\ and \\xHH only)");
        }
      } else {
        out += c;
        ++pos_;
      }
    }
    fail("unterminated quoted value");
  }

  static int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void sort_unique(std::vector<std::string>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

bool call_in_family(std::string_view call, std::string_view family) {
  if (call == family) return true;
  // The variants: p<family>64, <family>v, p<family>v, p<family>v2.
  const auto is_variant = [&](bool p_prefix, std::string_view suffix) {
    const std::size_t want = (p_prefix ? 1 : 0) + family.size() + suffix.size();
    if (call.size() != want) return false;
    std::string_view rest = call;
    if (p_prefix) {
      if (rest.front() != 'p') return false;
      rest.remove_prefix(1);
    }
    if (rest.substr(0, family.size()) != family) return false;
    return rest.substr(family.size()) == suffix;
  };
  return is_variant(true, "64") || is_variant(false, "v") || is_variant(true, "v") ||
         is_variant(true, "v2");
}

Query Query::fp_contains(std::string substr) const {
  Query q = *this;
  q.fp_substrings_.push_back(std::move(substr));
  // Conjunctive restrictions are order-insensitive: keep them sorted +
  // deduplicated so describe() is canonical without a render-time sort.
  sort_unique(q.fp_substrings_);
  return q;
}

Query Query::calls(std::vector<std::string> families) const {
  Query q = *this;
  for (auto& f : families) q.call_families_.push_back(std::move(f));
  sort_unique(q.call_families_);
  // Precompile the family match: call_in_family accepts exactly five
  // spellings per family, so the whole accept set is finite — expand
  // it into one sorted vector and matches() binary-searches it.
  q.compiled_calls_.clear();
  q.compiled_calls_.reserve(q.call_families_.size() * 5);
  for (const auto& f : q.call_families_) {
    q.compiled_calls_.push_back(f);
    q.compiled_calls_.push_back("p" + f + "64");
    q.compiled_calls_.push_back(f + "v");
    q.compiled_calls_.push_back("p" + f + "v");
    q.compiled_calls_.push_back("p" + f + "v2");
  }
  sort_unique(q.compiled_calls_);
  return q;
}

Query Query::between(Micros from, Micros to) const {
  Query q = *this;
  q.from_ = from;
  q.to_ = to;
  return q;
}

Query Query::cids(std::set<std::string> cids) const {
  Query q = *this;
  q.cids_ = std::move(cids);
  return q;
}

Query Query::hosts(std::set<std::string> hosts) const {
  Query q = *this;
  q.hosts_ = std::move(hosts);
  return q;
}

bool Query::matches(const Event& e) const {
  for (const auto& needle : fp_substrings_) {
    if (!contains(e.fp, needle)) return false;
  }
  if (!compiled_calls_.empty()) {
    const auto it = std::lower_bound(
        compiled_calls_.begin(), compiled_calls_.end(), e.call,
        [](const std::string& a, std::string_view b) { return std::string_view(a) < b; });
    if (it == compiled_calls_.end() || *it != e.call) return false;
  }
  return e.start >= from_ && e.start < to_;
}

bool Query::matches_case(const Case& c) const {
  if (cids_ && !cids_->contains(c.id().cid)) return false;
  if (hosts_ && !hosts_->contains(c.id().host)) return false;
  return true;
}

std::optional<Case> Query::apply_case(const Case& c) const {
  if (!matches_case(c)) return std::nullopt;
  return c.filtered([this](const Event& e) { return matches(e); });
}

EventLog Query::apply(const EventLog& log) const {
  EventLog out;
  out.adopt_owners_of(log);  // the view keeps the source's strings alive
  for (const Case& c : log.cases()) {
    if (auto filtered = apply_case(c)) out.add_case(std::move(*filtered));
  }
  return out;
}

EventLog Query::apply(const EventLog& log, ThreadPool& pool) const {
  const std::span<const Case> cases = log.cases();
  EventLog out;
  out.adopt_owners_of(log);
  // Per-case filtering is independent work; nullopt marks cases the
  // case-level restrictions drop. Collecting in input order afterwards
  // reproduces the serial apply() byte for byte.
  std::vector<std::optional<Case>> kept(cases.size());
  parallel_for(pool, 0, cases.size(), [&](std::size_t i) { kept[i] = apply_case(cases[i]); });
  for (auto& k : kept) {
    if (k) out.add_case(std::move(*k));
  }
  return out;
}

std::string Query::describe() const {
  // Clauses joined by single spaces in the fixed grammar order —
  // members already sorted by the builders, so this render IS the
  // canonical form (and therefore the Catalog cache fingerprint).
  std::string out;
  const auto clause = [&out](std::string_view text) {
    if (!out.empty()) out += ' ';
    out += text;
  };
  for (const auto& s : fp_substrings_) clause("fp~" + render_atom(s));
  if (!call_families_.empty()) clause(render_set("calls", call_families_));
  if (from_ != std::numeric_limits<Micros>::min() ||
      to_ != std::numeric_limits<Micros>::max()) {
    clause("t[" + std::to_string(from_) + "," + std::to_string(to_) + ")");
  }
  if (cids_) clause(render_set("cids", *cids_));
  if (hosts_) clause(render_set("hosts", *hosts_));
  return out.empty() ? "all" : out;
}

Query Query::parse(std::string_view text) {
  Query q;
  Cursor cur(text);
  cur.skip_spaces();
  if (cur.done()) cur.fail("empty query (the unrestricted query is \"all\")");
  // "all" is only valid alone — it names the absence of clauses.
  {
    Cursor probe = cur;
    if (probe.consume("all")) {
      probe.skip_spaces();
      if (probe.done()) return q;
    }
  }
  while (!cur.done()) {
    if (cur.consume("fp~")) {
      q = q.fp_contains(cur.parse_atom(""));
    } else if (cur.consume("calls{")) {
      q = q.calls(cur.parse_atom_list());
    } else if (cur.consume("t[")) {
      // Lenient about spaces around the bounds, like the brace sets.
      cur.skip_spaces();
      const Micros from = cur.parse_int();
      cur.skip_spaces();
      cur.expect(',', "between the window bounds");
      cur.skip_spaces();
      const Micros to = cur.parse_int();
      cur.skip_spaces();
      cur.expect(')', "after the time window (half-open: t[from,to))");
      q = q.between(from, to);
    } else if (cur.consume("cids{")) {
      auto atoms = cur.parse_atom_list();
      q = q.cids(std::set<std::string>(std::make_move_iterator(atoms.begin()),
                                       std::make_move_iterator(atoms.end())));
    } else if (cur.consume("hosts{")) {
      auto atoms = cur.parse_atom_list();
      q = q.hosts(std::set<std::string>(std::make_move_iterator(atoms.begin()),
                                        std::make_move_iterator(atoms.end())));
    } else {
      cur.fail("unknown clause (fp~ / calls{} / t[,) / cids{} / hosts{})");
    }
    if (!cur.done()) {
      if (cur.peek() != ' ') cur.fail("expected space between clauses");
      cur.skip_spaces();
    }
  }
  return q;
}

bool Query::operator==(const Query& other) const {
  // compiled_calls_ is derived from call_families_, so it is excluded.
  return fp_substrings_ == other.fp_substrings_ && call_families_ == other.call_families_ &&
         from_ == other.from_ && to_ == other.to_ && cids_ == other.cids_ &&
         hosts_ == other.hosts_;
}

}  // namespace st::model
