// The event model of Sec. III/IV (Eq. 1):
//
//   e = [cid, host, rid, pid, call, start, dur, fp, size]
//
// cid/host/rid come from the trace-file name, the rest from the strace
// record. A Case is the time-ordered event sequence of one trace file
// (Eq. 2); the CaseId (cid, host, rid) identifies it uniquely.
//
// Event string fields are std::string_views, not owned strings: they
// point into the TraceBuffer the records were parsed from, into a
// StringArena (synthesized/interned strings), or at string literals.
// An EventLog carries the owners of that storage as shared_ptrs (its
// arena plus any adopted TraceBuffers), mirroring strace::ReadResult —
// holding the log (or any log derived from it) keeps every event's
// views alive. Events that escape every owning log are valid only as
// long as some owner is.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "support/timeparse.hpp"

namespace st::model {

struct Event {
  std::string_view cid;   ///< command identifier (from the trace file name)
  std::string_view host;  ///< host machine name
  std::uint64_t rid = 0;  ///< launching (MPI) process id
  std::uint64_t pid = 0;  ///< pid executing the system call (-f)
  std::string_view call;  ///< system call name
  Micros start = 0;       ///< wall-clock start, microseconds of day (-tt)
  Micros dur = 0;         ///< duration in microseconds (-T)
  std::string_view fp;    ///< accessed file path (-y)
  std::int64_t size = -1; ///< bytes transferred (return value); -1 if n/a

  [[nodiscard]] Micros end() const { return start + dur; }
  [[nodiscard]] bool has_size() const { return size >= 0; }

  /// Content comparison (string_view == compares characters).
  [[nodiscard]] bool operator==(const Event&) const = default;
};

/// Identity of a case: one trace file == one case (paper Sec. IV).
/// Owns its strings (cases are few; events are many).
struct CaseId {
  std::string cid;
  std::string host;
  std::uint64_t rid = 0;

  [[nodiscard]] bool operator==(const CaseId&) const = default;
  [[nodiscard]] auto operator<=>(const CaseId&) const = default;

  [[nodiscard]] std::string to_string() const {
    return cid + "_" + host + "_" + std::to_string(rid);
  }
};

}  // namespace st::model

template <>
struct std::hash<st::model::CaseId> {
  std::size_t operator()(const st::model::CaseId& id) const noexcept {
    const std::size_t h1 = std::hash<std::string>{}(id.cid);
    const std::size_t h2 = std::hash<std::string>{}(id.host);
    const std::size_t h3 = std::hash<std::uint64_t>{}(id.rid);
    std::size_t h = h1;
    h = h * 0x9E3779B97F4A7C15ULL + h2;
    h = h * 0x9E3779B97F4A7C15ULL + h3;
    return h;
  }
};
