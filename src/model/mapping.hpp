// Mapping f : E ⇀ A — the partial function from events to activities
// (paper Sec. IV). A mapping both *abstracts* (many events -> one
// activity name) and *queries* (events mapped to nullopt are excluded
// from the activity trace), exactly the dual role the paper describes:
// "an activity-log can be seen as a query and an abstraction applied
// to an event-log through the mapping f".
//
// Activities are strings; composite activities produced by the built-in
// factories use '\n' between the call name and the path abstraction
// ("read\n/usr/lib"), which renders as a two-line node label in DOT —
// the visual style of the paper's figures.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "model/event.hpp"

namespace st::model {

using Activity = std::string;

/// Site-specific path abstraction used by the IOR experiments (f-bar):
/// longest-prefix match of the file path against named site prefixes
/// ("$SCRATCH", "$HOME", "$SOFTWARE"); anything unmatched falls back to
/// `default_label` ("Node Local" in the paper's figures).
class SitePathMap {
 public:
  SitePathMap() = default;
  explicit SitePathMap(std::string default_label) : default_label_(std::move(default_label)) {}

  /// Registers prefix -> label ("/p/scratch" -> "$SCRATCH"). Longest
  /// prefix wins regardless of registration order.
  void add_prefix(std::string prefix, std::string label);

  /// Result of matching a path against the registered prefixes.
  struct Match {
    std::string label;            ///< site label or default label
    std::string_view remainder;   ///< path after the matched prefix ("" if default)
    bool matched = false;         ///< false when the default label applied
  };
  [[nodiscard]] Match match(std::string_view fp) const;

  [[nodiscard]] std::string abstract(std::string_view fp) const;
  [[nodiscard]] const std::string& default_label() const { return default_label_; }

  /// The JUWELS-like layout used by our IOR reproduction:
  ///   /p/scratch   -> $SCRATCH      /p/home     -> $HOME
  ///   /p/software  -> $SOFTWARE     /usr, /etc, /dev, /proc, /tmp -> Node Local
  [[nodiscard]] static SitePathMap juwels_like();

 private:
  std::vector<std::pair<std::string, std::string>> prefixes_;
  std::string default_label_ = "Node Local";
};

class Mapping {
 public:
  using Fn = std::function<std::optional<Activity>(const Event&)>;

  Mapping() = default;
  Mapping(std::string name, Fn fn) : name_(std::move(name)), fn_(std::move(fn)) {}

  /// Applies the partial function. nullopt == event not mapped.
  [[nodiscard]] std::optional<Activity> operator()(const Event& e) const {
    return fn_ ? fn_(e) : std::nullopt;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool valid() const { return static_cast<bool>(fn_); }

  // -- composition ---------------------------------------------------

  /// Restricts the mapping to events whose fp contains `substr`
  /// (e.g. the "/usr/lib" query of Fig. 4).
  [[nodiscard]] Mapping filtered_fp(std::string_view substr) const;

  /// Restricts the mapping with an arbitrary predicate.
  [[nodiscard]] Mapping filtered(std::string name,
                                 std::function<bool(const Event&)> pred) const;

  // -- factories -----------------------------------------------------

  /// f-hat (Eq. 4): "call\n" + fp truncated to its top `levels`
  /// directories. Example: read of /usr/lib/x/libc.so -> "read\n/usr/lib".
  [[nodiscard]] static Mapping call_top_dirs(int levels);

  /// Fig. 4 style: "call\n" + last `n` path components
  /// ("read\nx86_64-linux-gnu/libc.so.6").
  [[nodiscard]] static Mapping call_last_components(int n);

  /// Activity = call name only.
  [[nodiscard]] static Mapping call_only();

  /// f-bar (Sec. V): "call\n" + site abstraction of the path, with the
  /// site map applied at `extra_levels` below a matched prefix so that
  /// "$SCRATCH/ssf" vs "$SCRATCH/fpp" can be distinguished when
  /// extra_levels == 1 (Fig. 8b) or collapsed when 0 (Fig. 8a).
  [[nodiscard]] static Mapping call_site(SitePathMap map, int extra_levels = 0);

  /// Fully custom mapping.
  [[nodiscard]] static Mapping custom(std::string name, Fn fn) {
    return Mapping(std::move(name), std::move(fn));
  }

 private:
  std::string name_;
  Fn fn_;
};

/// The registry behind every CLI --map flag AND the shard protocol:
/// a Mapping wraps a std::function, so it cannot cross a process
/// boundary — shard workers receive one of these short names instead
/// and rebuild the mapping locally. Accepted names:
///   top1|top2    call_top_dirs(1|2)
///   last1|last2  call_last_components(1|2)
///   call         call_only()
///   site|site1   call_site(juwels_like, 0|1)
/// Throws ParseError on anything else.
[[nodiscard]] Mapping mapping_by_name(const std::string& name);

}  // namespace st::model
