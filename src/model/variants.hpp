// Trace-variant comparison of two activity logs.
//
// Partition coloring (Sec. IV-C) contrasts run sets at the node/edge
// level; this extension contrasts them at the *whole-trace* level:
// which activity sequences occur only in one run set, and with which
// multiplicities a shared sequence occurs in each. For homogeneous
// SPMD programs (one variant per run, as in L(Ca) = {⟨…⟩³}) this is a
// one-line fingerprint of behavioural differences between runs.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "model/activity_log.hpp"

namespace st::model {

struct VariantDiff {
  /// Variants occurring only in the first (green) log, with counts.
  std::map<ActivityTrace, std::size_t> green_only;
  /// Variants occurring only in the second (red) log, with counts.
  std::map<ActivityTrace, std::size_t> red_only;
  /// Variants in both: trace -> (green multiplicity, red multiplicity).
  std::map<ActivityTrace, std::pair<std::size_t, std::size_t>> common;

  [[nodiscard]] bool identical_behaviour() const {
    return green_only.empty() && red_only.empty();
  }

  /// Fraction of green cases whose trace also occurs in red, in [0,1];
  /// 1 when every green case behaves like some red case.
  [[nodiscard]] double green_coverage() const;
  [[nodiscard]] double red_coverage() const;
};

/// Core of the comparison: works on the bare variant multisets, so a
/// streaming VariantsSink's output can be diffed without materializing
/// full ActivityLogs. compare_variants is a thin wrapper over this.
[[nodiscard]] VariantDiff compare_variant_counts(const VariantCounts& green,
                                                 const VariantCounts& red);

[[nodiscard]] VariantDiff compare_variants(const ActivityLog& green, const ActivityLog& red);

}  // namespace st::model
