// Bridge from the strace substrate to the event model: applies the
// attribute extraction rules of Sec. III to raw records.
//
//   - cid/host/rid come from the trace file name,
//   - size is parsed only for read/write variants, from the return
//     value (bytes actually transferred, not bytes requested),
//   - records without a duration get dur = 0,
//   - failed calls (retval < 0) carry size -1.
#pragma once

#include <string>
#include <vector>

#include "model/event_log.hpp"
#include "strace/filename.hpp"
#include "strace/record.hpp"

namespace st::model {

/// Converts one record. Returns nullopt for non-syscall records
/// (signals/exits) — these are not events.
[[nodiscard]] std::optional<Event> event_from_record(const strace::TraceFileId& id,
                                                     const strace::RawRecord& rec);

/// Builds the case for one trace file's records (sorted by start).
[[nodiscard]] Case case_from_records(const strace::TraceFileId& id,
                                     const std::vector<strace::RawRecord>& records);

/// Reads a set of trace files from disk into an event log. File names
/// must follow the cid_host_rid.st convention; files that do not parse
/// as such throw ParseError. Parsing of the file set is parallelized
/// over `threads` workers (0 = hardware concurrency).
[[nodiscard]] EventLog event_log_from_files(const std::vector<std::string>& paths,
                                            std::size_t threads = 0);

}  // namespace st::model
