// Bridge from the strace substrate to the event model: applies the
// attribute extraction rules of Sec. III to raw records.
//
//   - cid/host/rid come from the trace file name,
//   - size is parsed only for read/write variants, from the return
//     value (bytes actually transferred, not bytes requested),
//   - records without a duration get dur = 0,
//   - failed calls (retval < 0) carry size -1.
//
// Zero-copy contract: the produced Events hold string_views — call/fp
// point into the records' storage (TraceBuffer/arena), cid/host are
// interned once per case into the arena the caller passes (usually
// EventLog::arena()). event_log_from_files wires all of this up: it
// mmaps the files, parses them with mixed per-file + intra-file
// parallelism on one shared pool, adopts every TraceBuffer into the
// returned log, and surfaces reader warnings via EventLog::warnings()
// prefixed with the originating path (ordered by file, then line).
#pragma once

#include <string>
#include <vector>

#include "model/event_log.hpp"
#include "strace/filename.hpp"
#include "strace/record.hpp"

namespace st::model {

/// Converts one record. Returns nullopt for non-syscall records
/// (signals/exits) — these are not events. The event's cid/host view
/// into `id`, call/fp into the record's storage: both must outlive the
/// event (case_from_records re-points cid/host at interned copies).
[[nodiscard]] std::optional<Event> event_from_record(const strace::TraceFileId& id,
                                                     const strace::RawRecord& rec);

/// Builds the case for one trace file's records (sorted by start).
/// cid/host are interned once into `arena`; call/fp stay views into
/// the records' storage. The caller owns keeping both alive — attach
/// the arena and the records' TraceBuffer to the destination EventLog
/// (arena()/adopt()).
[[nodiscard]] Case case_from_records(const strace::TraceFileId& id,
                                     const std::vector<strace::RawRecord>& records,
                                     strace::StringArena& arena);

/// Reads a set of trace files from disk into an event log. File names
/// must follow the cid_host_rid.st convention; files that do not parse
/// as such throw ParseError (checked for every path before any I/O;
/// first offender in input order wins). Built on the streaming
/// pipeline (pipeline/stream.hpp): files are mmapped and parsed with
/// mixed per-file + intra-file parallelism over `threads` workers
/// (0 = hardware concurrency), and each file's record -> Case
/// conversion is enqueued on the same pool the moment that file's
/// parse chunks finish folding (per-task arenas adopted into the log),
/// so parse and convert overlap while case order, event order and
/// warning order stay identical to a single-worker build. Reader
/// warnings land in EventLog::warnings() deterministically ordered by
/// file then line, with identical consecutive messages collapsed to
/// the first occurrence.
[[nodiscard]] EventLog event_log_from_files(const std::vector<std::string>& paths,
                                            std::size_t threads = 0);

}  // namespace st::model
