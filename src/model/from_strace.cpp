#include "model/from_strace.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "strace/reader.hpp"
#include "support/errors.hpp"

namespace st::model {

std::optional<Event> event_from_record(const strace::TraceFileId& id,
                                       const strace::RawRecord& rec) {
  if (rec.kind != strace::RecordKind::Complete) return std::nullopt;
  Event e;
  e.cid = id.cid;
  e.host = id.host;
  e.rid = id.rid;
  e.pid = rec.pid;
  e.call = rec.call;
  e.start = rec.timestamp;
  e.dur = rec.duration.value_or(0);
  e.fp = rec.path;
  // Transfer size: return value, and only for data-moving calls
  // (Sec. III rule 6). Failed calls carry no size.
  if (rec.is_data_transfer() && rec.retval && *rec.retval >= 0) {
    e.size = *rec.retval;
  } else {
    e.size = -1;
  }
  return e;
}

Case case_from_records(const strace::TraceFileId& id,
                       const std::vector<strace::RawRecord>& records,
                       strace::StringArena& arena) {
  // One interned copy of cid/host serves every event of the case — the
  // old per-event heap strings were the model layer's dominant cost.
  const std::string_view cid = arena.intern(id.cid);
  const std::string_view host = arena.intern(id.host);
  std::vector<Event> events;
  events.reserve(records.size());
  for (const auto& rec : records) {
    if (auto e = event_from_record(id, rec)) {
      e->cid = cid;
      e->host = host;
      events.push_back(*e);
    }
  }
  return Case(CaseId{id.cid, id.host, id.rid}, std::move(events));
}

EventLog event_log_from_files(const std::vector<std::string>& paths, std::size_t threads) {
  // Validate every file name before any I/O: the error for a bad name
  // is deterministic (first offender in input order) and cheap.
  std::vector<strace::TraceFileId> ids;
  ids.reserve(paths.size());
  for (const auto& path : paths) {
    auto id = strace::parse_trace_filename(path);
    if (!id) throw ParseError("trace file name does not follow cid_host_rid.st: " + path);
    ids.push_back(std::move(*id));
  }

  // Mixed parallelism: all (file, chunk) parse tasks share one pool,
  // so a single huge trace and a swarm of small ones both saturate it.
  ThreadPool pool(threads);
  strace::ParallelReadOptions opts;
  opts.pool = &pool;
  auto results = strace::read_trace_files_mixed(paths, opts);

  // Conversion fans out on the same pool. EventLog::arena() is not
  // thread-safe, so tasks intern cid/host into private arenas the log
  // adopts below — one arena per CHUNK of files, not per file: an
  // arena's first block is 64 KiB, and a swarm of small traces (the
  // workload mixed parallelism exists for) must not pin 64 KiB per
  // file to hold two short strings each. Assembling strictly in input
  // order keeps case order and warning order identical to a 1-worker
  // build.
  const std::size_t n = results.size();
  const std::size_t chunks = default_chunks(pool, n);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<Case> cases(n);
  std::vector<std::shared_ptr<strace::StringArena>> arenas(chunks);
  parallel_for(pool, 0, chunks, [&](std::size_t c) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(n, lo + chunk_size);
    if (lo >= hi) return;
    auto arena = std::make_shared<strace::StringArena>();
    for (std::size_t i = lo; i < hi; ++i) {
      cases[i] = case_from_records(ids[i], results[i].records, *arena);
    }
    arenas[c] = std::move(arena);
  });

  EventLog log;
  for (auto& arena : arenas) {
    if (arena) log.adopt(std::move(arena));
  }
  std::string prefixed;  // reused "<path>: <warning>" buffer
  for (std::size_t i = 0; i < n; ++i) {
    log.add_case(std::move(cases[i]));
    log.adopt(std::move(results[i].buffer));
    for (const auto& warning : results[i].warnings) {
      prefixed.clear();
      prefixed.reserve(paths[i].size() + 2 + warning.size());
      prefixed += paths[i];
      prefixed += ": ";
      prefixed += warning;
      // A malformed region repeating the same defect floods the log
      // with copies of one message; keep the first of each run.
      if (!log.warnings().empty() && log.warnings().back() == prefixed) continue;
      log.add_warning(prefixed);
    }
  }
  return log;
}

}  // namespace st::model
