#include "model/from_strace.hpp"

#include <utility>

#include "parallel/thread_pool.hpp"
#include "pipeline/stream.hpp"

namespace st::model {

std::optional<Event> event_from_record(const strace::TraceFileId& id,
                                       const strace::RawRecord& rec) {
  if (rec.kind != strace::RecordKind::Complete) return std::nullopt;
  Event e;
  e.cid = id.cid;
  e.host = id.host;
  e.rid = id.rid;
  e.pid = rec.pid;
  e.call = rec.call;
  e.start = rec.timestamp;
  e.dur = rec.duration.value_or(0);
  e.fp = rec.path;
  // Transfer size: return value, and only for data-moving calls
  // (Sec. III rule 6). Failed calls carry no size.
  if (rec.is_data_transfer() && rec.retval && *rec.retval >= 0) {
    e.size = *rec.retval;
  } else {
    e.size = -1;
  }
  return e;
}

Case case_from_records(const strace::TraceFileId& id,
                       const std::vector<strace::RawRecord>& records,
                       strace::StringArena& arena) {
  // One interned copy of cid/host serves every event of the case — the
  // old per-event heap strings were the model layer's dominant cost.
  const std::string_view cid = arena.intern(id.cid);
  const std::string_view host = arena.intern(id.host);
  std::vector<Event> events;
  events.reserve(records.size());
  for (const auto& rec : records) {
    if (auto e = event_from_record(id, rec)) {
      e->cid = cid;
      e->host = host;
      events.push_back(*e);
    }
  }
  return Case(CaseId{id.cid, id.host, id.rid}, std::move(events));
}

EventLog event_log_from_files(const std::vector<std::string>& paths, std::size_t threads) {
  // Rebuilt on the streaming pipeline (pipeline/stream.hpp): each
  // file's record -> Case conversion is enqueued the moment that
  // file's parse chunks finish folding, instead of after ALL files
  // parse — parse and convert overlap on one pool. Output (case
  // order, event order, warning order) is byte-identical to the old
  // staged build; name validation and error determinism live in the
  // pipeline core.
  ThreadPool pool(threads);
  return pipeline::event_log_streamed(paths, pool);
}

}  // namespace st::model
