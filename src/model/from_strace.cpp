#include "model/from_strace.hpp"

#include "parallel/thread_pool.hpp"
#include "strace/reader.hpp"
#include "support/errors.hpp"

namespace st::model {

std::optional<Event> event_from_record(const strace::TraceFileId& id,
                                       const strace::RawRecord& rec) {
  if (rec.kind != strace::RecordKind::Complete) return std::nullopt;
  Event e;
  e.cid = id.cid;
  e.host = id.host;
  e.rid = id.rid;
  e.pid = rec.pid;
  e.call = rec.call;
  e.start = rec.timestamp;
  e.dur = rec.duration.value_or(0);
  e.fp = rec.path;
  // Transfer size: return value, and only for data-moving calls
  // (Sec. III rule 6). Failed calls carry no size.
  if (rec.is_data_transfer() && rec.retval && *rec.retval >= 0) {
    e.size = *rec.retval;
  } else {
    e.size = -1;
  }
  return e;
}

Case case_from_records(const strace::TraceFileId& id,
                       const std::vector<strace::RawRecord>& records,
                       strace::StringArena& arena) {
  // One interned copy of cid/host serves every event of the case — the
  // old per-event heap strings were the model layer's dominant cost.
  const std::string_view cid = arena.intern(id.cid);
  const std::string_view host = arena.intern(id.host);
  std::vector<Event> events;
  events.reserve(records.size());
  for (const auto& rec : records) {
    if (auto e = event_from_record(id, rec)) {
      e->cid = cid;
      e->host = host;
      events.push_back(*e);
    }
  }
  return Case(CaseId{id.cid, id.host, id.rid}, std::move(events));
}

EventLog event_log_from_files(const std::vector<std::string>& paths, std::size_t threads) {
  // Validate every file name before any I/O: the error for a bad name
  // is deterministic (first offender in input order) and cheap.
  std::vector<strace::TraceFileId> ids;
  ids.reserve(paths.size());
  for (const auto& path : paths) {
    auto id = strace::parse_trace_filename(path);
    if (!id) throw ParseError("trace file name does not follow cid_host_rid.st: " + path);
    ids.push_back(std::move(*id));
  }

  // Mixed parallelism: all (file, chunk) parse tasks share one pool,
  // so a single huge trace and a swarm of small ones both saturate it.
  ThreadPool pool(threads);
  strace::ParallelReadOptions opts;
  opts.pool = &pool;
  auto results = strace::read_trace_files_mixed(paths, opts);

  EventLog log;
  strace::StringArena& arena = log.arena();
  for (std::size_t i = 0; i < results.size(); ++i) {
    log.add_case(case_from_records(ids[i], results[i].records, arena));
    log.adopt(std::move(results[i].buffer));
    for (auto& warning : results[i].warnings) {
      log.add_warning(paths[i] + ": " + std::move(warning));
    }
  }
  return log;
}

}  // namespace st::model
