#include "model/from_strace.hpp"

#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "strace/reader.hpp"
#include "support/errors.hpp"

namespace st::model {

std::optional<Event> event_from_record(const strace::TraceFileId& id,
                                       const strace::RawRecord& rec) {
  if (rec.kind != strace::RecordKind::Complete) return std::nullopt;
  Event e;
  e.cid = id.cid;
  e.host = id.host;
  e.rid = id.rid;
  e.pid = rec.pid;
  e.call = rec.call;
  e.start = rec.timestamp;
  e.dur = rec.duration.value_or(0);
  e.fp = rec.path;
  // Transfer size: return value, and only for data-moving calls
  // (Sec. III rule 6). Failed calls carry no size.
  if (rec.is_data_transfer() && rec.retval && *rec.retval >= 0) {
    e.size = *rec.retval;
  } else {
    e.size = -1;
  }
  return e;
}

Case case_from_records(const strace::TraceFileId& id,
                       const std::vector<strace::RawRecord>& records) {
  std::vector<Event> events;
  events.reserve(records.size());
  for (const auto& rec : records) {
    if (auto e = event_from_record(id, rec)) events.push_back(std::move(*e));
  }
  return Case(CaseId{id.cid, id.host, id.rid}, std::move(events));
}

EventLog event_log_from_files(const std::vector<std::string>& paths, std::size_t threads) {
  // A lone file cannot be parallelized across files, so parallelize
  // *within* it: the chunked zero-copy reader splits the buffer on
  // line boundaries across the pool.
  if (paths.size() == 1) {
    const auto& path = paths.front();
    const auto id = strace::parse_trace_filename(path);
    if (!id) throw ParseError("trace file name does not follow cid_host_rid.st: " + path);
    strace::ParallelReadOptions opts;
    opts.threads = threads;
    const auto result = strace::read_trace_file_parallel(path, opts);
    std::vector<Case> cases;
    cases.push_back(case_from_records(*id, result.records));
    return EventLog(std::move(cases));
  }
  ThreadPool pool(threads);
  auto cases = parallel_map(pool, paths, [](const std::string& path) {
    const auto id = strace::parse_trace_filename(path);
    if (!id) throw ParseError("trace file name does not follow cid_host_rid.st: " + path);
    const auto result = strace::read_trace_file(path);
    return case_from_records(*id, result.records);
  });
  return EventLog(std::move(cases));
}

}  // namespace st::model
