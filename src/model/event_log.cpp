#include "model/event_log.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/errors.hpp"
#include "support/strings.hpp"

namespace st::model {

Case::Case(CaseId id, std::vector<Event> events) : id_(std::move(id)), events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.start < b.start; });
}

Case Case::filtered(const std::function<bool(const Event&)>& pred) const {
  std::vector<Event> kept;
  kept.reserve(events_.size());
  for (const Event& e : events_) {
    if (pred(e)) kept.push_back(e);
  }
  return Case(id_, std::move(kept));
}

strace::StringArena& EventLog::arena() {
  if (!arena_) {
    arena_ = std::make_shared<strace::StringArena>();
    owners_.push_back(arena_);
  }
  return *arena_;
}

std::size_t EventLog::total_events() const {
  std::size_t n = 0;
  for (const auto& c : cases_) n += c.size();
  return n;
}

const Case* EventLog::find_case(const CaseId& id) const {
  for (const auto& c : cases_) {
    if (c.id() == id) return &c;
  }
  return nullptr;
}

EventLog EventLog::filter_fp(std::string_view substr) const {
  return filter_events([substr = std::string(substr)](const Event& e) {
    return contains(e.fp, substr);
  });
}

EventLog EventLog::filter_events(const std::function<bool(const Event&)>& pred) const {
  EventLog out;
  out.adopt_owners_of(*this);
  for (const auto& c : cases_) out.add_case(c.filtered(pred));
  return out;
}

EventLog EventLog::filter_cases(const std::function<bool(const Case&)>& pred) const {
  EventLog out;
  out.adopt_owners_of(*this);
  for (const auto& c : cases_) {
    if (pred(c)) out.add_case(c);
  }
  return out;
}

std::pair<EventLog, EventLog> EventLog::partition(
    const std::function<bool(const Case&)>& pred) const {
  EventLog green;
  EventLog red;
  green.adopt_owners_of(*this);
  red.adopt_owners_of(*this);
  for (const auto& c : cases_) {
    (pred(c) ? green : red).add_case(c);
  }
  return {std::move(green), std::move(red)};
}

EventLog EventLog::merge(const EventLog& a, const EventLog& b) {
  EventLog out;
  out.adopt_owners_of(a);
  out.adopt_owners_of(b);
  std::unordered_set<CaseId> seen;
  for (const auto* log : {&a, &b}) {
    for (const auto& c : log->cases()) {
      if (!seen.insert(c.id()).second) {
        throw LogicError("EventLog::merge: duplicate case " + c.id().to_string());
      }
      out.add_case(c);
    }
  }
  return out;
}

}  // namespace st::model
