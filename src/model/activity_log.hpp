// ActivityLog L_f(C): a multiset of activity traces (paper Sec. IV).
//
// For every case c in the event-log C the mapping f is applied to each
// event; events with no mapping are skipped (f is partial). The
// resulting activity sequence σ_f(c) is one *trace*; the activity-log
// is the multiset of all traces, i.e. identical sequences are stored
// once with a multiplicity — the ⟨a,a,b⟩² notation of the paper.
//
// The per-case trace is also retained (keyed by CaseId) because the
// timeline plot (Fig. 5) and the "Ranks:" annotations need to know
// which cases touched an activity.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "model/event_log.hpp"
#include "model/mapping.hpp"

namespace st::model {

using ActivityTrace = std::vector<Activity>;

class ActivityLog {
 public:
  ActivityLog() = default;

  /// Builds L_f(C). Cases whose trace is empty (no event mapped)
  /// contribute an empty trace — kept so the multiplicity of the empty
  /// variant reports unmapped cases.
  static ActivityLog build(const EventLog& log, const Mapping& f);

  /// Distinct traces with multiplicities, deterministically ordered
  /// (lexicographic by trace). Σ multiplicities == case count.
  [[nodiscard]] const std::map<ActivityTrace, std::size_t>& variants() const { return variants_; }

  /// Trace of one case, in event order.
  [[nodiscard]] const std::map<CaseId, ActivityTrace>& per_case() const { return per_case_; }

  /// All distinct activities appearing in any trace, ordered.
  [[nodiscard]] const std::set<Activity>& activities() const { return activities_; }

  [[nodiscard]] std::size_t case_count() const { return case_count_; }
  [[nodiscard]] std::size_t total_activity_instances() const { return total_instances_; }

 private:
  std::map<ActivityTrace, std::size_t> variants_;
  std::map<CaseId, ActivityTrace> per_case_;
  std::set<Activity> activities_;
  std::size_t case_count_ = 0;
  std::size_t total_instances_ = 0;
};

}  // namespace st::model
