// ActivityLog L_f(C): a multiset of activity traces (paper Sec. IV).
//
// For every case c in the event-log C the mapping f is applied to each
// event; events with no mapping are skipped (f is partial). The
// resulting activity sequence σ_f(c) is one *trace*; the activity-log
// is the multiset of all traces, i.e. identical sequences are stored
// once with a multiplicity — the ⟨a,a,b⟩² notation of the paper.
//
// The per-case trace is also retained (keyed by CaseId) because the
// timeline plot (Fig. 5) and the "Ranks:" annotations need to know
// which cases touched an activity.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "model/event_log.hpp"
#include "model/mapping.hpp"

namespace st::model {

using ActivityTrace = std::vector<Activity>;

/// The variant multiset of an activity log: distinct traces with their
/// multiplicities (the ⟨a,a,b⟩² notation). Shared by ActivityLog, the
/// variant diff (model/variants.hpp) and the streaming VariantsSink.
using VariantCounts = std::map<ActivityTrace, std::size_t>;

/// σ_f(c): one case's activity trace — every mapped activity, in event
/// order (f is partial; unmapped events are skipped). The single
/// definition ActivityLog::add_case and the streaming VariantsSink
/// both build from, so their variant multisets cannot drift apart.
[[nodiscard]] ActivityTrace activity_trace(const Case& c, const Mapping& f);

/// Folds `from` into `to` (multiplicities add) by moving map nodes —
/// the trace keys of the consumed map are never copied. Shared by
/// ActivityLog::merge and the streaming VariantsSink.
void merge_variant_counts(VariantCounts& to, VariantCounts&& from);

class ActivityLog {
 public:
  ActivityLog() = default;

  /// Builds L_f(C). Cases whose trace is empty (no event mapped)
  /// contribute an empty trace — kept so the multiplicity of the empty
  /// variant reports unmapped cases.
  static ActivityLog build(const EventLog& log, const Mapping& f);

  /// Folds one case's activity trace in — the per-case unit step
  /// build() iterates and the streaming pipeline's ActivityLogSink
  /// folds on pool threads (into private partials; ActivityLog itself
  /// is not thread-safe).
  void add_case(const Case& c, const Mapping& f);

  /// Monoid merge: multiplicities add, per-case traces and the
  /// activity set union. Folding per-case partials in input order
  /// produces exactly build()'s result (all containers are ordered, so
  /// the merge is order-insensitive up to duplicate CaseIds, where the
  /// first merged trace wins — matching build()'s first-wins emplace).
  void merge(ActivityLog&& other);

  /// Reconstructs a log from its observable parts — the inverse of the
  /// five accessors below, used by the shard partial codec. All fields
  /// are carried explicitly (case_count can exceed per_case.size()
  /// when duplicate CaseIds were merged first-wins).
  [[nodiscard]] static ActivityLog from_parts(VariantCounts variants,
                                              std::map<CaseId, ActivityTrace> per_case,
                                              std::set<Activity> activities,
                                              std::size_t case_count,
                                              std::size_t total_instances);

  /// Distinct traces with multiplicities, deterministically ordered
  /// (lexicographic by trace). Σ multiplicities == case count.
  [[nodiscard]] const VariantCounts& variants() const { return variants_; }

  /// Trace of one case, in event order.
  [[nodiscard]] const std::map<CaseId, ActivityTrace>& per_case() const { return per_case_; }

  /// All distinct activities appearing in any trace, ordered.
  [[nodiscard]] const std::set<Activity>& activities() const { return activities_; }

  [[nodiscard]] std::size_t case_count() const { return case_count_; }
  [[nodiscard]] std::size_t total_activity_instances() const { return total_instances_; }

 private:
  VariantCounts variants_;
  std::map<CaseId, ActivityTrace> per_case_;
  std::set<Activity> activities_;
  std::size_t case_count_ = 0;
  std::size_t total_instances_ = 0;
};

}  // namespace st::model
