// The one per-case walk every activity-level analytic is a fold of:
// iterate the events of a case in start order (the order Case already
// guarantees) and hand each event's mapped activity to a visitor,
// skipping events the partial mapping f does not cover.
//
// IoStatistics, EdgeStatistics, dfg::add_case_trace and
// model::activity_trace all fold exactly this sequence; routing them
// through one helper means the layers cannot drift on what "the mapped
// events of a case, in order" means (satellite of ISSUE 7).
#pragma once

#include <utility>

#include "model/event_log.hpp"
#include "model/mapping.hpp"

namespace st::model {

/// Calls `fn(activity, event)` for every event of `c` that f maps, in
/// event (start) order. `fn` receives the Activity by rvalue reference
/// and may move from it.
template <typename Fn>
void for_each_mapped_event(const Case& c, const Mapping& f, Fn&& fn) {
  for (const Event& e : c.events()) {
    if (auto a = f(e)) fn(std::move(*a), e);
  }
}

}  // namespace st::model
