#include "model/mapping.hpp"

#include <algorithm>

#include "support/errors.hpp"
#include "support/strings.hpp"

namespace st::model {

void SitePathMap::add_prefix(std::string prefix, std::string label) {
  prefixes_.emplace_back(std::move(prefix), std::move(label));
  // Longest-prefix-first so the first hit below is the longest match.
  std::stable_sort(prefixes_.begin(), prefixes_.end(), [](const auto& a, const auto& b) {
    return a.first.size() > b.first.size();
  });
}

SitePathMap::Match SitePathMap::match(std::string_view fp) const {
  for (const auto& [prefix, label] : prefixes_) {
    if (fp.starts_with(prefix)) {
      return Match{label, fp.substr(prefix.size()), true};
    }
  }
  return Match{default_label_, {}, false};
}

std::string SitePathMap::abstract(std::string_view fp) const { return match(fp).label; }

SitePathMap SitePathMap::juwels_like() {
  SitePathMap map("Node Local");
  map.add_prefix("/p/scratch", "$SCRATCH");
  map.add_prefix("/p/home", "$HOME");
  map.add_prefix("/p/software", "$SOFTWARE");
  return map;
}

Mapping Mapping::filtered_fp(std::string_view substr) const {
  return filtered(name_ + "|fp~" + std::string(substr),
                  [needle = std::string(substr)](const Event& e) {
                    return contains(e.fp, needle);
                  });
}

Mapping Mapping::filtered(std::string name, std::function<bool(const Event&)> pred) const {
  return Mapping(std::move(name),
                 [inner = fn_, pred = std::move(pred)](const Event& e) -> std::optional<Activity> {
                   if (!pred(e)) return std::nullopt;
                   return inner(e);
                 });
}

Mapping Mapping::call_top_dirs(int levels) {
  return Mapping("call_top_dirs(" + std::to_string(levels) + ")",
                 [levels](const Event& e) -> std::optional<Activity> {
                   return std::string(e.call) + "\n" + top_dirs(e.fp, levels);
                 });
}

Mapping Mapping::call_last_components(int n) {
  return Mapping("call_last_components(" + std::to_string(n) + ")",
                 [n](const Event& e) -> std::optional<Activity> {
                   return std::string(e.call) + "\n" + last_components(e.fp, n);
                 });
}

Mapping Mapping::call_only() {
  return Mapping("call_only",
                 [](const Event& e) -> std::optional<Activity> { return std::string(e.call); });
}

Mapping Mapping::call_site(SitePathMap map, int extra_levels) {
  return Mapping(
      "call_site(+" + std::to_string(extra_levels) + ")",
      [map = std::move(map), extra_levels](const Event& e) -> std::optional<Activity> {
        const auto m = map.match(e.fp);
        std::string label = m.label;
        if (extra_levels > 0 && m.matched) {
          // Append up to `extra_levels` components after the site root:
          // /p/scratch/ssf/test with +1 -> $SCRATCH/ssf (Fig. 8b).
          std::string_view rest = m.remainder;
          int taken = 0;
          std::size_t pos = 0;
          while (taken < extra_levels && pos < rest.size()) {
            while (pos < rest.size() && rest[pos] == '/') ++pos;
            if (pos >= rest.size()) break;
            std::size_t end = rest.find('/', pos);
            if (end == std::string_view::npos) end = rest.size();
            label += "/";
            label += rest.substr(pos, end - pos);
            pos = end;
            ++taken;
          }
        }
        return std::string(e.call) + "\n" + label;
      });
}

Mapping mapping_by_name(const std::string& name) {
  if (name == "top1") return Mapping::call_top_dirs(1);
  if (name == "top2") return Mapping::call_top_dirs(2);
  if (name == "last1") return Mapping::call_last_components(1);
  if (name == "last2") return Mapping::call_last_components(2);
  if (name == "call") return Mapping::call_only();
  if (name == "site") return Mapping::call_site(SitePathMap::juwels_like(), 0);
  if (name == "site1") return Mapping::call_site(SitePathMap::juwels_like(), 1);
  throw ParseError("unknown mapping (use top1|top2|last1|last2|call|site|site1): " + name);
}

}  // namespace st::model
