// Per-case summaries: the "how big is each trace file" view that
// precedes any DFG analysis — syscall counts per call name, bytes read
// and written, total system time, and the case's wall-clock span.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/event_log.hpp"

namespace st {
class ThreadPool;
}

namespace st::model {

struct CaseSummary {
  CaseId id;
  std::size_t events = 0;
  std::map<std::string, std::size_t> calls;  ///< call name -> count
  std::int64_t bytes_read = 0;               ///< read-family transfers
  std::int64_t bytes_written = 0;            ///< write-family transfers
  Micros total_dur = 0;                      ///< Σ e[dur]
  Micros first_start = 0;
  Micros last_end = 0;

  [[nodiscard]] Micros span() const { return last_end - first_start; }

  /// All-integer content, so equality is exact — the streaming sink's
  /// byte-identity contract with the staged overloads rests on it.
  [[nodiscard]] bool operator==(const CaseSummary&) const = default;
};

/// Summary of one case.
[[nodiscard]] CaseSummary summarize_case(const Case& c);

/// Monoid-shaped accumulator of case summaries: the per-case
/// summarize + input-order merge core every consumer — the serial
/// overload, the pooled map-reduce overload and the streaming
/// pipeline's CaseStatsSink — is built from. Summaries appear in
/// add()/merge() call order, so folding cases in input order
/// reproduces the serial summarize_cases byte for byte.
struct CaseSummaries {
  std::vector<CaseSummary> summaries;

  void add(const Case& c) { summaries.push_back(summarize_case(c)); }

  /// Appends `other`'s summaries after this one's (associative; the
  /// empty CaseSummaries is the identity).
  void merge(CaseSummaries&& other);
};

/// One summary per case, in the log's case order.
[[nodiscard]] std::vector<CaseSummary> summarize_cases(const EventLog& log);

/// Same summaries in the same order, with per-case work fanned out
/// over `pool` (chunked map-reduce over the CaseSummaries monoid).
[[nodiscard]] std::vector<CaseSummary> summarize_cases(const EventLog& log, ThreadPool& pool);

/// Text table of the summaries (deterministic; one row per case).
[[nodiscard]] std::string render_case_summaries(const std::vector<CaseSummary>& summaries);

}  // namespace st::model
