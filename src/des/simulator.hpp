// Deterministic discrete-event simulator (DES) built on C++20
// coroutines.
//
// Simulated processes are coroutines returning Proc<T>; they advance
// virtual time by co_awaiting:
//
//   co_await sim.delay(microseconds);   // hold for simulated time
//   co_await resource.acquire();        // FCFS queueing (contention!)
//   co_await barrier.arrive();          // MPI-style synchronization
//   T v = co_await sub_process(...);    // structured sub-calls
//
// Determinism: the ready queue orders by (time, insertion sequence), so
// two runs of the same program produce identical schedules; no wall
// clock, no thread scheduling involved. This is the substrate on which
// the IOR workload and its contention behaviour (paper Sec. V) are
// simulated.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "support/errors.hpp"

namespace st::des {

using SimTime = std::int64_t;  ///< virtual microseconds

class Simulator;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    template <class Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
};

}  // namespace detail

/// A simulated (sub-)process. Lazily started: top-level Procs are
/// started by Simulator::spawn, nested ones by co_await.
template <class T = void>
class [[nodiscard]] Proc {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value{};

    Proc get_return_object() {
      return Proc{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    [[nodiscard]] std::suspend_always initial_suspend() noexcept { return {}; }
    [[nodiscard]] FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Proc() = default;
  explicit Proc(Handle h) : handle_(h) {}
  Proc(Proc&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Proc& operator=(Proc&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;
  ~Proc() { destroy(); }

  // Awaitable protocol: co_awaiting a Proc starts it and resumes the
  // parent when it finishes (symmetric transfer, no stack growth).
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  T await_resume() {
    if (handle_.promise().exception) std::rethrow_exception(handle_.promise().exception);
    return std::move(*handle_.promise().value);
  }

  [[nodiscard]] Handle handle() const { return handle_; }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }
  [[nodiscard]] std::exception_ptr exception() const {
    return handle_ ? handle_.promise().exception : nullptr;
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

template <>
class [[nodiscard]] Proc<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Proc get_return_object() {
      return Proc{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    [[nodiscard]] std::suspend_always initial_suspend() noexcept { return {}; }
    [[nodiscard]] FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Proc() = default;
  explicit Proc(Handle h) : handle_(h) {}
  Proc(Proc&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Proc& operator=(Proc&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;
  ~Proc() { destroy(); }

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().exception) std::rethrow_exception(handle_.promise().exception);
  }

  [[nodiscard]] Handle handle() const { return handle_; }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }
  [[nodiscard]] std::exception_ptr exception() const {
    return handle_ ? handle_.promise().exception : nullptr;
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

/// The event loop: a stable (time, sequence) priority queue of
/// coroutine resumptions.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Registers a top-level process; it starts when run() reaches the
  /// current virtual time.
  void spawn(Proc<void> p) {
    schedule(p.handle(), now_);
    roots_.push_back(std::move(p));
  }

  /// Schedules `h` to resume at virtual time `at` (>= now).
  void schedule(std::coroutine_handle<> h, SimTime at) {
    if (at < now_) throw LogicError("DES: scheduling into the past");
    queue_.push(Entry{at, next_seq_++, h});
  }

  /// Runs until the event queue drains. Returns the final time.
  /// An exception escaping a top-level process is captured in its
  /// frame and rethrown here after the queue drains.
  SimTime run() {
    while (!queue_.empty()) {
      const Entry e = queue_.top();
      queue_.pop();
      now_ = e.at;
      e.handle.resume();
    }
    for (const auto& root : roots_) {
      if (const auto exc = root.exception()) std::rethrow_exception(exc);
    }
    return now_;
  }

  /// Awaitable: resume after `d` virtual microseconds.
  [[nodiscard]] auto delay(SimTime d) {
    struct Awaiter {
      Simulator& sim;
      SimTime d;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const { sim.schedule(h, sim.now() + d); }
      void await_resume() const noexcept {}
    };
    if (d < 0) d = 0;
    return Awaiter{*this, d};
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::coroutine_handle<> handle;

    bool operator>(const Entry& other) const {
      return at > other.at || (at == other.at && seq > other.seq);
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<Proc<void>> roots_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace st::des
