// Contended resources for the DES: FCFS token pools and barriers.
//
// Resource models anything with finite service slots — a GPFS metadata
// server, the exclusive write-lock token of an inode, a shared
// interconnect. Waiting in the FCFS queue is how contention manifests:
// the time between acquire() being awaited and granted is wait time
// that the I/O simulator accounts into syscall durations, which is
// exactly the effect the paper observes on SSF openat/write calls.
//
// Barrier provides MPI_Barrier-like synchronization for the rank
// processes of the IOR workload.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <vector>

#include "des/simulator.hpp"

namespace st::des {

class Resource {
 public:
  Resource(Simulator& sim, std::size_t capacity) : sim_(sim), tokens_(capacity) {}
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Awaitable FCFS acquisition of one token.
  [[nodiscard]] auto acquire() {
    struct Awaiter {
      Resource& r;
      [[nodiscard]] bool await_ready() const {
        if (r.tokens_ > 0) {
          --r.tokens_;
          ++r.in_use_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { r.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Returns one token; the longest-waiting acquirer (if any) resumes
  /// at the current virtual time.
  void release() {
    if (!waiters_.empty()) {
      const auto h = waiters_.front();
      waiters_.pop_front();
      // Token passes directly to the waiter; in_use_ stays constant.
      sim_.schedule(h, sim_.now());
    } else {
      ++tokens_;
      --in_use_;
    }
  }

  [[nodiscard]] std::size_t queue_length() const { return waiters_.size(); }
  [[nodiscard]] std::size_t in_use() const { return in_use_; }

 private:
  Simulator& sim_;
  std::size_t tokens_;
  std::size_t in_use_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Cyclic barrier over `n` participants.
class Barrier {
 public:
  Barrier(Simulator& sim, std::size_t n) : sim_(sim), n_(n) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Awaitable: suspends until all n participants arrived; the last
  /// arrival releases everyone at the current virtual time.
  [[nodiscard]] auto arrive() {
    struct Awaiter {
      Barrier& b;
      [[nodiscard]] bool await_ready() const {
        if (b.arrived_ + 1 == b.n_) {
          // Last participant: release the generation.
          for (const auto h : b.waiting_) b.sim_.schedule(h, b.sim_.now());
          b.waiting_.clear();
          b.arrived_ = 0;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ++b.arrived_;
        b.waiting_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  [[nodiscard]] std::size_t waiting() const { return waiting_.size(); }

 private:
  Simulator& sim_;
  std::size_t n_;
  std::size_t arrived_ = 0;
  std::vector<std::coroutine_handle<>> waiting_;
};

/// Completion counter for fork/join structure: add() before spawning a
/// child process, done() when it finishes, co_await wait() to join.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& sim) : sim_(sim) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void add(std::size_t n = 1) { count_ += n; }

  void done() {
    if (count_ == 0) throw LogicError("WaitGroup::done without matching add");
    if (--count_ == 0) {
      for (const auto h : waiters_) sim_.schedule(h, sim_.now());
      waiters_.clear();
    }
  }

  /// Awaitable: resumes when the count reaches zero (immediately if it
  /// already is).
  [[nodiscard]] auto wait() {
    struct Awaiter {
      WaitGroup& wg;
      [[nodiscard]] bool await_ready() const { return wg.count_ == 0; }
      void await_suspend(std::coroutine_handle<> h) { wg.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  [[nodiscard]] std::size_t pending() const { return count_; }

 private:
  Simulator& sim_;
  std::size_t count_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace st::des
