// Self-contained HTML report of one analysis — the "static report"
// synthesis style the paper's related work attributes to Darshan and
// PyDarshan, built from this library's primitives:
//
//   - run metadata and the query that produced the view,
//   - per-case summary table (events, bytes, I/O time, span),
//   - the DFG as inline SVG (statistics- or partition-colored),
//   - activity statistics table (Load, bytes, DR, concurrency, ranks),
//   - edge gap table (the stalls between directly-following calls),
//   - optional trace-variant multiset (streaming reports),
//   - optional timeline of a chosen activity.
//
// Everything is embedded: one .html file, no external assets.
//
// Two ways to produce it:
//   - build_report(log, ...): the staged path — computes every section
//     from a materialized EventLog;
//   - streaming_report(paths, ...): the single-pass path — composes
//     DfgSink + CaseStatsSink + VariantsSink + IoStatsSink +
//     EdgeStatsSink on pipeline::run, so EVERY section — graph, case
//     table, variants, activity and edge statistics, timeline — is
//     folded on the pool WHILE the trace files parse; no section walks
//     the assembled log after the pass (the staged post-pass is gone,
//     and the doubles still match compute() bit for bit thanks to the
//     deterministic summation tree in dfg/stats.hpp).
// Both render through the same ReportData core, so a section looks
// identical no matter which path produced it.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dfg/coloring.hpp"
#include "dfg/concurrency.hpp"
#include "dfg/dfg.hpp"
#include "dfg/edge_stats.hpp"
#include "dfg/stats.hpp"
#include "model/activity_log.hpp"
#include "model/case_stats.hpp"
#include "model/event_log.hpp"
#include "model/mapping.hpp"
#include "pipeline/shard.hpp"
#include "pipeline/sink.hpp"

namespace st {
class ThreadPool;
}  // namespace st

namespace st::report {

struct ReportOptions {
  std::string title = "I/O inspection report";
  std::string description;  ///< free text shown under the title
  /// Activity whose timeline is embedded (empty = none).
  std::optional<model::Activity> timeline_activity;
  /// Optional partition predicate label shown with the legend.
  std::string partition_legend;
};

/// The precomputed pieces every report section renders from.
/// build_report fills it from an EventLog; streaming_report fills it
/// from one pipeline::run pass.
struct ReportData {
  dfg::Dfg graph;
  dfg::IoStatistics stats;
  dfg::EdgeStatistics edge_stats;
  std::vector<model::CaseSummary> case_summaries;
  std::size_t case_count = 0;
  std::size_t total_events = 0;
  /// Rendered as a "Trace variants" section when non-nullopt.
  std::optional<model::VariantCounts> variants;
  /// Rendered as a "Data health" section when non-nullopt (streaming
  /// and sharded reports — the paths with an ingestion phase whose
  /// degradation is worth surfacing; build_report never sets it).
  std::optional<pipeline::DataHealth> health;
  /// Timeline entries of ReportOptions::timeline_activity, when set.
  std::vector<dfg::TimelineEntry> timeline;
};

/// Renders the report from precomputed data. `styler` may be null
/// (uncolored DFG).
[[nodiscard]] std::string render_report(const ReportData& data, const model::Mapping& f,
                                        const dfg::Styler* styler, const ReportOptions& opts = {});

/// Builds the full report from a materialized log (computes ReportData
/// and renders it). `styler` may be null (uncolored DFG).
[[nodiscard]] std::string build_report(const model::EventLog& log, const model::Mapping& f,
                                       const dfg::Styler* styler, const ReportOptions& opts = {});

/// Writes the report to a file (throws IoError on failure).
void write_report_file(const std::string& path, const model::EventLog& log,
                       const model::Mapping& f, const dfg::Styler* styler,
                       const ReportOptions& opts = {});

struct StreamingReport {
  std::string html;
  /// The ingested log from the same pass — reusable (e.g. elog_tool
  /// import writes it to a container alongside the report).
  model::EventLog log;
};

/// Single-pass report straight from trace files: one pipeline::run
/// streams parse -> convert while the report's five sinks (DFG, case
/// table, variants, activity statistics, edge statistics) fold on the
/// same pool; the optional timeline renders from the already-folded
/// IoStatistics partial. The DFG is statistics-colored like the CLI
/// report paths. Compared to build_report over event_log_streamed,
/// this removes the ingestion barrier plus every post-hoc walk, and
/// adds the variants section.
/// `extra_sinks` ride the same pass after the report's own sinks —
/// elog_tool import hangs its ElogV2WriterSink here, so one streamed
/// pass yields both the report and the container.
[[nodiscard]] StreamingReport streaming_report(const std::vector<std::string>& paths,
                                               const model::Mapping& f, ThreadPool& pool,
                                               const ReportOptions& opts = {},
                                               const pipeline::StreamOptions& stream_opts = {},
                                               std::span<pipeline::CaseSink* const> extra_sinks = {});

/// Renders the report from merged shard analytics (pipeline::run_sharded
/// or finalize_shards over decoded fold-shard blobs), statistics-colored
/// like streaming_report. Because the shard merge is the same monoid
/// fold the streamed pass runs, the HTML is BYTE-identical to
/// streaming_report over the same files with the same options — `cmp`
/// is the acceptance test. `f` must be the mapping the shards folded
/// with (by short name).
[[nodiscard]] std::string render_sharded_report(const pipeline::ShardedAnalytics& analytics,
                                                const model::Mapping& f,
                                                const ReportOptions& opts = {});

}  // namespace st::report
