// Self-contained HTML report of one analysis — the "static report"
// synthesis style the paper's related work attributes to Darshan and
// PyDarshan, built from this library's primitives:
//
//   - run metadata and the query that produced the view,
//   - per-case summary table (events, bytes, I/O time, span),
//   - the DFG as inline SVG (statistics- or partition-colored),
//   - activity statistics table (Load, bytes, DR, concurrency, ranks),
//   - edge gap table (the stalls between directly-following calls),
//   - optional timeline of a chosen activity.
//
// Everything is embedded: one .html file, no external assets.
#pragma once

#include <optional>
#include <string>

#include "dfg/coloring.hpp"
#include "dfg/dfg.hpp"
#include "dfg/edge_stats.hpp"
#include "dfg/stats.hpp"
#include "model/event_log.hpp"
#include "model/mapping.hpp"

namespace st::report {

struct ReportOptions {
  std::string title = "I/O inspection report";
  std::string description;  ///< free text shown under the title
  /// Activity whose timeline is embedded (empty = none).
  std::optional<model::Activity> timeline_activity;
  /// Optional partition predicate label shown with the legend.
  std::string partition_legend;
};

/// Builds the full report. `styler` may be null (uncolored DFG).
[[nodiscard]] std::string build_report(const model::EventLog& log, const model::Mapping& f,
                                       const dfg::Styler* styler, const ReportOptions& opts = {});

/// Writes the report to a file (throws IoError on failure).
void write_report_file(const std::string& path, const model::EventLog& log,
                       const model::Mapping& f, const dfg::Styler* styler,
                       const ReportOptions& opts = {});

}  // namespace st::report
