#include "report/report.hpp"

#include <algorithm>
#include <fstream>

#include "dfg/builder.hpp"
#include "dfg/render.hpp"
#include "dfg/render_svg.hpp"
#include "support/errors.hpp"
#include "support/si.hpp"

namespace st::report {

namespace {

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string flat(const model::Activity& a) {
  std::string out = a;
  std::replace(out.begin(), out.end(), '\n', ' ');
  return out;
}

void cases_table(std::string& html, const std::vector<model::CaseSummary>& summaries) {
  html += "<h2>Cases</h2>\n<table>\n<tr><th>case</th><th>events</th><th>read</th>"
          "<th>written</th><th>I/O time</th><th>span</th></tr>\n";
  for (const auto& s : summaries) {
    html += "<tr><td>" + html_escape(s.id.to_string()) + "</td><td>" +
            std::to_string(s.events) + "</td><td>" +
            format_bytes(static_cast<double>(s.bytes_read)) + "</td><td>" +
            format_bytes(static_cast<double>(s.bytes_written)) + "</td><td>" +
            std::to_string(s.total_dur) + " &micro;s</td><td>" + std::to_string(s.span()) +
            " &micro;s</td></tr>\n";
  }
  html += "</table>\n";
}

void stats_table(std::string& html, const dfg::IoStatistics& stats) {
  html += "<h2>Activity statistics</h2>\n<table>\n"
          "<tr><th>activity</th><th>events</th><th>Load</th><th>bytes</th>"
          "<th>DR</th><th>max-conc</th><th>ranks</th></tr>\n";
  for (const auto& [activity, s] : stats.per_activity()) {
    html += "<tr><td>" + html_escape(flat(activity)) + "</td><td>" +
            std::to_string(s.event_count) + "</td><td>" + format_ratio(s.rel_dur) + "</td><td>" +
            (s.has_bytes ? format_bytes(static_cast<double>(s.bytes)) : std::string("&ndash;")) +
            "</td><td>" +
            (s.rate_samples > 0 ? format_rate_mbps(s.mean_rate) : std::string("&ndash;")) +
            "</td><td>" + std::to_string(s.max_concurrency) + "</td><td>" +
            std::to_string(s.rank_count) + "</td></tr>\n";
  }
  html += "</table>\n";
}

void edges_table(std::string& html, const dfg::EdgeStatistics& stats) {
  html += "<h2>Directly-follows gaps</h2>\n<table>\n"
          "<tr><th>from</th><th>to</th><th>count</th><th>mean gap</th><th>max gap</th>"
          "<th>overlapped</th></tr>\n";
  for (const auto& [edge, s] : stats.per_edge()) {
    html += "<tr><td>" + html_escape(flat(edge.first)) + "</td><td>" +
            html_escape(flat(edge.second)) + "</td><td>" + std::to_string(s.count) +
            "</td><td>" + format_fixed(s.mean_gap(), 1) + " &micro;s</td><td>" +
            std::to_string(s.max_gap) + " &micro;s</td><td>" + std::to_string(s.overlapped) +
            "</td></tr>\n";
  }
  html += "</table>\n";
}

void variants_table(std::string& html, const model::VariantCounts& variants) {
  html += "<h2>Trace variants</h2>\n<table>\n"
          "<tr><th>count</th><th>length</th><th>sequence</th></tr>\n";
  for (const auto& [trace, mult] : variants) {
    std::string seq;
    for (const auto& a : trace) {
      if (!seq.empty()) seq += ", ";
      seq += flat(a);
    }
    html += "<tr><td>x" + std::to_string(mult) + "</td><td>" + std::to_string(trace.size()) +
            "</td><td>&lt;" + html_escape(seq) + "&gt;</td></tr>\n";
  }
  html += "</table>\n";
}

void health_table(std::string& html, const pipeline::DataHealth& health) {
  html += "<h2>Data health</h2>\n<table>\n"
          "<tr><th>files requested</th><th>ingested</th><th>skipped</th>"
          "<th>cases quarantined</th></tr>\n<tr><td>" +
          std::to_string(health.files_requested) + "</td><td>" +
          std::to_string(health.files_ingested) + "</td><td>" +
          std::to_string(health.files_skipped) + "</td><td>" +
          std::to_string(health.cases_quarantined) + "</td></tr>\n</table>\n";
  if (!health.warnings_by_class.empty()) {
    html += "<table>\n<tr><th>warning class</th><th>count</th></tr>\n";
    for (const auto& [cls, count] : health.warnings_by_class) {
      html += "<tr><td>" + html_escape(cls) + "</td><td>" + std::to_string(count) +
              "</td></tr>\n";
    }
    html += "</table>\n";
  }
}

}  // namespace

std::string render_report(const ReportData& data, const model::Mapping& f,
                          const dfg::Styler* styler, const ReportOptions& opts) {
  std::string html =
      "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>" +
      html_escape(opts.title) +
      "</title>\n<style>\n"
      "body{font-family:sans-serif;margin:2em;max-width:72em}\n"
      "table{border-collapse:collapse;margin:1em 0}\n"
      "th,td{border:1px solid #999;padding:4px 8px;font-size:13px;"
      "font-family:monospace;text-align:left}\n"
      "th{background:#eee}\n"
      "pre{background:#f6f6f6;padding:8px;overflow-x:auto}\n"
      ".meta{color:#555}\n</style>\n</head>\n<body>\n";
  html += "<h1>" + html_escape(opts.title) + "</h1>\n";
  if (!opts.description.empty()) {
    html += "<p class=\"meta\">" + html_escape(opts.description) + "</p>\n";
  }
  html += "<p class=\"meta\">mapping: <code>" + html_escape(f.name()) + "</code> &mdash; " +
          std::to_string(data.case_count) + " cases, " + std::to_string(data.total_events) +
          " events, total I/O time " + std::to_string(data.stats.total_duration()) +
          " &micro;s</p>\n";
  if (!opts.partition_legend.empty()) {
    html += "<p class=\"meta\">partition: " + html_escape(opts.partition_legend) + "</p>\n";
  }

  html += "<h2>Directly-Follows-Graph</h2>\n";
  dfg::SvgOptions svg_opts;
  svg_opts.title = opts.title;
  html += render_svg(data.graph, &data.stats, styler, svg_opts);

  stats_table(html, data.stats);
  cases_table(html, data.case_summaries);
  edges_table(html, data.edge_stats);
  if (data.variants) variants_table(html, *data.variants);
  if (data.health) health_table(html, *data.health);

  if (opts.timeline_activity) {
    html += "<h2>Timeline of " + html_escape(flat(*opts.timeline_activity)) + "</h2>\n<pre>" +
            html_escape(dfg::render_timeline(data.timeline, 80)) + "</pre>\n";
  }

  html += "</body>\n</html>\n";
  return html;
}

std::string build_report(const model::EventLog& log, const model::Mapping& f,
                         const dfg::Styler* styler, const ReportOptions& opts) {
  ReportData data;
  data.graph = dfg::build_serial(log, f);
  data.stats = dfg::IoStatistics::compute(log, f);
  data.edge_stats = dfg::EdgeStatistics::compute(log, f);
  data.case_summaries = model::summarize_cases(log);
  data.case_count = log.case_count();
  data.total_events = log.total_events();
  if (opts.timeline_activity) {
    data.timeline = dfg::IoStatistics::timeline(log, f, *opts.timeline_activity);
  }
  return render_report(data, f, styler, opts);
}

void write_report_file(const std::string& path, const model::EventLog& log,
                       const model::Mapping& f, const dfg::Styler* styler,
                       const ReportOptions& opts) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("cannot create report file: " + path);
  out << build_report(log, f, styler, opts);
  if (!out) throw IoError("report write failed: " + path);
}

StreamingReport streaming_report(const std::vector<std::string>& paths, const model::Mapping& f,
                                 ThreadPool& pool, const ReportOptions& opts,
                                 const pipeline::StreamOptions& stream_opts,
                                 std::span<pipeline::CaseSink* const> extra_sinks) {
  // The single pass: every analytic of the report folds on the pool
  // while the files parse — plus any caller sinks. Nothing below walks
  // the assembled log again.
  pipeline::DfgSink graph_sink(f);
  pipeline::CaseStatsSink stats_sink;
  pipeline::VariantsSink variants_sink(f);
  pipeline::IoStatsSink io_sink(f);
  pipeline::EdgeStatsSink edge_sink(f);
  std::vector<pipeline::CaseSink*> sinks = {&graph_sink, &stats_sink, &variants_sink, &io_sink,
                                            &edge_sink};
  sinks.insert(sinks.end(), extra_sinks.begin(), extra_sinks.end());
  StreamingReport out;
  pipeline::DataHealth health;
  out.log = pipeline::run(paths, pool, std::span<pipeline::CaseSink* const>(sinks), stream_opts,
                          &health);

  ReportData data;
  data.health = std::move(health);
  data.graph = graph_sink.take_graph();
  data.case_summaries = stats_sink.take_summaries();
  data.variants = variants_sink.take_variants();
  data.case_count = out.log.case_count();
  data.total_events = out.log.total_events();
  const dfg::IoStatistics::Partial io_partial = io_sink.take_partial();
  data.stats = io_partial.finalize();
  data.edge_stats = edge_sink.finalize();
  if (opts.timeline_activity) {
    data.timeline = io_partial.timeline(*opts.timeline_activity);
  }

  const dfg::StatisticsColoring styler(data.stats);
  out.html = render_report(data, f, &styler, opts);
  return out;
}

std::string render_sharded_report(const pipeline::ShardedAnalytics& analytics,
                                  const model::Mapping& f, const ReportOptions& opts) {
  // The exact ReportData assembly of streaming_report, fed from the
  // merged shard partials instead of live sinks.
  ReportData data;
  data.graph = analytics.graph;
  data.case_summaries = analytics.case_summaries;
  data.variants = analytics.variants;
  data.health = analytics.health;
  data.case_count = analytics.case_count;
  data.total_events = analytics.total_events;
  data.stats = analytics.io_stats;
  data.edge_stats = analytics.edge_stats;
  if (opts.timeline_activity) {
    data.timeline = analytics.io_partial.timeline(*opts.timeline_activity);
  }
  const dfg::StatisticsColoring styler(data.stats);
  return render_report(data, f, &styler, opts);
}

}  // namespace st::report
