// Serve mode: the trace-query service in front of corpus::Catalog.
//
// Wire format (ndjson-framed request/response):
//   - a REQUEST is one line: `<verb> <query>` where <query> is the
//     canonical Query grammar (model/query.hpp) — lenient spellings
//     parse too, and the response echoes the canonical form;
//   - a RESPONSE is one JSON header line followed by exactly `bytes`
//     payload bytes (the artifact, verbatim — HTML, summary table,
//     diff listing...):
//       {"ok":true,"verb":"report","query":"fp~/p/scratch","bytes":123}
//       <123 bytes of payload>
//     errors reply instead of dying (keep-going as request policy):
//       {"ok":false,"error":"parse error: ... at offset 7","position":7}
//     and never carry a payload.
//
// Verbs:
//   ping                  liveness probe ("pong" payload)
//   describe <q>          parse + echo the canonical form (no compute)
//   query <q>             per-case summary table of the filtered view —
//                         byte-identical to `trace_explorer --query <q>
//                         --render summary`
//   report <q>            the full HTML report — byte-identical to
//                         `trace_explorer --query <q> --render report`
//   diff <qa> :: <qb>     green/red/common partition of the two views'
//                         DFGs (deterministic text listing)
//   stat [<q>]            corpus + cache counters as one JSON line;
//                         with a query, counts the filtered view
//   shutdown              end the session after replying "bye"
//
// serve_lines() is the transport-free core (one request line in, one
// framed response out) — the CI smoke drives it over stdio and cmp's
// payload bytes against the offline CLI. Server wraps the same
// handler in a localhost TCP accept loop; each connection speaks
// either raw ndjson or minimal HTTP/1.0 GET (/verb?q=<url-encoded>),
// detected per connection, with requests executed on the caller's
// ThreadPool.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "corpus/catalog.hpp"

namespace st {
class ThreadPool;
}

namespace st::corpus {

/// One handled request: `header` is the JSON line (no trailing
/// newline); `payload` is the verbatim artifact (empty on errors).
struct Response {
  bool ok = false;
  std::string header;
  std::string payload;
};

/// Parses and executes one request line against the catalog. Never
/// throws on request-shaped problems (bad verb, malformed query, data
/// errors) — those become ok=false replies, so one bad request cannot
/// take the service down. `shutdown` is signalled via the verb echoed
/// in the header; the loops below watch for it.
[[nodiscard]] Response handle_request(Catalog& catalog, std::string_view line);

/// The stdio/pipe transport: one request per input line until EOF or a
/// `shutdown` request. Responses are written as `header\n` + payload
/// (payload bytes verbatim, no extra framing), flushed per request.
void serve_lines(Catalog& catalog, std::istream& in, std::ostream& out);

/// Localhost TCP transport. Binds 127.0.0.1:`port` (0 = ephemeral;
/// port() reports the choice). serve_forever() accepts until stop() —
/// or a client's `shutdown` request — and runs each connection's
/// requests on `pool`. Connections speak ndjson by default; a first
/// line starting with "GET " switches the connection to one-shot
/// HTTP/1.0 (`GET /report?q=fp~%2Fp` — the query string is
/// percent-decoded, the reply is a proper HTTP response carrying the
/// payload only).
class Server {
 public:
  Server(Catalog& catalog, std::uint16_t port);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Accept loop; returns after stop() (or a `shutdown` request).
  void serve_forever(ThreadPool& pool);

  /// Unblocks serve_forever from another thread. Idempotent.
  void stop();

 private:
  void handle_connection(int fd);

  Catalog& catalog_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
};

}  // namespace st::corpus
