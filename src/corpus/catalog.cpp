#include "corpus/catalog.hpp"

#include <future>
#include <mutex>
#include <utility>

#include "dfg/builder.hpp"
#include "dfg/coloring.hpp"
#include "elog/store.hpp"
#include "pipeline/stream.hpp"
#include "support/errors.hpp"

namespace st::corpus {

report::ReportOptions query_report_options(const model::Query& q, const model::Mapping& f) {
  report::ReportOptions opts;
  opts.title = "trace_explorer report";
  opts.description = "query: " + q.describe() + ", mapping: " + f.name();
  return opts;
}

/// The LRU memo table. One mutex guards everything; computations run
/// OUTSIDE the lock (the map holds shared_futures, so latecomers to an
/// in-flight key block on the winner without holding the mutex).
struct Catalog::Cache {
  struct Slot {
    std::shared_future<std::shared_ptr<const void>> future;
    std::list<std::string>::iterator pos;  ///< position in `lru`
    std::uint64_t id = 0;                  ///< flight identity (safe erase)
  };

  std::mutex mu;
  std::list<std::string> lru;  ///< front = most recently used
  std::unordered_map<std::string, Slot> map;
  CacheStats stats;
  std::uint64_t next_id = 0;
};

Catalog::Catalog(CatalogOptions opts) : opts_(std::move(opts)), cache_(new Cache) {
  if (opts_.cache_capacity == 0) opts_.cache_capacity = 1;
  mapping_ = model::mapping_by_name(opts_.mapping);
}

Catalog::~Catalog() = default;
Catalog::Catalog(Catalog&&) noexcept = default;
Catalog& Catalog::operator=(Catalog&&) noexcept = default;

void Catalog::load(const std::vector<std::string>& inputs, ThreadPool& pool) {
  if (base_) throw LogicError("Catalog::load: already loaded (the catalog is immutable)");
  // Same partition-and-merge order as the CLI tools' positional
  // inputs, so the base log is byte-identical to the offline path.
  std::vector<std::string> elogs;
  std::vector<std::string> traces;
  for (const auto& p : inputs) {
    (p.ends_with(".elog") ? elogs : traces).push_back(p);
  }
  model::EventLog log;
  if (!traces.empty()) {
    pipeline::StreamOptions stream_opts;
    static_cast<RunPolicy&>(stream_opts) = opts_.policy;
    log = pipeline::event_log_streamed(traces, pool, stream_opts);
  }
  // Ingestion warnings before the unions: derived logs drop them.
  for (const auto& w : log.warnings()) load_warnings_.push_back(w);
  for (const auto& p : elogs) {
    try {
      auto part = elog::read_event_log_file_indexed(p, elog::ElogReadOptions{opts_.policy});
      for (const auto& w : part.log.warnings()) load_warnings_.push_back(p + ": " + w);
      if (part.mapped) {
        // A cleanly-read v2 container: its cases land contiguously at
        // the current tail of the merged log, so record the slice for
        // the indexed query planner.
        segments_.push_back(elog::IndexedSegment{log.case_count(),
                                                 part.log.case_count(),
                                                 std::move(part.mapped)});
      }
      log = model::EventLog::merge(log, std::move(part.log));
    } catch (const IoError& e) {
      if (!opts_.policy.keep_going) throw;
      load_warnings_.push_back(p + ": skipped: " + e.what());
    }
  }
  base_ = std::make_shared<const model::EventLog>(std::move(log));
}

std::shared_ptr<const model::EventLog> Catalog::filtered(const model::Query& q) {
  return artifact<model::EventLog>("filtered", &Catalog::compute_filtered, q);
}

std::shared_ptr<const dfg::Dfg> Catalog::graph(const model::Query& q) {
  return artifact<dfg::Dfg>("graph", &Catalog::compute_graph, q);
}

std::shared_ptr<const dfg::IoStatistics> Catalog::io_stats(const model::Query& q) {
  return artifact<dfg::IoStatistics>("iostats", &Catalog::compute_io_stats, q);
}

std::shared_ptr<const dfg::Layout> Catalog::layout(const model::Query& q) {
  return artifact<dfg::Layout>("layout", &Catalog::compute_layout, q);
}

std::shared_ptr<const std::vector<model::CaseSummary>> Catalog::summaries(const model::Query& q) {
  return artifact<std::vector<model::CaseSummary>>("summaries", &Catalog::compute_summaries, q);
}

std::shared_ptr<const model::VariantCounts> Catalog::variants(const model::Query& q) {
  return artifact<model::VariantCounts>("variants", &Catalog::compute_variants, q);
}

std::shared_ptr<const std::string> Catalog::report_html(const model::Query& q) {
  return artifact<std::string>("report", &Catalog::compute_report, q);
}

CacheStats Catalog::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_->mu);
  CacheStats s = cache_->stats;
  s.entries = cache_->map.size();
  return s;
}

std::shared_ptr<const void> Catalog::memoized(const std::string& key,
                                              std::shared_ptr<const void> (Catalog::*compute)(
                                                  const model::Query&),
                                              const model::Query& q) {
  std::promise<std::shared_ptr<const void>> flight;
  std::shared_future<std::shared_ptr<const void>> result;
  std::uint64_t flight_id = 0;
  bool winner = false;
  {
    std::lock_guard<std::mutex> lock(cache_->mu);
    if (auto it = cache_->map.find(key); it != cache_->map.end()) {
      ++cache_->stats.hits;
      cache_->lru.splice(cache_->lru.begin(), cache_->lru, it->second.pos);
      result = it->second.future;
    } else {
      ++cache_->stats.misses;
      winner = true;
      flight_id = ++cache_->next_id;
      result = flight.get_future().share();
      cache_->lru.push_front(key);
      cache_->map.emplace(key, Cache::Slot{result, cache_->lru.begin(), flight_id});
    }
  }
  if (winner) {
    try {
      flight.set_value((this->*compute)(q));
      std::lock_guard<std::mutex> lock(cache_->mu);
      while (cache_->map.size() > opts_.cache_capacity) {
        // The just-inserted key sits at the LRU front, so with
        // capacity >= 1 it is never its own victim. An in-flight
        // victim only loses its cache slot — waiters hold future
        // copies, and its winner's set_value still reaches them.
        cache_->map.erase(cache_->lru.back());
        cache_->lru.pop_back();
        ++cache_->stats.evictions;
      }
    } catch (...) {
      // Failures are not cached: drop the slot (if it is still ours)
      // so the next request retries, then wake every waiter with the
      // error.
      {
        std::lock_guard<std::mutex> lock(cache_->mu);
        if (auto it = cache_->map.find(key);
            it != cache_->map.end() && it->second.id == flight_id) {
          cache_->lru.erase(it->second.pos);
          cache_->map.erase(it);
        }
      }
      flight.set_exception(std::current_exception());
    }
  }
  return result.get();  // rethrows the flight's exception for everyone
}

std::shared_ptr<const void> Catalog::compute_filtered(const model::Query& q) {
  if (!base_) throw LogicError("Catalog: load() the corpus before querying it");
  if (!segments_.empty() && elog::query_index_enabled()) {
    // Byte-identical to q.apply(*base_) by the v2_select contract (the
    // equivalence tests and the CI serve cmp hold it there), so the
    // cache key and every derived artifact are unchanged.
    return std::make_shared<const model::EventLog>(
        elog::apply_query_indexed(q, *base_, segments_));
  }
  return std::make_shared<const model::EventLog>(q.apply(*base_));
}

std::shared_ptr<const void> Catalog::compute_graph(const model::Query& q) {
  return std::make_shared<const dfg::Dfg>(dfg::build_serial(*filtered(q), mapping_));
}

std::shared_ptr<const void> Catalog::compute_io_stats(const model::Query& q) {
  return std::make_shared<const dfg::IoStatistics>(
      dfg::IoStatistics::compute(*filtered(q), mapping_));
}

std::shared_ptr<const void> Catalog::compute_layout(const model::Query& q) {
  const auto g = graph(q);
  const auto stats = io_stats(q);
  return std::make_shared<const dfg::Layout>(dfg::layout_dfg(*g, stats.get(), {}));
}

std::shared_ptr<const void> Catalog::compute_summaries(const model::Query& q) {
  return std::make_shared<const std::vector<model::CaseSummary>>(
      model::summarize_cases(*filtered(q)));
}

std::shared_ptr<const void> Catalog::compute_variants(const model::Query& q) {
  return std::make_shared<const model::VariantCounts>(
      model::ActivityLog::build(*filtered(q), mapping_).variants());
}

std::shared_ptr<const void> Catalog::compute_report(const model::Query& q) {
  const auto log = filtered(q);
  const auto stats = io_stats(q);
  const dfg::StatisticsColoring styler(*stats);
  return std::make_shared<const std::string>(
      report::build_report(*log, mapping_, &styler, query_report_options(q, mapping_)));
}

}  // namespace st::corpus
