// corpus::Catalog — the resident, immutable corpus behind serve mode.
//
// ROADMAP's "production-scale analysis system" needs the batch tools'
// primitives re-packaged for heavy concurrent READ traffic: load the
// corpus once (elog v2 containers open by mmap with zero reparse;
// trace files stream through pipeline::run), hold it immutably behind
// shared_ptr ownership, and memoize every derived artifact — query-
// filtered logs, DFGs, layouts, I/O statistics, case summaries,
// variant multisets, full HTML reports — in a thread-safe LRU cache.
//
// The cache key IS the wire format: artifacts are keyed by the
// canonical Query::describe() fingerprint (plus the artifact kind), so
// two requests that mean the same query — however they were spelled on
// the wire — hit the same entry, and a cache key printed in a log is a
// replayable request.
//
// Concurrency contract:
//   - every getter is safe to call from any number of threads;
//   - a given (kind, query) is computed ONCE even under a stampede —
//     latecomers block on the winner's shared_future (single-flight);
//   - a computation that throws is NOT cached (the error propagates to
//     every waiter of that flight; the next request retries);
//   - artifacts are returned as shared_ptr<const T>: eviction never
//     invalidates a handle a caller still holds.
//
// Determinism contract: every artifact is byte-identical to the
// offline CLI path over the same inputs — filtered logs use the same
// serial Query::apply, reports the same build_report with the same
// ReportOptions (query_report_options below is shared with
// trace_explorer), so CI can cmp served bytes against the batch tool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfg/dfg.hpp"
#include "dfg/layout.hpp"
#include "dfg/stats.hpp"
#include "elog/v2_select.hpp"
#include "model/activity_log.hpp"
#include "model/case_stats.hpp"
#include "model/event_log.hpp"
#include "model/mapping.hpp"
#include "model/query.hpp"
#include "parallel/thread_pool.hpp"
#include "report/report.hpp"
#include "support/run_policy.hpp"

namespace st::corpus {

struct CatalogOptions {
  /// Activity mapping every DFG/statistics artifact uses (registry
  /// short name, model::mapping_by_name).
  std::string mapping = "top2";
  /// Maximum number of memoized artifacts (across all kinds); at least
  /// 1 is always kept. Least-recently-USED entries evict first.
  std::size_t cache_capacity = 64;
  /// Load-time error policy (support/run_policy.hpp): keep_going
  /// quarantines unreadable inputs with a warning instead of failing
  /// the load.
  RunPolicy policy;
};

/// Cache observability — returned by Catalog::cache_stats() and
/// reported by the serve `stat` verb and bench_serve's hit-rate.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      ///< flights started (stampede = 1 miss)
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

/// The ReportOptions of a query-driven report — ONE place, so the
/// serve path and trace_explorer's offline --render report produce
/// byte-identical HTML by construction.
[[nodiscard]] report::ReportOptions query_report_options(const model::Query& q,
                                                         const model::Mapping& f);

class Catalog {
 public:
  explicit Catalog(CatalogOptions opts = {});
  ~Catalog();                         // out-of-line: Cache is incomplete here
  Catalog(Catalog&&) noexcept;        // movable (hand a catalog to the server)
  Catalog& operator=(Catalog&&) noexcept;

  /// Loads the corpus: .elog containers (v2 by mmap, v1 by chunk
  /// parse) and cid_host_rid.st trace files mix freely, exactly like
  /// the CLI tools' positional inputs — traces stream through
  /// pipeline::run on `pool`, then containers merge in input order, so
  /// the base log is byte-identical to trace_explorer's. Call once,
  /// before serving; the catalog is immutable afterwards.
  void load(const std::vector<std::string>& inputs, ThreadPool& pool);

  /// The unfiltered corpus (shared, immutable).
  [[nodiscard]] std::shared_ptr<const model::EventLog> base() const { return base_; }
  /// Warnings collected during load (keep_going quarantines).
  [[nodiscard]] const std::vector<std::string>& load_warnings() const { return load_warnings_; }
  [[nodiscard]] const model::Mapping& mapping() const { return mapping_; }

  // -- memoized derived artifacts ------------------------------------
  // All single-flight, LRU-cached under the canonical describe() key.

  /// The query-filtered view of the corpus. Cases backed by cleanly-
  /// loaded v2 containers are selected through the indexed planner
  /// (elog/v2_select.hpp) — byte-identical to Query::apply by contract,
  /// so cache keys, wire bytes and the offline path are unchanged;
  /// ST_QUERY_INDEX=off forces the materialized scan for A/B cmp.
  [[nodiscard]] std::shared_ptr<const model::EventLog> filtered(const model::Query& q);
  /// DFG of the filtered view under the catalog mapping.
  [[nodiscard]] std::shared_ptr<const dfg::Dfg> graph(const model::Query& q);
  /// Activity/I-O statistics of the filtered view.
  [[nodiscard]] std::shared_ptr<const dfg::IoStatistics> io_stats(const model::Query& q);
  /// Deterministic coordinate layout of graph(q), statistics-sized.
  [[nodiscard]] std::shared_ptr<const dfg::Layout> layout(const model::Query& q);
  /// Per-case summary rows of the filtered view.
  [[nodiscard]] std::shared_ptr<const std::vector<model::CaseSummary>> summaries(
      const model::Query& q);
  /// Trace-variant multiset of the filtered view.
  [[nodiscard]] std::shared_ptr<const model::VariantCounts> variants(const model::Query& q);
  /// The full self-contained HTML report of the filtered view —
  /// byte-identical to `trace_explorer --query <q> --render report`.
  [[nodiscard]] std::shared_ptr<const std::string> report_html(const model::Query& q);

  [[nodiscard]] CacheStats cache_stats() const;

 private:
  /// Looks up `key`, or runs `compute` exactly once (single-flight)
  /// and caches the result. Returns the cached shared artifact.
  std::shared_ptr<const void> memoized(const std::string& key,
                                       std::shared_ptr<const void> (Catalog::*compute)(
                                           const model::Query&),
                                       const model::Query& q);

  template <typename T>
  std::shared_ptr<const T> artifact(const char* kind,
                                    std::shared_ptr<const void> (Catalog::*compute)(
                                        const model::Query&),
                                    const model::Query& q) {
    return std::static_pointer_cast<const T>(memoized(std::string(kind) + '|' + q.describe(),
                                                      compute, q));
  }

  std::shared_ptr<const void> compute_filtered(const model::Query& q);
  std::shared_ptr<const void> compute_graph(const model::Query& q);
  std::shared_ptr<const void> compute_io_stats(const model::Query& q);
  std::shared_ptr<const void> compute_layout(const model::Query& q);
  std::shared_ptr<const void> compute_summaries(const model::Query& q);
  std::shared_ptr<const void> compute_variants(const model::Query& q);
  std::shared_ptr<const void> compute_report(const model::Query& q);

  CatalogOptions opts_;
  model::Mapping mapping_;
  std::shared_ptr<const model::EventLog> base_;
  /// v2-backed slices of base_ (sorted, non-overlapping), recorded by
  /// load() for the indexed query path. Empty = always scan.
  std::vector<elog::IndexedSegment> segments_;
  std::vector<std::string> load_warnings_;

  struct Cache;                   // mutex + LRU list + map (catalog.cpp)
  std::unique_ptr<Cache> cache_;  // pointer so the header stays light
};

}  // namespace st::corpus
