#include "corpus/serve.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <future>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "dfg/diff.hpp"
#include "parallel/thread_pool.hpp"
#include "support/errors.hpp"
#include "support/strings.hpp"

namespace st::corpus {
namespace {

/// Minimal JSON string escaping for the header line (quotes,
/// backslashes and control bytes; everything else passes through).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (u < 0x20) {
      static const char* hex = "0123456789abcdef";
      out += "\\u00";
      out += hex[u >> 4];
      out += hex[u & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

Response ok_response(std::string_view verb, const std::string& canonical, std::string payload) {
  Response r;
  r.ok = true;
  r.header = "{\"ok\":true,\"verb\":\"" + std::string(verb) + "\",\"query\":\"" +
             json_escape(canonical) + "\",\"bytes\":" + std::to_string(payload.size()) + "}";
  r.payload = std::move(payload);
  return r;
}

Response error_response(std::string_view what, std::optional<std::size_t> position = {}) {
  Response r;
  r.ok = false;
  r.header = "{\"ok\":false,\"error\":\"" + json_escape(what) + "\"";
  if (position) r.header += ",\"position\":" + std::to_string(*position);
  r.header += "}";
  return r;
}

/// Activities may embed newlines (call\npath); flatten for the
/// line-oriented diff listing.
std::string flat(const model::Activity& a) {
  std::string out = a;
  std::replace(out.begin(), out.end(), '\n', ' ');
  return out;
}

std::string render_diff(const dfg::GraphDiff& d) {
  std::ostringstream out;
  const auto nodes = [&](const char* label, const std::set<model::Activity>& set) {
    out << label << " nodes (" << set.size() << "):\n";
    for (const auto& a : set) out << "  " << flat(a) << "\n";
  };
  const auto edges = [&](const char* label, const std::set<dfg::GraphDiff::Edge>& set) {
    out << label << " edges (" << set.size() << "):\n";
    for (const auto& [from, to] : set) out << "  " << flat(from) << " -> " << flat(to) << "\n";
  };
  nodes("green", d.green_nodes());
  nodes("red", d.red_nodes());
  nodes("common", d.common_nodes());
  edges("green", d.green_edges());
  edges("red", d.red_edges());
  edges("common", d.common_edges());
  return std::move(out).str();
}

std::string render_stat(const Catalog& catalog, std::size_t cases, std::size_t events) {
  const CacheStats s = catalog.cache_stats();
  std::ostringstream out;
  out << "{\"cases\":" << cases << ",\"events\":" << events << ",\"cache\":{\"hits\":" << s.hits
      << ",\"misses\":" << s.misses << ",\"evictions\":" << s.evictions
      << ",\"entries\":" << s.entries << "}}\n";
  return std::move(out).str();
}

}  // namespace

Response handle_request(Catalog& catalog, std::string_view line) {
  try {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) return error_response("empty request");
    const auto space = trimmed.find(' ');
    const std::string_view verb = trimmed.substr(0, space);
    const std::string_view arg =
        space == std::string_view::npos ? std::string_view{} : trim(trimmed.substr(space + 1));

    if (verb == "ping") return ok_response("ping", "", "pong\n");
    if (verb == "shutdown") return ok_response("shutdown", "", "bye\n");
    if (verb == "describe") {
      const auto q = model::Query::parse(arg);
      return ok_response("describe", q.describe(), q.describe() + "\n");
    }
    if (verb == "query") {
      const auto q = model::Query::parse(arg);
      return ok_response("query", q.describe(),
                         model::render_case_summaries(*catalog.summaries(q)));
    }
    if (verb == "report") {
      const auto q = model::Query::parse(arg);
      return ok_response("report", q.describe(), *catalog.report_html(q));
    }
    if (verb == "diff") {
      const auto sep = arg.find(" :: ");
      if (sep == std::string_view::npos) {
        return error_response("diff takes two queries: diff <green> :: <red>");
      }
      const auto qa = model::Query::parse(arg.substr(0, sep));
      const auto qb = model::Query::parse(arg.substr(sep + 4));
      const auto ga = catalog.graph(qa);
      const auto gb = catalog.graph(qb);
      return ok_response("diff", qa.describe() + " :: " + qb.describe(),
                         render_diff(dfg::GraphDiff(*ga, *gb)));
    }
    if (verb == "stat") {
      if (arg.empty()) {
        const auto base = catalog.base();
        const std::size_t cases = base ? base->case_count() : 0;
        const std::size_t events = base ? base->total_events() : 0;
        return ok_response("stat", "", render_stat(catalog, cases, events));
      }
      const auto q = model::Query::parse(arg);
      const auto view = catalog.filtered(q);
      return ok_response("stat", q.describe(),
                         render_stat(catalog, view->case_count(), view->total_events()));
    }
    return error_response("unknown verb (ping/describe/query/report/diff/stat/shutdown): " +
                          std::string(verb));
  } catch (const model::QueryParseError& e) {
    return error_response(e.what(), e.position());
  } catch (const Error& e) {
    return error_response(e.what());
  } catch (const std::exception& e) {
    return error_response(std::string("internal error: ") + e.what());
  }
}

void serve_lines(Catalog& catalog, std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    const Response r = handle_request(catalog, line);
    out << r.header << '\n' << r.payload << std::flush;
    if (r.ok && r.header.find("\"verb\":\"shutdown\"") != std::string::npos) break;
  }
}

// -- TCP transport ---------------------------------------------------

namespace {

void write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const auto n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; nothing useful to do
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Buffered line reads over a socket.
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  bool getline(std::string& line) {
    line.clear();
    for (;;) {
      const auto nl = buf_.find('\n', pos_);
      if (nl != std::string::npos) {
        line.assign(buf_, pos_, nl - pos_);
        pos_ = nl + 1;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return true;
      }
      buf_.erase(0, pos_);
      pos_ = 0;
      char chunk[4096];
      const auto n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        if (!buf_.empty()) {  // final unterminated line
          line = std::exchange(buf_, {});
          return true;
        }
        return false;
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
  std::size_t pos_ = 0;
};

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() && hex_value(s[i + 1]) >= 0 &&
               hex_value(s[i + 2]) >= 0) {
      out += static_cast<char>((hex_value(s[i + 1]) << 4) | hex_value(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

/// "GET /report?q=fp~%2Fp HTTP/1.1" -> the ndjson request line.
std::string request_from_http(std::string_view request_line) {
  std::string_view rest = request_line.substr(4);  // past "GET "
  const auto sp = rest.find(' ');
  if (sp != std::string_view::npos) rest = rest.substr(0, sp);
  if (!rest.empty() && rest.front() == '/') rest.remove_prefix(1);
  const auto qm = rest.find('?');
  std::string verb(rest.substr(0, qm));
  if (verb.empty()) verb = "stat";
  std::string arg;
  if (qm != std::string_view::npos) {
    for (const auto param : split(rest.substr(qm + 1), '&')) {
      if (param.starts_with("q=")) arg = url_decode(param.substr(2));
    }
  }
  return arg.empty() ? verb : verb + " " + arg;
}

}  // namespace

Server::Server(Catalog& catalog, std::uint16_t port) : catalog_(catalog) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw IoError("serve: cannot create socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    throw IoError("serve: cannot bind 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

Server::~Server() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::stop() {
  if (!stopping_.exchange(true) && listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  }
}

void Server::serve_forever(ThreadPool& pool) {
  std::vector<std::future<void>> connections;
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // stop() shut the listener down (or it genuinely failed)
    }
    connections.push_back(pool.submit([this, fd] { handle_connection(fd); }));
  }
  for (auto& c : connections) c.wait();  // drain in-flight requests
}

void Server::handle_connection(int fd) {
  FdLineReader reader(fd);
  std::string line;
  if (!reader.getline(line)) {
    ::close(fd);
    return;
  }
  if (line.starts_with("GET ")) {
    // One-shot HTTP/1.0: drain the request headers, answer, close.
    std::string header_line;
    while (reader.getline(header_line) && !header_line.empty()) {
    }
    const Response r = handle_request(catalog_, request_from_http(line));
    const std::string_view body = r.ok ? std::string_view(r.payload) : std::string_view(r.header);
    std::string http = r.ok ? "HTTP/1.0 200 OK\r\n" : "HTTP/1.0 400 Bad Request\r\n";
    http += r.ok && r.header.find("\"verb\":\"report\"") != std::string::npos
                ? "Content-Type: text/html; charset=utf-8\r\n"
                : "Content-Type: text/plain; charset=utf-8\r\n";
    http += "Content-Length: " + std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
    http += body;
    write_all(fd, http);
    ::close(fd);
    if (r.ok && r.header.find("\"verb\":\"shutdown\"") != std::string::npos) stop();
    return;
  }
  // ndjson session: one request per line until EOF or shutdown.
  for (;;) {
    if (!trim(line).empty()) {
      const Response r = handle_request(catalog_, line);
      write_all(fd, r.header + "\n" + r.payload);
      if (r.ok && r.header.find("\"verb\":\"shutdown\"") != std::string::npos) {
        ::close(fd);
        stop();
        return;
      }
    }
    if (!reader.getline(line)) break;
  }
  ::close(fd);
}

}  // namespace st::corpus
