// Indexed query selection over elog v2 — evaluate a compiled Query
// directly on the columnar sections, materializing only survivors.
//
// Query::apply materializes every case into Events and string-compares
// every one of them; over an mmap'd v2 corpus that walk IS the query
// cost, and it grows with corpus size, not selectivity. This module
// makes selectivity the cost instead (ISSUE 10):
//
//   1. COMPILE  the Query once against the file's string dictionary:
//      call/cid/host restrictions become bitmaps over pool ids (one
//      binary search per pool string), fp~ substrings scan the (tiny)
//      dictionary once into a matching fp-id bitmap. After this no
//      string is ever compared again.
//   2. PRUNE    whole cases without touching their columns: the call
//      posting list narrows to candidate cases, zone maps reject
//      disjoint time windows, the per-case call/fp id sets reject
//      cases whose dictionary footprint cannot match. A pruned case
//      still appears in the result as an EMPTY case — exactly the
//      apply() contract (event restrictions keep emptied cases).
//   3. SCAN     the residual predicate over the raw u32/varint columns
//      of surviving cases, materializing Events only for rows that
//      pass (a SWAR two-lane u32 matcher prefilters the call column
//      when the accept set is a single id; honors
//      strace::scan_kernel_mode()).
//
// The contract throughout: the result is BYTE-IDENTICAL to
// Query::apply on the fully materialized log — same cases in the same
// order, same events, same (empty) warnings, same ownership
// propagation. Every index structure is advisory-by-absence only:
// missing sections degrade to the column scan, but a present-and-
// corrupt index surfaces as IoError, never as wrong pruning.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "elog/v2_store.hpp"
#include "model/event_log.hpp"
#include "model/query.hpp"

namespace st::elog {

/// False when the environment disables the indexed path
/// (ST_QUERY_INDEX=off|0|scan|false — the CI knob that forces
/// Query::apply so served bytes can be cmp'd against the scan path).
[[nodiscard]] bool query_index_enabled();

/// Programmatic override of the same switch, for tests that exercise
/// both paths in one process. Thread-safe (relaxed atomic).
void set_query_index_enabled(bool enabled);

/// One v2-backed slice of a merged corpus: cases [first_case,
/// first_case + case_count) of the base log are, in order, the cases
/// of `mapped`. Catalog::load and the CLI loaders record one segment
/// per cleanly-read v2 container (quarantines disqualify a file — its
/// case numbering no longer lines up).
struct IndexedSegment {
  std::size_t first_case = 0;
  std::size_t case_count = 0;
  std::shared_ptr<MappedElog> mapped;
};

/// Indexed selection over one mapped corpus. Byte-identical to
/// q.apply(read_event_log_v2(mapped)); the result adopts `mapped`.
[[nodiscard]] model::EventLog select_v2(const std::shared_ptr<MappedElog>& mapped,
                                        const model::Query& q);

/// Byte-identical to q.apply(base), with every case covered by a
/// segment routed through the indexed columnar path and everything
/// else through Query::apply_case. Segments must be sorted by
/// first_case and non-overlapping (LogicError otherwise); a segment
/// with a null mapped pointer is simply not indexed.
[[nodiscard]] model::EventLog apply_query_indexed(const model::Query& q,
                                                  const model::EventLog& base,
                                                  std::span<const IndexedSegment> segments);

}  // namespace st::elog
