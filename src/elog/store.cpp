#include "elog/store.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "elog/format.hpp"
#include "elog/v2_store.hpp"
#include "strace/filename.hpp"
#include "strace/trace_buffer.hpp"
#include "support/errors.hpp"

namespace st::elog {

namespace {

/// Per-case string dictionary: intern() assigns dense ids in first-use
/// order so the pool chunk is written before the columns referencing it.
class StringPool {
 public:
  std::uint32_t intern(std::string_view s) {
    // Heterogeneous lookup: the per-event hot path (every call/fp of
    // every event) must not allocate for already-interned strings.
    const auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  [[nodiscard]] const std::vector<std::string>& strings() const { return strings_; }

 private:
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, std::uint32_t, SvHash, std::equal_to<>> ids_;
  std::vector<std::string> strings_;
};

void write_case(std::ostream& out, const model::Case& c) {
  // CHDR: canonical case name.
  std::string header;
  put_string(header, strace::format_trace_filename(
                         strace::TraceFileId{c.id().cid, c.id().host, c.id().rid}));
  write_chunk(out, kTagCaseHeader, header);

  StringPool pool;
  std::string col_pid;
  std::string col_call;
  std::string col_start;
  std::string col_dur;
  std::string col_fp;
  std::string col_size;
  const auto events = c.events();
  put_u64(col_pid, events.size());
  for (const model::Event& e : events) {
    put_u64(col_pid, e.pid);
    put_u32(col_call, pool.intern(e.call));
    put_i64(col_start, e.start);
    put_i64(col_dur, e.dur);
    put_u32(col_fp, pool.intern(e.fp));
    put_i64(col_size, e.size);
  }

  std::string pool_payload;
  put_u32(pool_payload, static_cast<std::uint32_t>(pool.strings().size()));
  for (const auto& s : pool.strings()) put_string(pool_payload, s);
  write_chunk(out, kTagPool, pool_payload);

  write_chunk(out, kTagColPid, col_pid);
  write_chunk(out, kTagColCall, col_call);
  write_chunk(out, kTagColStart, col_start);
  write_chunk(out, kTagColDur, col_dur);
  write_chunk(out, kTagColFp, col_fp);
  write_chunk(out, kTagColSize, col_size);
  write_chunk(out, kTagCaseEnd, {});
}

/// Rebuilds one case. The events' string fields are interned into
/// `arena` (owned by the destination EventLog), so the views stay
/// valid for the log's lifetime.
model::Case read_case(std::istream& in, const Chunk& header, strace::StringArena& arena) {
  PayloadReader header_reader(header.payload);
  const std::string name = header_reader.str();
  const auto id = strace::parse_trace_filename(name);
  if (!id) throw ParseError("elog case name not cid_host_rid.st: " + name);

  std::vector<std::string> pool;
  std::vector<std::uint64_t> pids;
  std::vector<std::uint32_t> calls;
  std::vector<std::int64_t> starts;
  std::vector<std::int64_t> durs;
  std::vector<std::uint32_t> fps;
  std::vector<std::int64_t> sizes;
  std::uint64_t rows = 0;

  while (true) {
    const Chunk chunk = read_chunk(in);
    if (chunk.tag == kTagCaseEnd) break;
    PayloadReader r(chunk.payload);
    // Element counts are attacker-controlled until checked: bound them
    // against the bytes actually present in the payload BEFORE any
    // reserve, so a corrupt count is an IoError, not a giant allocation.
    if (chunk.tag == kTagPool) {
      const std::uint32_t n = r.u32();
      if (n > r.remaining() / 4) {
        throw IoError("elog: string pool count exceeds payload in case " + name);
      }
      pool.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) pool.push_back(r.str());
    } else if (chunk.tag == kTagColPid) {
      rows = r.u64();
      if (rows > r.remaining() / 8) {
        throw IoError("elog: row count exceeds payload in case " + name);
      }
      pids.reserve(rows);
      for (std::uint64_t i = 0; i < rows; ++i) pids.push_back(r.u64());
    } else if (chunk.tag == kTagColCall) {
      for (std::uint64_t i = 0; i < rows; ++i) calls.push_back(r.u32());
    } else if (chunk.tag == kTagColStart) {
      for (std::uint64_t i = 0; i < rows; ++i) starts.push_back(r.i64());
    } else if (chunk.tag == kTagColDur) {
      for (std::uint64_t i = 0; i < rows; ++i) durs.push_back(r.i64());
    } else if (chunk.tag == kTagColFp) {
      for (std::uint64_t i = 0; i < rows; ++i) fps.push_back(r.u32());
    } else if (chunk.tag == kTagColSize) {
      for (std::uint64_t i = 0; i < rows; ++i) sizes.push_back(r.i64());
    } else {
      throw IoError("elog: unexpected chunk inside case: " +
                    std::string(chunk.tag.data(), chunk.tag.size()));
    }
  }

  if (calls.size() != rows || starts.size() != rows || durs.size() != rows ||
      fps.size() != rows || sizes.size() != rows) {
    throw IoError("elog: column row counts disagree in case " + name);
  }

  // Intern each distinct pool string once; events then share views.
  std::vector<std::string_view> pool_views;
  pool_views.reserve(pool.size());
  for (const auto& s : pool) pool_views.push_back(arena.intern(s));
  const std::string_view cid = arena.intern(id->cid);
  const std::string_view host = arena.intern(id->host);

  std::vector<model::Event> events;
  events.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    model::Event e;
    e.cid = cid;
    e.host = host;
    e.rid = id->rid;
    e.pid = pids[i];
    if (calls[i] >= pool_views.size() || fps[i] >= pool_views.size()) {
      throw IoError("elog: string pool id out of range in case " + name);
    }
    e.call = pool_views[calls[i]];
    e.start = starts[i];
    e.dur = durs[i];
    e.fp = pool_views[fps[i]];
    e.size = sizes[i];
    events.push_back(e);
  }
  return model::Case(model::CaseId{id->cid, id->host, id->rid}, std::move(events));
}

}  // namespace

void write_event_log(std::ostream& out, const model::EventLog& log) {
  out.write(kMagic.data(), static_cast<std::streamsize>(kMagic.size()));
  std::string count;
  put_u64(count, log.case_count());
  out.write(count.data(), static_cast<std::streamsize>(count.size()));
  for (const model::Case& c : log.cases()) write_case(out, c);
  write_chunk(out, kTagFileEnd, {});
  if (!out) throw IoError("elog write failed");
}

void write_event_log_file(const std::string& path, const model::EventLog& log) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot create elog file: " + path);
  write_event_log(out, log);
}

namespace {

/// Remainder of the v1 reader, after the magic has been consumed.
model::EventLog read_event_log_v1_body(std::istream& in) {
  std::array<char, 8> count_bytes{};
  in.read(count_bytes.data(), 8);
  if (in.gcount() != 8) throw IoError("elog truncated: case count");
  std::uint64_t case_count = 0;
  for (int i = 0; i < 8; ++i) {
    case_count |= static_cast<std::uint64_t>(
                      static_cast<unsigned char>(count_bytes[static_cast<std::size_t>(i)]))
                  << (8 * i);
  }

  model::EventLog log;
  strace::StringArena& arena = log.arena();
  for (std::uint64_t c = 0; c < case_count; ++c) {
    const Chunk header = read_chunk(in);
    if (header.tag != kTagCaseHeader) {
      throw IoError("elog: expected CHDR chunk, got " +
                    std::string(header.tag.data(), header.tag.size()));
    }
    log.add_case(read_case(in, header, arena));
  }
  const Chunk fin = read_chunk(in);
  if (fin.tag != kTagFileEnd) throw IoError("elog: missing FEND chunk");
  return log;
}

}  // namespace

model::EventLog read_event_log(std::istream& in) {
  // Both container versions open with an 8-byte magic — sniff it and
  // dispatch, so every caller reads both transparently.
  std::string magic(kMagic.size(), '\0');
  in.read(magic.data(), static_cast<std::streamsize>(magic.size()));
  if (static_cast<std::size_t>(in.gcount()) != kMagic.size()) {
    throw IoError("elog: bad magic");
  }
  if (magic == kMagic) return read_event_log_v1_body(in);
  if (magic == kMagicV2) {
    // v2 is footer-indexed, so a stream must be slurped; open files by
    // path (read_event_log_file / open_v2) to get the mmap fast path.
    std::ostringstream rest;
    rest << in.rdbuf();
    if (in.bad()) throw IoError("elog: read failed");
    auto buffer = std::make_shared<strace::TraceBuffer>(magic + std::move(rest).str());
    return read_event_log_v2(MappedElog::from_buffer(std::move(buffer)));
  }
  throw IoError("elog: bad magic");
}

model::EventLog read_event_log_file(const std::string& path) {
  return read_event_log_file(path, ElogReadOptions{});
}

model::EventLog read_event_log_file(const std::string& path, const ElogReadOptions& opts) {
  return read_event_log_file_indexed(path, opts).log;
}

LoadedElog read_event_log_file_indexed(const std::string& path, const ElogReadOptions& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open elog file: " + path);
  std::string magic(kMagicV2.size(), '\0');
  in.read(magic.data(), static_cast<std::streamsize>(magic.size()));
  if (static_cast<std::size_t>(in.gcount()) == kMagicV2.size() && magic == kMagicV2) {
    in.close();
    auto mapped = open_v2(path);
    model::EventLog log = read_event_log_v2(mapped, V2ReadOptions{opts.keep_going});
    // Quarantines break the 1:1 case correspondence the planner needs;
    // such a log (and any v1 log) is served by the materialized path.
    const bool clean = log.warnings().empty() && log.case_count() == mapped->case_count();
    return {std::move(log), clean ? std::move(mapped) : nullptr};
  }
  in.clear();
  in.seekg(0);
  return {read_event_log(in), nullptr};
}

ElogAppender::ElogAppender(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw IoError("cannot create elog file: " + path);
  out_.write(kMagic.data(), static_cast<std::streamsize>(kMagic.size()));
  std::string count;
  put_u64(count, 0);  // patched by finalize()
  out_.write(count.data(), static_cast<std::streamsize>(count.size()));
  if (!out_) throw IoError("elog write failed");
}

ElogAppender::~ElogAppender() {
  try {
    finalize();
  } catch (const Error&) {
    // Destructors must not throw; an unfinalized file is unreadable
    // (missing FEND), which is the safe failure mode.
  }
}

void ElogAppender::append(const model::Case& c) {
  if (finalized_) throw LogicError("ElogAppender::append after finalize");
  write_case(out_, c);
  ++cases_written_;
}

void ElogAppender::finalize() {
  if (finalized_) return;
  write_chunk(out_, kTagFileEnd, {});
  // Patch the case count at its fixed offset right after the magic.
  out_.seekp(static_cast<std::streamoff>(kMagic.size()));
  std::string count;
  put_u64(count, cases_written_);
  out_.write(count.data(), static_cast<std::streamsize>(count.size()));
  out_.flush();
  if (!out_) throw IoError("elog finalize failed");
  finalized_ = true;
}

}  // namespace st::elog
