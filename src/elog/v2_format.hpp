// elog v2: the columnar, mmap-native corpus format ("STELOG2\0").
//
// Where v1 (format.hpp) is a chunk stream that must be parsed front to
// back, v2 is laid out so that opening a corpus does ZERO parse work:
// a footer at the file tail points at a section table, the table
// indexes every section by (kind, case, offset, length), and all event
// data lives in fixed-width or self-delimiting columns that EventLog
// views can be built over lazily, straight from the mapping. All
// integers are little-endian; every multi-byte load goes through the
// memcpy-based load_* helpers shared with format.hpp (no pointer-cast
// UB, byte-order independent).
//
//   file    := magic[8] | section* | table | footer[32]
//   section := raw bytes, 8-byte-aligned start, zero padding between
//   table   := section_count x entry, 32 bytes each:
//                u32 kind | u32 case_index | u64 offset | u64 length
//              | u32 crc32(section bytes) | u32 aux
//   footer  := u64 table_offset | u32 section_count | u32 case_count
//            | u32 crc32(table bytes) | u32 reserved(0)
//            | footer magic "STELOG2F"
//
// Section kinds:
//   1 StringPool     u32 count | u32 reserved(0) | u32 end_offset[count]
//                    | blob. ONE file-level dictionary shared by the
//                    cid/host/call/fp columns of every case; string i
//                    is blob[end[i-1] .. end[i]) with end[-1] = 0.
//   2 CaseDirectory  24 bytes per case, in case order:
//                    u32 cid_id | u32 host_id | u64 rid | u64 rows
//   3 ColPid         rows x u64           (case_index names the case)
//   4 ColCall        rows x u32 pool ids
//   5 ColStart       delta-encoded start timestamps (delta from the
//                    previous row's start; the first delta is relative
//                    to 0). aux selects the encoding chosen at write
//                    time, whichever is smaller: 0 = rows x i64 fixed
//                    width, 1 = zigzag LEB128 varints.
//   6 ColDur         rows x i64
//   7 ColFp          rows x u32 pool ids
//   8 ColSize        rows x i64
//
// Index sections (optional, file-level, written after the directory;
// ISSUE 10). They are ADVISORY: a file without them is fully readable
// and queries fall back to scanning the columns, but when present
// they are covered by the same CRC + structural-validation contract as
// every other section — a corrupt index is an IoError on use, never a
// wrong query result. The cid/host of a case live in the directory
// already, so per-case id sets exist only for the two per-EVENT
// dictionary columns (call, fp):
//   9  ZoneMap       case_count x 32 bytes, in case order:
//                    i64 min_start | i64 max_start
//                    | u64 min_pid | u64 max_pid
//                    (inclusive ranges over the case's events; an
//                    empty case writes the empty-range sentinels
//                    min_start=INT64_MAX, max_start=INT64_MIN,
//                    min_pid=UINT64_MAX, max_pid=0 — min > max marks
//                    "no events", so window probes prune it for free).
//   10 CallSet       u32 ends[case_count] | u32 ids[total]: case i's
//                    DISTINCT call ids, sorted ascending, are
//                    ids[ends[i-1] .. ends[i]) with ends[-1] = 0.
//   11 FpSet         same layout over the fp column's ids.
//   12 Posting       u32 key_count | u32 reserved(0)
//                    | key_count x (u32 call_id | u32 end)
//                    | u32 case_indices[total]: the inverted CallSet —
//                    keys sorted ascending by call_id, key k's sorted
//                    case-index list is case_indices[end[k-1] .. end[k]).
//
// Integrity: each section carries a crc32 in its table entry,
// validated lazily — once, the first time the section's bytes are
// decoded — or eagerly by MappedElog::verify(), which additionally
// checks the table/footer structure and that inter-section padding is
// zero, so a full verify pass covers every byte of the file.
// Corruption always surfaces as IoError, never as silently wrong
// analysis.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "elog/format.hpp"

namespace st::elog {

inline constexpr std::string_view kMagicV2{"STELOG2\0", 8};
inline constexpr std::string_view kFooterMagicV2{"STELOG2F", 8};

inline constexpr std::size_t kSectionAlign = 8;
inline constexpr std::size_t kSectionEntryBytes = 32;
inline constexpr std::size_t kFooterBytes = 32;
inline constexpr std::size_t kDirEntryBytes = 24;
inline constexpr std::size_t kZoneEntryBytes = 32;

enum class SectionKind : std::uint32_t {
  kStringPool = 1,
  kCaseDirectory = 2,
  kColPid = 3,
  kColCall = 4,
  kColStart = 5,
  kColDur = 6,
  kColFp = 7,
  kColSize = 8,
  // Optional, advisory index sections (spec comment above).
  kZoneMap = 9,
  kCallSet = 10,
  kFpSet = 11,
  kPosting = 12,
};

inline constexpr std::uint32_t kSectionKindMin = 1;
inline constexpr std::uint32_t kSectionKindMax = 12;

/// True for the file-level index kinds 9..12 (optional sections; the
/// query planner falls back to a column scan when they are absent).
[[nodiscard]] constexpr bool section_kind_is_index(SectionKind kind) {
  return kind == SectionKind::kZoneMap || kind == SectionKind::kCallSet ||
         kind == SectionKind::kFpSet || kind == SectionKind::kPosting;
}

/// Human-readable kind name ("pool", "pid", ...) for stat/error output.
[[nodiscard]] std::string_view section_kind_name(SectionKind kind);

/// ColStart encodings (the `aux` field of its table entry).
inline constexpr std::uint32_t kStartEncodingFixed = 0;
inline constexpr std::uint32_t kStartEncodingVarint = 1;

/// One row of the section table (in-memory form).
struct SectionEntry {
  SectionKind kind{};
  std::uint32_t case_index = 0;  ///< 0 for pool/directory
  std::uint64_t offset = 0;      ///< from file start; 8-byte aligned
  std::uint64_t length = 0;      ///< payload bytes (padding excluded)
  std::uint32_t crc = 0;         ///< crc32 of the payload bytes
  std::uint32_t aux = 0;         ///< per-kind extra (ColStart encoding)
};

void put_section_entry(std::string& out, const SectionEntry& e);
[[nodiscard]] SectionEntry load_section_entry(const char* p);

struct FooterV2 {
  std::uint64_t table_offset = 0;
  std::uint32_t section_count = 0;
  std::uint32_t case_count = 0;
  std::uint32_t table_crc = 0;
};

void put_footer(std::string& out, const FooterV2& f);

/// Parses and structurally validates the 32-byte footer at the tail of
/// `file` (magic, reserved field, table bounds). Throws IoError.
[[nodiscard]] FooterV2 load_footer(std::string_view file);

// -- varint (zigzag LEB128) --------------------------------------------

[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void put_uvarint(std::string& out, std::uint64_t v);

/// Decodes one LEB128 varint and advances *p. Throws IoError on
/// truncation and on encodings longer than 10 bytes.
[[nodiscard]] std::uint64_t read_uvarint(const char** p, const char* end);

}  // namespace st::elog
