#include "elog/format.hpp"

#include <algorithm>

#include "support/crc32.hpp"
#include "support/errors.hpp"

namespace st::elog {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void put_i64(std::string& out, std::int64_t v) { put_u64(out, static_cast<std::uint64_t>(v)); }

void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

std::uint32_t load_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::int64_t load_i64(const char* p) { return static_cast<std::int64_t>(load_u64(p)); }

void store_u32(char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
}

std::uint32_t PayloadReader::u32() {
  if (pos_ + 4 > data_.size()) throw IoError("elog payload truncated (u32)");
  const std::uint32_t v = load_u32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  if (pos_ + 8 > data_.size()) throw IoError("elog payload truncated (u64)");
  const std::uint64_t v = load_u64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

std::int64_t PayloadReader::i64() { return static_cast<std::int64_t>(u64()); }

std::string PayloadReader::str() {
  const std::uint32_t len = u32();
  if (pos_ + len > data_.size()) throw IoError("elog payload truncated (string)");
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

void write_chunk(std::ostream& out, const ChunkTag& tag, std::string_view payload) {
  out.write(tag.data(), static_cast<std::streamsize>(tag.size()));
  std::string header;
  put_u64(header, payload.size());
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  std::string crc;
  put_u32(crc, Crc32::of(payload.data(), payload.size()));
  out.write(crc.data(), static_cast<std::streamsize>(crc.size()));
  if (!out) throw IoError("elog write failed");
}

Chunk read_chunk(std::istream& in) {
  Chunk chunk;
  in.read(chunk.tag.data(), static_cast<std::streamsize>(chunk.tag.size()));
  if (in.gcount() != static_cast<std::streamsize>(chunk.tag.size())) {
    throw IoError("elog truncated: missing chunk tag");
  }
  std::array<char, 8> len_bytes{};
  in.read(len_bytes.data(), 8);
  if (in.gcount() != 8) throw IoError("elog truncated: missing chunk length");
  const std::uint64_t len = load_u64(len_bytes.data());
  if (len > (1ULL << 40)) throw IoError("elog chunk length implausible");
  // Read the payload in bounded steps so a corrupted length field can
  // only ever allocate one step beyond the bytes actually present —
  // truncation surfaces as IoError, not as a multi-gigabyte resize.
  constexpr std::uint64_t kReadStep = 4ULL << 20;
  std::uint64_t left = len;
  while (left > 0) {
    const auto step = static_cast<std::size_t>(std::min(left, kReadStep));
    const std::size_t old_size = chunk.payload.size();
    chunk.payload.resize(old_size + step);
    in.read(chunk.payload.data() + old_size, static_cast<std::streamsize>(step));
    if (static_cast<std::size_t>(in.gcount()) != step) {
      throw IoError("elog truncated: chunk payload");
    }
    left -= step;
  }
  std::array<char, 4> crc_bytes{};
  in.read(crc_bytes.data(), 4);
  if (in.gcount() != 4) throw IoError("elog truncated: chunk crc");
  const std::uint32_t stored = load_u32(crc_bytes.data());
  const std::uint32_t actual = Crc32::of(chunk.payload.data(), chunk.payload.size());
  if (stored != actual) {
    throw IoError("elog corruption: crc mismatch in chunk " +
                  std::string(chunk.tag.data(), chunk.tag.size()));
  }
  return chunk;
}

}  // namespace st::elog
