#include "elog/v2_store.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "support/crc32.hpp"
#include "support/errors.hpp"
#include "support/faultpoint.hpp"

namespace st::elog {

namespace {

constexpr std::uint32_t kNoSection = 0xFFFFFFFFu;

/// Wrap-consistent signed add/sub through u64 (corrupt deltas must
/// wrap, not trip signed-overflow UB; encode and decode agree exactly).
std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}

std::string section_label(const SectionEntry& e) {
  std::string label(section_kind_name(e.kind));
  const auto raw = static_cast<std::uint32_t>(e.kind);
  if (raw >= static_cast<std::uint32_t>(SectionKind::kColPid) &&
      raw <= static_cast<std::uint32_t>(SectionKind::kColSize)) {
    label += " of case " + std::to_string(e.case_index);
  }
  return label;
}

}  // namespace

// ---- encoding ----------------------------------------------------------

EncodedCase encode_case(const model::Case& c) {
  EncodedCase ec;
  ec.cid = c.id().cid;
  ec.host = c.id().host;
  ec.rid = c.id().rid;
  const auto events = c.events();
  ec.rows = events.size();

  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string_view, std::uint32_t, SvHash, std::equal_to<>> local;
  const auto intern_local = [&](std::string_view s) {
    const auto it = local.find(s);
    if (it != local.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(ec.strings.size());
    ec.strings.push_back(s);
    local.emplace(s, id);
    return id;
  };
  // Distinct-id sets for the index sections: first-seen collection
  // here, sorted at the end (ids are local; append_encoded re-sorts
  // after the file-level remap anyway).
  std::vector<char> seen_call;
  std::vector<char> seen_fp;
  const auto note = [](std::vector<char>& seen, std::vector<std::uint32_t>& set,
                       std::uint32_t id) {
    if (id >= seen.size()) seen.resize(id + 1, 0);
    if (!seen[id]) {
      seen[id] = 1;
      set.push_back(id);
    }
  };

  std::string fixed;
  std::string varint;
  ec.col_pid.reserve(events.size() * 8);
  ec.col_call.reserve(events.size() * 4);
  ec.col_dur.reserve(events.size() * 8);
  ec.col_fp.reserve(events.size() * 4);
  ec.col_size.reserve(events.size() * 8);
  fixed.reserve(events.size() * 8);
  std::int64_t prev = 0;
  for (const model::Event& e : events) {
    put_u64(ec.col_pid, e.pid);
    const std::uint32_t call_id = intern_local(e.call);
    put_u32(ec.col_call, call_id);
    note(seen_call, ec.call_set, call_id);
    const std::int64_t delta = wrap_sub(e.start, prev);
    prev = e.start;
    put_i64(fixed, delta);
    put_uvarint(varint, zigzag_encode(delta));
    put_i64(ec.col_dur, e.dur);
    const std::uint32_t fp_id = intern_local(e.fp);
    put_u32(ec.col_fp, fp_id);
    note(seen_fp, ec.fp_set, fp_id);
    put_i64(ec.col_size, e.size);
    ec.min_start = std::min(ec.min_start, e.start);
    ec.max_start = std::max(ec.max_start, e.start);
    ec.min_pid = std::min(ec.min_pid, e.pid);
    ec.max_pid = std::max(ec.max_pid, e.pid);
  }
  std::sort(ec.call_set.begin(), ec.call_set.end());
  std::sort(ec.fp_set.begin(), ec.fp_set.end());
  // Write-time choice, deterministic per case: whichever start encoding
  // is strictly smaller (ties keep fixed width — cheaper to decode).
  if (varint.size() < fixed.size()) {
    ec.col_start = std::move(varint);
    ec.start_encoding = kStartEncodingVarint;
  } else {
    ec.col_start = std::move(fixed);
    ec.start_encoding = kStartEncodingFixed;
  }
  return ec;
}

// ---- writer ------------------------------------------------------------

ElogV2Writer::ElogV2Writer(std::ostream& out, ElogV2WriterOptions opts)
    : out_(&out), opts_(opts) {
  write_raw(kMagicV2);
}

ElogV2Writer::ElogV2Writer(const std::string& path, ElogV2WriterOptions opts)
    : owned_out_(path, std::ios::binary | std::ios::trunc), out_(&owned_out_), opts_(opts) {
  if (!owned_out_) throw IoError("cannot create elog file: " + path);
  write_raw(kMagicV2);
}

void ElogV2Writer::write_raw(std::string_view bytes) {
  out_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!*out_) throw IoError("elog v2 write failed");
  offset_ += bytes.size();
}

void ElogV2Writer::add_section(SectionKind kind, std::uint32_t case_index,
                               std::string_view payload, std::uint32_t aux) {
  static constexpr char kZeros[kSectionAlign] = {};
  const std::size_t pad = (kSectionAlign - offset_ % kSectionAlign) % kSectionAlign;
  if (pad != 0) write_raw(std::string_view(kZeros, pad));
  SectionEntry e;
  e.kind = kind;
  e.case_index = case_index;
  e.offset = offset_;
  e.length = payload.size();
  e.crc = Crc32::of(payload.data(), payload.size());
  e.aux = aux;
  entries_.push_back(e);
  write_raw(payload);
}

std::uint32_t ElogV2Writer::intern(std::string_view s) {
  const auto it = pool_ids_.find(s);
  if (it != pool_ids_.end()) return it->second;
  if (pool_blob_bytes_ + s.size() > 0xFFFFFFFFull) {
    throw IoError("elog v2: string pool exceeds 4 GiB");
  }
  const auto id = static_cast<std::uint32_t>(pool_strings_.size());
  pool_strings_.emplace_back(s);
  pool_ids_.emplace(pool_strings_.back(), id);
  pool_blob_bytes_ += s.size();
  return id;
}

void ElogV2Writer::append(const model::Case& c) { append_encoded(encode_case(c)); }

void ElogV2Writer::append_encoded(EncodedCase&& ec) {
  if (finalized_) throw LogicError("ElogV2Writer::append after finalize");
  if (cases_ >= 0xFFFFFFFFull) throw IoError("elog v2: too many cases");
  // Intern in the exact order a staged write would (cid, host, then the
  // case-local dictionary in first-use order) — this is what makes the
  // streamed sink's file byte-identical to the staged one.
  const std::uint32_t cid_id = intern(ec.cid);
  const std::uint32_t host_id = intern(ec.host);
  std::vector<std::uint32_t> remap;
  remap.reserve(ec.strings.size());
  for (const std::string_view s : ec.strings) remap.push_back(intern(s));
  // Rewrite the id columns from case-local to file-level ids in place.
  for (std::string* col : {&ec.col_call, &ec.col_fp}) {
    for (std::size_t off = 0; off < col->size(); off += 4) {
      store_u32(col->data() + off, remap[load_u32(col->data() + off)]);
    }
  }

  put_u32(directory_, cid_id);
  put_u32(directory_, host_id);
  put_u64(directory_, ec.rid);
  put_u64(directory_, ec.rows);

  const auto case_index = static_cast<std::uint32_t>(cases_);
  if (opts_.write_index) {
    put_i64(zones_, ec.min_start);
    put_i64(zones_, ec.max_start);
    put_u64(zones_, ec.min_pid);
    put_u64(zones_, ec.max_pid);
    // The remap permutes ids arbitrarily (file-level interning order),
    // so the sets must be re-sorted; it is injective per case (distinct
    // strings get distinct file ids), so no re-dedup is needed.
    for (std::uint32_t& id : ec.call_set) id = remap[id];
    for (std::uint32_t& id : ec.fp_set) id = remap[id];
    std::sort(ec.call_set.begin(), ec.call_set.end());
    std::sort(ec.fp_set.begin(), ec.fp_set.end());
    if (call_set_ids_.size() + ec.call_set.size() > 0xFFFFFFFFull ||
        fp_set_ids_.size() + ec.fp_set.size() > 0xFFFFFFFFull) {
      throw IoError("elog v2: index sets exceed u32 offsets");
    }
    for (const std::uint32_t id : ec.call_set) {
      call_set_ids_.push_back(id);
      postings_[id].push_back(case_index);
    }
    call_set_ends_.push_back(static_cast<std::uint32_t>(call_set_ids_.size()));
    fp_set_ids_.insert(fp_set_ids_.end(), ec.fp_set.begin(), ec.fp_set.end());
    fp_set_ends_.push_back(static_cast<std::uint32_t>(fp_set_ids_.size()));
  }
  add_section(SectionKind::kColPid, case_index, ec.col_pid);
  add_section(SectionKind::kColCall, case_index, ec.col_call);
  add_section(SectionKind::kColStart, case_index, ec.col_start, ec.start_encoding);
  add_section(SectionKind::kColDur, case_index, ec.col_dur);
  add_section(SectionKind::kColFp, case_index, ec.col_fp);
  add_section(SectionKind::kColSize, case_index, ec.col_size);
  ++cases_;
}

void ElogV2Writer::finalize() {
  if (finalized_) return;
  std::string pool_payload;
  put_u32(pool_payload, static_cast<std::uint32_t>(pool_strings_.size()));
  put_u32(pool_payload, 0);  // reserved; readers require zero
  std::uint64_t end = 0;
  for (const auto& s : pool_strings_) {
    end += s.size();
    put_u32(pool_payload, static_cast<std::uint32_t>(end));
  }
  for (const auto& s : pool_strings_) pool_payload.append(s);
  add_section(SectionKind::kStringPool, 0, pool_payload);
  add_section(SectionKind::kCaseDirectory, 0, directory_);
  if (opts_.write_index) {
    add_section(SectionKind::kZoneMap, 0, zones_);
    const auto set_payload = [](const std::vector<std::uint32_t>& ends,
                                const std::vector<std::uint32_t>& ids) {
      std::string out;
      out.reserve((ends.size() + ids.size()) * 4);
      for (const std::uint32_t e : ends) put_u32(out, e);
      for (const std::uint32_t id : ids) put_u32(out, id);
      return out;
    };
    add_section(SectionKind::kCallSet, 0, set_payload(call_set_ends_, call_set_ids_));
    add_section(SectionKind::kFpSet, 0, set_payload(fp_set_ends_, fp_set_ids_));
    std::string posting;
    posting.reserve(8 + postings_.size() * 8 + call_set_ids_.size() * 4);
    put_u32(posting, static_cast<std::uint32_t>(postings_.size()));
    put_u32(posting, 0);  // reserved; readers require zero
    std::uint64_t end = 0;
    for (const auto& [id, list] : postings_) {
      end += list.size();
      put_u32(posting, id);
      put_u32(posting, static_cast<std::uint32_t>(end));
    }
    for (const auto& [id, list] : postings_) {
      for (const std::uint32_t c : list) put_u32(posting, c);
    }
    add_section(SectionKind::kPosting, 0, posting);
  }

  static constexpr char kZeros[kSectionAlign] = {};
  const std::size_t pad = (kSectionAlign - offset_ % kSectionAlign) % kSectionAlign;
  if (pad != 0) write_raw(std::string_view(kZeros, pad));
  std::string table;
  table.reserve(entries_.size() * kSectionEntryBytes);
  for (const SectionEntry& e : entries_) put_section_entry(table, e);
  FooterV2 f;
  f.table_offset = offset_;
  f.section_count = static_cast<std::uint32_t>(entries_.size());
  f.case_count = static_cast<std::uint32_t>(cases_);
  f.table_crc = Crc32::of(table.data(), table.size());
  write_raw(table);
  std::string footer;
  put_footer(footer, f);
  write_raw(footer);
  out_->flush();
  if (!*out_) throw IoError("elog v2 write failed");
  finalized_ = true;
}

void write_event_log_v2(std::ostream& out, const model::EventLog& log,
                        ElogV2WriterOptions opts) {
  ElogV2Writer writer(out, opts);
  for (const model::Case& c : log.cases()) writer.append(c);
  writer.finalize();
}

void write_event_log_v2_file(const std::string& path, const model::EventLog& log,
                             ElogV2WriterOptions opts) {
  ElogV2Writer writer(path, opts);
  for (const model::Case& c : log.cases()) writer.append(c);
  writer.finalize();
}

// ---- mapped reader -----------------------------------------------------

std::shared_ptr<MappedElog> MappedElog::from_buffer(
    std::shared_ptr<strace::TraceBuffer> buffer) {
  if (!buffer) throw LogicError("MappedElog::from_buffer: null buffer");
  FAULT_POINT("elog.open");
  std::shared_ptr<MappedElog> m(new MappedElog());
  m->buffer_ = std::move(buffer);
  m->file_ = m->buffer_->text();
  const std::string_view file = m->file_;

  if (file.size() < kMagicV2.size() + kFooterBytes) {
    throw IoError("elog v2: file too small");
  }
  if (file.substr(0, kMagicV2.size()) != kMagicV2) throw IoError("elog v2: bad magic");
  const FooterV2 f = load_footer(file);

  const char* table = file.data() + f.table_offset;
  const std::uint64_t table_len =
      static_cast<std::uint64_t>(f.section_count) * kSectionEntryBytes;
  if (Crc32::of(table, table_len) != f.table_crc) {
    throw IoError("elog v2: section table crc mismatch");
  }
  // Bound the case count against the file BEFORE sizing anything by it:
  // the directory needs 24 bytes per case inside the section area.
  if (static_cast<std::uint64_t>(f.case_count) * kDirEntryBytes > f.table_offset) {
    throw IoError("elog v2: case count implausible");
  }

  m->entries_.reserve(f.section_count);
  m->cases_.assign(f.case_count, CaseRef{});
  for (CaseRef& cr : m->cases_) {
    for (std::uint32_t& c : cr.col) c = kNoSection;
  }
  std::size_t pool_index = kNoSection;
  std::size_t dir_index = kNoSection;
  for (std::uint32_t i = 0; i < f.section_count; ++i) {
    const SectionEntry e =
        load_section_entry(table + static_cast<std::size_t>(i) * kSectionEntryBytes);
    const auto kind_raw = static_cast<std::uint32_t>(e.kind);
    if (kind_raw < kSectionKindMin || kind_raw > kSectionKindMax) {
      throw IoError("elog v2: unknown section kind " + std::to_string(kind_raw));
    }
    if (e.offset < kMagicV2.size() || e.offset % kSectionAlign != 0 ||
        e.length > f.table_offset || e.offset > f.table_offset - e.length) {
      throw IoError("elog v2: section bounds corrupt (" + section_label(e) + ")");
    }
    if (e.kind == SectionKind::kStringPool) {
      if (pool_index != kNoSection) throw IoError("elog v2: duplicate string pool");
      if (e.case_index != 0) throw IoError("elog v2: string pool has a case index");
      pool_index = i;
    } else if (e.kind == SectionKind::kCaseDirectory) {
      if (dir_index != kNoSection) throw IoError("elog v2: duplicate case directory");
      if (e.case_index != 0) throw IoError("elog v2: case directory has a case index");
      dir_index = i;
    } else if (section_kind_is_index(e.kind)) {
      // Optional file-level index sections. Discovery only here: their
      // CRCs and structural invariants are validated by index_view()
      // the first time a query consults them (and by verify()).
      std::uint32_t* slot = nullptr;
      switch (e.kind) {
        case SectionKind::kZoneMap: slot = &m->zone_section_; break;
        case SectionKind::kCallSet: slot = &m->callset_section_; break;
        case SectionKind::kFpSet: slot = &m->fpset_section_; break;
        default: slot = &m->posting_section_; break;
      }
      if (*slot != kNoSection) {
        throw IoError("elog v2: duplicate section (" + section_label(e) + ")");
      }
      if (e.case_index != 0) {
        throw IoError("elog v2: index section has a case index (" + section_label(e) + ")");
      }
      *slot = i;
    } else {
      if (e.case_index >= f.case_count) {
        throw IoError("elog v2: section case index out of range");
      }
      std::uint32_t& slot =
          m->cases_[e.case_index].col[kind_raw - static_cast<std::uint32_t>(SectionKind::kColPid)];
      if (slot != kNoSection) {
        throw IoError("elog v2: duplicate section (" + section_label(e) + ")");
      }
      slot = i;
    }
    m->entries_.push_back(e);
  }
  if (pool_index == kNoSection) throw IoError("elog v2: missing string pool");
  if (dir_index == kNoSection) throw IoError("elog v2: missing case directory");
  m->pool_section_ = pool_index;
  m->validated_ = std::make_unique<std::atomic<bool>[]>(f.section_count);

  // Case directory: small and needed for every query — decode eagerly
  // (this is the only per-case work open does; still no event parsing).
  const SectionEntry& dir = m->entries_[dir_index];
  if (dir.length != static_cast<std::uint64_t>(f.case_count) * kDirEntryBytes) {
    throw IoError("elog v2: case directory size mismatch");
  }
  m->validate_section(dir_index);
  const char* dp = file.data() + dir.offset;
  for (std::uint32_t i = 0; i < f.case_count; ++i, dp += kDirEntryBytes) {
    CaseRef& cr = m->cases_[i];
    cr.cid_id = load_u32(dp);
    cr.host_id = load_u32(dp + 4);
    cr.rid = load_u64(dp + 8);
    cr.rows = load_u64(dp + 16);
    m->total_rows_ += cr.rows;
  }

  // String pool header: bounds only; the CRC over the (possibly large)
  // blob stays lazy.
  const SectionEntry& pe = m->entries_[pool_index];
  if (pe.length < 8) throw IoError("elog v2: string pool too small");
  const char* pp = file.data() + pe.offset;
  m->pool_count_ = load_u32(pp);
  if (load_u32(pp + 4) != 0) throw IoError("elog v2: string pool reserved field not zero");
  const std::uint64_t ends_bytes = static_cast<std::uint64_t>(m->pool_count_) * 4;
  if (ends_bytes > pe.length - 8) {
    throw IoError("elog v2: string pool count exceeds section");
  }
  m->pool_ends_ = pp + 8;
  m->pool_blob_ = pp + 8 + ends_bytes;
  m->pool_blob_len_ = pe.length - 8 - ends_bytes;

  // Cross-checks: every case has all six columns, ids land in the pool,
  // fixed-width column lengths match the directory's row counts
  // (division form — a corrupt length must not overflow a multiply).
  for (std::uint32_t i = 0; i < f.case_count; ++i) {
    const CaseRef& cr = m->cases_[i];
    for (std::size_t k = 0; k < 6; ++k) {
      if (cr.col[k] == kNoSection) {
        throw IoError("elog v2: case " + std::to_string(i) + " missing column " +
                      std::string(section_kind_name(
                          static_cast<SectionKind>(k + static_cast<std::size_t>(
                                                           SectionKind::kColPid)))));
      }
    }
    if (cr.cid_id >= m->pool_count_ || cr.host_id >= m->pool_count_) {
      throw IoError("elog v2: case " + std::to_string(i) + " id out of pool range");
    }
    const auto expect_width = [&](const SectionEntry& e, std::uint64_t width) {
      if (e.length % width != 0 || e.length / width != cr.rows) {
        throw IoError("elog v2: column size mismatch (" + section_label(e) + ")");
      }
    };
    expect_width(m->entries_[cr.col[0]], 8);  // pid
    expect_width(m->entries_[cr.col[1]], 4);  // call
    const SectionEntry& start = m->entries_[cr.col[2]];
    if (start.aux != kStartEncodingFixed && start.aux != kStartEncodingVarint) {
      throw IoError("elog v2: unknown start encoding " + std::to_string(start.aux));
    }
    if (start.aux == kStartEncodingFixed) expect_width(start, 8);
    expect_width(m->entries_[cr.col[3]], 8);  // dur
    expect_width(m->entries_[cr.col[4]], 4);  // fp
    expect_width(m->entries_[cr.col[5]], 8);  // size
  }
  // Index sections: only the O(1) size checks here — the CRC + content
  // passes stay lazy (index_view), like every other section body.
  if (m->zone_section_ != kNoSection &&
      m->entries_[m->zone_section_].length !=
          static_cast<std::uint64_t>(f.case_count) * kZoneEntryBytes) {
    throw IoError("elog v2: zone map size mismatch");
  }
  for (const std::uint32_t s : {m->callset_section_, m->fpset_section_}) {
    if (s == kNoSection) continue;
    const SectionEntry& e = m->entries_[s];
    if (e.length % 4 != 0 || e.length / 4 < f.case_count) {
      throw IoError("elog v2: id-set section too small (" + section_label(e) + ")");
    }
  }
  if (m->posting_section_ != kNoSection && (m->entries_[m->posting_section_].length < 8 ||
                                            m->entries_[m->posting_section_].length % 4 != 0)) {
    throw IoError("elog v2: posting section too small");
  }
  return m;
}

void MappedElog::validate_section(std::size_t index) const {
  std::atomic<bool>& flag = validated_[index];
  if (flag.load(std::memory_order_acquire)) return;
  // After the already-validated check, so the fault's nth counter
  // counts actual validations: hit 1 is the case directory at open,
  // then pool + six columns per first-touched case.
  FAULT_POINT("elog.crc");
  const SectionEntry& e = entries_[index];
  if (Crc32::of(file_.data() + e.offset, e.length) != e.crc) {
    throw IoError("elog v2: crc mismatch in section " + section_label(e));
  }
  flag.store(true, std::memory_order_release);
}

std::string_view MappedElog::pool_string(std::uint32_t id) const {
  validate_section(pool_section_);
  if (id >= pool_count_) throw IoError("elog v2: string pool id out of range");
  const std::uint32_t begin = id == 0 ? 0 : load_u32(pool_ends_ + 4 * (id - 1));
  const std::uint32_t end = load_u32(pool_ends_ + 4 * id);
  if (end < begin || end > pool_blob_len_) {
    throw IoError("elog v2: string pool offsets corrupt");
  }
  return {pool_blob_ + begin, end - begin};
}

model::CaseId MappedElog::case_id(std::size_t i) const {
  if (i >= cases_.size()) throw LogicError("MappedElog::case_id: index out of range");
  const CaseRef& cr = cases_[i];
  return model::CaseId{std::string(pool_string(cr.cid_id)),
                       std::string(pool_string(cr.host_id)), cr.rid};
}

std::uint64_t MappedElog::case_rows(std::size_t i) const {
  if (i >= cases_.size()) throw LogicError("MappedElog::case_rows: index out of range");
  return cases_[i].rows;
}

std::uint32_t MappedElog::case_cid_id(std::size_t i) const {
  if (i >= cases_.size()) throw LogicError("MappedElog::case_cid_id: index out of range");
  return cases_[i].cid_id;
}

std::uint32_t MappedElog::case_host_id(std::size_t i) const {
  if (i >= cases_.size()) throw LogicError("MappedElog::case_host_id: index out of range");
  return cases_[i].host_id;
}

MappedElog::ZoneMap MappedElog::IndexView::zone(std::size_t case_index) const {
  const char* p = zones + case_index * kZoneEntryBytes;
  return {load_i64(p), load_i64(p + 8), load_u64(p + 16), load_u64(p + 24)};
}

bool MappedElog::has_index() const {
  return zone_section_ != kNoSection || callset_section_ != kNoSection ||
         fpset_section_ != kNoSection || posting_section_ != kNoSection;
}

MappedElog::IndexView MappedElog::index_view() const {
  FAULT_POINT("elog.index");
  IndexView iv;
  const auto cases = static_cast<std::uint64_t>(cases_.size());
  if (zone_section_ != kNoSection) {
    validate_section(zone_section_);
    iv.zones = file_.data() + entries_[zone_section_].offset;
  }
  if (callset_section_ != kNoSection) {
    validate_section(callset_section_);
    const SectionEntry& e = entries_[callset_section_];
    iv.call_ends = file_.data() + e.offset;
    iv.call_ids = iv.call_ends + cases * 4;
  }
  if (fpset_section_ != kNoSection) {
    validate_section(fpset_section_);
    const SectionEntry& e = entries_[fpset_section_];
    iv.fp_ends = file_.data() + e.offset;
    iv.fp_ids = iv.fp_ends + cases * 4;
  }
  if (posting_section_ != kNoSection) {
    validate_section(posting_section_);
    const SectionEntry& e = entries_[posting_section_];
    const char* p = file_.data() + e.offset;
    iv.posting_keys = load_u32(p);
    if (load_u32(p + 4) != 0) throw IoError("elog v2: posting reserved field not zero");
    if (static_cast<std::uint64_t>(iv.posting_keys) * 8 > e.length - 8) {
      throw IoError("elog v2: posting key count exceeds section");
    }
    iv.posting_table = p + 8;
    iv.posting_cases = p + 8 + static_cast<std::uint64_t>(iv.posting_keys) * 8;
  }
  // Structural pass once per mapping (CRCs alone do not rule out a
  // hostile-but-checksummed index, and pruning from a malformed one
  // would be a WRONG RESULT, not a crash — the one failure mode this
  // format forbids).
  if (!index_checked_.load(std::memory_order_acquire)) {
    validate_index_structure(iv);
    index_checked_.store(true, std::memory_order_release);
  }
  return iv;
}

void MappedElog::validate_index_structure(const IndexView& iv) const {
  const auto cases = static_cast<std::uint64_t>(cases_.size());
  const auto check_sets = [&](const char* ends, const char* ids, std::uint32_t section,
                              const char* what) {
    if (!ends) return;
    const SectionEntry& e = entries_[section];
    const std::uint64_t id_slots = e.length / 4 - cases;  // open checked length
    std::uint32_t prev_end = 0;
    for (std::uint64_t i = 0; i < cases; ++i) {
      const std::uint32_t end = load_u32(ends + i * 4);
      if (end < prev_end || end > id_slots) {
        throw IoError(std::string("elog v2: ") + what + " ends not monotonic");
      }
      std::uint32_t prev_id = 0;
      for (std::uint32_t k = prev_end; k < end; ++k) {
        const std::uint32_t id = load_u32(ids + static_cast<std::uint64_t>(k) * 4);
        if (id >= pool_count_ || (k > prev_end && id <= prev_id)) {
          throw IoError(std::string("elog v2: ") + what + " ids unsorted or out of range");
        }
        prev_id = id;
      }
      prev_end = end;
    }
    if (prev_end != id_slots) {
      throw IoError(std::string("elog v2: ") + what + " has trailing ids");
    }
  };
  check_sets(iv.call_ends, iv.call_ids, callset_section_, "call set");
  check_sets(iv.fp_ends, iv.fp_ids, fpset_section_, "fp set");
  if (iv.posting_table) {
    const SectionEntry& e = entries_[posting_section_];
    const std::uint64_t entry_slots =
        (e.length - 8 - static_cast<std::uint64_t>(iv.posting_keys) * 8) / 4;
    std::uint32_t prev_key = 0;
    std::uint32_t prev_end = 0;
    for (std::uint32_t k = 0; k < iv.posting_keys; ++k) {
      const std::uint32_t key = load_u32(iv.posting_table + static_cast<std::uint64_t>(k) * 8);
      const std::uint32_t end =
          load_u32(iv.posting_table + static_cast<std::uint64_t>(k) * 8 + 4);
      if (key >= pool_count_ || (k > 0 && key <= prev_key)) {
        throw IoError("elog v2: posting keys unsorted or out of range");
      }
      if (end < prev_end || end > entry_slots) {
        throw IoError("elog v2: posting ends not monotonic");
      }
      std::uint32_t prev_case = 0;
      for (std::uint32_t i = prev_end; i < end; ++i) {
        const std::uint32_t c = load_u32(iv.posting_cases + static_cast<std::uint64_t>(i) * 4);
        if (c >= cases || (i > prev_end && c <= prev_case)) {
          throw IoError("elog v2: posting case list unsorted or out of range");
        }
        prev_case = c;
      }
      prev_key = key;
      prev_end = end;
    }
    if (prev_end != entry_slots) throw IoError("elog v2: posting has trailing entries");
  }
}

MappedElog::ColumnView MappedElog::case_columns(std::size_t i) const {
  if (i >= cases_.size()) throw LogicError("MappedElog::case_columns: index out of range");
  const CaseRef& cr = cases_[i];
  validate_section(pool_section_);
  for (std::size_t k = 0; k < 6; ++k) validate_section(cr.col[k]);
  ColumnView v;
  v.rows = cr.rows;
  v.pid = file_.data() + entries_[cr.col[0]].offset;
  v.call = file_.data() + entries_[cr.col[1]].offset;
  const SectionEntry& start_e = entries_[cr.col[2]];
  v.start = file_.data() + start_e.offset;
  v.start_len = start_e.length;
  v.start_encoding = start_e.aux;
  v.dur = file_.data() + entries_[cr.col[3]].offset;
  v.fp = file_.data() + entries_[cr.col[4]].offset;
  v.size = file_.data() + entries_[cr.col[5]].offset;
  return v;
}

model::Case MappedElog::case_at(std::size_t i) const {
  if (i >= cases_.size()) throw LogicError("MappedElog::case_at: index out of range");
  const CaseRef& cr = cases_[i];
  validate_section(pool_section_);
  for (std::size_t k = 0; k < 6; ++k) validate_section(cr.col[k]);

  const std::string_view cid = pool_string(cr.cid_id);
  const std::string_view host = pool_string(cr.host_id);
  const auto rows = static_cast<std::size_t>(cr.rows);

  const SectionEntry& start_e = entries_[cr.col[2]];
  std::vector<std::int64_t> starts;
  starts.reserve(rows);
  if (start_e.aux == kStartEncodingVarint) {
    const char* p = file_.data() + start_e.offset;
    const char* end = p + start_e.length;
    std::int64_t prev = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      prev = wrap_add(prev, zigzag_decode(read_uvarint(&p, end)));
      starts.push_back(prev);
    }
    if (p != end) throw IoError("elog v2: start column has trailing bytes");
  } else {
    const char* p = file_.data() + start_e.offset;
    std::int64_t prev = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      prev = wrap_add(prev, load_i64(p + r * 8));
      starts.push_back(prev);
    }
  }

  const char* pid = file_.data() + entries_[cr.col[0]].offset;
  const char* call = file_.data() + entries_[cr.col[1]].offset;
  const char* dur = file_.data() + entries_[cr.col[3]].offset;
  const char* fp = file_.data() + entries_[cr.col[4]].offset;
  const char* size = file_.data() + entries_[cr.col[5]].offset;

  std::vector<model::Event> events;
  events.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    model::Event e;
    e.cid = cid;
    e.host = host;
    e.rid = cr.rid;
    e.pid = load_u64(pid + r * 8);
    e.call = pool_string(load_u32(call + r * 4));
    e.start = starts[r];
    e.dur = load_i64(dur + r * 8);
    e.fp = pool_string(load_u32(fp + r * 4));
    e.size = load_i64(size + r * 8);
    events.push_back(e);
  }
  return model::Case(model::CaseId{std::string(cid), std::string(host), cr.rid},
                     std::move(events));
}

void MappedElog::verify() const {
  for (std::size_t i = 0; i < entries_.size(); ++i) validate_section(i);
  // Index sections also carry structural invariants (sorted sets,
  // monotonic offsets) that CRCs cannot enforce — include them so a
  // full verify covers hostile-but-checksummed index content too.
  if (has_index()) (void)index_view();
  // Every byte of the file is now accounted for: magic and footer by
  // open, the table by its footer crc, sections by their entry crcs.
  // What remains is the alignment padding — require it zero (and
  // sections non-overlapping) so a flipped bit ANYWHERE surfaces.
  std::vector<std::size_t> order(entries_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (entries_[a].offset != entries_[b].offset) {
      return entries_[a].offset < entries_[b].offset;
    }
    return entries_[a].length < entries_[b].length;
  });
  std::uint64_t pos = kMagicV2.size();
  const FooterV2 f = load_footer(file_);
  for (const std::size_t i : order) {
    const SectionEntry& e = entries_[i];
    if (e.offset < pos) {
      throw IoError("elog v2: overlapping sections (" + section_label(e) + ")");
    }
    for (std::uint64_t b = pos; b < e.offset; ++b) {
      if (file_[b] != 0) throw IoError("elog v2: nonzero padding before section");
    }
    pos = e.offset + e.length;
  }
  if (pos > f.table_offset) throw IoError("elog v2: section overlaps table");
  for (std::uint64_t b = pos; b < f.table_offset; ++b) {
    if (file_[b] != 0) throw IoError("elog v2: nonzero padding before table");
  }
}

bool MappedElog::is_mapped() const { return buffer_->is_mapped(); }

std::shared_ptr<MappedElog> open_v2(const std::string& path) {
  return MappedElog::from_buffer(strace::TraceBuffer::from_file_mmap(path));
}

model::EventLog read_event_log_v2(std::shared_ptr<MappedElog> mapped) {
  model::EventLog log;
  for (std::size_t i = 0; i < mapped->case_count(); ++i) log.add_case(mapped->case_at(i));
  // The events view straight into the mapping; the log owns it now.
  log.adopt(std::move(mapped));
  return log;
}

model::EventLog read_event_log_v2(std::shared_ptr<MappedElog> mapped,
                                  const V2ReadOptions& opts) {
  if (!opts.keep_going) return read_event_log_v2(std::move(mapped));
  model::EventLog log;
  for (std::size_t i = 0; i < mapped->case_count(); ++i) {
    try {
      log.add_case(mapped->case_at(i));
    } catch (const IoError& e) {
      // One corrupt section loses its case, not the corpus. The label
      // prefers the case id, but the pool holding it may itself be the
      // corrupt section — fall back to the index alone.
      std::string label = "case " + std::to_string(i);
      try {
        label += " (" + mapped->case_id(i).to_string() + ")";
      } catch (const IoError&) {
      }
      log.add_warning(label + " quarantined: " + e.what());
    }
  }
  log.adopt(std::move(mapped));
  return log;
}

// ---- streaming sink ----------------------------------------------------

namespace {

struct V2SinkPartial final : pipeline::SinkPartial {
  struct Item {
    EncodedCase ec;
    std::shared_ptr<strace::StringArena> arena;
    std::shared_ptr<strace::TraceBuffer> buffer;
  };
  std::vector<Item> items;
};

}  // namespace

std::unique_ptr<pipeline::SinkPartial> ElogV2WriterSink::make_partial() const {
  return std::make_unique<V2SinkPartial>();
}

void ElogV2WriterSink::fold(pipeline::SinkPartial& p, const pipeline::CaseContext& ctx) const {
  auto& partial = static_cast<V2SinkPartial&>(p);
  // Encode on the pool thread (the expensive part: dictionary build +
  // column packing); keep the case's string owners alive until merge
  // has interned everything into the writer's file-level pool.
  partial.items.push_back({encode_case(ctx.c), ctx.arena, ctx.buffer});
}

void ElogV2WriterSink::merge(std::unique_ptr<pipeline::SinkPartial> p) {
  auto& partial = static_cast<V2SinkPartial&>(*p);
  for (V2SinkPartial::Item& item : partial.items) {
    writer_->append_encoded(std::move(item.ec));
  }
}

}  // namespace st::elog
