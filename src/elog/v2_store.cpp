#include "elog/v2_store.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "support/crc32.hpp"
#include "support/errors.hpp"
#include "support/faultpoint.hpp"

namespace st::elog {

namespace {

constexpr std::uint32_t kNoSection = 0xFFFFFFFFu;

/// Wrap-consistent signed add/sub through u64 (corrupt deltas must
/// wrap, not trip signed-overflow UB; encode and decode agree exactly).
std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}

std::string section_label(const SectionEntry& e) {
  std::string label(section_kind_name(e.kind));
  if (static_cast<std::uint32_t>(e.kind) >= static_cast<std::uint32_t>(SectionKind::kColPid)) {
    label += " of case " + std::to_string(e.case_index);
  }
  return label;
}

}  // namespace

// ---- encoding ----------------------------------------------------------

EncodedCase encode_case(const model::Case& c) {
  EncodedCase ec;
  ec.cid = c.id().cid;
  ec.host = c.id().host;
  ec.rid = c.id().rid;
  const auto events = c.events();
  ec.rows = events.size();

  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string_view, std::uint32_t, SvHash, std::equal_to<>> local;
  const auto intern_local = [&](std::string_view s) {
    const auto it = local.find(s);
    if (it != local.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(ec.strings.size());
    ec.strings.push_back(s);
    local.emplace(s, id);
    return id;
  };

  std::string fixed;
  std::string varint;
  ec.col_pid.reserve(events.size() * 8);
  ec.col_call.reserve(events.size() * 4);
  ec.col_dur.reserve(events.size() * 8);
  ec.col_fp.reserve(events.size() * 4);
  ec.col_size.reserve(events.size() * 8);
  fixed.reserve(events.size() * 8);
  std::int64_t prev = 0;
  for (const model::Event& e : events) {
    put_u64(ec.col_pid, e.pid);
    put_u32(ec.col_call, intern_local(e.call));
    const std::int64_t delta = wrap_sub(e.start, prev);
    prev = e.start;
    put_i64(fixed, delta);
    put_uvarint(varint, zigzag_encode(delta));
    put_i64(ec.col_dur, e.dur);
    put_u32(ec.col_fp, intern_local(e.fp));
    put_i64(ec.col_size, e.size);
  }
  // Write-time choice, deterministic per case: whichever start encoding
  // is strictly smaller (ties keep fixed width — cheaper to decode).
  if (varint.size() < fixed.size()) {
    ec.col_start = std::move(varint);
    ec.start_encoding = kStartEncodingVarint;
  } else {
    ec.col_start = std::move(fixed);
    ec.start_encoding = kStartEncodingFixed;
  }
  return ec;
}

// ---- writer ------------------------------------------------------------

ElogV2Writer::ElogV2Writer(std::ostream& out) : out_(&out) {
  write_raw(kMagicV2);
}

ElogV2Writer::ElogV2Writer(const std::string& path)
    : owned_out_(path, std::ios::binary | std::ios::trunc), out_(&owned_out_) {
  if (!owned_out_) throw IoError("cannot create elog file: " + path);
  write_raw(kMagicV2);
}

void ElogV2Writer::write_raw(std::string_view bytes) {
  out_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!*out_) throw IoError("elog v2 write failed");
  offset_ += bytes.size();
}

void ElogV2Writer::add_section(SectionKind kind, std::uint32_t case_index,
                               std::string_view payload, std::uint32_t aux) {
  static constexpr char kZeros[kSectionAlign] = {};
  const std::size_t pad = (kSectionAlign - offset_ % kSectionAlign) % kSectionAlign;
  if (pad != 0) write_raw(std::string_view(kZeros, pad));
  SectionEntry e;
  e.kind = kind;
  e.case_index = case_index;
  e.offset = offset_;
  e.length = payload.size();
  e.crc = Crc32::of(payload.data(), payload.size());
  e.aux = aux;
  entries_.push_back(e);
  write_raw(payload);
}

std::uint32_t ElogV2Writer::intern(std::string_view s) {
  const auto it = pool_ids_.find(s);
  if (it != pool_ids_.end()) return it->second;
  if (pool_blob_bytes_ + s.size() > 0xFFFFFFFFull) {
    throw IoError("elog v2: string pool exceeds 4 GiB");
  }
  const auto id = static_cast<std::uint32_t>(pool_strings_.size());
  pool_strings_.emplace_back(s);
  pool_ids_.emplace(pool_strings_.back(), id);
  pool_blob_bytes_ += s.size();
  return id;
}

void ElogV2Writer::append(const model::Case& c) { append_encoded(encode_case(c)); }

void ElogV2Writer::append_encoded(EncodedCase&& ec) {
  if (finalized_) throw LogicError("ElogV2Writer::append after finalize");
  if (cases_ >= 0xFFFFFFFFull) throw IoError("elog v2: too many cases");
  // Intern in the exact order a staged write would (cid, host, then the
  // case-local dictionary in first-use order) — this is what makes the
  // streamed sink's file byte-identical to the staged one.
  const std::uint32_t cid_id = intern(ec.cid);
  const std::uint32_t host_id = intern(ec.host);
  std::vector<std::uint32_t> remap;
  remap.reserve(ec.strings.size());
  for (const std::string_view s : ec.strings) remap.push_back(intern(s));
  // Rewrite the id columns from case-local to file-level ids in place.
  for (std::string* col : {&ec.col_call, &ec.col_fp}) {
    for (std::size_t off = 0; off < col->size(); off += 4) {
      store_u32(col->data() + off, remap[load_u32(col->data() + off)]);
    }
  }

  put_u32(directory_, cid_id);
  put_u32(directory_, host_id);
  put_u64(directory_, ec.rid);
  put_u64(directory_, ec.rows);

  const auto case_index = static_cast<std::uint32_t>(cases_);
  add_section(SectionKind::kColPid, case_index, ec.col_pid);
  add_section(SectionKind::kColCall, case_index, ec.col_call);
  add_section(SectionKind::kColStart, case_index, ec.col_start, ec.start_encoding);
  add_section(SectionKind::kColDur, case_index, ec.col_dur);
  add_section(SectionKind::kColFp, case_index, ec.col_fp);
  add_section(SectionKind::kColSize, case_index, ec.col_size);
  ++cases_;
}

void ElogV2Writer::finalize() {
  if (finalized_) return;
  std::string pool_payload;
  put_u32(pool_payload, static_cast<std::uint32_t>(pool_strings_.size()));
  put_u32(pool_payload, 0);  // reserved; readers require zero
  std::uint64_t end = 0;
  for (const auto& s : pool_strings_) {
    end += s.size();
    put_u32(pool_payload, static_cast<std::uint32_t>(end));
  }
  for (const auto& s : pool_strings_) pool_payload.append(s);
  add_section(SectionKind::kStringPool, 0, pool_payload);
  add_section(SectionKind::kCaseDirectory, 0, directory_);

  static constexpr char kZeros[kSectionAlign] = {};
  const std::size_t pad = (kSectionAlign - offset_ % kSectionAlign) % kSectionAlign;
  if (pad != 0) write_raw(std::string_view(kZeros, pad));
  std::string table;
  table.reserve(entries_.size() * kSectionEntryBytes);
  for (const SectionEntry& e : entries_) put_section_entry(table, e);
  FooterV2 f;
  f.table_offset = offset_;
  f.section_count = static_cast<std::uint32_t>(entries_.size());
  f.case_count = static_cast<std::uint32_t>(cases_);
  f.table_crc = Crc32::of(table.data(), table.size());
  write_raw(table);
  std::string footer;
  put_footer(footer, f);
  write_raw(footer);
  out_->flush();
  if (!*out_) throw IoError("elog v2 write failed");
  finalized_ = true;
}

void write_event_log_v2(std::ostream& out, const model::EventLog& log) {
  ElogV2Writer writer(out);
  for (const model::Case& c : log.cases()) writer.append(c);
  writer.finalize();
}

void write_event_log_v2_file(const std::string& path, const model::EventLog& log) {
  ElogV2Writer writer(path);
  for (const model::Case& c : log.cases()) writer.append(c);
  writer.finalize();
}

// ---- mapped reader -----------------------------------------------------

std::shared_ptr<MappedElog> MappedElog::from_buffer(
    std::shared_ptr<strace::TraceBuffer> buffer) {
  if (!buffer) throw LogicError("MappedElog::from_buffer: null buffer");
  FAULT_POINT("elog.open");
  std::shared_ptr<MappedElog> m(new MappedElog());
  m->buffer_ = std::move(buffer);
  m->file_ = m->buffer_->text();
  const std::string_view file = m->file_;

  if (file.size() < kMagicV2.size() + kFooterBytes) {
    throw IoError("elog v2: file too small");
  }
  if (file.substr(0, kMagicV2.size()) != kMagicV2) throw IoError("elog v2: bad magic");
  const FooterV2 f = load_footer(file);

  const char* table = file.data() + f.table_offset;
  const std::uint64_t table_len =
      static_cast<std::uint64_t>(f.section_count) * kSectionEntryBytes;
  if (Crc32::of(table, table_len) != f.table_crc) {
    throw IoError("elog v2: section table crc mismatch");
  }
  // Bound the case count against the file BEFORE sizing anything by it:
  // the directory needs 24 bytes per case inside the section area.
  if (static_cast<std::uint64_t>(f.case_count) * kDirEntryBytes > f.table_offset) {
    throw IoError("elog v2: case count implausible");
  }

  m->entries_.reserve(f.section_count);
  m->cases_.assign(f.case_count, CaseRef{});
  for (CaseRef& cr : m->cases_) {
    for (std::uint32_t& c : cr.col) c = kNoSection;
  }
  std::size_t pool_index = kNoSection;
  std::size_t dir_index = kNoSection;
  for (std::uint32_t i = 0; i < f.section_count; ++i) {
    const SectionEntry e =
        load_section_entry(table + static_cast<std::size_t>(i) * kSectionEntryBytes);
    const auto kind_raw = static_cast<std::uint32_t>(e.kind);
    if (kind_raw < kSectionKindMin || kind_raw > kSectionKindMax) {
      throw IoError("elog v2: unknown section kind " + std::to_string(kind_raw));
    }
    if (e.offset < kMagicV2.size() || e.offset % kSectionAlign != 0 ||
        e.length > f.table_offset || e.offset > f.table_offset - e.length) {
      throw IoError("elog v2: section bounds corrupt (" + section_label(e) + ")");
    }
    if (e.kind == SectionKind::kStringPool) {
      if (pool_index != kNoSection) throw IoError("elog v2: duplicate string pool");
      if (e.case_index != 0) throw IoError("elog v2: string pool has a case index");
      pool_index = i;
    } else if (e.kind == SectionKind::kCaseDirectory) {
      if (dir_index != kNoSection) throw IoError("elog v2: duplicate case directory");
      if (e.case_index != 0) throw IoError("elog v2: case directory has a case index");
      dir_index = i;
    } else {
      if (e.case_index >= f.case_count) {
        throw IoError("elog v2: section case index out of range");
      }
      std::uint32_t& slot =
          m->cases_[e.case_index].col[kind_raw - static_cast<std::uint32_t>(SectionKind::kColPid)];
      if (slot != kNoSection) {
        throw IoError("elog v2: duplicate section (" + section_label(e) + ")");
      }
      slot = i;
    }
    m->entries_.push_back(e);
  }
  if (pool_index == kNoSection) throw IoError("elog v2: missing string pool");
  if (dir_index == kNoSection) throw IoError("elog v2: missing case directory");
  m->pool_section_ = pool_index;
  m->validated_ = std::make_unique<std::atomic<bool>[]>(f.section_count);

  // Case directory: small and needed for every query — decode eagerly
  // (this is the only per-case work open does; still no event parsing).
  const SectionEntry& dir = m->entries_[dir_index];
  if (dir.length != static_cast<std::uint64_t>(f.case_count) * kDirEntryBytes) {
    throw IoError("elog v2: case directory size mismatch");
  }
  m->validate_section(dir_index);
  const char* dp = file.data() + dir.offset;
  for (std::uint32_t i = 0; i < f.case_count; ++i, dp += kDirEntryBytes) {
    CaseRef& cr = m->cases_[i];
    cr.cid_id = load_u32(dp);
    cr.host_id = load_u32(dp + 4);
    cr.rid = load_u64(dp + 8);
    cr.rows = load_u64(dp + 16);
    m->total_rows_ += cr.rows;
  }

  // String pool header: bounds only; the CRC over the (possibly large)
  // blob stays lazy.
  const SectionEntry& pe = m->entries_[pool_index];
  if (pe.length < 8) throw IoError("elog v2: string pool too small");
  const char* pp = file.data() + pe.offset;
  m->pool_count_ = load_u32(pp);
  if (load_u32(pp + 4) != 0) throw IoError("elog v2: string pool reserved field not zero");
  const std::uint64_t ends_bytes = static_cast<std::uint64_t>(m->pool_count_) * 4;
  if (ends_bytes > pe.length - 8) {
    throw IoError("elog v2: string pool count exceeds section");
  }
  m->pool_ends_ = pp + 8;
  m->pool_blob_ = pp + 8 + ends_bytes;
  m->pool_blob_len_ = pe.length - 8 - ends_bytes;

  // Cross-checks: every case has all six columns, ids land in the pool,
  // fixed-width column lengths match the directory's row counts
  // (division form — a corrupt length must not overflow a multiply).
  for (std::uint32_t i = 0; i < f.case_count; ++i) {
    const CaseRef& cr = m->cases_[i];
    for (std::size_t k = 0; k < 6; ++k) {
      if (cr.col[k] == kNoSection) {
        throw IoError("elog v2: case " + std::to_string(i) + " missing column " +
                      std::string(section_kind_name(
                          static_cast<SectionKind>(k + static_cast<std::size_t>(
                                                           SectionKind::kColPid)))));
      }
    }
    if (cr.cid_id >= m->pool_count_ || cr.host_id >= m->pool_count_) {
      throw IoError("elog v2: case " + std::to_string(i) + " id out of pool range");
    }
    const auto expect_width = [&](const SectionEntry& e, std::uint64_t width) {
      if (e.length % width != 0 || e.length / width != cr.rows) {
        throw IoError("elog v2: column size mismatch (" + section_label(e) + ")");
      }
    };
    expect_width(m->entries_[cr.col[0]], 8);  // pid
    expect_width(m->entries_[cr.col[1]], 4);  // call
    const SectionEntry& start = m->entries_[cr.col[2]];
    if (start.aux != kStartEncodingFixed && start.aux != kStartEncodingVarint) {
      throw IoError("elog v2: unknown start encoding " + std::to_string(start.aux));
    }
    if (start.aux == kStartEncodingFixed) expect_width(start, 8);
    expect_width(m->entries_[cr.col[3]], 8);  // dur
    expect_width(m->entries_[cr.col[4]], 4);  // fp
    expect_width(m->entries_[cr.col[5]], 8);  // size
  }
  return m;
}

void MappedElog::validate_section(std::size_t index) const {
  std::atomic<bool>& flag = validated_[index];
  if (flag.load(std::memory_order_acquire)) return;
  // After the already-validated check, so the fault's nth counter
  // counts actual validations: hit 1 is the case directory at open,
  // then pool + six columns per first-touched case.
  FAULT_POINT("elog.crc");
  const SectionEntry& e = entries_[index];
  if (Crc32::of(file_.data() + e.offset, e.length) != e.crc) {
    throw IoError("elog v2: crc mismatch in section " + section_label(e));
  }
  flag.store(true, std::memory_order_release);
}

std::string_view MappedElog::pool_string(std::uint32_t id) const {
  validate_section(pool_section_);
  if (id >= pool_count_) throw IoError("elog v2: string pool id out of range");
  const std::uint32_t begin = id == 0 ? 0 : load_u32(pool_ends_ + 4 * (id - 1));
  const std::uint32_t end = load_u32(pool_ends_ + 4 * id);
  if (end < begin || end > pool_blob_len_) {
    throw IoError("elog v2: string pool offsets corrupt");
  }
  return {pool_blob_ + begin, end - begin};
}

model::CaseId MappedElog::case_id(std::size_t i) const {
  if (i >= cases_.size()) throw LogicError("MappedElog::case_id: index out of range");
  const CaseRef& cr = cases_[i];
  return model::CaseId{std::string(pool_string(cr.cid_id)),
                       std::string(pool_string(cr.host_id)), cr.rid};
}

std::uint64_t MappedElog::case_rows(std::size_t i) const {
  if (i >= cases_.size()) throw LogicError("MappedElog::case_rows: index out of range");
  return cases_[i].rows;
}

model::Case MappedElog::case_at(std::size_t i) const {
  if (i >= cases_.size()) throw LogicError("MappedElog::case_at: index out of range");
  const CaseRef& cr = cases_[i];
  validate_section(pool_section_);
  for (std::size_t k = 0; k < 6; ++k) validate_section(cr.col[k]);

  const std::string_view cid = pool_string(cr.cid_id);
  const std::string_view host = pool_string(cr.host_id);
  const auto rows = static_cast<std::size_t>(cr.rows);

  const SectionEntry& start_e = entries_[cr.col[2]];
  std::vector<std::int64_t> starts;
  starts.reserve(rows);
  if (start_e.aux == kStartEncodingVarint) {
    const char* p = file_.data() + start_e.offset;
    const char* end = p + start_e.length;
    std::int64_t prev = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      prev = wrap_add(prev, zigzag_decode(read_uvarint(&p, end)));
      starts.push_back(prev);
    }
    if (p != end) throw IoError("elog v2: start column has trailing bytes");
  } else {
    const char* p = file_.data() + start_e.offset;
    std::int64_t prev = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      prev = wrap_add(prev, load_i64(p + r * 8));
      starts.push_back(prev);
    }
  }

  const char* pid = file_.data() + entries_[cr.col[0]].offset;
  const char* call = file_.data() + entries_[cr.col[1]].offset;
  const char* dur = file_.data() + entries_[cr.col[3]].offset;
  const char* fp = file_.data() + entries_[cr.col[4]].offset;
  const char* size = file_.data() + entries_[cr.col[5]].offset;

  std::vector<model::Event> events;
  events.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    model::Event e;
    e.cid = cid;
    e.host = host;
    e.rid = cr.rid;
    e.pid = load_u64(pid + r * 8);
    e.call = pool_string(load_u32(call + r * 4));
    e.start = starts[r];
    e.dur = load_i64(dur + r * 8);
    e.fp = pool_string(load_u32(fp + r * 4));
    e.size = load_i64(size + r * 8);
    events.push_back(e);
  }
  return model::Case(model::CaseId{std::string(cid), std::string(host), cr.rid},
                     std::move(events));
}

void MappedElog::verify() const {
  for (std::size_t i = 0; i < entries_.size(); ++i) validate_section(i);
  // Every byte of the file is now accounted for: magic and footer by
  // open, the table by its footer crc, sections by their entry crcs.
  // What remains is the alignment padding — require it zero (and
  // sections non-overlapping) so a flipped bit ANYWHERE surfaces.
  std::vector<std::size_t> order(entries_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (entries_[a].offset != entries_[b].offset) {
      return entries_[a].offset < entries_[b].offset;
    }
    return entries_[a].length < entries_[b].length;
  });
  std::uint64_t pos = kMagicV2.size();
  const FooterV2 f = load_footer(file_);
  for (const std::size_t i : order) {
    const SectionEntry& e = entries_[i];
    if (e.offset < pos) {
      throw IoError("elog v2: overlapping sections (" + section_label(e) + ")");
    }
    for (std::uint64_t b = pos; b < e.offset; ++b) {
      if (file_[b] != 0) throw IoError("elog v2: nonzero padding before section");
    }
    pos = e.offset + e.length;
  }
  if (pos > f.table_offset) throw IoError("elog v2: section overlaps table");
  for (std::uint64_t b = pos; b < f.table_offset; ++b) {
    if (file_[b] != 0) throw IoError("elog v2: nonzero padding before table");
  }
}

bool MappedElog::is_mapped() const { return buffer_->is_mapped(); }

std::shared_ptr<MappedElog> open_v2(const std::string& path) {
  return MappedElog::from_buffer(strace::TraceBuffer::from_file_mmap(path));
}

model::EventLog read_event_log_v2(std::shared_ptr<MappedElog> mapped) {
  model::EventLog log;
  for (std::size_t i = 0; i < mapped->case_count(); ++i) log.add_case(mapped->case_at(i));
  // The events view straight into the mapping; the log owns it now.
  log.adopt(std::move(mapped));
  return log;
}

model::EventLog read_event_log_v2(std::shared_ptr<MappedElog> mapped,
                                  const V2ReadOptions& opts) {
  if (!opts.keep_going) return read_event_log_v2(std::move(mapped));
  model::EventLog log;
  for (std::size_t i = 0; i < mapped->case_count(); ++i) {
    try {
      log.add_case(mapped->case_at(i));
    } catch (const IoError& e) {
      // One corrupt section loses its case, not the corpus. The label
      // prefers the case id, but the pool holding it may itself be the
      // corrupt section — fall back to the index alone.
      std::string label = "case " + std::to_string(i);
      try {
        label += " (" + mapped->case_id(i).to_string() + ")";
      } catch (const IoError&) {
      }
      log.add_warning(label + " quarantined: " + e.what());
    }
  }
  log.adopt(std::move(mapped));
  return log;
}

// ---- streaming sink ----------------------------------------------------

namespace {

struct V2SinkPartial final : pipeline::SinkPartial {
  struct Item {
    EncodedCase ec;
    std::shared_ptr<strace::StringArena> arena;
    std::shared_ptr<strace::TraceBuffer> buffer;
  };
  std::vector<Item> items;
};

}  // namespace

std::unique_ptr<pipeline::SinkPartial> ElogV2WriterSink::make_partial() const {
  return std::make_unique<V2SinkPartial>();
}

void ElogV2WriterSink::fold(pipeline::SinkPartial& p, const pipeline::CaseContext& ctx) const {
  auto& partial = static_cast<V2SinkPartial&>(p);
  // Encode on the pool thread (the expensive part: dictionary build +
  // column packing); keep the case's string owners alive until merge
  // has interned everything into the writer's file-level pool.
  partial.items.push_back({encode_case(ctx.c), ctx.arena, ctx.buffer});
}

void ElogV2WriterSink::merge(std::unique_ptr<pipeline::SinkPartial> p) {
  auto& partial = static_cast<V2SinkPartial&>(*p);
  for (V2SinkPartial::Item& item : partial.items) {
    writer_->append_encoded(std::move(item.ec));
  }
}

}  // namespace st::elog
