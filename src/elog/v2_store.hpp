// elog v2 store: write EventLogs into the columnar mmap format and
// open corpora with zero parse work (format spec: v2_format.hpp).
//
// The read side inverts the v1 contract: instead of re-materializing
// every string and column through a stream parser, open_v2 maps the
// file (TraceBuffer::from_file_mmap — the same owner the ingestion
// path uses) and reads ONLY the footer, the section table and the case
// directory. EventLog views are built lazily per case straight over
// the mapping: Event call/fp/cid/host are string_views into the mapped
// string pool, so "open and query a fleet of imported traces" costs
// microseconds instead of a reparse. Section CRCs are validated on
// demand, once, the first time a section is decoded; verify() runs the
// full pass. The buffer-lifetime contract from the ingestion layer
// carries over unchanged: a log built from a MappedElog adopts it, so
// views stay valid through arbitrary derivation chains.
//
// The write side is monoid-shaped like every other analytic:
// encode_case() builds a case's columns against a case-local
// dictionary on any thread, and ElogV2Writer::append_encoded() interns
// the local dictionary into the file-level pool and writes the
// sections — strictly in append order, so the streamed
// ElogV2WriterSink (fold = encode, merge = append) produces a file
// byte-identical to a staged write_event_log_v2 at any worker count.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "elog/v2_format.hpp"
#include "model/event_log.hpp"
#include "pipeline/sink.hpp"
#include "strace/trace_buffer.hpp"

namespace st::elog {

/// One case, encoded against a case-local dictionary. Produced by
/// encode_case on any thread; consumed by ElogV2Writer::append_encoded
/// on the writer's thread. The string_views alias the case's storage —
/// whoever carries an EncodedCase across threads must also carry the
/// case's owners (ElogV2WriterSink keeps the arena and TraceBuffer in
/// its partial).
struct EncodedCase {
  /// Owned (not views): the CaseId they come from is moved into the
  /// assembled log before merge() runs, and SSO moves would dangle a
  /// view. The event-column views below point into the case's arena /
  /// TraceBuffer instead, which the partial keeps alive.
  std::string cid;
  std::string host;
  std::uint64_t rid = 0;
  std::uint64_t rows = 0;
  /// Local dictionary in first-use order (call, then fp, per event) —
  /// the same order a staged write interns, so streamed and staged
  /// files are byte-identical.
  std::vector<std::string_view> strings;
  std::string col_pid;    ///< rows x u64
  std::string col_call;   ///< rows x u32 LOCAL ids (remapped on append)
  std::string col_start;  ///< delta-encoded, per start_encoding
  std::string col_dur;    ///< rows x i64
  std::string col_fp;     ///< rows x u32 LOCAL ids (remapped on append)
  std::string col_size;   ///< rows x i64
  std::uint32_t start_encoding = kStartEncodingFixed;
  /// Zone-map ranges (inclusive; the defaults are the empty-range
  /// sentinels the format writes for a case with no events).
  std::int64_t min_start = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_start = std::numeric_limits<std::int64_t>::min();
  std::uint64_t min_pid = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_pid = 0;
  /// Distinct LOCAL ids appearing in col_call / col_fp, sorted
  /// ascending (remapped to file ids — and re-sorted, since interning
  /// does not preserve order — by append_encoded).
  std::vector<std::uint32_t> call_set;
  std::vector<std::uint32_t> fp_set;
};

/// Encodes one case's columns. Pure function of the case: delta-encodes
/// start (varint vs fixed chosen by encoded size), dictionary-encodes
/// call/fp against a local pool.
[[nodiscard]] EncodedCase encode_case(const model::Case& c);

struct ElogV2WriterOptions {
  /// Write the advisory index sections (zone maps, per-case call/fp id
  /// sets, the call posting list — v2_format.hpp kinds 9..12). false
  /// produces an index-free file every reader accepts; queries over it
  /// fall back to the column scan.
  bool write_index = true;
};

/// Streaming v2 writer: cases are appended one at a time; the string
/// pool, case directory, index sections and section table/footer are
/// written by finalize(). No seeking — any ostream works. A writer
/// destroyed WITHOUT finalize() leaves a file with no footer, which
/// every reader rejects (IoError): partial writes cannot be mistaken
/// for corpora.
class ElogV2Writer {
 public:
  explicit ElogV2Writer(std::ostream& out, ElogV2WriterOptions opts = {});
  explicit ElogV2Writer(const std::string& path, ElogV2WriterOptions opts = {});
  ElogV2Writer(const ElogV2Writer&) = delete;
  ElogV2Writer& operator=(const ElogV2Writer&) = delete;
  ~ElogV2Writer() = default;

  void append(const model::Case& c);

  /// Interns `ec.strings` into the file-level pool (in local-id
  /// order), remaps the call/fp columns and writes the case's
  /// sections. Throws LogicError after finalize().
  void append_encoded(EncodedCase&& ec);

  /// Writes pool + directory + table + footer. Idempotent.
  void finalize();

  [[nodiscard]] std::size_t cases_written() const { return cases_; }

 private:
  void write_raw(std::string_view bytes);
  void add_section(SectionKind kind, std::uint32_t case_index, std::string_view payload,
                   std::uint32_t aux = 0);
  [[nodiscard]] std::uint32_t intern(std::string_view s);

  std::ofstream owned_out_;  ///< backing stream for the path ctor
  std::ostream* out_;
  std::uint64_t offset_ = 0;
  std::vector<SectionEntry> entries_;
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, std::uint32_t, SvHash, std::equal_to<>> pool_ids_;
  std::vector<std::string> pool_strings_;
  std::uint64_t pool_blob_bytes_ = 0;
  std::string directory_;
  std::size_t cases_ = 0;
  bool finalized_ = false;
  ElogV2WriterOptions opts_;
  // Index accumulators (write_index only). All derived deterministically
  // from the append order, so streamed and staged files stay identical.
  std::string zones_;                           ///< kZoneMap payload
  std::vector<std::uint32_t> call_set_ends_;    ///< cumulative, per case
  std::vector<std::uint32_t> call_set_ids_;
  std::vector<std::uint32_t> fp_set_ends_;
  std::vector<std::uint32_t> fp_set_ids_;
  std::map<std::uint32_t, std::vector<std::uint32_t>> postings_;  ///< call id -> case indices
};

/// Bulk writes (staged counterparts of the streamed sink path; the
/// bytes are identical for the same case sequence).
void write_event_log_v2(std::ostream& out, const model::EventLog& log,
                        ElogV2WriterOptions opts = {});
void write_event_log_v2_file(const std::string& path, const model::EventLog& log,
                             ElogV2WriterOptions opts = {});

/// An open v2 corpus: the mapped bytes plus the decoded section table
/// and case directory — O(sections) open work, no per-event parsing.
/// Thread-safe for concurrent reads (lazy CRC validation uses atomic
/// per-section flags); always lives behind the shared_ptr its
/// factories return so EventLogs can adopt it.
class MappedElog {
 public:
  /// Opens a corpus over any byte owner (open_v2 maps a file; tests
  /// and the istream dispatch wrap in-memory bytes). Validates the
  /// footer, section table and case directory; throws IoError on any
  /// structural defect.
  [[nodiscard]] static std::shared_ptr<MappedElog> from_buffer(
      std::shared_ptr<strace::TraceBuffer> buffer);

  [[nodiscard]] std::size_t case_count() const { return cases_.size(); }
  [[nodiscard]] std::uint64_t total_events() const { return total_rows_; }
  [[nodiscard]] model::CaseId case_id(std::size_t i) const;
  [[nodiscard]] std::uint64_t case_rows(std::size_t i) const;

  /// Materializes one case lazily: event string fields are views into
  /// the mapped pool (zero copies). The case's sections (and the pool)
  /// are CRC-validated on first touch; corruption throws IoError. The
  /// returned Case is valid while this MappedElog lives — adopt() it
  /// into any log that escapes.
  [[nodiscard]] model::Case case_at(std::size_t i) const;

  /// Full integrity pass: every section CRC plus zero inter-section
  /// padding, so all file bytes are covered — including the structural
  /// invariants of any index sections present. Throws IoError.
  void verify() const;

  // -- index + raw-column access (elog/v2_select) ----------------------

  /// One case's zone-map entry (inclusive ranges; min > max marks a
  /// case with no events).
  struct ZoneMap {
    std::int64_t min_start = 0;
    std::int64_t max_start = 0;
    std::uint64_t min_pid = 0;
    std::uint64_t max_pid = 0;
  };

  /// Validated pointers into whichever index sections the file carries
  /// (null/zero when a section is absent — each prune step of the
  /// planner is independently optional). Returned by index_view().
  struct IndexView {
    const char* zones = nullptr;          ///< case_count x 32 bytes
    const char* call_ends = nullptr;      ///< u32[case_count], cumulative
    const char* call_ids = nullptr;       ///< sorted distinct ids per case
    const char* fp_ends = nullptr;
    const char* fp_ids = nullptr;
    std::uint32_t posting_keys = 0;
    const char* posting_table = nullptr;  ///< (u32 call_id, u32 end)[keys]
    const char* posting_cases = nullptr;  ///< sorted case indices

    [[nodiscard]] ZoneMap zone(std::size_t case_index) const;
  };

  /// True when the file carries any of the index sections.
  [[nodiscard]] bool has_index() const;

  /// CRC-validates and structurally validates the present index
  /// sections (once; later calls only re-check the cheap CRC flags)
  /// and returns pointers into them. A present-but-corrupt index is an
  /// IoError — the advisory rule covers ABSENCE only, never silently
  /// wrong pruning.
  [[nodiscard]] IndexView index_view() const;

  /// Directory ids of one case (for dictionary-id case predicates —
  /// no string compare, no pool touch).
  [[nodiscard]] std::uint32_t case_cid_id(std::size_t i) const;
  [[nodiscard]] std::uint32_t case_host_id(std::size_t i) const;

  /// CRC-validated raw pointers to one case's six columns, for
  /// predicate evaluation directly over the encoded data. Lifetime and
  /// validation contract identical to case_at.
  struct ColumnView {
    std::uint64_t rows = 0;
    const char* pid = nullptr;    ///< rows x u64
    const char* call = nullptr;   ///< rows x u32 pool ids
    const char* start = nullptr;  ///< delta-encoded per start_encoding
    std::uint64_t start_len = 0;
    std::uint32_t start_encoding = kStartEncodingFixed;
    const char* dur = nullptr;    ///< rows x i64
    const char* fp = nullptr;     ///< rows x u32 pool ids
    const char* size = nullptr;   ///< rows x i64
  };
  [[nodiscard]] ColumnView case_columns(std::size_t i) const;

  // -- observability (elog_tool stat) ----------------------------------
  [[nodiscard]] std::uint64_t file_size() const { return file_.size(); }
  [[nodiscard]] const std::vector<SectionEntry>& sections() const { return entries_; }
  [[nodiscard]] std::uint32_t pool_count() const { return pool_count_; }
  [[nodiscard]] std::uint64_t pool_blob_bytes() const { return pool_blob_len_; }
  [[nodiscard]] std::string_view pool_string(std::uint32_t id) const;
  [[nodiscard]] bool is_mapped() const;
  [[nodiscard]] std::string_view file_bytes() const { return file_; }

 private:
  MappedElog() = default;
  void validate_section(std::size_t index) const;
  void validate_index_structure(const IndexView& iv) const;

  /// Per-case references into entries_ (indexes of the six column
  /// sections, in kind order ColPid..ColSize).
  struct CaseRef {
    std::uint32_t cid_id = 0;
    std::uint32_t host_id = 0;
    std::uint64_t rid = 0;
    std::uint64_t rows = 0;
    std::uint32_t col[6] = {};
  };

  std::shared_ptr<strace::TraceBuffer> buffer_;
  std::string_view file_;
  std::vector<SectionEntry> entries_;
  std::vector<CaseRef> cases_;
  std::uint64_t total_rows_ = 0;
  std::size_t pool_section_ = 0;
  std::uint32_t pool_count_ = 0;
  const char* pool_ends_ = nullptr;
  const char* pool_blob_ = nullptr;
  std::uint64_t pool_blob_len_ = 0;
  /// Index section indices into entries_ (kNoSection sentinel absent).
  std::uint32_t zone_section_ = 0xFFFFFFFFu;
  std::uint32_t callset_section_ = 0xFFFFFFFFu;
  std::uint32_t fpset_section_ = 0xFFFFFFFFu;
  std::uint32_t posting_section_ = 0xFFFFFFFFu;
  /// Lazily-set CRC flags, one per section. Racing validations of the
  /// same section both compute the same CRC — benign, and atomic so
  /// concurrent readers stay clean under TSan.
  mutable std::unique_ptr<std::atomic<bool>[]> validated_;
  /// One-shot flag for the O(index bytes) structural pass of
  /// index_view(); racing validators recompute the same answer.
  mutable std::atomic<bool> index_checked_{false};
};

/// Maps `path` (read fallback where mmap is unavailable) and opens it.
[[nodiscard]] std::shared_ptr<MappedElog> open_v2(const std::string& path);

/// Materializes every case into an EventLog that adopts `mapped`, so
/// the log stands alone like any other ingested log.
[[nodiscard]] model::EventLog read_event_log_v2(std::shared_ptr<MappedElog> mapped);

/// keep_going (inherited RunPolicy, support/run_policy.hpp) == true: a
/// case whose sections fail CRC (or decode) is quarantined with a
/// "case N (id) quarantined: ..." warning on the returned log instead
/// of aborting the read. false: identical to the plain overload (first
/// IoError propagates).
struct V2ReadOptions : RunPolicy {};

/// Graceful-degradation variant of read_event_log_v2.
[[nodiscard]] model::EventLog read_event_log_v2(std::shared_ptr<MappedElog> mapped,
                                                const V2ReadOptions& opts);

/// CaseSink writing elog v2 in the same streamed pipeline::run pass as
/// any other analytic: fold() encodes the case's columns on the pool
/// thread (carrying the case's owners in the partial), merge() appends
/// to the writer strictly in input order. The caller finalizes the
/// writer after a successful run; on a failed run nothing was merged,
/// so the unfinalized (unreadable) file is the only artifact.
class ElogV2WriterSink final : public pipeline::CaseSink {
 public:
  explicit ElogV2WriterSink(ElogV2Writer& writer) : writer_(&writer) {}

  [[nodiscard]] std::unique_ptr<pipeline::SinkPartial> make_partial() const override;
  void fold(pipeline::SinkPartial& p, const pipeline::CaseContext& ctx) const override;
  void merge(std::unique_ptr<pipeline::SinkPartial> p) override;

 private:
  ElogV2Writer* writer_;
};

}  // namespace st::elog
