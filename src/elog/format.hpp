// elog: the on-disk event-log container (HDF5 stand-in).
//
// The paper stores the processed trace files in one HDF5 file: one
// group per case, one table per group with columns pid, call, start,
// dur, fp, size, rows sorted by start. elog mirrors that layout with a
// self-contained binary format:
//
//   file   := magic "STELOG1\n" | u64 case_count | case* | chunk FEND
//   case   := chunk CHDR (case name)        — "cid_host_rid"
//           | chunk POOL (string pool)      — dictionary for call/fp
//           | chunk CPID | CCAL | CSTA | CDUR | CFPA | CSIZ
//           | chunk CEND
//   chunk  := tag[4] | u64 payload_len | payload | u32 crc32(payload)
//
// Every chunk is CRC-checked on read; corruption surfaces as IoError
// instead of silently wrong analysis. All integers are little-endian.
#pragma once

#include <array>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace st::elog {

inline constexpr std::string_view kMagic = "STELOG1\n";

using ChunkTag = std::array<char, 4>;

inline constexpr ChunkTag kTagCaseHeader = {'C', 'H', 'D', 'R'};
inline constexpr ChunkTag kTagPool = {'P', 'O', 'O', 'L'};
inline constexpr ChunkTag kTagColPid = {'C', 'P', 'I', 'D'};
inline constexpr ChunkTag kTagColCall = {'C', 'C', 'A', 'L'};
inline constexpr ChunkTag kTagColStart = {'C', 'S', 'T', 'A'};
inline constexpr ChunkTag kTagColDur = {'C', 'D', 'U', 'R'};
inline constexpr ChunkTag kTagColFp = {'C', 'F', 'P', 'A'};
inline constexpr ChunkTag kTagColSize = {'C', 'S', 'I', 'Z'};
inline constexpr ChunkTag kTagCaseEnd = {'C', 'E', 'N', 'D'};
inline constexpr ChunkTag kTagFileEnd = {'F', 'E', 'N', 'D'};

// -- little-endian primitives (byte-order independent) -----------------

void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_i64(std::string& out, std::int64_t v);
void put_string(std::string& out, std::string_view s);  // u32 len + bytes

// Raw loads/stores shared by the v1 reader and the v2 mmap views: byte
// assembly only (the compiler folds it to a single mov on
// little-endian hardware), never a pointer cast, so they are free of
// alignment/strict-aliasing UB and byte-order independent. The caller
// guarantees the pointed-to range is in bounds.
[[nodiscard]] std::uint32_t load_u32(const char* p);
[[nodiscard]] std::uint64_t load_u64(const char* p);
[[nodiscard]] std::int64_t load_i64(const char* p);
void store_u32(char* p, std::uint32_t v);

/// Cursor-based payload reader; throws IoError past the end.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}

  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] std::string str();
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

  /// Bytes left in the payload. Element counts decoded from the
  /// payload must be bounded against this BEFORE any reserve/resize —
  /// a corrupted count must never become a giant allocation.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Writes one chunk (tag + length + payload + crc).
void write_chunk(std::ostream& out, const ChunkTag& tag, std::string_view payload);

struct Chunk {
  ChunkTag tag{};
  std::string payload;
};

/// Reads and CRC-validates the next chunk. Throws IoError on
/// truncation or checksum mismatch.
[[nodiscard]] Chunk read_chunk(std::istream& in);

}  // namespace st::elog
