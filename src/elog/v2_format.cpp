#include "elog/v2_format.hpp"

#include "support/errors.hpp"

namespace st::elog {

std::string_view section_kind_name(SectionKind kind) {
  switch (kind) {
    case SectionKind::kStringPool: return "pool";
    case SectionKind::kCaseDirectory: return "directory";
    case SectionKind::kColPid: return "pid";
    case SectionKind::kColCall: return "call";
    case SectionKind::kColStart: return "start";
    case SectionKind::kColDur: return "dur";
    case SectionKind::kColFp: return "fp";
    case SectionKind::kColSize: return "size";
    case SectionKind::kZoneMap: return "zonemap";
    case SectionKind::kCallSet: return "callset";
    case SectionKind::kFpSet: return "fpset";
    case SectionKind::kPosting: return "posting";
  }
  return "unknown";
}

void put_section_entry(std::string& out, const SectionEntry& e) {
  put_u32(out, static_cast<std::uint32_t>(e.kind));
  put_u32(out, e.case_index);
  put_u64(out, e.offset);
  put_u64(out, e.length);
  put_u32(out, e.crc);
  put_u32(out, e.aux);
}

SectionEntry load_section_entry(const char* p) {
  SectionEntry e;
  e.kind = static_cast<SectionKind>(load_u32(p));
  e.case_index = load_u32(p + 4);
  e.offset = load_u64(p + 8);
  e.length = load_u64(p + 16);
  e.crc = load_u32(p + 24);
  e.aux = load_u32(p + 28);
  return e;
}

void put_footer(std::string& out, const FooterV2& f) {
  put_u64(out, f.table_offset);
  put_u32(out, f.section_count);
  put_u32(out, f.case_count);
  put_u32(out, f.table_crc);
  put_u32(out, 0);  // reserved; checked on read so every byte is covered
  out.append(kFooterMagicV2);
}

FooterV2 load_footer(std::string_view file) {
  if (file.size() < kMagicV2.size() + kFooterBytes) {
    throw IoError("elog v2: file too small for footer");
  }
  const char* p = file.data() + (file.size() - kFooterBytes);
  if (std::string_view(p + 24, 8) != kFooterMagicV2) {
    throw IoError("elog v2: bad footer magic");
  }
  FooterV2 f;
  f.table_offset = load_u64(p);
  f.section_count = load_u32(p + 8);
  f.case_count = load_u32(p + 12);
  f.table_crc = load_u32(p + 16);
  if (load_u32(p + 20) != 0) throw IoError("elog v2: footer reserved field not zero");
  const std::uint64_t table_len =
      static_cast<std::uint64_t>(f.section_count) * kSectionEntryBytes;
  // The table abuts the footer exactly: no unaccounted trailing bytes.
  if (f.table_offset < kMagicV2.size() || f.table_offset % kSectionAlign != 0 ||
      f.table_offset + table_len != file.size() - kFooterBytes) {
    throw IoError("elog v2: section table bounds corrupt");
  }
  return f;
}

void put_uvarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::uint64_t read_uvarint(const char** p, const char* end) {
  std::uint64_t v = 0;
  int shift = 0;
  const char* cur = *p;
  while (true) {
    if (cur == end) throw IoError("elog v2: truncated varint");
    if (shift >= 64) throw IoError("elog v2: overlong varint");
    const auto byte = static_cast<unsigned char>(*cur++);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *p = cur;
  return v;
}

}  // namespace st::elog
