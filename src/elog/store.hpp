// elog store: EventLog <-> container (file or stream).
//
// Mirrors the paper's HDF5 layout: one group per case with columns
// pid / call / start / dur / fp / size sorted by start. call and fp
// are dictionary-encoded against a per-case string pool (file paths
// repeat heavily in syscall traces, so this is also the main size
// win). Writing preserves case order; reading rebuilds Cases whose
// events are re-sorted by start (idempotent for valid files).
#pragma once

#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "model/event_log.hpp"
#include "support/run_policy.hpp"

namespace st::elog {

class MappedElog;

/// Serializes a whole event log.
void write_event_log(std::ostream& out, const model::EventLog& log);
void write_event_log_file(const std::string& path, const model::EventLog& log);

/// Deserializes either container version (the 8-byte magic is sniffed;
/// STELOG1 parses the chunk stream, STELOG2 dispatches to the columnar
/// reader in v2_store.hpp — read_event_log_file uses its mmap fast
/// path). Throws IoError on truncation/corruption and ParseError on
/// malformed case names.
[[nodiscard]] model::EventLog read_event_log(std::istream& in);
[[nodiscard]] model::EventLog read_event_log_file(const std::string& path);

/// keep_going (inherited RunPolicy, support/run_policy.hpp) == true: a
/// v2 case section failing CRC is quarantined with a warning on the
/// returned log instead of aborting the read (v2_store.hpp
/// V2ReadOptions). v1 stays fail-fast either way — its chunk stream
/// has no per-case recovery boundary.
struct ElogReadOptions : RunPolicy {};

/// Graceful-degradation variant of read_event_log_file.
[[nodiscard]] model::EventLog read_event_log_file(const std::string& path,
                                                  const ElogReadOptions& opts);

/// read_event_log_file plus the mapped container handle when (and only
/// when) the file is a CLEANLY-read v2 corpus: no quarantined cases, so
/// the log's case numbering lines up 1:1 with the container's and the
/// indexed query planner (elog/v2_select.hpp) may evaluate predicates
/// directly on the mapped columns. v1 files, and v2 reads that
/// quarantined anything under keep_going, come back with mapped ==
/// nullptr — queries over them take the materialized path.
struct LoadedElog {
  model::EventLog log;
  std::shared_ptr<MappedElog> mapped;
};
[[nodiscard]] LoadedElog read_event_log_file_indexed(const std::string& path,
                                                     const ElogReadOptions& opts = {});

/// Incremental writer: cases are appended one at a time (e.g. as trace
/// files finish parsing) without holding the whole log in memory. The
/// case count lives at a fixed offset after the magic and is patched
/// on finalize(); a file that was never finalized fails to read
/// (missing FEND), so partial writes cannot be mistaken for complete
/// logs.
class ElogAppender {
 public:
  explicit ElogAppender(const std::string& path);
  ElogAppender(const ElogAppender&) = delete;
  ElogAppender& operator=(const ElogAppender&) = delete;
  /// Finalizes implicitly if finalize() was not called (errors are
  /// swallowed in the destructor; call finalize() to observe them).
  ~ElogAppender();

  void append(const model::Case& c);

  /// Writes the FEND chunk and patches the case count. Idempotent.
  void finalize();

  [[nodiscard]] std::size_t cases_written() const { return cases_written_; }

 private:
  std::ofstream out_;
  std::size_t cases_written_ = 0;
  bool finalized_ = false;
};

}  // namespace st::elog
