#include "elog/v2_select.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <optional>
#include <string_view>

#include "elog/format.hpp"
#include "strace/scan_kernels.hpp"
#include "support/errors.hpp"
#include "support/strings.hpp"

namespace st::elog {

namespace {

// ---- enable switch -----------------------------------------------------

bool env_enables_index() {
  const char* v = std::getenv("ST_QUERY_INDEX");
  if (v == nullptr) return true;
  const std::string_view s(v);
  return !(s == "off" || s == "0" || s == "scan" || s == "false");
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enables_index()};
  return flag;
}

// ---- compiled query ----------------------------------------------------

/// Dense bit-set over pool ids (or case indices) — the compiled form of
/// every set-valued restriction.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t bits) : words_((bits + 63) / 64, 0) {}

  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// Same signed-wrap add the store's decoder uses (corrupt deltas must
/// wrap identically on both paths, not trip UB).
std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

/// A Query compiled against one file's dictionary: every string
/// restriction becomes a bitmap over pool ids, built in a single pass
/// over the pool. After construction, selection never compares strings.
struct CompiledQuery {
  bool has_calls = false;
  bool has_fp = false;
  bool has_cids = false;
  bool has_hosts = false;
  bool has_window = false;
  Micros from = 0;
  Micros to = 0;
  std::uint32_t pool_n = 0;
  Bitmap call_ok;
  Bitmap fp_ok;
  Bitmap cid_ok;
  Bitmap host_ok;
  std::vector<std::uint32_t> call_ids;  ///< accepted pool ids, ascending
  /// Set when exactly one pool id is accepted by the call restriction —
  /// unlocks the SWAR equality prefilter over the call column.
  std::optional<std::uint32_t> single_call_id;
};

CompiledQuery compile(const MappedElog& m, const model::Query& q) {
  CompiledQuery cq;
  cq.pool_n = m.pool_count();
  cq.has_calls = !q.compiled_calls().empty();
  cq.has_fp = !q.fp_substrings().empty();
  cq.has_cids = q.cid_set().has_value();
  cq.has_hosts = q.host_set().has_value();
  cq.has_window = q.has_window();
  cq.from = q.from();
  cq.to = q.to();
  if (!(cq.has_calls || cq.has_fp || cq.has_cids || cq.has_hosts)) return cq;

  if (cq.has_calls) cq.call_ok = Bitmap(cq.pool_n);
  if (cq.has_fp) cq.fp_ok = Bitmap(cq.pool_n);
  if (cq.has_cids) cq.cid_ok = Bitmap(cq.pool_n);
  if (cq.has_hosts) cq.host_ok = Bitmap(cq.pool_n);

  const auto& calls = q.compiled_calls();  // sorted
  for (std::uint32_t id = 0; id < cq.pool_n; ++id) {
    const std::string_view s = m.pool_string(id);
    if (cq.has_calls && std::binary_search(calls.begin(), calls.end(), s)) {
      cq.call_ok.set(id);
      cq.call_ids.push_back(id);
    }
    if (cq.has_fp) {
      bool all = true;
      for (const std::string& needle : q.fp_substrings()) {
        if (!contains(s, needle)) {
          all = false;
          break;
        }
      }
      if (all) cq.fp_ok.set(id);
    }
    if (cq.has_cids && q.cid_set()->count(std::string(s)) != 0) cq.cid_ok.set(id);
    if (cq.has_hosts && q.host_set()->count(std::string(s)) != 0) cq.host_ok.set(id);
  }
  if (cq.has_calls && cq.call_ids.size() == 1) cq.single_call_id = cq.call_ids[0];
  return cq;
}

// ---- SWAR call-column prefilter ----------------------------------------

/// Fills `mask` with one bit per row: row r's u32 equals `accept`.
/// SWAR two-lanes-per-u64: XOR against the broadcast pattern turns
/// matches into zero lanes; the classic zero-lane detector
/// ((x - 1·lanes) & ~x & high-bits) rejects most words in four ALU ops.
/// The detector can report a false candidate in the high lane when the
/// low lane is zero, so candidates are confirmed with exact lane
/// compares — the mask itself is always exact.
void fill_eq_mask_u32(const char* data, std::size_t rows, std::uint32_t accept,
                      std::vector<std::uint64_t>& mask) {
  mask.assign((rows + 63) / 64, 0);
  const std::uint64_t pattern =
      (static_cast<std::uint64_t>(accept) << 32) | accept;
  constexpr std::uint64_t kLaneOnes = 0x0000000100000001ULL;
  constexpr std::uint64_t kLaneHighs = 0x8000000080000000ULL;
  std::size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    const std::uint64_t x = load_u64(data + r * 4) ^ pattern;
    if ((((x - kLaneOnes) & ~x) & kLaneHighs) != 0) {
      if (static_cast<std::uint32_t>(x) == 0)
        mask[r >> 6] |= std::uint64_t{1} << (r & 63);
      if ((x >> 32) == 0)
        mask[(r + 1) >> 6] |= std::uint64_t{1} << ((r + 1) & 63);
    }
  }
  if (r < rows && load_u32(data + r * 4) == accept)
    mask[r >> 6] |= std::uint64_t{1} << (r & 63);
}

// ---- per-segment selection ---------------------------------------------

struct SegmentState {
  CompiledQuery cq;
  MappedElog::IndexView iv;
  /// Cases that can contain an accepted call, from the posting list
  /// (only when a call restriction meets a present posting section).
  std::optional<Bitmap> candidates;
};

SegmentState make_state(const MappedElog& m, const model::Query& q) {
  SegmentState st;
  st.cq = compile(m, q);
  if (m.has_index()) st.iv = m.index_view();
  if (st.cq.has_calls && st.iv.posting_table != nullptr) {
    Bitmap b(m.case_count());
    for (const std::uint32_t want : st.cq.call_ids) {
      // Binary search the posting key table (keys ascend).
      std::uint32_t lo = 0;
      std::uint32_t hi = st.iv.posting_keys;
      while (lo < hi) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        const std::uint32_t key =
            load_u32(st.iv.posting_table + static_cast<std::uint64_t>(mid) * 8);
        if (key < want) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo >= st.iv.posting_keys ||
          load_u32(st.iv.posting_table + static_cast<std::uint64_t>(lo) * 8) != want) {
        continue;
      }
      const std::uint32_t begin =
          lo == 0 ? 0
                  : load_u32(st.iv.posting_table +
                             static_cast<std::uint64_t>(lo - 1) * 8 + 4);
      const std::uint32_t end =
          load_u32(st.iv.posting_table + static_cast<std::uint64_t>(lo) * 8 + 4);
      for (std::uint32_t k = begin; k < end; ++k) {
        b.set(load_u32(st.iv.posting_cases + static_cast<std::uint64_t>(k) * 4));
      }
    }
    st.candidates = std::move(b);
  }
  return st;
}

/// True when case `i`'s distinct-id set (callset/fpset section layout)
/// intersects the accept bitmap.
bool set_intersects(const char* ends, const char* ids, std::size_t i, const Bitmap& ok) {
  const std::uint32_t begin = i == 0 ? 0 : load_u32(ends + (i - 1) * 4);
  const std::uint32_t end = load_u32(ends + i * 4);
  for (std::uint32_t k = begin; k < end; ++k) {
    if (ok.test(load_u32(ids + static_cast<std::uint64_t>(k) * 4))) return true;
  }
  return false;
}

/// The residual columnar scan: decode starts (delta chains force a full
/// walk), test the compiled predicate per row, materialize survivors
/// only. Matches case_at + Query::matches exactly, including the
/// trailing-bytes check on varint columns.
model::Case scan_case(const MappedElog& m, const CompiledQuery& cq, std::size_t i) {
  const MappedElog::ColumnView cols = m.case_columns(i);
  const auto rows = static_cast<std::size_t>(cols.rows);
  const std::string_view cid = m.pool_string(m.case_cid_id(i));
  const std::string_view host = m.pool_string(m.case_host_id(i));
  model::CaseId id = m.case_id(i);

  std::vector<std::uint64_t> call_mask;
  const bool use_mask =
      cq.single_call_id.has_value() && rows >= 8 &&
      strace::kernels::scan_kernel_mode() != strace::kernels::ScanKernelMode::Scalar;
  if (use_mask) fill_eq_mask_u32(cols.call, rows, *cq.single_call_id, call_mask);

  std::vector<model::Event> events;
  const bool varint = cols.start_encoding == kStartEncodingVarint;
  const char* sp = cols.start;
  const char* send = cols.start + cols.start_len;
  std::int64_t prev = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    if (varint) {
      prev = wrap_add(prev, zigzag_decode(read_uvarint(&sp, send)));
    } else {
      prev = wrap_add(prev, load_i64(cols.start + r * 8));
    }
    // Validate BOTH dictionary ids before any predicate skips a row —
    // exactly the rows case_at would reject — so a hostile (checksummed)
    // column throws here too instead of silently filtering.
    const std::uint32_t call_id = load_u32(cols.call + r * 4);
    if (call_id >= cq.pool_n) throw IoError("elog v2: call column id out of pool range");
    const std::uint32_t fp_id = load_u32(cols.fp + r * 4);
    if (fp_id >= cq.pool_n) throw IoError("elog v2: fp column id out of pool range");
    if (use_mask) {
      if (((call_mask[r >> 6] >> (r & 63)) & 1) == 0) continue;
    } else if (cq.has_calls && !cq.call_ok.test(call_id)) {
      continue;
    }
    if (cq.has_window && (prev < cq.from || prev >= cq.to)) continue;
    if (cq.has_fp && !cq.fp_ok.test(fp_id)) continue;
    model::Event e;
    e.cid = cid;
    e.host = host;
    e.rid = id.rid;
    e.pid = load_u64(cols.pid + r * 8);
    e.call = m.pool_string(call_id);
    e.start = prev;
    e.dur = load_i64(cols.dur + r * 8);
    e.fp = m.pool_string(fp_id);
    e.size = load_i64(cols.size + r * 8);
    events.push_back(e);
  }
  if (varint && sp != send) throw IoError("elog v2: start column has trailing bytes");
  return model::Case(std::move(id), std::move(events));
}

/// One case through the compiled plan. nullopt = case dropped (cid/host
/// miss — the only droppers, same as apply_case); an index prune yields
/// the same EMPTY case apply produces for event-restricted cases.
std::optional<model::Case> select_case(const MappedElog& m, const SegmentState& st,
                                       std::size_t i) {
  const CompiledQuery& cq = st.cq;
  if (cq.has_cids && !cq.cid_ok.test(m.case_cid_id(i))) return std::nullopt;
  if (cq.has_hosts && !cq.host_ok.test(m.case_host_id(i))) return std::nullopt;
  if (!(cq.has_calls || cq.has_fp || cq.has_window)) return m.case_at(i);

  bool pruned = false;
  if (st.candidates && !st.candidates->test(i)) pruned = true;
  if (!pruned && cq.has_window && st.iv.zones != nullptr) {
    const MappedElog::ZoneMap z = st.iv.zone(i);
    if (z.max_start < cq.from || z.min_start >= cq.to) pruned = true;
  }
  if (!pruned && cq.has_calls && !st.candidates && st.iv.call_ends != nullptr) {
    pruned = !set_intersects(st.iv.call_ends, st.iv.call_ids, i, cq.call_ok);
  }
  if (!pruned && cq.has_fp && st.iv.fp_ends != nullptr) {
    pruned = !set_intersects(st.iv.fp_ends, st.iv.fp_ids, i, cq.fp_ok);
  }
  if (pruned) return model::Case(m.case_id(i), {});
  return scan_case(m, cq, i);
}

}  // namespace

bool query_index_enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_query_index_enabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

model::EventLog select_v2(const std::shared_ptr<MappedElog>& mapped,
                          const model::Query& q) {
  if (!mapped) throw LogicError("select_v2: null MappedElog");
  const SegmentState st = make_state(*mapped, q);
  model::EventLog out;
  out.adopt(mapped);
  for (std::size_t i = 0; i < mapped->case_count(); ++i) {
    if (auto c = select_case(*mapped, st, i)) out.add_case(std::move(*c));
  }
  return out;
}

model::EventLog apply_query_indexed(const model::Query& q, const model::EventLog& base,
                                    std::span<const IndexedSegment> segments) {
  const std::span<const model::Case> cases = base.cases();
  model::EventLog out;
  out.adopt_owners_of(base);
  std::size_t next = 0;
  const auto scan_one = [&](std::size_t i) {
    if (auto c = q.apply_case(cases[i])) out.add_case(std::move(*c));
  };
  for (const IndexedSegment& seg : segments) {
    if (seg.first_case < next || seg.first_case + seg.case_count > cases.size()) {
      throw LogicError("apply_query_indexed: segments unsorted, overlapping, or out of range");
    }
    for (; next < seg.first_case; ++next) scan_one(next);
    if (!seg.mapped || seg.mapped->case_count() != seg.case_count) {
      // Not (or no longer) a clean v2 slice — plain per-case path.
      for (std::size_t k = 0; k < seg.case_count; ++k, ++next) scan_one(next);
      continue;
    }
    const SegmentState st = make_state(*seg.mapped, q);
    for (std::size_t k = 0; k < seg.case_count; ++k, ++next) {
      if (auto c = select_case(*seg.mapped, st, k)) out.add_case(std::move(*c));
    }
  }
  for (; next < cases.size(); ++next) scan_one(next);
  return out;
}

}  // namespace st::elog
