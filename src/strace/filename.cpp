#include "strace/filename.hpp"

#include "support/strings.hpp"

namespace st::strace {

std::optional<TraceFileId> parse_trace_filename(std::string_view name) {
  // Drop any directory prefix.
  if (const auto slash = name.rfind('/'); slash != std::string_view::npos) {
    name = name.substr(slash + 1);
  }
  if (!name.ends_with(".st")) return std::nullopt;
  name.remove_suffix(3);

  const auto first = name.find('_');
  const auto last = name.rfind('_');
  if (first == std::string_view::npos || first == last) return std::nullopt;

  TraceFileId id;
  id.cid = std::string(name.substr(0, first));
  id.host = std::string(name.substr(first + 1, last - first - 1));
  const auto rid = parse_u64(name.substr(last + 1));
  if (id.cid.empty() || id.host.empty() || !rid) return std::nullopt;
  id.rid = *rid;
  return id;
}

std::string format_trace_filename(const TraceFileId& id) {
  return id.cid + "_" + id.host + "_" + std::to_string(id.rid) + ".st";
}

}  // namespace st::strace
