#include "strace/trace_buffer.hpp"

#include <fstream>

#include "support/errors.hpp"
#include "support/faultpoint.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ST_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace st::strace {

TraceBuffer::~TraceBuffer() {
#ifdef ST_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, map_size_);
#endif
}

std::shared_ptr<TraceBuffer> TraceBuffer::from_file(const std::string& path) {
  FAULT_POINT("reader.open");
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw IoError("cannot open trace file: " + path);
  const std::streamsize size = in.tellg();
  if (size < 0) throw IoError("cannot stat trace file: " + path);
  in.seekg(0);
  std::string text(static_cast<std::size_t>(size), '\0');
  if (size > 0 && !in.read(text.data(), size)) {
    throw IoError("cannot read trace file: " + path);
  }
  return std::make_shared<TraceBuffer>(std::move(text));
}

std::shared_ptr<TraceBuffer> TraceBuffer::from_file_mmap(const std::string& path) {
#ifdef ST_HAVE_MMAP
  // Hits twice on the rare mmap-failure fallback into from_file — nth
  // targeting in tests should use the common one-hit-per-open case.
  FAULT_POINT("reader.open");
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError("cannot open trace file: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    // Pipes/devices cannot be mapped or sized; the read path handles
    // anything open() accepted, and errors consistently otherwise.
    return from_file(path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return std::make_shared<TraceBuffer>(std::string());
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (map == MAP_FAILED) return from_file(path);
#ifdef MADV_SEQUENTIAL
  ::madvise(map, size, MADV_SEQUENTIAL);  // parse is one forward pass
#endif
  auto buffer = std::make_shared<TraceBuffer>();
  buffer->map_ = map;
  buffer->map_size_ = size;
  buffer->view_ = std::string_view(static_cast<const char*>(map), size);
  return buffer;
#else
  return from_file(path);
#endif
}

}  // namespace st::strace
