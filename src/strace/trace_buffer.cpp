#include "strace/trace_buffer.hpp"

#include <fstream>

#include "support/errors.hpp"

namespace st::strace {

std::shared_ptr<TraceBuffer> TraceBuffer::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw IoError("cannot open trace file: " + path);
  const std::streamsize size = in.tellg();
  if (size < 0) throw IoError("cannot stat trace file: " + path);
  in.seekg(0);
  std::string text(static_cast<std::size_t>(size), '\0');
  if (size > 0 && !in.read(text.data(), size)) {
    throw IoError("cannot read trace file: " + path);
  }
  return std::make_shared<TraceBuffer>(std::move(text));
}

}  // namespace st::strace
