#include "strace/scan.hpp"

#include <algorithm>
#include <vector>

#include "strace/scan_kernels.hpp"
#include "support/strings.hpp"

namespace st::strace {

namespace {

/// Per-class nesting depths for (), [] and {}. Tracking the classes
/// separately keeps a stray ']' or '}' inside an argument (truncated
/// structs, abbreviated arrays, binary noise) from corrupting the
/// paren depth that find_matching_paren / split_args terminate on.
struct BracketDepths {
  int paren = 0;
  int bracket = 0;
  int brace = 0;

  /// Feeds one non-quote character. Closers of an already balanced
  /// class are ignored (clamped at zero) rather than driving a shared
  /// counter negative.
  void feed(char c) {
    switch (c) {
      case '(': ++paren; break;
      case '[': ++bracket; break;
      case '{': ++brace; break;
      case ')':
        if (paren > 0) --paren;
        break;
      case ']':
        if (bracket > 0) --bracket;
        break;
      case '}':
        if (brace > 0) --brace;
        break;
      default: break;
    }
  }

  [[nodiscard]] bool at_top_level() const { return paren == 0 && bracket == 0 && brace == 0; }
};

}  // namespace

// Kernel-backed scanners: each loop hops from one interesting byte to
// the next via a scan kernel instead of feeding every byte through a
// branch. The bytes skipped over are exactly the bytes the scalar
// loops treat as no-ops (plain characters feed() ignores), so outputs
// are byte-identical to the *_scalar references below.

std::optional<std::size_t> skip_quoted(std::string_view s, std::size_t start) {
  // s[start] must be the opening quote.
  if (start >= s.size() || s[start] != '"') return std::nullopt;
  std::size_t i = start + 1;
  while (i < s.size()) {
    const std::size_t hit = kernels::find_quote_or_backslash(s, i);
    if (hit == kernels::npos) return std::nullopt;
    if (s[hit] == '\\') {
      // Escape consumes the next char; a backslash as the *last* byte
      // of a truncated line must not step the cursor past s.size().
      i = std::min(hit + 2, s.size());
      continue;
    }
    return hit + 1;  // the closing quote
  }
  return std::nullopt;
}

std::optional<std::size_t> find_matching_paren(std::string_view s, std::size_t open_paren) {
  if (open_paren >= s.size() || s[open_paren] != '(') return std::nullopt;
  BracketDepths depths;
  std::size_t i = open_paren;
  while (i < s.size()) {
    const std::size_t hit = kernels::find_structural(s, i);
    if (hit == kernels::npos) return std::nullopt;
    const char c = s[hit];
    if (c == '"') {
      const auto next = skip_quoted(s, hit);
      if (!next) return std::nullopt;
      i = *next;
      continue;
    }
    if (c == ')' && depths.paren == 1) return hit;  // the opener's match
    depths.feed(c);
    i = hit + 1;
  }
  return std::nullopt;
}

void split_args_into(std::string_view args, std::vector<std::string_view>& out) {
  out.clear();
  BracketDepths depths;
  std::size_t field_start = 0;
  std::size_t i = 0;
  while (i < args.size()) {
    const std::size_t hit = kernels::find_structural(args, i);
    if (hit == kernels::npos) break;
    const char c = args[hit];
    if (c == '"') {
      const auto next = skip_quoted(args, hit);
      if (!next) break;  // unterminated string: keep remainder as one field
      i = *next;
      continue;
    }
    if (c == ',' && depths.at_top_level()) {
      out.push_back(trim(args.substr(field_start, hit - field_start)));
      field_start = hit + 1;
    } else {
      depths.feed(c);
    }
    i = hit + 1;
  }
  const auto last = trim(args.substr(field_start));
  if (!last.empty() || !out.empty()) out.push_back(last);
}

std::vector<std::string_view> split_args(std::string_view args) {
  std::vector<std::string_view> out;
  split_args_into(args, out);
  return out;
}

// -- scalar reference implementations ------------------------------------

std::optional<std::size_t> skip_quoted_scalar(std::string_view s, std::size_t start) {
  if (start >= s.size() || s[start] != '"') return std::nullopt;
  std::size_t i = start + 1;
  while (i < s.size()) {
    if (s[i] == '\\') {
      i = std::min(i + 2, s.size());
      continue;
    }
    if (s[i] == '"') return i + 1;
    ++i;
  }
  return std::nullopt;
}

std::optional<std::size_t> find_matching_paren_scalar(std::string_view s,
                                                      std::size_t open_paren) {
  if (open_paren >= s.size() || s[open_paren] != '(') return std::nullopt;
  BracketDepths depths;
  std::size_t i = open_paren;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      const auto next = skip_quoted_scalar(s, i);
      if (!next) return std::nullopt;
      i = *next;
      continue;
    }
    if (c == ')' && depths.paren == 1) return i;
    depths.feed(c);
    ++i;
  }
  return std::nullopt;
}

void split_args_into_scalar(std::string_view args, std::vector<std::string_view>& out) {
  out.clear();
  BracketDepths depths;
  std::size_t field_start = 0;
  std::size_t i = 0;
  while (i < args.size()) {
    const char c = args[i];
    if (c == '"') {
      const auto next = skip_quoted_scalar(args, i);
      if (!next) break;
      i = *next;
      continue;
    }
    if (c == ',' && depths.at_top_level()) {
      out.push_back(trim(args.substr(field_start, i - field_start)));
      field_start = i + 1;
    } else {
      depths.feed(c);
    }
    ++i;
  }
  const auto last = trim(args.substr(field_start));
  if (!last.empty() || !out.empty()) out.push_back(last);
}

std::string decode_c_string(std::string_view body) {
  std::string out;
  out.reserve(body.size());
  std::size_t i = 0;
  const auto hex_val = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  while (i < body.size()) {
    char c = body[i];
    if (c != '\\') {
      out.push_back(c);
      ++i;
      continue;
    }
    ++i;
    if (i >= body.size()) break;
    const char e = body[i];
    switch (e) {
      case 'n': out.push_back('\n'); ++i; break;
      case 't': out.push_back('\t'); ++i; break;
      case 'r': out.push_back('\r'); ++i; break;
      case 'v': out.push_back('\v'); ++i; break;
      case 'f': out.push_back('\f'); ++i; break;
      case 'a': out.push_back('\a'); ++i; break;
      case 'b': out.push_back('\b'); ++i; break;
      case '\\': out.push_back('\\'); ++i; break;
      case '"': out.push_back('"'); ++i; break;
      case 'x': {
        ++i;
        int v = 0;
        int digits = 0;
        while (i < body.size() && digits < 2) {
          const int h = hex_val(body[i]);
          if (h < 0) break;
          v = v * 16 + h;
          ++i;
          ++digits;
        }
        out.push_back(static_cast<char>(v));
        break;
      }
      default: {
        if (e >= '0' && e <= '7') {
          int v = 0;
          int digits = 0;
          while (i < body.size() && digits < 3 && body[i] >= '0' && body[i] <= '7') {
            v = v * 8 + (body[i] - '0');
            ++i;
            ++digits;
          }
          out.push_back(static_cast<char>(v));
        } else {
          // Unknown escape: keep verbatim.
          out.push_back('\\');
          out.push_back(e);
          ++i;
        }
        break;
      }
    }
  }
  return out;
}

std::string_view decode_c_string(std::string_view body, StringArena& arena) {
  if (body.find('\\') == std::string_view::npos) return body;  // zero-copy fast path
  return arena.intern(decode_c_string(body));
}

std::optional<FdPath> parse_fd_annotation(std::string_view token) {
  // N<path> where N is a small decimal integer.
  std::size_t i = 0;
  while (i < token.size() && token[i] >= '0' && token[i] <= '9') ++i;
  if (i == 0 || i >= token.size() || token[i] != '<') return std::nullopt;
  if (token.back() != '>') return std::nullopt;
  const auto fd = parse_i64(token.substr(0, i));
  if (!fd || *fd < 0 || *fd > 1'000'000) return std::nullopt;
  FdPath out;
  out.fd = static_cast<int>(*fd);
  out.path = token.substr(i + 1, token.size() - i - 2);
  return out;
}

}  // namespace st::strace
