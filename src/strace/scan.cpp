#include "strace/scan.hpp"

#include <vector>

#include "support/strings.hpp"

namespace st::strace {

std::optional<std::size_t> skip_quoted(std::string_view s, std::size_t start) {
  // s[start] must be the opening quote.
  if (start >= s.size() || s[start] != '"') return std::nullopt;
  std::size_t i = start + 1;
  while (i < s.size()) {
    if (s[i] == '\\') {
      i += 2;  // escape consumes the next char, whatever it is
      continue;
    }
    if (s[i] == '"') return i + 1;
    ++i;
  }
  return std::nullopt;
}

std::optional<std::size_t> find_matching_paren(std::string_view s, std::size_t open_paren) {
  if (open_paren >= s.size() || s[open_paren] != '(') return std::nullopt;
  int depth = 0;
  std::size_t i = open_paren;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      const auto next = skip_quoted(s, i);
      if (!next) return std::nullopt;
      i = *next;
      continue;
    }
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0 && c == ')') return i;
      if (depth < 0) return std::nullopt;
    }
    ++i;
  }
  return std::nullopt;
}

void split_args_into(std::string_view args, std::vector<std::string_view>& out) {
  out.clear();
  int depth = 0;
  std::size_t field_start = 0;
  std::size_t i = 0;
  while (i < args.size()) {
    const char c = args[i];
    if (c == '"') {
      const auto next = skip_quoted(args, i);
      if (!next) break;  // unterminated string: keep remainder as one field
      i = *next;
      continue;
    }
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
    } else if (c == ',' && depth == 0) {
      out.push_back(trim(args.substr(field_start, i - field_start)));
      field_start = i + 1;
    }
    ++i;
  }
  const auto last = trim(args.substr(field_start));
  if (!last.empty() || !out.empty()) out.push_back(last);
}

std::vector<std::string_view> split_args(std::string_view args) {
  std::vector<std::string_view> out;
  split_args_into(args, out);
  return out;
}

std::string decode_c_string(std::string_view body) {
  std::string out;
  out.reserve(body.size());
  std::size_t i = 0;
  const auto hex_val = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  while (i < body.size()) {
    char c = body[i];
    if (c != '\\') {
      out.push_back(c);
      ++i;
      continue;
    }
    ++i;
    if (i >= body.size()) break;
    const char e = body[i];
    switch (e) {
      case 'n': out.push_back('\n'); ++i; break;
      case 't': out.push_back('\t'); ++i; break;
      case 'r': out.push_back('\r'); ++i; break;
      case 'v': out.push_back('\v'); ++i; break;
      case 'f': out.push_back('\f'); ++i; break;
      case 'a': out.push_back('\a'); ++i; break;
      case 'b': out.push_back('\b'); ++i; break;
      case '\\': out.push_back('\\'); ++i; break;
      case '"': out.push_back('"'); ++i; break;
      case 'x': {
        ++i;
        int v = 0;
        int digits = 0;
        while (i < body.size() && digits < 2) {
          const int h = hex_val(body[i]);
          if (h < 0) break;
          v = v * 16 + h;
          ++i;
          ++digits;
        }
        out.push_back(static_cast<char>(v));
        break;
      }
      default: {
        if (e >= '0' && e <= '7') {
          int v = 0;
          int digits = 0;
          while (i < body.size() && digits < 3 && body[i] >= '0' && body[i] <= '7') {
            v = v * 8 + (body[i] - '0');
            ++i;
            ++digits;
          }
          out.push_back(static_cast<char>(v));
        } else {
          // Unknown escape: keep verbatim.
          out.push_back('\\');
          out.push_back(e);
          ++i;
        }
        break;
      }
    }
  }
  return out;
}

std::string_view decode_c_string(std::string_view body, StringArena& arena) {
  if (body.find('\\') == std::string_view::npos) return body;  // zero-copy fast path
  return arena.intern(decode_c_string(body));
}

std::optional<FdPath> parse_fd_annotation(std::string_view token) {
  // N<path> where N is a small decimal integer.
  std::size_t i = 0;
  while (i < token.size() && token[i] >= '0' && token[i] <= '9') ++i;
  if (i == 0 || i >= token.size() || token[i] != '<') return std::nullopt;
  if (token.back() != '>') return std::nullopt;
  const auto fd = parse_i64(token.substr(0, i));
  if (!fd || *fd < 0 || *fd > 1'000'000) return std::nullopt;
  FdPath out;
  out.fd = static_cast<int>(*fd);
  out.path = token.substr(i + 1, token.size() - i - 2);
  return out;
}

}  // namespace st::strace
