// Vectorized byte-classification kernels for the strace scan layer.
//
// The byte-at-a-time loops in skip_quoted / find_matching_paren /
// split_args became the dominant cost of parsing once ingestion went
// zero-copy: almost every byte of a trace line is ordinary path or
// argument text, and the scalar loops spend a branch per byte deciding
// it is uninteresting. These kernels answer the one question those
// loops actually ask — "where is the next byte I must look at?" — over
// 8 bytes (portable SWAR) or 16 bytes (SSE2 / NEON) per step:
//
//   find_byte                next occurrence of one byte (reader's
//                            '\n' line splitting),
//   find_quote_or_backslash  next '"' or '\\' (quoted-literal scan),
//   find_structural          next of  " ( ) [ ] { } ,  (bracket
//                            matching and argument splitting).
//
// Exactness contract: every kernel returns the index of the FIRST
// member byte at or after `pos`, or npos — no false positives, no
// false negatives, for arbitrary bytes including NUL and >= 0x80. The
// SWAR masks use the exact per-byte zero test (no borrow bleed), so
// the first-match property holds on both endiannesses.
//
// Memory-safety contract: kernels never read outside
// [s.data(), s.data() + s.size()). Wide loads are issued only for
// whole 8/16-byte blocks inside the view (via memcpy / loadu); the
// tail is scanned scalar. This keeps the kernels clean under
// AddressSanitizer, which the asan-ubsan preset runs over the whole
// suite.
//
// Backend selection: compile-time feature detection picks AVX2
// (32-byte blocks, when compiled with -mavx2 / -march=native), then
// SSE2 (all x86-64) or NEON (aarch64) for the Simd mode, falling back
// to SWAR. Under AVX2 the sub-32-byte tail is finished on the SSE2
// path, so only the final sub-16 bytes go scalar. The active mode can
// be forced — per process via the ST_SCAN_KERNELS environment variable
// ("scalar" | "swar" | "simd"), or at runtime via
// set_scan_kernel_mode() — so the differential fuzz test and
// bench/run_sanitize.sh --kernels-scalar can drive every path.
#pragma once

#include <cstddef>
#include <string_view>

namespace st::strace::kernels {

inline constexpr std::size_t npos = std::string_view::npos;

/// Which implementation the dispatching kernels use.
///  - Simd:   best vector path compiled in (AVX2/SSE2/NEON), else SWAR.
///  - Swar:   portable 64-bit word scan.
///  - Scalar: reference byte loop (the pre-kernel behaviour).
enum class ScanKernelMode { Simd, Swar, Scalar };

/// Process-wide kernel mode. Defaults to Simd; initialized once from
/// ST_SCAN_KERNELS if set. Reads are relaxed-atomic (hot path).
[[nodiscard]] ScanKernelMode scan_kernel_mode();
void set_scan_kernel_mode(ScanKernelMode mode);

/// Name of the backend Simd mode resolves to: "avx2", "sse2", "neon"
/// or "swar".
[[nodiscard]] std::string_view scan_kernel_backend();

/// True for the structural class the scanners stop on:  " ( ) [ ] { } ,
[[nodiscard]] constexpr bool is_structural_byte(char c) {
  switch (c) {
    case '"':
    case '(':
    case ')':
    case '[':
    case ']':
    case '{':
    case '}':
    case ',':
      return true;
    default:
      return false;
  }
}

// -- dispatching kernels (honor scan_kernel_mode) ------------------------

/// Index of the first `c` at or after `pos`, npos if none.
[[nodiscard]] std::size_t find_byte(std::string_view s, std::size_t pos, char c);

/// Index of the first '"' or '\\' at or after `pos`, npos if none.
[[nodiscard]] std::size_t find_quote_or_backslash(std::string_view s, std::size_t pos);

/// Index of the first structural byte (is_structural_byte) at or after
/// `pos`, npos if none.
[[nodiscard]] std::size_t find_structural(std::string_view s, std::size_t pos);

// -- fixed-backend entry points (differential testing / benchmarks) ------

[[nodiscard]] std::size_t find_byte_scalar(std::string_view s, std::size_t pos, char c);
[[nodiscard]] std::size_t find_quote_or_backslash_scalar(std::string_view s, std::size_t pos);
[[nodiscard]] std::size_t find_structural_scalar(std::string_view s, std::size_t pos);

[[nodiscard]] std::size_t find_byte_swar(std::string_view s, std::size_t pos, char c);
[[nodiscard]] std::size_t find_quote_or_backslash_swar(std::string_view s, std::size_t pos);
[[nodiscard]] std::size_t find_structural_swar(std::string_view s, std::size_t pos);

/// SIMD entry points resolve to the widest vector backend compiled in
/// (AVX2, then SSE2/NEON) and fall back to the SWAR implementation
/// when none is (scan_kernel_backend() == "swar").
[[nodiscard]] std::size_t find_byte_simd(std::string_view s, std::size_t pos, char c);
[[nodiscard]] std::size_t find_quote_or_backslash_simd(std::string_view s, std::size_t pos);
[[nodiscard]] std::size_t find_structural_simd(std::string_view s, std::size_t pos);

/// AVX2 entry points fall back to the 16-byte SIMD path when the
/// translation unit was not compiled with AVX2 (they are then
/// identical to the *_simd functions — safe to fuzz unconditionally).
[[nodiscard]] std::size_t find_byte_avx2(std::string_view s, std::size_t pos, char c);
[[nodiscard]] std::size_t find_quote_or_backslash_avx2(std::string_view s, std::size_t pos);
[[nodiscard]] std::size_t find_structural_avx2(std::string_view s, std::size_t pos);

}  // namespace st::strace::kernels
