// Trace-file naming convention (paper Sec. III, Fig. 1):
//
//   <cid>_<host>_<rid>.st
//
// cid identifies the traced command, host the machine, rid the
// launching (MPI) process. cid must not contain '_'; host may (the rid
// is taken from the last '_'-separated token).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace st::strace {

struct TraceFileId {
  std::string cid;
  std::string host;
  std::uint64_t rid = 0;

  [[nodiscard]] bool operator==(const TraceFileId&) const = default;
};

/// Parses "a_host1_9042.st" (a path prefix is allowed and ignored).
/// Returns nullopt if the name does not follow the convention.
[[nodiscard]] std::optional<TraceFileId> parse_trace_filename(std::string_view name);

/// Formats the canonical file name "cid_host_rid.st".
[[nodiscard]] std::string format_trace_filename(const TraceFileId& id);

}  // namespace st::strace
