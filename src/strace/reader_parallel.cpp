// Parallel trace ingestion: chunk the TraceBuffer on line boundaries,
// parse chunks concurrently on the ThreadPool, and fold the per-chunk
// accumulators deterministically left-to-right.
//
// Each chunk is parsed with per-PID sharded merger state:
//  - `pending`:    unfinished calls still open at the chunk's end,
//  - `unresolved`: resumed records whose unfinished part must live in
//                  an earlier chunk (the pid's first event here),
//  - `shadowed`:   pids whose first event in the chunk is Unfinished —
//                  the sequential merger would silently overwrite
//                  (drop) any pending record carried in from the left,
//  - `seen`:       pids with any unfinished/resumed event, deciding
//                  whether a missing match is definitive or may still
//                  resolve against chunks further left.
// The fold replays exactly what the sequential ResumeMerger would do at
// each chunk boundary, so records, their order, every warning string
// and the strict-mode exception are byte-identical to
// read_trace_buffer. The acceptance test (test_parallel_reader)
// asserts this on adversarial multi-PID corpora.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <iterator>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "strace/parser.hpp"
#include "strace/reader.hpp"
#include "strace/scan_kernels.hpp"
#include "support/errors.hpp"
#include "support/faultpoint.hpp"
#include "support/strings.hpp"

namespace st::strace {

namespace {

struct LocalWarning {
  std::size_t line = 0;  // 1-based, relative to the accumulator's first line
  std::string text;
};

struct Unresolved {
  std::size_t record_index = 0;  // placeholder position in Acc::records
  std::size_t line = 0;          // 1-based, relative to the accumulator
};

struct Acc {
  bool empty = true;  // identity element for the fold
  std::vector<RawRecord> records;  // output; unresolved placeholders keep kind == Resumed
  std::vector<LocalWarning> warnings;       // sorted by line
  std::vector<Unresolved> unresolved;       // sorted by record_index and line
  std::unordered_map<std::uint64_t, RawRecord> pending;
  std::unordered_set<std::uint64_t> seen;
  std::unordered_set<std::uint64_t> shadowed;
  std::size_t lines = 0;
  std::exception_ptr error;  // strict mode: earliest error by line
  std::size_t error_line = std::numeric_limits<std::size_t>::max();
  std::vector<StringArena> arenas;
};

bool keep_record(const RawRecord& rec, const ReadOptions& opts) {
  if (opts.drop_signals && rec.kind == RecordKind::Signal) return false;
  if (opts.drop_exits && rec.kind == RecordKind::Exit) return false;
  if (opts.drop_restarts && rec.is_restart()) return false;
  return true;
}

ParseError unmatched_resumed_error(std::uint64_t pid) {
  return ParseError("resumed record for pid " + std::to_string(pid) +
                    " without matching unfinished record");
}

void note_error(Acc& acc, std::size_t line, const ParseError& err) {
  if (line < acc.error_line) {
    acc.error_line = line;
    acc.error = std::make_exception_ptr(err);
  }
}

/// Chunk parser + left-to-right folder, parameterized on ReadOptions.
struct ChunkReader {
  std::string_view text;
  const ReadOptions& opts;

  /// Parses the byte range [begin, end) with chunk-local merger state.
  /// `begin` is a line start; `end` is one past a '\n' or text.size().
  [[nodiscard]] Acc parse_chunk(std::size_t begin, std::size_t end) const {
    FAULT_POINT("reader.chunk");
    Acc acc;
    acc.empty = false;
    acc.arenas.emplace_back();
    StringArena& arena = acc.arenas.back();
    const auto newlines =
        std::count(text.begin() + static_cast<std::ptrdiff_t>(begin),
                   text.begin() + static_cast<std::ptrdiff_t>(end), '\n');
    acc.records.reserve(static_cast<std::size_t>(newlines) + 1);

    std::size_t start = begin;
    while (start < end) {
      const std::size_t nl = kernels::find_byte(text, start, '\n');
      const std::size_t stop = nl == kernels::npos || nl >= end ? end : nl;
      const std::string_view line = text.substr(start, stop - start);
      ++acc.lines;
      const std::size_t lineno = acc.lines;
      start = stop + 1;

      if (trim(line).empty()) continue;
      std::optional<RawRecord> rec;
      try {
        rec = parse_line(line, arena);
      } catch (const ParseError& e) {
        if (opts.strict) note_error(acc, lineno, e);
        acc.warnings.push_back({lineno, e.what()});
        continue;
      }
      if (!rec) continue;

      switch (rec->kind) {
        case RecordKind::Complete:
        case RecordKind::Signal:
        case RecordKind::Exit:
          if (keep_record(*rec, opts)) acc.records.push_back(*rec);
          break;
        case RecordKind::Unfinished: {
          if (acc.seen.insert(rec->pid).second) acc.shadowed.insert(rec->pid);
          acc.pending.insert_or_assign(rec->pid, *rec);  // overwrite drops silently
          break;
        }
        case RecordKind::Resumed: {
          const bool first_event = acc.seen.insert(rec->pid).second;
          const auto it = acc.pending.find(rec->pid);
          if (it != acc.pending.end()) {
            RawRecord unfinished = std::move(it->second);
            acc.pending.erase(it);
            try {
              RawRecord merged =
                  detail::merge_resumed_pair(std::move(unfinished), *rec, arena);
              if (keep_record(merged, opts)) acc.records.push_back(merged);
            } catch (const ParseError& e) {
              if (opts.strict) note_error(acc, lineno, e);
              acc.warnings.push_back({lineno, e.what()});
            }
          } else if (first_event) {
            // May match an unfinished record in an earlier chunk: emit
            // a placeholder, resolved (or dropped) at fold time.
            acc.records.push_back(*rec);
            acc.unresolved.push_back({acc.records.size() - 1, lineno});
          } else {
            // The chunk already owned this pid's state, so the
            // sequential merger would definitively fail here.
            const ParseError err = unmatched_resumed_error(rec->pid);
            if (opts.strict) note_error(acc, lineno, err);
            acc.warnings.push_back({lineno, err.what()});
          }
          break;
        }
      }
    }
    return acc;
  }

  /// Folds the right neighbour `b` into `a`.
  [[nodiscard]] Acc fold(Acc a, Acc b) const {
    if (a.empty) return b;
    if (b.empty) return a;

    // b's leading Unfinished records silently drop whatever `a` still
    // had pending for those pids (the sequential merger's overwrite).
    for (const auto pid : b.shadowed) {
      a.pending.erase(pid);
      if (a.seen.insert(pid).second) a.shadowed.insert(pid);
    }

    // Resolve b's leading resumed placeholders against a's pending.
    StringArena& merge_arena = b.arenas.empty() ? a.arenas.back() : b.arenas.back();
    std::vector<std::size_t> dead;            // placeholder indices in b.records to drop
    std::vector<LocalWarning> fold_warnings;  // lines relative to b
    std::vector<Unresolved> surviving;        // still unresolved, indices relative to b
    for (const auto& u : b.unresolved) {
      RawRecord& placeholder = b.records[u.record_index];
      const std::uint64_t pid = placeholder.pid;
      const auto it = a.pending.find(pid);
      if (it != a.pending.end()) {
        RawRecord unfinished = std::move(it->second);
        a.pending.erase(it);
        a.seen.insert(pid);
        try {
          placeholder =
              detail::merge_resumed_pair(std::move(unfinished), placeholder, merge_arena);
          if (!keep_record(placeholder, opts)) dead.push_back(u.record_index);
        } catch (const ParseError& e) {
          if (opts.strict) note_error(a, a.lines + u.line, e);
          fold_warnings.push_back({u.line, e.what()});
          dead.push_back(u.record_index);
        }
      } else if (a.seen.contains(pid)) {
        const ParseError err = unmatched_resumed_error(pid);
        if (opts.strict) note_error(a, a.lines + u.line, err);
        fold_warnings.push_back({u.line, err.what()});
        dead.push_back(u.record_index);
      } else {
        a.seen.insert(pid);
        surviving.push_back(u);
      }
    }

    // Append b's surviving records, remapping surviving placeholders.
    std::size_t di = 0;
    std::size_t si = 0;
    a.records.reserve(a.records.size() + b.records.size() - dead.size());
    for (std::size_t i = 0; i < b.records.size(); ++i) {
      if (di < dead.size() && dead[di] == i) {
        ++di;
        continue;
      }
      if (si < surviving.size() && surviving[si].record_index == i) {
        a.unresolved.push_back({a.records.size(), a.lines + surviving[si].line});
        ++si;
      }
      a.records.push_back(std::move(b.records[i]));
    }

    // Warnings: b's own and the fold's, merged by line, offset into a.
    std::vector<LocalWarning> merged_warnings;
    merged_warnings.reserve(b.warnings.size() + fold_warnings.size());
    std::merge(b.warnings.begin(), b.warnings.end(), fold_warnings.begin(), fold_warnings.end(),
               std::back_inserter(merged_warnings),
               [](const LocalWarning& x, const LocalWarning& y) { return x.line < y.line; });
    a.warnings.reserve(a.warnings.size() + merged_warnings.size());
    for (auto& w : merged_warnings) {
      a.warnings.push_back({a.lines + w.line, std::move(w.text)});
    }

    if (b.error && a.lines + b.error_line < a.error_line) {
      a.error = b.error;
      a.error_line = a.lines + b.error_line;
    }

    for (auto& [pid, rec] : b.pending) a.pending.insert_or_assign(pid, std::move(rec));
    for (const auto pid : b.seen) a.seen.insert(pid);
    for (auto& arena : b.arenas) a.arenas.push_back(std::move(arena));
    a.lines += b.lines;
    return a;
  }
};

/// Splits `text` into at most `want` ranges, each ending one past a
/// '\n' (the last ends at text.size()).
std::vector<std::pair<std::size_t, std::size_t>> line_chunks(std::string_view text,
                                                             std::size_t want) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::size_t n = text.size();
  if (n == 0) return out;
  if (want == 0) want = 1;
  const std::size_t approx = (n + want - 1) / want;
  std::size_t begin = 0;
  while (begin < n) {
    std::size_t end = n - begin > approx ? begin + approx : n;
    if (end < n) {
      const auto nl = kernels::find_byte(text, end - 1, '\n');
      end = nl == kernels::npos ? n : nl + 1;
    }
    out.emplace_back(begin, end);
    begin = end;
  }
  return out;
}

/// Chunk count for one buffer: enough to spread across the pool, never
/// below min_chunk_bytes per chunk. A single-worker pool gets a single
/// chunk — splitting buys nothing there and the cross-chunk fold
/// (record moves, merger-state replay) is pure overhead.
std::size_t chunk_target(std::string_view text, std::size_t min_chunk_bytes,
                         std::size_t pool_size) {
  if (pool_size <= 1) return 1;
  const std::size_t min_chunk = std::max<std::size_t>(1, min_chunk_bytes);
  return std::clamp<std::size_t>(text.size() / min_chunk, 1, pool_size * 4);
}

/// Turns the fully folded accumulator of one buffer into the public
/// ReadResult: drops definitively unmatched placeholders, renders the
/// warning strings, rethrows the strict-mode error, and hands the
/// chunk arenas to the buffer so every view stays alive.
ReadResult finalize_acc(Acc acc, std::shared_ptr<TraceBuffer> buffer, const ReadOptions& opts) {
  ReadResult result;
  result.buffer = std::move(buffer);

  // Placeholders that survived every fold have no unfinished part
  // anywhere to their left: definitive failures, like the sequential
  // merger feeding a resumed record with empty pending state.
  std::vector<LocalWarning> tail_warnings;
  std::vector<std::size_t> dead;
  for (const auto& u : acc.unresolved) {
    const ParseError err = unmatched_resumed_error(acc.records[u.record_index].pid);
    if (opts.strict) note_error(acc, u.line, err);
    tail_warnings.push_back({u.line, err.what()});
    dead.push_back(u.record_index);
  }

  if (opts.strict && acc.error) std::rethrow_exception(acc.error);

  if (!dead.empty()) {
    std::size_t di = 0;
    std::size_t w = 0;
    for (std::size_t i = 0; i < acc.records.size(); ++i) {
      if (di < dead.size() && dead[di] == i) {
        ++di;
        continue;
      }
      acc.records[w++] = std::move(acc.records[i]);
    }
    acc.records.resize(w);
  }

  std::vector<LocalWarning> all_warnings;
  all_warnings.reserve(acc.warnings.size() + tail_warnings.size());
  std::merge(acc.warnings.begin(), acc.warnings.end(), tail_warnings.begin(),
             tail_warnings.end(), std::back_inserter(all_warnings),
             [](const LocalWarning& x, const LocalWarning& y) { return x.line < y.line; });
  result.warnings.reserve(all_warnings.size() + acc.pending.size());
  for (auto& w : all_warnings) {
    result.warnings.push_back("line " + std::to_string(w.line) + ": " + w.text);
  }

  // "Never resumed" warnings, sorted by pid like ResumeMerger::take_pending.
  std::vector<RawRecord> still_pending;
  still_pending.reserve(acc.pending.size());
  for (auto& [pid, rec] : acc.pending) still_pending.push_back(std::move(rec));
  std::sort(still_pending.begin(), still_pending.end(),
            [](const RawRecord& x, const RawRecord& y) { return x.pid < y.pid; });
  for (const auto& rec : still_pending) {
    result.warnings.push_back("unfinished call never resumed: pid " + std::to_string(rec.pid) +
                              " " + std::string(rec.call));
  }

  result.records = std::move(acc.records);
  for (auto& arena : acc.arenas) result.buffer->adopt(std::move(arena));
  return result;
}

}  // namespace

ReadResult read_trace_parallel(std::shared_ptr<TraceBuffer> buffer,
                               const ParallelReadOptions& opts) {
  const std::string_view text = buffer->text();

  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = opts.pool;
  if (pool == nullptr) {
    local_pool.emplace(opts.threads);
    pool = &*local_pool;
  }

  const auto chunks = line_chunks(text, chunk_target(text, opts.min_chunk_bytes, pool->size()));

  const ChunkReader reader{text, opts};
  Acc acc = map_reduce(
      *pool, chunks.size(), Acc{},
      [&](std::size_t lo, std::size_t hi) {
        Acc local = reader.parse_chunk(chunks[lo].first, chunks[lo].second);
        for (std::size_t i = lo + 1; i < hi; ++i) {
          local = reader.fold(std::move(local), reader.parse_chunk(chunks[i].first, chunks[i].second));
        }
        return local;
      },
      [&](Acc a, Acc b) { return reader.fold(std::move(a), std::move(b)); });

  return finalize_acc(std::move(acc), std::move(buffer), opts);
}

// ---- streamed per-file completion --------------------------------------

/// Shared state of one streamed parse, owned by the handle alone.
/// Tasks reference it through a RAW pointer on purpose: the handle
/// joins before it releases the state (wait for tasks_left == 0, after
/// which workers only run trivial epilogues), and a shared_ptr capture
/// would let the last-finishing WORKER destroy the state — and with it
/// the state-owned private pool, joining the worker's own thread.
struct StreamedParse::State {
  // The private pool (when opts.pool was null) is declared first so it
  // is destroyed last: by then every task has run and dropped its
  // shared_ptr, so the workers are idle.
  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = nullptr;

  ParallelReadOptions opts;  ///< stable storage for the ChunkReaders' reference
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  FileReadyFn on_file;
  std::function<void()> on_done;

  /// Sentinel chunk index ranking fold/finalize/callback errors after
  /// every real chunk of the same file.
  static constexpr std::size_t kFoldStage = std::numeric_limits<std::size_t>::max();

  struct FileState {
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    std::vector<Acc> accs;                  ///< one slot per chunk
    std::atomic<std::size_t> remaining{0};  ///< chunks still parsing
    std::atomic<bool> failed{false};        ///< any chunk of this file threw
    // This file's earliest error by chunk (err_mutex): what keep_going
    // consumers quarantine per file instead of aborting the run.
    std::size_t error_chunk = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
  };
  std::deque<FileState> files;  // deque: FileState holds atomics (immovable)
  std::atomic<std::size_t> files_remaining{0};
  std::atomic<bool> done_fired{false};  ///< on_done runs exactly once

  // Earliest failure in (file, chunk) input order.
  mutable std::mutex err_mutex;
  std::size_t err_file = std::numeric_limits<std::size_t>::max();
  std::size_t err_chunk = std::numeric_limits<std::size_t>::max();
  std::exception_ptr err;

  // join(): tasks_left counts every submitted chunk task.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t tasks_left = 0;

  void note_error(std::size_t f, std::size_t c, std::exception_ptr e) {
    files[f].failed.store(true, std::memory_order_release);
    std::lock_guard lock(err_mutex);
    // `!error` matters when the file's only failure is a fold/finalize
    // error: kFoldStage equals the slot's initial error_chunk, so a
    // strictly-less guard would never record it.
    if (!files[f].error || c < files[f].error_chunk) {
      files[f].error_chunk = c;
      files[f].error = e;
    }
    if (f < err_file || (f == err_file && c < err_chunk)) {
      err_file = f;
      err_chunk = c;
      err = std::move(e);
    }
  }

  /// Body of one (file, chunk) task. Never throws: every failure is
  /// recorded via note_error so propagation stays deterministic.
  void run_chunk(std::size_t f, std::size_t c) {
    FileState& fs = files[f];
    try {
      const ChunkReader reader{buffers[f]->text(), opts};
      fs.accs[c] = reader.parse_chunk(fs.chunks[c].first, fs.chunks[c].second);
    } catch (...) {
      note_error(f, c, std::current_exception());
    }
    if (fs.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) file_done(f);
  }

  /// Runs on the pool thread that finished file f's last chunk: fold
  /// left-to-right, finalize, hand the ReadResult downstream.
  void file_done(std::size_t f) {
    FileState& fs = files[f];
    if (!fs.failed.load(std::memory_order_acquire)) {
      try {
        const ChunkReader reader{buffers[f]->text(), opts};
        Acc acc;
        for (auto& chunk_acc : fs.accs) {
          acc = reader.fold(std::move(acc), std::move(chunk_acc));
        }
        // finalize_acc rethrows strict-mode parse errors — recorded
        // below so the lowest-input-index contract covers them too.
        ReadResult result = finalize_acc(std::move(acc), std::move(buffers[f]), opts);
        if (on_file) on_file(f, std::move(result));
      } catch (...) {
        note_error(f, kFoldStage, std::current_exception());
      }
    }
    // Chunk state is dead weight once the file settled; free it early.
    fs.accs.clear();
    fs.accs.shrink_to_fit();
    if (files_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      try {
        fire_done();
      } catch (...) {
        note_error(f, kFoldStage, std::current_exception());
      }
    }
  }

  /// Invokes on_done at most once. Normally fired by the last settling
  /// file; the submit-failure path fires it EARLY so a downstream
  /// consumer (the pipeline's StageQueue close) can wake producers
  /// blocked in push before anyone tries to join them.
  void fire_done() {
    if (on_done && !done_fired.exchange(true, std::memory_order_acq_rel)) on_done();
  }

  void task_finished() {
    std::lock_guard lock(done_mutex);
    if (--tasks_left == 0) done_cv.notify_all();
  }
};

StreamedParse::~StreamedParse() { join(); }

StreamedParse& StreamedParse::operator=(StreamedParse&& other) noexcept {
  if (this != &other) {
    join();  // tasks of the replaced parse hold raw pointers into its state
    state_ = std::move(other.state_);
  }
  return *this;
}

void StreamedParse::join() {
  if (!state_) return;  // moved-from
  std::unique_lock lock(state_->done_mutex);
  state_->done_cv.wait(lock, [s = state_.get()] { return s->tasks_left == 0; });
}

std::optional<StreamedParse::Error> StreamedParse::error() const {
  if (!state_) return std::nullopt;
  std::lock_guard lock(state_->err_mutex);
  if (!state_->err) return std::nullopt;
  return Error{state_->err_file, state_->err};
}

std::vector<StreamedParse::Error> StreamedParse::errors() const {
  std::vector<Error> out;
  if (!state_) return out;
  std::lock_guard lock(state_->err_mutex);
  for (std::size_t f = 0; f < state_->files.size(); ++f) {
    if (state_->files[f].error) out.push_back({f, state_->files[f].error});
  }
  return out;
}

void StreamedParse::wait() {
  join();
  if (const auto e = error()) std::rethrow_exception(e->error);
}

StreamedParse read_trace_buffers_streamed(std::vector<std::shared_ptr<TraceBuffer>> buffers,
                                          const ParallelReadOptions& opts, FileReadyFn on_file_done,
                                          std::function<void()> on_all_done) {
  auto state = std::make_shared<StreamedParse::State>();
  state->opts = opts;
  state->buffers = std::move(buffers);
  state->on_file = std::move(on_file_done);
  state->on_done = std::move(on_all_done);
  if (opts.pool != nullptr) {
    state->pool = opts.pool;
  } else {
    state->local_pool.emplace(opts.threads);
    state->pool = &*state->local_pool;
  }

  const std::size_t n = state->buffers.size();
  state->files_remaining.store(n, std::memory_order_relaxed);
  std::size_t total_chunks = 0;
  for (std::size_t f = 0; f < n; ++f) {
    auto& fs = state->files.emplace_back();
    const std::string_view text = state->buffers[f]->text();
    fs.chunks = line_chunks(text, chunk_target(text, opts.min_chunk_bytes, state->pool->size()));
    // An empty file still settles through the normal path: one [0, 0)
    // chunk parses to an empty accumulator and finalizes to an empty
    // ReadResult, so on_file_done fires for it like for any other file.
    if (fs.chunks.empty()) fs.chunks.emplace_back(0, 0);
    fs.accs.resize(fs.chunks.size());
    fs.remaining.store(fs.chunks.size(), std::memory_order_relaxed);
    total_chunks += fs.chunks.size();
  }
  state->tasks_left = total_chunks;

  if (n == 0) {
    state->fire_done();  // nothing will ever settle
    return StreamedParse(std::move(state));
  }
  std::size_t f = 0;
  std::size_t c = 0;
  auto* s = state.get();  // raw on purpose — see the State comment
  try {
    for (f = 0; f < n; ++f) {
      for (c = 0; c < state->files[f].chunks.size(); ++c) {
        (void)state->pool->submit([s, f, c] {
          s->run_chunk(f, c);
          s->task_finished();
        });
      }
    }
  } catch (...) {
    // submit() failed (allocation, pool shut down). Fire on_done FIRST:
    // a downstream consumer reacts by closing its hand-off queue, which
    // wakes any worker already parked in a blocking push — otherwise
    // running the rest inline (whose callbacks would push with nobody
    // popping) and the join below could both wait forever. Then run the
    // chunks that never made it onto the pool inline so every counter
    // settles, and join the ones that did before the exception escapes.
    try {
      state->fire_done();
    } catch (...) {
      // the submit failure below is the error that matters
    }
    for (; f < n; ++f, c = 0) {
      for (; c < state->files[f].chunks.size(); ++c) {
        state->run_chunk(f, c);
        state->task_finished();
      }
    }
    StreamedParse cleanup(std::move(state));
    cleanup.join();
    throw;
  }
  return StreamedParse(std::move(state));
}

StreamedParse read_trace_files_streamed(const std::vector<std::string>& paths,
                                        const ParallelReadOptions& opts, FileReadyFn on_file_done,
                                        std::function<void()> on_all_done) {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  buffers.reserve(paths.size());
  for (const auto& path : paths) buffers.push_back(TraceBuffer::from_file_mmap(path));
  return read_trace_buffers_streamed(std::move(buffers), opts, std::move(on_file_done),
                                     std::move(on_all_done));
}

std::vector<ReadResult> read_trace_buffers_parallel(
    std::vector<std::shared_ptr<TraceBuffer>> buffers, const ParallelReadOptions& opts) {
  // Rebuilt on the streamed core: identical (buffer, chunk) work queue
  // and per-file fold, but collected behind a barrier — the callback
  // fills input-order slots and wait() rethrows the earliest failure.
  const std::size_t n = buffers.size();
  std::vector<ReadResult> results(n);
  auto handle = read_trace_buffers_streamed(
      std::move(buffers), opts,
      [&results](std::size_t i, ReadResult&& r) { results[i] = std::move(r); });
  handle.wait();
  return results;
}

std::vector<ReadResult> read_trace_files_mixed(const std::vector<std::string>& paths,
                                               const ParallelReadOptions& opts) {
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  buffers.reserve(paths.size());
  for (const auto& path : paths) buffers.push_back(TraceBuffer::from_file_mmap(path));
  return read_trace_buffers_parallel(std::move(buffers), opts);
}

}  // namespace st::strace
