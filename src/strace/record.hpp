// Raw strace record model.
//
// One RawRecord corresponds to one line of `strace -f -tt -T -y` output
// (or to a merged unfinished/resumed pair). The fields follow Sec. III
// of the paper: pid, call, start timestamp, duration, file path and
// transfer size, plus enough extra structure (errno text, requested
// byte count, record kind) to implement the paper's filtering rules
// (drop ERESTARTSYS, merge resumed records by pid).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "support/timeparse.hpp"

namespace st::strace {

/// Classification of a single strace output line.
enum class RecordKind : std::uint8_t {
  Complete,    ///< full "call(args) = ret <dur>" record
  Unfinished,  ///< "call(args <unfinished ...>"
  Resumed,     ///< "<... call resumed> args) = ret <dur>"
  Signal,      ///< "--- SIGxxx {...} ---"
  Exit,        ///< "+++ exited with N +++" or "+++ killed by ... +++"
};

/// A parsed strace line (or merged pair). String fields are zero-copy
/// views into the trace bytes (TraceBuffer) or into a StringArena for
/// synthesized strings (merged argument lists, decoded C paths). A
/// record is valid only while the buffer/arena that produced it lives;
/// ReadResult keeps its TraceBuffer alive for exactly this reason.
/// Hand-built records (simulator, tests) may point at string literals
/// or at an arena they intern into.
struct RawRecord {
  std::uint64_t pid = 0;
  Micros timestamp = 0;  ///< microseconds since midnight (-tt)
  RecordKind kind = RecordKind::Complete;
  std::string_view call;  ///< syscall name ("read", "openat", ...)
  std::string_view args;  ///< raw text between the outermost parentheses

  /// File descriptor of the first argument when annotated by -y
  /// ("3</usr/lib/libc.so.6>"), or of the return value for openat.
  std::optional<int> fd;
  /// Path extracted from the -y annotation or from the quoted path
  /// argument of openat/open/creat/stat-like calls. Empty if none.
  std::string_view path;

  std::optional<std::int64_t> retval;       ///< value after '='
  std::string_view errno_name;              ///< "ERESTARTSYS", "EAGAIN", ... when retval < 0
  std::optional<Micros> duration;           ///< <0.000203> -> 203 (-T)
  std::optional<std::int64_t> requested;    ///< bytes requested (rw calls: 3rd argument)

  /// True for the variants of read/write that move payload bytes, for
  /// which the paper parses the transfer size from the return value.
  [[nodiscard]] bool is_data_transfer() const {
    return call == "read" || call == "write" || call == "pread64" || call == "pwrite64" ||
           call == "readv" || call == "writev" || call == "preadv" || call == "pwritev" ||
           call == "preadv2" || call == "pwritev2";
  }

  /// True when the record was interrupted and flagged ERESTARTSYS;
  /// the paper ignores these calls.
  [[nodiscard]] bool is_restart() const { return errno_name == "ERESTARTSYS"; }
};

}  // namespace st::strace
