// Bump-pointer string arena backing RawRecord string fields.
//
// Parsed records view directly into the trace text wherever possible;
// the few strings that must be synthesized (merged unfinished/resumed
// argument lists, decoded C-string paths, simulator-generated argument
// text) are interned here. Interned views stay valid for the arena's
// lifetime, across moves of the arena itself (block storage is heap
// allocated and never relocated).
#pragma once

#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <string_view>
#include <vector>

namespace st::strace {

class StringArena {
 public:
  StringArena() = default;

  /// Arena with a custom block size. The streaming pipeline creates one
  /// arena per trace file holding only that case's interned cid/host —
  /// a swarm of small traces must not pin a 64 KiB block per file to
  /// hold two short strings each.
  explicit StringArena(std::size_t block_bytes)
      : block_bytes_(block_bytes == 0 ? 1 : block_bytes) {}

  StringArena(const StringArena&) = delete;
  StringArena& operator=(const StringArena&) = delete;
  StringArena(StringArena&&) noexcept = default;
  StringArena& operator=(StringArena&&) noexcept = default;

  /// Copies `s` into the arena and returns a stable view of the copy.
  std::string_view intern(std::string_view s) { return concat({s}); }

  /// Interns the concatenation of `parts` without a temporary string.
  std::string_view concat(std::initializer_list<std::string_view> parts) {
    std::size_t total = 0;
    for (const auto& p : parts) total += p.size();
    if (total == 0) return {};  // empty views may carry a null data()
    char* dst = allocate(total);
    char* cur = dst;
    for (const auto& p : parts) {
      if (p.empty()) continue;
      std::memcpy(cur, p.data(), p.size());
      cur += p.size();
    }
    return {dst, total};
  }

  /// Total bytes interned so far (diagnostics).
  [[nodiscard]] std::size_t bytes_used() const { return used_; }

 private:
  static constexpr std::size_t kBlockBytes = 64 * 1024;

  char* allocate(std::size_t n) {
    if (n > block_left_) {
      const std::size_t block = n > block_bytes_ ? n : block_bytes_;
      blocks_.push_back(std::make_unique<char[]>(block));
      cursor_ = blocks_.back().get();
      block_left_ = block;
    }
    char* out = cursor_;
    cursor_ += n;
    block_left_ -= n;
    used_ += n;
    return out;
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cursor_ = nullptr;
  std::size_t block_bytes_ = kBlockBytes;
  std::size_t block_left_ = 0;
  std::size_t used_ = 0;
};

}  // namespace st::strace
