#include "strace/writer.hpp"

#include <algorithm>

#include "support/timeparse.hpp"

namespace st::strace {

namespace {

void append_header(std::string& out, const RawRecord& rec) {
  out += std::to_string(rec.pid);
  out += "  ";
  out += format_time_of_day(rec.timestamp);
  out += ' ';
}

void append_result(std::string& out, const RawRecord& rec) {
  out += " = ";
  if (rec.retval) {
    out += std::to_string(*rec.retval);
  } else {
    out += '?';
  }
  if (!rec.errno_name.empty()) {
    out += ' ';
    out += rec.errno_name;
    out += " (interrupted)";
  }
  if (rec.duration) {
    out += " <";
    out += format_seconds(*rec.duration);
    out += '>';
  }
}

}  // namespace

std::string format_record(const RawRecord& rec, const WriteOptions& opts) {
  (void)opts;
  std::string out;
  out.reserve(128);
  append_header(out, rec);
  switch (rec.kind) {
    case RecordKind::Signal:
      out += "--- ";
      out += rec.args;
      out += " ---";
      return out;
    case RecordKind::Exit:
      out += "+++ ";
      out += rec.args;
      out += " +++";
      return out;
    case RecordKind::Unfinished:
      out += rec.call;
      out += '(';
      out += rec.args;
      if (!rec.args.empty()) out += ", ";
      out += " <unfinished ...>";
      return out;
    case RecordKind::Resumed:
      out += "<... ";
      out += rec.call;
      out += " resumed> ";
      out += rec.args;
      out += ')';
      append_result(out, rec);
      return out;
    case RecordKind::Complete:
      out += rec.call;
      out += '(';
      out += rec.args;
      out += ')';
      append_result(out, rec);
      return out;
  }
  return out;
}

std::string format_trace(const std::vector<RawRecord>& records, const WriteOptions& opts) {
  std::string out;
  for (const auto& rec : records) {
    out += format_record(rec, opts);
    out += '\n';
  }
  return out;
}

std::string format_trace_interleaved(std::vector<RawRecord> records, const WriteOptions& opts) {
  std::stable_sort(records.begin(), records.end(),
                   [](const RawRecord& a, const RawRecord& b) { return a.timestamp < b.timestamp; });

  // A record splits iff another record from a different pid produces
  // an output line (its start, or its return when it itself splits)
  // strictly inside this record's span. Checking both endpoints is a
  // safe over-approximation: extra splits still parse back correctly.
  const auto must_split = [&records](std::size_t i) {
    const RawRecord& r = records[i];
    const Micros end = r.timestamp + r.duration.value_or(0);
    for (const RawRecord& other : records) {
      if (other.pid == r.pid) continue;
      const Micros other_end = other.timestamp + other.duration.value_or(0);
      if ((other.timestamp > r.timestamp && other.timestamp < end) ||
          (other_end > r.timestamp && other_end < end)) {
        return true;
      }
    }
    return false;
  };

  struct Line {
    Micros at;
    std::uint64_t seq;  // stable order for equal timestamps
    std::string text;
  };
  std::vector<Line> lines;
  lines.reserve(records.size());
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RawRecord& r = records[i];
    if (r.kind != RecordKind::Complete || !must_split(i)) {
      lines.push_back({r.timestamp, seq++, format_record(r, opts)});
      continue;
    }
    // Split: the first argument (the -y fd annotation) stays on the
    // unfinished line; the remainder moves to the resumed line, where
    // the return value and duration are reported. head/tail view into
    // r.args, which outlives the formatting below.
    std::string_view head = r.args;
    std::string_view tail;
    if (const auto comma = r.args.find(','); comma != std::string_view::npos) {
      head = r.args.substr(0, comma);
      tail = r.args.substr(std::min(comma + 2, r.args.size()));  // skip ", "
    }
    RawRecord unfinished = r;
    unfinished.kind = RecordKind::Unfinished;
    unfinished.args = head;
    RawRecord resumed = r;
    resumed.kind = RecordKind::Resumed;
    resumed.args = tail;
    resumed.timestamp = r.timestamp + r.duration.value_or(0);
    lines.push_back({unfinished.timestamp, seq++, format_record(unfinished, opts)});
    lines.push_back({resumed.timestamp, seq++, format_record(resumed, opts)});
  }
  std::sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    return a.at < b.at || (a.at == b.at && a.seq < b.seq);
  });
  std::string out;
  for (const Line& line : lines) {
    out += line.text;
    out += '\n';
  }
  return out;
}

}  // namespace st::strace
