// Line-level strace parser and unfinished/resumed merger.
//
// Input grammar (strace -f -tt -T -y, one record per line):
//
//   PID  HH:MM:SS.ffffff call(args) = ret [ERRNO (text)] <dur>
//   PID  HH:MM:SS.ffffff call(args <unfinished ...>
//   PID  HH:MM:SS.ffffff <... call resumed> rest) = ret <dur>
//   PID  HH:MM:SS.ffffff --- SIGxxx {siginfo} ---
//   PID  HH:MM:SS.ffffff +++ exited with N +++
//
// The parser extracts the event attributes of Sec. III of the paper
// (pid, call, start, dur, fp, size) plus structural metadata. It is
// zero-copy: record fields view into `line` except the few synthesized
// strings (decoded C paths, merged argument lists), which intern into
// the given StringArena. Argument scanning is single-pass — the
// argument list is split exactly once per record and the spans are
// shared by path and size extraction.
//
// The ResumeMerger implements the paper's rule: "the unfinished and
// the resumed records are matched using the pid, and merged into a
// single record" — the merged record keeps the start timestamp of the
// unfinished part and the duration/return value of the resumed part.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "strace/arena.hpp"
#include "strace/record.hpp"

namespace st::strace {

/// Parses one line. Returns nullopt for blank lines. Throws ParseError
/// for structurally invalid lines (no pid/timestamp, unbalanced parens).
/// The returned record views into `line` and `arena`; both must outlive
/// the record.
[[nodiscard]] std::optional<RawRecord> parse_line(std::string_view line, StringArena& arena);

/// Convenience overload for call sites without a buffer (tests, small
/// tools): synthesized strings intern into a thread-local arena that
/// lives until thread exit. `line` must still outlive the record.
[[nodiscard]] std::optional<RawRecord> parse_line(std::string_view line);

namespace detail {

/// Merges an Unfinished record with its Resumed completion: args are
/// joined (interned into `arena`), retval/errno/duration come from the
/// resumed part, and path/requested are re-extracted in place from the
/// merged argument list (split once — no probe record copies).
/// Throws ParseError when the call names do not match.
[[nodiscard]] RawRecord merge_resumed_pair(RawRecord unfinished, const RawRecord& resumed,
                                           StringArena& arena);

}  // namespace detail

/// Stateful merger of <unfinished ...> / <... resumed> pairs.
///
/// feed() returns a record when one becomes complete: a Complete input
/// passes through, a Resumed input is merged with the pending
/// Unfinished record of the same pid. Unfinished inputs are buffered.
/// Signal/Exit records pass through untouched.
class ResumeMerger {
 public:
  /// Merged argument lists intern into `arena` (typically the
  /// TraceBuffer's arena, so merged records share the buffer's
  /// lifetime).
  explicit ResumeMerger(StringArena& arena) : arena_(&arena) {}

  /// Convenience: interns into an arena owned by the merger itself —
  /// merged records are then only valid while the merger is alive.
  ResumeMerger() : owned_(std::make_unique<StringArena>()), arena_(owned_.get()) {}

  [[nodiscard]] std::optional<RawRecord> feed(RawRecord rec);

  /// Unfinished records that never resumed (e.g. the process was
  /// killed mid-call), sorted by pid. Clears the internal state.
  [[nodiscard]] std::vector<RawRecord> take_pending();

  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }

 private:
  std::unique_ptr<StringArena> owned_;
  StringArena* arena_;
  std::unordered_map<std::uint64_t, RawRecord> pending_;  // keyed by pid
};

}  // namespace st::strace
