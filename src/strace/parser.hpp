// Line-level strace parser and unfinished/resumed merger.
//
// Input grammar (strace -f -tt -T -y, one record per line):
//
//   PID  HH:MM:SS.ffffff call(args) = ret [ERRNO (text)] <dur>
//   PID  HH:MM:SS.ffffff call(args <unfinished ...>
//   PID  HH:MM:SS.ffffff <... call resumed> rest) = ret <dur>
//   PID  HH:MM:SS.ffffff --- SIGxxx {siginfo} ---
//   PID  HH:MM:SS.ffffff +++ exited with N +++
//
// The parser extracts the event attributes of Sec. III of the paper
// (pid, call, start, dur, fp, size) plus structural metadata. The
// ResumeMerger implements the paper's rule: "the unfinished and the
// resumed records are matched using the pid, and merged into a single
// record" — the merged record keeps the start timestamp of the
// unfinished part and the duration/return value of the resumed part.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "strace/record.hpp"

namespace st::strace {

/// Parses one line. Returns nullopt for blank lines. Throws ParseError
/// for structurally invalid lines (no pid/timestamp, unbalanced parens).
[[nodiscard]] std::optional<RawRecord> parse_line(std::string_view line);

/// Stateful merger of <unfinished ...> / <... resumed> pairs.
///
/// feed() returns a record when one becomes complete: a Complete input
/// passes through, a Resumed input is merged with the pending
/// Unfinished record of the same pid. Unfinished inputs are buffered.
/// Signal/Exit records pass through untouched.
class ResumeMerger {
 public:
  [[nodiscard]] std::optional<RawRecord> feed(RawRecord rec);

  /// Unfinished records that never resumed (e.g. the process was
  /// killed mid-call). Clears the internal state.
  [[nodiscard]] std::vector<RawRecord> take_pending();

  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }

 private:
  std::unordered_map<std::uint64_t, RawRecord> pending_;  // keyed by pid
};

}  // namespace st::strace
