// High-level trace reading: text/file -> merged, filtered records.
//
// Applies the paper's Sec. III processing rules in order:
//   1. parse every line,
//   2. merge unfinished/resumed pairs by pid,
//   3. drop signal and exit records (not system calls),
//   4. drop ERESTARTSYS-interrupted calls,
// and collects row-level problems as warnings instead of aborting the
// whole file (real strace logs contain truncation and noise).
//
// Ingestion is zero-copy: the trace bytes are read once into a
// TraceBuffer and records view into it (plus a small arena for merged
// argument lists and decoded C paths). ReadResult carries the buffer,
// so records stay valid as long as the result is alive.
//
// read_trace_parallel chunks the buffer on line boundaries, parses the
// chunks on a ThreadPool via map_reduce, and folds per-PID sharded
// unfinished/resumed state deterministically left-to-right — records,
// ordering and warnings are byte-identical to the sequential reader.
// read_trace_buffers_parallel generalizes this to many buffers on one
// shared work queue (mixed per-file + intra-file parallelism), and
// file-based entry points mmap the trace instead of copying it.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "strace/record.hpp"
#include "strace/trace_buffer.hpp"

namespace st {
class ThreadPool;
}  // namespace st

namespace st::strace {

struct ReadOptions {
  bool drop_restarts = true;   ///< ignore ERESTARTSYS calls (paper rule)
  bool drop_signals = true;    ///< drop --- SIGxxx --- records
  bool drop_exits = true;      ///< drop +++ exited +++ records
  bool strict = false;         ///< rethrow line parse errors instead of warning
};

struct ReadResult {
  std::vector<RawRecord> records;
  std::vector<std::string> warnings;  ///< one entry per skipped/incomplete line
  /// Owns the bytes and arenas the records view into; records are valid
  /// exactly as long as this buffer (shared, so results copy freely).
  std::shared_ptr<TraceBuffer> buffer;
};

/// Parses a trace held in a TraceBuffer (zero-copy). Parsing interns
/// into the buffer's arena: do not run two read_trace_* calls on the
/// same buffer concurrently (sequential reuse is fine).
[[nodiscard]] ReadResult read_trace_buffer(std::shared_ptr<TraceBuffer> buffer,
                                           const ReadOptions& opts = {});

/// Parses a whole trace text (multiple lines). The text is copied once
/// into the result's TraceBuffer so the caller's string may die.
[[nodiscard]] ReadResult read_trace_text(std::string_view text, const ReadOptions& opts = {});

/// Reads and parses a trace file from disk with a single read into the
/// result's TraceBuffer. Throws IoError if the file cannot be opened.
[[nodiscard]] ReadResult read_trace_file(const std::string& path, const ReadOptions& opts = {});

struct ParallelReadOptions : ReadOptions {
  std::size_t threads = 0;             ///< pool size when `pool` is null; 0 = hardware
  std::size_t min_chunk_bytes = 1 << 20;  ///< lower bound per parse chunk
  ThreadPool* pool = nullptr;          ///< reuse an existing pool instead of creating one
};

/// Parallel variant of read_trace_buffer: byte-identical output
/// (records, order, warnings, strict-mode exception) to the sequential
/// reader, built with per-chunk parses folded left-to-right.
[[nodiscard]] ReadResult read_trace_parallel(std::shared_ptr<TraceBuffer> buffer,
                                             const ParallelReadOptions& opts = {});

[[nodiscard]] ReadResult read_trace_text_parallel(std::string_view text,
                                                  const ParallelReadOptions& opts = {});

[[nodiscard]] ReadResult read_trace_file_parallel(const std::string& path,
                                                  const ParallelReadOptions& opts = {});

/// Mixed per-file + intra-file parallelism: every buffer is split into
/// line chunks and ALL (buffer, chunk) parse tasks share one pool's
/// work queue, so one huge trace plus many small ones saturates every
/// worker — no either/or between the two parallelism axes. Results are
/// returned in input order and each is byte-identical to
/// read_trace_buffer on that buffer (records, order, warnings,
/// strict-mode exception; on multiple strict failures the lowest input
/// index wins).
[[nodiscard]] std::vector<ReadResult> read_trace_buffers_parallel(
    std::vector<std::shared_ptr<TraceBuffer>> buffers, const ParallelReadOptions& opts = {});

/// Opens every file via TraceBuffer::from_file_mmap (so multi-GB
/// traces never double-buffer) and parses them with
/// read_trace_buffers_parallel. Open failures throw IoError for the
/// first unopenable path in input order, before any parsing starts.
[[nodiscard]] std::vector<ReadResult> read_trace_files_mixed(
    const std::vector<std::string>& paths, const ParallelReadOptions& opts = {});

}  // namespace st::strace
