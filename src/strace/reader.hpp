// High-level trace reading: text/file -> merged, filtered records.
//
// Applies the paper's Sec. III processing rules in order:
//   1. parse every line,
//   2. merge unfinished/resumed pairs by pid,
//   3. drop signal and exit records (not system calls),
//   4. drop ERESTARTSYS-interrupted calls,
// and collects row-level problems as warnings instead of aborting the
// whole file (real strace logs contain truncation and noise).
//
// Ingestion is zero-copy: the trace bytes are read once into a
// TraceBuffer and records view into it (plus a small arena for merged
// argument lists and decoded C paths). ReadResult carries the buffer,
// so records stay valid as long as the result is alive.
//
// read_trace_parallel chunks the buffer on line boundaries, parses the
// chunks on a ThreadPool via map_reduce, and folds per-PID sharded
// unfinished/resumed state deterministically left-to-right — records,
// ordering and warnings are byte-identical to the sequential reader.
// read_trace_buffers_parallel generalizes this to many buffers on one
// shared work queue (mixed per-file + intra-file parallelism), and
// file-based entry points mmap the trace instead of copying it.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "strace/record.hpp"
#include "strace/trace_buffer.hpp"

namespace st {
class ThreadPool;
}  // namespace st

namespace st::strace {

struct ReadOptions {
  bool drop_restarts = true;   ///< ignore ERESTARTSYS calls (paper rule)
  bool drop_signals = true;    ///< drop --- SIGxxx --- records
  bool drop_exits = true;      ///< drop +++ exited +++ records
  bool strict = false;         ///< rethrow line parse errors instead of warning
};

struct ReadResult {
  std::vector<RawRecord> records;
  std::vector<std::string> warnings;  ///< one entry per skipped/incomplete line
  /// Owns the bytes and arenas the records view into; records are valid
  /// exactly as long as this buffer (shared, so results copy freely).
  std::shared_ptr<TraceBuffer> buffer;
};

/// Parses a trace held in a TraceBuffer (zero-copy). Parsing interns
/// into the buffer's arena: do not run two read_trace_* calls on the
/// same buffer concurrently (sequential reuse is fine).
[[nodiscard]] ReadResult read_trace_buffer(std::shared_ptr<TraceBuffer> buffer,
                                           const ReadOptions& opts = {});

/// Parses a whole trace text (multiple lines). The text is copied once
/// into the result's TraceBuffer so the caller's string may die.
[[nodiscard]] ReadResult read_trace_text(std::string_view text, const ReadOptions& opts = {});

/// Reads and parses a trace file from disk with a single read into the
/// result's TraceBuffer. Throws IoError if the file cannot be opened.
[[nodiscard]] ReadResult read_trace_file(const std::string& path, const ReadOptions& opts = {});

struct ParallelReadOptions : ReadOptions {
  std::size_t threads = 0;             ///< pool size when `pool` is null; 0 = hardware
  std::size_t min_chunk_bytes = 1 << 20;  ///< lower bound per parse chunk
  ThreadPool* pool = nullptr;          ///< reuse an existing pool instead of creating one
};

/// Parallel variant of read_trace_buffer: byte-identical output
/// (records, order, warnings, strict-mode exception) to the sequential
/// reader, built with per-chunk parses folded left-to-right.
[[nodiscard]] ReadResult read_trace_parallel(std::shared_ptr<TraceBuffer> buffer,
                                             const ParallelReadOptions& opts = {});

[[nodiscard]] ReadResult read_trace_text_parallel(std::string_view text,
                                                  const ParallelReadOptions& opts = {});

[[nodiscard]] ReadResult read_trace_file_parallel(const std::string& path,
                                                  const ParallelReadOptions& opts = {});

/// Mixed per-file + intra-file parallelism: every buffer is split into
/// line chunks and ALL (buffer, chunk) parse tasks share one pool's
/// work queue, so one huge trace plus many small ones saturates every
/// worker — no either/or between the two parallelism axes. Results are
/// returned in input order and each is byte-identical to
/// read_trace_buffer on that buffer (records, order, warnings,
/// strict-mode exception; on multiple strict failures the lowest input
/// index wins).
[[nodiscard]] std::vector<ReadResult> read_trace_buffers_parallel(
    std::vector<std::shared_ptr<TraceBuffer>> buffers, const ParallelReadOptions& opts = {});

/// Opens every file via TraceBuffer::from_file_mmap (so multi-GB
/// traces never double-buffer) and parses them with
/// read_trace_buffers_parallel. Open failures throw IoError for the
/// first unopenable path in input order, before any parsing starts.
[[nodiscard]] std::vector<ReadResult> read_trace_files_mixed(
    const std::vector<std::string>& paths, const ParallelReadOptions& opts = {});

// ---- streamed per-file completion --------------------------------------

/// Called the moment ONE buffer's parse chunks have all folded — from
/// the pool thread that finished the file's last chunk, at most once
/// per file, possibly out of input order. The ReadResult is identical
/// to what read_trace_buffer would have produced for that buffer.
using FileReadyFn = std::function<void(std::size_t file_index, ReadResult&&)>;

/// Handle to an in-flight streamed parse. read_trace_*_streamed return
/// it immediately after enqueueing every (file, chunk) parse task; the
/// pipeline layer overlaps downstream stages with the parse by reacting
/// to the per-file callbacks while the handle is live.
class StreamedParse {
 public:
  struct Error {
    std::size_t file_index = 0;  ///< input index of the failing file
    std::exception_ptr error;
  };

  StreamedParse(StreamedParse&&) noexcept = default;
  /// Joins the parse currently held (like the destructor would) before
  /// taking over `other`'s — tasks of the replaced parse reference its
  /// state and must not outlive it.
  StreamedParse& operator=(StreamedParse&& other) noexcept;

  /// Joins: no parse/fold task or callback is running or pending after
  /// this returns (also run by the destructor — tasks never leak).
  ~StreamedParse();

  /// Blocks until every task and callback has finished. Never throws.
  void join();

  /// After join(): the earliest failure in input order — lowest file
  /// index first, lowest chunk within the file; fold/finalize errors
  /// (strict-mode parse errors surface there) and exceptions escaping
  /// the on_file_done callback rank after the file's chunk errors.
  [[nodiscard]] std::optional<Error> error() const;

  /// After join(): every failed file's earliest error, sorted by file
  /// index. A file either appears here or fired on_file_done — never
  /// both. keep_going consumers quarantine these per file instead of
  /// rethrowing the first.
  [[nodiscard]] std::vector<Error> errors() const;

  /// join(), then rethrow the recorded error, if any.
  void wait();

 private:
  struct State;
  friend StreamedParse read_trace_buffers_streamed(std::vector<std::shared_ptr<TraceBuffer>>,
                                                   const ParallelReadOptions&, FileReadyFn,
                                                   std::function<void()>);
  explicit StreamedParse(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Streamed variant of read_trace_buffers_parallel: the same one work
/// queue of (buffer, chunk) parse tasks, but each buffer's fold runs on
/// the pool thread that finished its last chunk and `on_file_done`
/// fires right there — downstream stages can start consuming a file
/// while other files are still parsing. `on_all_done` (optional) fires
/// exactly once, normally after the last file settles, whether it
/// parsed cleanly or failed (on the thread that settled it; inline
/// when `buffers` is empty) — and EARLY if task submission itself
/// fails, so consumers can unblock producers parked in a backpressured
/// hand-off. When opts.pool is null the handle owns a private pool
/// sized by opts.threads; a caller-provided opts.pool must outlive the
/// returned handle (destroying the pool first discards chunk tasks
/// that never started, and the handle's join would then wait forever).
[[nodiscard]] StreamedParse read_trace_buffers_streamed(
    std::vector<std::shared_ptr<TraceBuffer>> buffers, const ParallelReadOptions& opts,
    FileReadyFn on_file_done, std::function<void()> on_all_done = {});

/// mmap-opening wrapper (same contract as read_trace_files_mixed's
/// opening step: IoError for the first unopenable path, before any
/// parse task is enqueued).
[[nodiscard]] StreamedParse read_trace_files_streamed(const std::vector<std::string>& paths,
                                                      const ParallelReadOptions& opts,
                                                      FileReadyFn on_file_done,
                                                      std::function<void()> on_all_done = {});

}  // namespace st::strace
