// High-level trace reading: text/file -> merged, filtered records.
//
// Applies the paper's Sec. III processing rules in order:
//   1. parse every line,
//   2. merge unfinished/resumed pairs by pid,
//   3. drop signal and exit records (not system calls),
//   4. drop ERESTARTSYS-interrupted calls,
// and collects row-level problems as warnings instead of aborting the
// whole file (real strace logs contain truncation and noise).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "strace/record.hpp"

namespace st::strace {

struct ReadOptions {
  bool drop_restarts = true;   ///< ignore ERESTARTSYS calls (paper rule)
  bool drop_signals = true;    ///< drop --- SIGxxx --- records
  bool drop_exits = true;      ///< drop +++ exited +++ records
  bool strict = false;         ///< rethrow line parse errors instead of warning
};

struct ReadResult {
  std::vector<RawRecord> records;
  std::vector<std::string> warnings;  ///< one entry per skipped/incomplete line
};

/// Parses a whole trace text (multiple lines).
[[nodiscard]] ReadResult read_trace_text(std::string_view text, const ReadOptions& opts = {});

/// Reads and parses a trace file from disk. Throws IoError if the file
/// cannot be opened.
[[nodiscard]] ReadResult read_trace_file(const std::string& path, const ReadOptions& opts = {});

}  // namespace st::strace
