#include "strace/scan_kernels.hpp"

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#define ST_SCAN_HAVE_SSE2 1  // AVX2 implies SSE2; the 16-byte path scans the tail
#define ST_SCAN_HAVE_AVX2 1
#elif defined(__SSE2__)
#include <emmintrin.h>
#define ST_SCAN_HAVE_SSE2 1
#elif defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#define ST_SCAN_HAVE_NEON 1
#endif

namespace st::strace::kernels {

namespace {

// ---- mode control ------------------------------------------------------

ScanKernelMode mode_from_env() {
  const char* env = std::getenv("ST_SCAN_KERNELS");
  if (env == nullptr) return ScanKernelMode::Simd;
  const std::string_view v(env);
  if (v == "scalar") return ScanKernelMode::Scalar;
  if (v == "swar") return ScanKernelMode::Swar;
  return ScanKernelMode::Simd;  // "simd", "auto", anything else
}

std::atomic<ScanKernelMode>& mode_state() {
  static std::atomic<ScanKernelMode> mode{mode_from_env()};
  return mode;
}

// ---- SWAR primitives ---------------------------------------------------

constexpr std::uint64_t kOnes = 0x0101010101010101ULL;
constexpr std::uint64_t kHighs = 0x8080808080808080ULL;
constexpr std::uint64_t kLow7 = 0x7F7F7F7F7F7F7F7FULL;

inline std::uint64_t load_word(const char* p) {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof w);  // single unaligned mov after optimization
  return w;
}

/// 0x80 in every byte of `w` equal to the byte replicated in `pat`,
/// 0x00 elsewhere. Exact per byte — the naive haszero(x ^ pat) trick
/// lets the subtraction borrow bleed flags into bytes past the first
/// real match, which would break the first-match scan on big-endian.
inline std::uint64_t byte_eq_mask(std::uint64_t w, std::uint64_t pat) {
  const std::uint64_t x = w ^ pat;
  return ~(x | ((x & kLow7) + kLow7)) & kHighs;
}

/// 0x80 per byte in the structural class  " ( ) [ ] { } , .
/// '(' 0x28 / ')' 0x29 collapse under | 0x01; '[' 0x5B / '{' 0x7B and
/// ']' 0x5D / '}' 0x7D collapse under | 0x20 — three comparisons cover
/// six brackets exactly (no other byte maps onto the targets).
inline std::uint64_t structural_mask(std::uint64_t w) {
  const std::uint64_t w01 = w | (kOnes * 0x01);
  const std::uint64_t w20 = w | (kOnes * 0x20);
  return byte_eq_mask(w, kOnes * static_cast<std::uint8_t>('"')) |
         byte_eq_mask(w, kOnes * static_cast<std::uint8_t>(',')) |
         byte_eq_mask(w01, kOnes * 0x29) | byte_eq_mask(w20, kOnes * 0x7B) |
         byte_eq_mask(w20, kOnes * 0x7D);
}

/// Byte offset of the lowest-indexed flag in an exact 0x80-per-byte mask.
inline std::size_t first_flagged_byte(std::uint64_t mask) {
  if constexpr (std::endian::native == std::endian::little) {
    return static_cast<std::size_t>(std::countr_zero(mask)) >> 3;
  } else {
    return static_cast<std::size_t>(std::countl_zero(mask)) >> 3;
  }
}

/// Shared word-loop shape: scan whole 8-byte blocks with `mask_fn`,
/// finish the sub-word tail with `scalar_pred`. Never reads past
/// s.data() + s.size().
template <class MaskFn, class ScalarPred>
std::size_t scan_swar(std::string_view s, std::size_t pos, MaskFn mask_fn,
                      ScalarPred scalar_pred) {
  const char* p = s.data();
  const std::size_t n = s.size();
  std::size_t i = pos;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t mask = mask_fn(load_word(p + i));
    if (mask != 0) return i + first_flagged_byte(mask);
  }
  for (; i < n; ++i) {
    if (scalar_pred(p[i])) return i;
  }
  return npos;
}

#if defined(ST_SCAN_HAVE_SSE2)

template <class BlockFn, class ScalarPred>
std::size_t scan_sse2(std::string_view s, std::size_t pos, BlockFn block_fn,
                      ScalarPred scalar_pred) {
  const char* p = s.data();
  const std::size_t n = s.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const __m128i w = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const int mask = _mm_movemask_epi8(block_fn(w));
    if (mask != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (scalar_pred(p[i])) return i;
  }
  return npos;
}

inline __m128i sse2_structural(__m128i w) {
  const __m128i w01 = _mm_or_si128(w, _mm_set1_epi8(0x01));
  const __m128i w20 = _mm_or_si128(w, _mm_set1_epi8(0x20));
  __m128i hits = _mm_cmpeq_epi8(w, _mm_set1_epi8('"'));
  hits = _mm_or_si128(hits, _mm_cmpeq_epi8(w, _mm_set1_epi8(',')));
  hits = _mm_or_si128(hits, _mm_cmpeq_epi8(w01, _mm_set1_epi8(0x29)));
  hits = _mm_or_si128(hits, _mm_cmpeq_epi8(w20, _mm_set1_epi8(0x7B)));
  hits = _mm_or_si128(hits, _mm_cmpeq_epi8(w20, _mm_set1_epi8(0x7D)));
  return hits;
}

#if defined(ST_SCAN_HAVE_AVX2)

/// 32-byte blocks (-mavx2 / release-native builds). The sub-32-byte
/// tail is handed to `tail_fn` — the callers finish it on the 16-byte
/// SSE2 scan, so only the final sub-16 bytes ever go scalar. Same
/// memory-safety contract as the other backends: whole blocks only,
/// never a load past s.data() + s.size().
template <class BlockFn, class TailFn>
std::size_t scan_avx2(std::string_view s, std::size_t pos, BlockFn block_fn, TailFn tail_fn) {
  const char* p = s.data();
  const std::size_t n = s.size();
  std::size_t i = pos;
  for (; i + 32 <= n; i += 32) {
    const __m256i w = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const auto mask = static_cast<unsigned>(_mm256_movemask_epi8(block_fn(w)));
    if (mask != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(mask));
    }
  }
  return tail_fn(i);
}

inline __m256i avx2_structural(__m256i w) {
  const __m256i w01 = _mm256_or_si256(w, _mm256_set1_epi8(0x01));
  const __m256i w20 = _mm256_or_si256(w, _mm256_set1_epi8(0x20));
  __m256i hits = _mm256_cmpeq_epi8(w, _mm256_set1_epi8('"'));
  hits = _mm256_or_si256(hits, _mm256_cmpeq_epi8(w, _mm256_set1_epi8(',')));
  hits = _mm256_or_si256(hits, _mm256_cmpeq_epi8(w01, _mm256_set1_epi8(0x29)));
  hits = _mm256_or_si256(hits, _mm256_cmpeq_epi8(w20, _mm256_set1_epi8(0x7B)));
  hits = _mm256_or_si256(hits, _mm256_cmpeq_epi8(w20, _mm256_set1_epi8(0x7D)));
  return hits;
}

#endif

#elif defined(ST_SCAN_HAVE_NEON)

/// 4-bit-per-byte movemask emulation: narrowing shift packs each
/// byte's top nibble into a 64-bit word, so countr_zero / 4 recovers
/// the first matching byte index.
inline std::uint64_t neon_nibble_mask(uint8x16_t hits) {
  const uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(hits), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

template <class BlockFn, class ScalarPred>
std::size_t scan_neon(std::string_view s, std::size_t pos, BlockFn block_fn,
                      ScalarPred scalar_pred) {
  const char* p = s.data();
  const std::size_t n = s.size();
  std::size_t i = pos;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t w = vld1q_u8(reinterpret_cast<const std::uint8_t*>(p + i));
    const std::uint64_t mask = neon_nibble_mask(block_fn(w));
    if (mask != 0) {
      return i + (static_cast<std::size_t>(std::countr_zero(mask)) >> 2);
    }
  }
  for (; i < n; ++i) {
    if (scalar_pred(p[i])) return i;
  }
  return npos;
}

inline uint8x16_t neon_structural(uint8x16_t w) {
  const uint8x16_t w01 = vorrq_u8(w, vdupq_n_u8(0x01));
  const uint8x16_t w20 = vorrq_u8(w, vdupq_n_u8(0x20));
  uint8x16_t hits = vceqq_u8(w, vdupq_n_u8('"'));
  hits = vorrq_u8(hits, vceqq_u8(w, vdupq_n_u8(',')));
  hits = vorrq_u8(hits, vceqq_u8(w01, vdupq_n_u8(0x29)));
  hits = vorrq_u8(hits, vceqq_u8(w20, vdupq_n_u8(0x7B)));
  hits = vorrq_u8(hits, vceqq_u8(w20, vdupq_n_u8(0x7D)));
  return hits;
}

#endif

}  // namespace

// ---- mode control ------------------------------------------------------

ScanKernelMode scan_kernel_mode() {
  return mode_state().load(std::memory_order_relaxed);
}

void set_scan_kernel_mode(ScanKernelMode mode) {
  mode_state().store(mode, std::memory_order_relaxed);
}

std::string_view scan_kernel_backend() {
#if defined(ST_SCAN_HAVE_AVX2)
  return "avx2";
#elif defined(ST_SCAN_HAVE_SSE2)
  return "sse2";
#elif defined(ST_SCAN_HAVE_NEON)
  return "neon";
#else
  return "swar";
#endif
}

// ---- scalar reference --------------------------------------------------

std::size_t find_byte_scalar(std::string_view s, std::size_t pos, char c) {
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == c) return i;
  }
  return npos;
}

std::size_t find_quote_or_backslash_scalar(std::string_view s, std::size_t pos) {
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '"' || s[i] == '\\') return i;
  }
  return npos;
}

std::size_t find_structural_scalar(std::string_view s, std::size_t pos) {
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (is_structural_byte(s[i])) return i;
  }
  return npos;
}

// ---- SWAR --------------------------------------------------------------

std::size_t find_byte_swar(std::string_view s, std::size_t pos, char c) {
  const std::uint64_t pat = kOnes * static_cast<std::uint8_t>(c);
  return scan_swar(
      s, pos, [pat](std::uint64_t w) { return byte_eq_mask(w, pat); },
      [c](char b) { return b == c; });
}

std::size_t find_quote_or_backslash_swar(std::string_view s, std::size_t pos) {
  constexpr std::uint64_t quote = kOnes * static_cast<std::uint8_t>('"');
  constexpr std::uint64_t bslash = kOnes * static_cast<std::uint8_t>('\\');
  return scan_swar(
      s, pos,
      [](std::uint64_t w) { return byte_eq_mask(w, quote) | byte_eq_mask(w, bslash); },
      [](char b) { return b == '"' || b == '\\'; });
}

std::size_t find_structural_swar(std::string_view s, std::size_t pos) {
  return scan_swar(
      s, pos, [](std::uint64_t w) { return structural_mask(w); },
      [](char b) { return is_structural_byte(b); });
}

// ---- AVX2 (32-byte blocks; falls back to the 16-byte SIMD path) --------

std::size_t find_byte_avx2(std::string_view s, std::size_t pos, char c) {
#if defined(ST_SCAN_HAVE_AVX2)
  const __m256i pat = _mm256_set1_epi8(c);
  return scan_avx2(
      s, pos, [pat](__m256i w) { return _mm256_cmpeq_epi8(w, pat); },
      [&](std::size_t i) {
        const __m128i pat16 = _mm_set1_epi8(c);
        return scan_sse2(
            s, i, [pat16](__m128i w) { return _mm_cmpeq_epi8(w, pat16); },
            [c](char b) { return b == c; });
      });
#else
  return find_byte_simd(s, pos, c);
#endif
}

std::size_t find_quote_or_backslash_avx2(std::string_view s, std::size_t pos) {
#if defined(ST_SCAN_HAVE_AVX2)
  return scan_avx2(
      s, pos,
      [](__m256i w) {
        return _mm256_or_si256(_mm256_cmpeq_epi8(w, _mm256_set1_epi8('"')),
                               _mm256_cmpeq_epi8(w, _mm256_set1_epi8('\\')));
      },
      [&](std::size_t i) {
        return scan_sse2(
            s, i,
            [](__m128i w) {
              return _mm_or_si128(_mm_cmpeq_epi8(w, _mm_set1_epi8('"')),
                                  _mm_cmpeq_epi8(w, _mm_set1_epi8('\\')));
            },
            [](char b) { return b == '"' || b == '\\'; });
      });
#else
  return find_quote_or_backslash_simd(s, pos);
#endif
}

std::size_t find_structural_avx2(std::string_view s, std::size_t pos) {
#if defined(ST_SCAN_HAVE_AVX2)
  return scan_avx2(
      s, pos, [](__m256i w) { return avx2_structural(w); },
      [&](std::size_t i) {
        return scan_sse2(
            s, i, [](__m128i w) { return sse2_structural(w); },
            [](char b) { return is_structural_byte(b); });
      });
#else
  return find_structural_simd(s, pos);
#endif
}

// ---- SIMD (best compiled-in backend; SWAR when none) -------------------

std::size_t find_byte_simd(std::string_view s, std::size_t pos, char c) {
#if defined(ST_SCAN_HAVE_AVX2)
  return find_byte_avx2(s, pos, c);
#elif defined(ST_SCAN_HAVE_SSE2)
  const __m128i pat = _mm_set1_epi8(c);
  return scan_sse2(
      s, pos, [pat](__m128i w) { return _mm_cmpeq_epi8(w, pat); },
      [c](char b) { return b == c; });
#elif defined(ST_SCAN_HAVE_NEON)
  const uint8x16_t pat = vdupq_n_u8(static_cast<std::uint8_t>(c));
  return scan_neon(
      s, pos, [pat](uint8x16_t w) { return vceqq_u8(w, pat); },
      [c](char b) { return b == c; });
#else
  return find_byte_swar(s, pos, c);
#endif
}

std::size_t find_quote_or_backslash_simd(std::string_view s, std::size_t pos) {
#if defined(ST_SCAN_HAVE_AVX2)
  return find_quote_or_backslash_avx2(s, pos);
#elif defined(ST_SCAN_HAVE_SSE2)
  return scan_sse2(
      s, pos,
      [](__m128i w) {
        return _mm_or_si128(_mm_cmpeq_epi8(w, _mm_set1_epi8('"')),
                            _mm_cmpeq_epi8(w, _mm_set1_epi8('\\')));
      },
      [](char b) { return b == '"' || b == '\\'; });
#elif defined(ST_SCAN_HAVE_NEON)
  return scan_neon(
      s, pos,
      [](uint8x16_t w) {
        return vorrq_u8(vceqq_u8(w, vdupq_n_u8('"')), vceqq_u8(w, vdupq_n_u8('\\')));
      },
      [](char b) { return b == '"' || b == '\\'; });
#else
  return find_quote_or_backslash_swar(s, pos);
#endif
}

std::size_t find_structural_simd(std::string_view s, std::size_t pos) {
#if defined(ST_SCAN_HAVE_AVX2)
  return find_structural_avx2(s, pos);
#elif defined(ST_SCAN_HAVE_SSE2)
  return scan_sse2(
      s, pos, [](__m128i w) { return sse2_structural(w); },
      [](char b) { return is_structural_byte(b); });
#elif defined(ST_SCAN_HAVE_NEON)
  return scan_neon(
      s, pos, [](uint8x16_t w) { return neon_structural(w); },
      [](char b) { return is_structural_byte(b); });
#else
  return find_structural_swar(s, pos);
#endif
}

// ---- dispatch ----------------------------------------------------------

std::size_t find_byte(std::string_view s, std::size_t pos, char c) {
  switch (scan_kernel_mode()) {
    case ScanKernelMode::Scalar: return find_byte_scalar(s, pos, c);
    case ScanKernelMode::Swar: return find_byte_swar(s, pos, c);
    case ScanKernelMode::Simd: break;
  }
  return find_byte_simd(s, pos, c);
}

std::size_t find_quote_or_backslash(std::string_view s, std::size_t pos) {
  switch (scan_kernel_mode()) {
    case ScanKernelMode::Scalar: return find_quote_or_backslash_scalar(s, pos);
    case ScanKernelMode::Swar: return find_quote_or_backslash_swar(s, pos);
    case ScanKernelMode::Simd: break;
  }
  return find_quote_or_backslash_simd(s, pos);
}

std::size_t find_structural(std::string_view s, std::size_t pos) {
  switch (scan_kernel_mode()) {
    case ScanKernelMode::Scalar: return find_structural_scalar(s, pos);
    case ScanKernelMode::Swar: return find_structural_swar(s, pos);
    case ScanKernelMode::Simd: break;
  }
  return find_structural_simd(s, pos);
}

}  // namespace st::strace::kernels
