#include "strace/parser.hpp"

#include <algorithm>
#include <string>

#include "strace/scan.hpp"
#include "support/errors.hpp"
#include "support/strings.hpp"

namespace st::strace {

namespace {

constexpr std::string_view kUnfinished = "<unfinished ...>";
constexpr std::string_view kResumedOpen = "<... ";
constexpr std::string_view kResumedClose = " resumed>";

bool is_ascii_digit(char c) { return c >= '0' && c <= '9'; }
bool is_ascii_ws(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f'; }

bool is_syscall_name_char(char c) {
  return is_ascii_digit(c) || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

/// Shared scratch for the one split_args pass per record; reused across
/// lines so steady-state parsing does not allocate.
std::vector<std::string_view>& scratch_argv() {
  thread_local std::vector<std::string_view> argv;
  return argv;
}

/// Fallback arena for the convenience parse_line/ResumeMerger entry
/// points that have no buffer to intern into.
StringArena& thread_arena() {
  thread_local StringArena arena;
  return arena;
}

/// Extracts the file path of the record per the paper's rules: the -y
/// annotation on the first fd argument, or — for path-taking calls —
/// the quoted path argument / annotated return value. `args` is the
/// pre-split argument list (single-pass scanning: the split happens
/// once per record and is shared with extract_requested).
void extract_path(RawRecord& rec, const std::vector<std::string_view>& args, StringArena& arena) {
  if (!args.empty()) {
    if (const auto fp = parse_fd_annotation(args.front())) {
      rec.fd = fp->fd;
      rec.path = fp->path;
      return;
    }
  }
  // openat(AT_FDCWD, "/path", flags) / open("/path", flags) / creat, stat...
  const bool second_arg_path = rec.call == "openat" || rec.call == "openat2" ||
                               rec.call == "newfstatat" || rec.call == "unlinkat" ||
                               rec.call == "mkdirat" || rec.call == "faccessat" ||
                               rec.call == "faccessat2";
  const bool first_arg_path = rec.call == "open" || rec.call == "creat" || rec.call == "stat" ||
                              rec.call == "lstat" || rec.call == "access" ||
                              rec.call == "unlink" || rec.call == "mkdir" ||
                              rec.call == "statfs" || rec.call == "readlink";
  const std::size_t idx = second_arg_path ? 1 : 0;
  if ((second_arg_path || first_arg_path) && args.size() > idx) {
    std::string_view a = args[idx];
    if (a.size() >= 2 && a.front() == '"' && a.back() == '"') {
      rec.path = decode_c_string(a.substr(1, a.size() - 2), arena);
      return;
    }
  }
  // Calls whose fd argument is not first (mmap's 5th argument, ...):
  // take the first -y annotation anywhere in the signature.
  for (const auto& arg : args) {
    if (const auto fp = parse_fd_annotation(arg)) {
      rec.fd = fp->fd;
      rec.path = fp->path;
      return;
    }
  }
}

/// The calls whose third argument is a byte count (fd, buf, count
/// [, offset]). Restricting the "third argument" rule to this set
/// keeps e.g. fallocate's mode or flag arguments from being misread
/// as sizes.
bool third_arg_is_count(std::string_view call) {
  return call == "read" || call == "write" || call == "pread64" || call == "pwrite64" ||
         call == "recv" || call == "send" || call == "recvfrom" || call == "sendto";
}

/// Vectored I/O: the third argument is iovcnt and the argument list
/// carries no byte count at all (the sizes live inside the iovec
/// dump), so `requested` stays unset.
bool is_vectored_io(std::string_view call) {
  return call == "readv" || call == "writev" || call == "preadv" || call == "pwritev" ||
         call == "preadv2" || call == "pwritev2";
}

/// Extracts the requested byte count: third argument for read/write
/// family calls (fd, buf, count[, offset]), otherwise the last numeric
/// argument if any.
void extract_requested(RawRecord& rec, const std::vector<std::string_view>& args) {
  if (is_vectored_io(rec.call)) return;
  if (third_arg_is_count(rec.call) && args.size() >= 3) {
    if (const auto v = parse_i64(args[2])) {
      rec.requested = *v;
      return;
    }
  }
  for (auto it = args.rbegin(); it != args.rend(); ++it) {
    if (const auto v = parse_i64(*it)) {
      rec.requested = *v;
      return;
    }
  }
}

/// Parses the " = ret [ERRNO (msg)] [<dur>]" suffix beginning at the
/// first character after the closing parenthesis.
void parse_result_suffix(RawRecord& rec, std::string_view suffix) {
  std::string_view s = trim(suffix);
  if (s.empty()) return;
  if (!s.starts_with('=')) throw ParseError("expected '=' after ')': " + std::string(suffix));
  s = trim(s.substr(1));

  // Duration "<0.000203>" is always the trailing token when present.
  if (s.ends_with('>')) {
    const auto lt = s.rfind('<');
    if (lt != std::string_view::npos) {
      const auto dur_text = s.substr(lt + 1, s.size() - lt - 2);
      if (const auto d = parse_seconds(dur_text)) {
        rec.duration = *d;
        s = trim(s.substr(0, lt));
      }
    }
  }

  if (s.empty() || s == "?") return;  // "?" := call did not return

  // Return token: integer, hex pointer, or fd-with-path annotation.
  std::size_t tok_end = 0;
  while (tok_end < s.size() && !is_ascii_ws(s[tok_end])) ++tok_end;
  const std::string_view ret_tok = s.substr(0, tok_end);
  if (const auto fp = parse_fd_annotation(ret_tok)) {
    rec.retval = fp->fd;
    // An annotated return path (openat) resolves the accessed file.
    if (rec.path.empty()) rec.path = fp->path;
  } else if (const auto v = parse_i64(ret_tok)) {
    rec.retval = *v;
  } else if (ret_tok.starts_with("0x")) {
    rec.retval = std::nullopt;  // pointer return (mmap etc.); not a size
  }

  // Errno name follows a negative return: "-1 ENOENT (No such file...)".
  if (rec.retval && *rec.retval < 0) {
    const std::string_view rest = trim(s.substr(tok_end));
    std::size_t name_end = 0;
    while (name_end < rest.size() && !is_ascii_ws(rest[name_end])) ++name_end;
    const std::string_view name = rest.substr(0, name_end);
    if (!name.empty() && name.front() == 'E') rec.errno_name = name;
  }
}

}  // namespace

std::optional<RawRecord> parse_line(std::string_view line, StringArena& arena) {
  std::string_view s = trim(line);
  if (s.empty()) return std::nullopt;

  RawRecord rec;

  // PID
  std::size_t i = 0;
  while (i < s.size() && is_ascii_digit(s[i])) ++i;
  if (i == 0) throw ParseError("missing pid: " + std::string(line));
  rec.pid = *parse_u64(s.substr(0, i));
  s = trim(s.substr(i));

  // Timestamp
  std::size_t ts_end = 0;
  while (ts_end < s.size() && !is_ascii_ws(s[ts_end])) ++ts_end;
  const auto ts = parse_time_of_day(s.substr(0, ts_end));
  if (!ts) throw ParseError("missing -tt timestamp: " + std::string(line));
  rec.timestamp = *ts;
  s = trim(s.substr(ts_end));

  // Signal / exit records.
  if (s.starts_with("---")) {
    rec.kind = RecordKind::Signal;
    rec.args = trim(s.substr(3, s.size() > 6 ? s.size() - 6 : 0));
    std::size_t name_end = 0;
    while (name_end < rec.args.size() && !is_ascii_ws(rec.args[name_end])) ++name_end;
    rec.call = rec.args.substr(0, name_end);
    return rec;
  }
  if (s.starts_with("+++")) {
    rec.kind = RecordKind::Exit;
    rec.args = trim(s.substr(3, s.size() > 6 ? s.size() - 6 : 0));
    rec.call = "exit";
    return rec;
  }

  // Resumed record: "<... call resumed> rest) = ret <dur>".
  if (s.starts_with(kResumedOpen)) {
    const auto close = s.find(kResumedClose);
    if (close == std::string_view::npos) throw ParseError("bad resumed record: " + std::string(line));
    rec.kind = RecordKind::Resumed;
    rec.call = trim(s.substr(kResumedOpen.size(), close - kResumedOpen.size()));
    std::string_view rest = s.substr(close + kResumedClose.size());
    // rest = "args) = ret <dur>"; find the top-level ')' scanning with
    // quote awareness (there is no opening paren on this line).
    std::size_t j = 0;
    int depth = 0;
    std::optional<std::size_t> close_paren;
    while (j < rest.size()) {
      const char c = rest[j];
      if (c == '"') {
        const auto nxt = skip_quoted(rest, j);
        if (!nxt) break;
        j = *nxt;
        continue;
      }
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        if (depth == 0 && c == ')') {
          close_paren = j;
          break;
        }
        --depth;
      }
      ++j;
    }
    if (!close_paren) throw ParseError("resumed record without ')': " + std::string(line));
    rec.args = trim(rest.substr(0, *close_paren));
    parse_result_suffix(rec, rest.substr(*close_paren + 1));
    return rec;
  }

  // Ordinary syscall record: "call(args...".
  std::size_t name_end = 0;
  while (name_end < s.size() && is_syscall_name_char(s[name_end])) ++name_end;
  if (name_end == 0 || name_end >= s.size() || s[name_end] != '(') {
    throw ParseError("expected 'call(' : " + std::string(line));
  }
  rec.call = s.substr(0, name_end);

  auto& argv = scratch_argv();

  if (s.ends_with(kUnfinished)) {
    rec.kind = RecordKind::Unfinished;
    std::string_view args = s.substr(name_end + 1, s.size() - name_end - 1 - kUnfinished.size());
    rec.args = trim(args);
    // Strip a trailing comma left before "<unfinished ...>".
    if (!rec.args.empty() && rec.args.back() == ',') {
      rec.args.remove_suffix(1);
      rec.args = trim(rec.args);
    }
    split_args_into(rec.args, argv);
    extract_path(rec, argv, arena);
    return rec;
  }

  const auto close = find_matching_paren(s, name_end);
  if (!close) throw ParseError("unbalanced parentheses: " + std::string(line));
  rec.kind = RecordKind::Complete;
  rec.args = s.substr(name_end + 1, *close - name_end - 1);
  parse_result_suffix(rec, s.substr(*close + 1));
  split_args_into(rec.args, argv);
  extract_path(rec, argv, arena);
  extract_requested(rec, argv);
  return rec;
}

std::optional<RawRecord> parse_line(std::string_view line) {
  return parse_line(line, thread_arena());
}

namespace detail {

RawRecord merge_resumed_pair(RawRecord unfinished, const RawRecord& resumed, StringArena& arena) {
  if (unfinished.call != resumed.call) {
    throw ParseError("resumed call '" + std::string(resumed.call) + "' does not match unfinished '" +
                     std::string(unfinished.call) + "' for pid " + std::to_string(resumed.pid));
  }
  RawRecord merged = std::move(unfinished);
  merged.kind = RecordKind::Complete;
  // Start timestamp stays from the unfinished part; duration and
  // return value are only known at resume time (paper, Sec. III).
  if (!merged.args.empty() && !resumed.args.empty()) {
    merged.args = arena.concat({merged.args, ", ", resumed.args});
  } else if (!resumed.args.empty()) {
    merged.args = resumed.args;
  }
  merged.retval = resumed.retval;
  merged.errno_name = resumed.errno_name;
  merged.duration = resumed.duration;
  // Re-extract path/requested in place from the merged argument list:
  // one split, no probe record copies.
  auto& argv = scratch_argv();
  split_args_into(merged.args, argv);
  if (merged.path.empty()) extract_path(merged, argv, arena);
  extract_requested(merged, argv);
  return merged;
}

}  // namespace detail

std::optional<RawRecord> ResumeMerger::feed(RawRecord rec) {
  switch (rec.kind) {
    case RecordKind::Complete:
    case RecordKind::Signal:
    case RecordKind::Exit:
      return rec;
    case RecordKind::Unfinished: {
      pending_[rec.pid] = std::move(rec);
      return std::nullopt;
    }
    case RecordKind::Resumed: {
      const auto it = pending_.find(rec.pid);
      if (it == pending_.end()) {
        throw ParseError("resumed record for pid " + std::to_string(rec.pid) +
                         " without matching unfinished record");
      }
      RawRecord pending = std::move(it->second);
      pending_.erase(it);
      return detail::merge_resumed_pair(std::move(pending), rec, *arena_);
    }
  }
  return std::nullopt;
}

std::vector<RawRecord> ResumeMerger::take_pending() {
  std::vector<RawRecord> out;
  out.reserve(pending_.size());
  for (auto& [pid, rec] : pending_) out.push_back(std::move(rec));
  pending_.clear();
  std::sort(out.begin(), out.end(),
            [](const RawRecord& a, const RawRecord& b) { return a.pid < b.pid; });
  return out;
}

}  // namespace st::strace
