// strace-format writer.
//
// Produces lines byte-compatible with `strace -f -tt -T -y` from
// RawRecords. The simulator uses this to materialize synthetic traces,
// which then flow through the *same parser* as real strace output —
// guaranteeing the analysis pipeline is exercised end to end.
#pragma once

#include <string>
#include <vector>

#include "strace/record.hpp"

namespace st::strace {

struct WriteOptions {
  /// Payload placeholder: strace abbreviates long buffers as "..."; we
  /// write a short literal followed by "..." the same way.
  bool abbreviate_payload = true;
};

/// Formats a Complete record as one strace line (no trailing newline).
/// Unfinished/Resumed records format as their respective line shapes.
[[nodiscard]] std::string format_record(const RawRecord& rec, const WriteOptions& opts = {});

/// Convenience: renders a full trace text from a record sequence.
[[nodiscard]] std::string format_trace(const std::vector<RawRecord>& records,
                                       const WriteOptions& opts = {});

/// Renders records from multiple pids the way `strace -f` does when
/// calls overlap in time (Fig. 2c): a call during which another event
/// from a different pid occurs is split into an "<unfinished ...>"
/// line at its start timestamp and a "<... call resumed>" line at its
/// return; return value and duration appear only on the resumed line.
/// Non-overlapping records render as ordinary complete lines. The
/// output parses back (through ResumeMerger) to the input records.
[[nodiscard]] std::string format_trace_interleaved(std::vector<RawRecord> records,
                                                   const WriteOptions& opts = {});

}  // namespace st::strace
