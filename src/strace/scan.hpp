// Low-level scanning helpers for strace's argument syntax.
//
// strace argument lists contain C string literals with escapes
// ("a\n\"b\331"...), nested braces/brackets (struct and array dumps)
// and the -y fd annotations "3</path/to/file>". These helpers let the
// record parser find structural positions without fully interpreting
// the argument values. Everything is zero-copy: results view into the
// input except decode_c_string, which interns into a StringArena only
// when the literal actually contains escapes.
//
// The scanners run on the vectorized kernels of strace/scan_kernels.hpp
// (SWAR/SSE2/NEON word scans instead of a branch per byte); the
// original byte loops are kept as *_scalar reference implementations,
// and the differential fuzz test (test_scan_kernels) asserts the
// kernel-backed versions are byte-identical to them on adversarial
// inputs under every kernel mode.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "strace/arena.hpp"

namespace st::strace {

/// Given `s[open_paren] == '('`, returns the index of the matching ')'
/// honoring quoted strings and nested (), [], {}. nullopt if unbalanced.
[[nodiscard]] std::optional<std::size_t> find_matching_paren(std::string_view s,
                                                             std::size_t open_paren);

/// Given `s[start] == '"'`, returns the index one past the closing
/// quote, honoring backslash escapes. nullopt if unterminated.
[[nodiscard]] std::optional<std::size_t> skip_quoted(std::string_view s, std::size_t start);

/// Splits a raw argument string on top-level commas (commas inside
/// quotes/braces/brackets/parens do not split). Fields are trimmed.
/// Appends into `out` (cleared first) so the parse loop can reuse one
/// vector across lines instead of allocating per record.
void split_args_into(std::string_view args, std::vector<std::string_view>& out);

/// Convenience wrapper allocating a fresh vector.
[[nodiscard]] std::vector<std::string_view> split_args(std::string_view args);

/// Decodes a C-style string literal body (no surrounding quotes):
/// handles \n \t \r \0 \\ \" \xHH and octal \NNN escapes.
[[nodiscard]] std::string decode_c_string(std::string_view body);

/// Zero-copy variant: returns `body` unchanged when it contains no
/// backslash (the overwhelmingly common case for paths), otherwise
/// decodes into `arena` and returns the interned view.
[[nodiscard]] std::string_view decode_c_string(std::string_view body, StringArena& arena);

/// Parses an fd-with-path annotation "3</usr/lib/libc.so.6>"
/// or "4<socket:[12345]>". Returns (fd, path-inside-angle-brackets);
/// the path views into `token`.
struct FdPath {
  int fd = -1;
  std::string_view path;
};
[[nodiscard]] std::optional<FdPath> parse_fd_annotation(std::string_view token);

// -- scalar reference implementations ------------------------------------
// The pre-kernel byte-at-a-time loops, kept verbatim as the behavioural
// reference the kernel-backed scanners above are differentially tested
// against. Not for production call sites.

[[nodiscard]] std::optional<std::size_t> skip_quoted_scalar(std::string_view s,
                                                            std::size_t start);
[[nodiscard]] std::optional<std::size_t> find_matching_paren_scalar(std::string_view s,
                                                                    std::size_t open_paren);
void split_args_into_scalar(std::string_view args, std::vector<std::string_view>& out);

}  // namespace st::strace
