// Owned trace bytes + the arenas parsed records view into.
//
// The zero-copy ingestion contract: a RawRecord produced by the reader
// holds std::string_view fields that point either into this buffer's
// text (the common case) or into one of its arenas (synthesized
// strings). Records are therefore valid exactly as long as the
// TraceBuffer that produced them is alive; ReadResult carries the
// buffer as a shared_ptr so the contract is upheld by construction.
//
// Concurrency: parsing a buffer MUTATES it (interning into arena(),
// adopt()). At most one read_trace_* call may run on a given buffer
// at a time — read_trace_parallel synchronizes its own workers, but
// two overlapping reads of the same buffer are a data race. Records
// and text() may be read freely once parsing has returned.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <string_view>

#include "strace/arena.hpp"

namespace st::strace {

class TraceBuffer {
 public:
  TraceBuffer() = default;
  explicit TraceBuffer(std::string text) : text_(std::move(text)) {}

  /// Reads the whole file with a single read() into the buffer.
  /// Throws IoError if the file cannot be opened.
  [[nodiscard]] static std::shared_ptr<TraceBuffer> from_file(const std::string& path);

  [[nodiscard]] std::string_view text() const { return text_; }

  /// Default arena for sequential parsing.
  [[nodiscard]] StringArena& arena() { return arenas_.front(); }

  /// Takes ownership of a per-chunk arena from the parallel reader so
  /// views into it live as long as the buffer.
  void adopt(StringArena&& arena) { arenas_.push_back(std::move(arena)); }

 private:
  std::string text_;
  std::deque<StringArena> arenas_ = std::deque<StringArena>(1);
};

}  // namespace st::strace
