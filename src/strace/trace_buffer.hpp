// Owned trace bytes + the arenas parsed records view into.
//
// The zero-copy ingestion contract: a RawRecord produced by the reader
// holds std::string_view fields that point either into this buffer's
// text (the common case) or into one of its arenas (synthesized
// strings). Records are therefore valid exactly as long as the
// TraceBuffer that produced them is alive; ReadResult carries the
// buffer as a shared_ptr so the contract is upheld by construction.
//
// Storage is either an owned std::string (from_file, text
// construction) or a read-only mmap of the trace file (from_file_mmap)
// — callers only ever see text() as a string_view, so the two are
// interchangeable and produce byte-identical parses. The buffer is
// neither copyable nor movable (views into text_ would dangle under
// SSO moves); it always lives behind the shared_ptr its factories
// return.
//
// Concurrency: parsing a buffer MUTATES it (interning into arena(),
// adopt()). At most one read_trace_* call may run on a given buffer
// at a time — read_trace_parallel synchronizes its own workers, but
// two overlapping reads of the same buffer are a data race. Records
// and text() may be read freely once parsing has returned.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <string_view>

#include "strace/arena.hpp"

namespace st::strace {

class TraceBuffer {
 public:
  TraceBuffer() = default;
  explicit TraceBuffer(std::string text) : text_(std::move(text)), view_(text_) {}

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  ~TraceBuffer();

  /// Reads the whole file with a single read() into the buffer.
  /// Throws IoError if the file cannot be opened.
  [[nodiscard]] static std::shared_ptr<TraceBuffer> from_file(const std::string& path);

  /// Maps the file read-only instead of copying it, so multi-GB traces
  /// never double-buffer (page cache + heap). Falls back to from_file
  /// on platforms without mmap, for empty files, and when the mapping
  /// fails — the returned buffer is indistinguishable to callers.
  [[nodiscard]] static std::shared_ptr<TraceBuffer> from_file_mmap(const std::string& path);

  [[nodiscard]] std::string_view text() const { return view_; }

  /// True when the bytes are a file mapping rather than heap storage
  /// (diagnostics; parsing behaves identically either way).
  [[nodiscard]] bool is_mapped() const { return map_ != nullptr; }

  /// Default arena for sequential parsing.
  [[nodiscard]] StringArena& arena() { return arenas_.front(); }

  /// Takes ownership of a per-chunk arena from the parallel reader so
  /// views into it live as long as the buffer.
  void adopt(StringArena&& arena) { arenas_.push_back(std::move(arena)); }

 private:
  std::string text_;
  void* map_ = nullptr;        ///< mmap base when file-backed
  std::size_t map_size_ = 0;   ///< mapped length
  std::string_view view_;      ///< the trace bytes, wherever they live
  std::deque<StringArena> arenas_ = std::deque<StringArena>(1);
};

}  // namespace st::strace
