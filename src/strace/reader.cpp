#include "strace/reader.hpp"

#include <fstream>
#include <sstream>

#include "strace/parser.hpp"
#include "support/errors.hpp"
#include "support/strings.hpp"

namespace st::strace {

ReadResult read_trace_text(std::string_view text, const ReadOptions& opts) {
  ReadResult result;
  ResumeMerger merger;
  std::size_t lineno = 0;
  for (std::string_view line : split(text, '\n')) {
    ++lineno;
    if (trim(line).empty()) continue;
    std::optional<RawRecord> rec;
    try {
      rec = parse_line(line);
    } catch (const ParseError& e) {
      if (opts.strict) throw;
      result.warnings.push_back("line " + std::to_string(lineno) + ": " + e.what());
      continue;
    }
    if (!rec) continue;
    std::optional<RawRecord> complete;
    try {
      complete = merger.feed(std::move(*rec));
    } catch (const ParseError& e) {
      if (opts.strict) throw;
      result.warnings.push_back("line " + std::to_string(lineno) + ": " + e.what());
      continue;
    }
    if (!complete) continue;
    if (opts.drop_signals && complete->kind == RecordKind::Signal) continue;
    if (opts.drop_exits && complete->kind == RecordKind::Exit) continue;
    if (opts.drop_restarts && complete->is_restart()) continue;
    result.records.push_back(std::move(*complete));
  }
  for (auto& pending : merger.take_pending()) {
    result.warnings.push_back("unfinished call never resumed: pid " +
                              std::to_string(pending.pid) + " " + pending.call);
  }
  return result;
}

ReadResult read_trace_file(const std::string& path, const ReadOptions& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open trace file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return read_trace_text(buf.str(), opts);
}

}  // namespace st::strace
