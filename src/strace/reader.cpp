#include "strace/reader.hpp"

#include <algorithm>

#include "strace/parser.hpp"
#include "strace/scan_kernels.hpp"
#include "support/errors.hpp"
#include "support/strings.hpp"

namespace st::strace {

ReadResult read_trace_buffer(std::shared_ptr<TraceBuffer> buffer, const ReadOptions& opts) {
  ReadResult result;
  result.buffer = std::move(buffer);
  const std::string_view text = result.buffer->text();
  StringArena& arena = result.buffer->arena();
  result.records.reserve(
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')) + 1);

  ResumeMerger merger(arena);
  std::size_t lineno = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = kernels::find_byte(text, start, '\n');
    const std::size_t stop = nl == kernels::npos ? text.size() : nl;
    const std::string_view line = text.substr(start, stop - start);
    ++lineno;

    do {  // single-iteration scope so error paths can break to the next line
      if (trim(line).empty()) break;
      std::optional<RawRecord> rec;
      try {
        rec = parse_line(line, arena);
      } catch (const ParseError& e) {
        if (opts.strict) throw;
        result.warnings.push_back("line " + std::to_string(lineno) + ": " + e.what());
        break;
      }
      if (!rec) break;
      std::optional<RawRecord> complete;
      try {
        complete = merger.feed(std::move(*rec));
      } catch (const ParseError& e) {
        if (opts.strict) throw;
        result.warnings.push_back("line " + std::to_string(lineno) + ": " + e.what());
        break;
      }
      if (!complete) break;
      if (opts.drop_signals && complete->kind == RecordKind::Signal) break;
      if (opts.drop_exits && complete->kind == RecordKind::Exit) break;
      if (opts.drop_restarts && complete->is_restart()) break;
      result.records.push_back(*complete);
    } while (false);

    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }

  for (auto& pending : merger.take_pending()) {
    result.warnings.push_back("unfinished call never resumed: pid " +
                              std::to_string(pending.pid) + " " + std::string(pending.call));
  }
  return result;
}

ReadResult read_trace_text(std::string_view text, const ReadOptions& opts) {
  return read_trace_buffer(std::make_shared<TraceBuffer>(std::string(text)), opts);
}

ReadResult read_trace_file(const std::string& path, const ReadOptions& opts) {
  return read_trace_buffer(TraceBuffer::from_file_mmap(path), opts);
}

ReadResult read_trace_text_parallel(std::string_view text, const ParallelReadOptions& opts) {
  return read_trace_parallel(std::make_shared<TraceBuffer>(std::string(text)), opts);
}

ReadResult read_trace_file_parallel(const std::string& path, const ParallelReadOptions& opts) {
  return read_trace_parallel(TraceBuffer::from_file_mmap(path), opts);
}

}  // namespace st::strace
