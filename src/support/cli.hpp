// Minimal command-line flag parser for the example/bench executables.
//
// Supports "--name value", "--name=value" and boolean "--flag" forms
// plus positional arguments. Unknown flags raise ParseError so typos
// surface immediately instead of being silently ignored.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace st {

class CliParser {
 public:
  /// Declares a flag with an optional default. A flag declared with
  /// `boolean=true` takes no value.
  void add_flag(std::string name, std::string description, std::optional<std::string> default_value,
                bool boolean = false);

  /// Parses argv. Throws ParseError on unknown flags or missing values.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::string get(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] bool get_bool(std::string_view name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text assembled from the declared flags.
  [[nodiscard]] std::string usage(std::string_view program) const;

 private:
  struct Flag {
    std::string description;
    std::optional<std::string> value;
    bool boolean = false;
    bool is_set = false;
  };

  std::map<std::string, Flag, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace st
