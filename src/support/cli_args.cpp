#include "support/cli_args.hpp"

#include <algorithm>
#include <cstdint>

#include "support/errors.hpp"

namespace st::cliargs {

void add_threads_flag(CliParser& cli, const std::string& what) {
  cli.add_flag("threads", what + " threads (0 = hardware)", "0");
}

std::size_t thread_count(const CliParser& cli) {
  return static_cast<std::size_t>(std::max<std::int64_t>(0, cli.get_int("threads")));
}

void add_keep_going_flag(CliParser& cli, const std::string& quarantines) {
  cli.add_flag("keep-going",
               "quarantine " + quarantines + " with a warning instead of aborting "
               "(default: fail fast)",
               std::nullopt, true);
}

RunPolicy run_policy(const CliParser& cli) {
  return RunPolicy{cli.get_bool("keep-going")};
}

void add_map_flag(CliParser& cli, const std::string& what, const std::string& default_name) {
  cli.add_flag("map", what + ": top1|top2|last1|last2|call|site|site1", default_name);
}

model::Mapping mapping(const CliParser& cli) {
  return model::mapping_by_name(cli.get("map"));
}

void add_format_flags(CliParser& cli) {
  cli.add_flag("v1", "write the legacy STELOG1 chunk-stream format", std::nullopt, true);
  cli.add_flag("v2", "write the columnar mmap-able STELOG2 format (the default)", std::nullopt,
               true);
}

bool write_v1(const CliParser& cli) {
  if (cli.has("v1") && cli.has("v2")) throw ParseError("--v1 and --v2 are exclusive");
  return cli.has("v1");
}

void add_shards_flag(CliParser& cli, const std::string& what, const std::string& default_count) {
  cli.add_flag("shards", what, default_count);
}

std::size_t shard_count(const CliParser& cli) {
  return static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("shards")));
}

void add_stream_report_flag(CliParser& cli, const std::string& help, bool takes_path) {
  cli.add_flag("stream-report", help, std::nullopt, !takes_path);
}

}  // namespace st::cliargs
