#include "support/timeparse.hpp"

#include <array>
#include <cstdio>

#include "support/strings.hpp"

namespace st {

namespace {

// Parses exactly `width` decimal digits from s starting at pos.
std::optional<std::int64_t> fixed_digits(std::string_view s, std::size_t pos, std::size_t width) {
  if (pos + width > s.size()) return std::nullopt;
  std::int64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const char c = s[pos + i];
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + (c - '0');
  }
  return v;
}

}  // namespace

std::optional<Micros> parse_time_of_day(std::string_view s) {
  // HH:MM:SS[.ffffff]
  const auto hh = fixed_digits(s, 0, 2);
  const auto mm = fixed_digits(s, 3, 2);
  const auto ss = fixed_digits(s, 6, 2);
  if (!hh || !mm || !ss) return std::nullopt;
  if (s.size() < 8 || s[2] != ':' || s[5] != ':') return std::nullopt;
  if (*hh > 23 || *mm > 59 || *ss > 60) return std::nullopt;  // 60: leap second
  Micros frac = 0;
  if (s.size() > 8) {
    if (s[8] != '.') return std::nullopt;
    std::string_view digits = s.substr(9);
    if (digits.empty() || digits.size() > 6) return std::nullopt;
    std::int64_t v = 0;
    for (char c : digits) {
      if (c < '0' || c > '9') return std::nullopt;
      v = v * 10 + (c - '0');
    }
    for (std::size_t i = digits.size(); i < 6; ++i) v *= 10;
    frac = v;
  }
  return ((*hh * 3600 + *mm * 60 + *ss) * kMicrosPerSecond) + frac;
}

std::string format_time_of_day(Micros t) {
  if (t < 0) t = 0;
  t %= kMicrosPerDay;
  const auto secs = t / kMicrosPerSecond;
  const auto frac = t % kMicrosPerSecond;
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%02lld:%02lld:%02lld.%06lld",
                static_cast<long long>(secs / 3600), static_cast<long long>((secs / 60) % 60),
                static_cast<long long>(secs % 60), static_cast<long long>(frac));
  return std::string(buf.data());
}

std::optional<Micros> parse_seconds(std::string_view s) {
  const std::size_t dot = s.find('.');
  std::string_view whole = (dot == std::string_view::npos) ? s : s.substr(0, dot);
  std::string_view frac = (dot == std::string_view::npos) ? std::string_view{} : s.substr(dot + 1);
  if (whole.empty() && frac.empty()) return std::nullopt;
  std::int64_t w = 0;
  if (!whole.empty()) {
    const auto parsed = parse_i64(whole);
    if (!parsed || *parsed < 0) return std::nullopt;
    w = *parsed;
  }
  std::int64_t f = 0;
  if (!frac.empty()) {
    if (frac.size() > 9) frac = frac.substr(0, 9);  // sub-nanosecond digits: truncate
    std::int64_t v = 0;
    for (char c : frac) {
      if (c < '0' || c > '9') return std::nullopt;
      v = v * 10 + (c - '0');
    }
    // Scale to microseconds, rounding at the 7th digit.
    if (frac.size() <= 6) {
      for (std::size_t i = frac.size(); i < 6; ++i) v *= 10;
      f = v;
    } else {
      std::int64_t div = 1;
      for (std::size_t i = 6; i < frac.size(); ++i) div *= 10;
      f = (v + div / 2) / div;
    }
  }
  return w * kMicrosPerSecond + f;
}

std::string format_seconds(Micros d) {
  if (d < 0) d = 0;
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%lld.%06lld", static_cast<long long>(d / kMicrosPerSecond),
                static_cast<long long>(d % kMicrosPerSecond));
  return std::string(buf.data());
}

}  // namespace st
