// Human-readable quantity formatting matching the paper's figures.
//
// The paper prints byte totals as "14.98 KB" / "9.66 GB" (decimal SI,
// 1 KB = 1000 B — verified against Fig. 3 where 6 reads x 832 B + ... =
// 14976 B is shown as 14.98 KB) and data rates as "10.15 MB/s". Load is
// a bare ratio with two decimals ("0.22").
#pragma once

#include <cstdint>
#include <string>

namespace st {

/// "832 B", "14.98 KB", "9.66 GB" — two decimals above bytes.
[[nodiscard]] std::string format_bytes(double bytes);

/// "10.15 MB/s" — always MB/s with two decimals, as in the figures.
[[nodiscard]] std::string format_rate_mbps(double bytes_per_second);

/// Ratio with two decimals: format_ratio(0.21843) == "0.22".
[[nodiscard]] std::string format_ratio(double r);

/// Fixed-decimal double without trailing-zero trimming.
[[nodiscard]] std::string format_fixed(double v, int decimals);

}  // namespace st
