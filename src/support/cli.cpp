#include "support/cli.hpp"

#include "support/errors.hpp"
#include "support/strings.hpp"

namespace st {

void CliParser::add_flag(std::string name, std::string description,
                         std::optional<std::string> default_value, bool boolean) {
  Flag f;
  f.description = std::move(description);
  f.value = std::move(default_value);
  f.boolean = boolean;
  flags_.emplace(std::move(name), std::move(f));
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      inline_value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) throw ParseError("unknown flag --" + name);
    Flag& f = it->second;
    f.is_set = true;
    if (f.boolean) {
      if (inline_value) throw ParseError("flag --" + name + " takes no value");
      f.value = "true";
    } else if (inline_value) {
      f.value = std::move(*inline_value);
    } else {
      if (i + 1 >= argc) throw ParseError("flag --" + name + " requires a value");
      f.value = argv[++i];
    }
  }
}

bool CliParser::has(std::string_view name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.is_set;
}

std::string CliParser::get(std::string_view name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) throw LogicError("flag not declared: " + std::string(name));
  if (!it->second.value) throw ParseError("flag --" + std::string(name) + " was not provided");
  return *it->second.value;
}

std::int64_t CliParser::get_int(std::string_view name) const {
  const auto v = parse_i64(get(name));
  if (!v) throw ParseError("flag --" + std::string(name) + " is not an integer");
  return *v;
}

double CliParser::get_double(std::string_view name) const {
  const auto v = parse_f64(get(name));
  if (!v) throw ParseError("flag --" + std::string(name) + " is not a number");
  return *v;
}

bool CliParser::get_bool(std::string_view name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) throw LogicError("flag not declared: " + std::string(name));
  return it->second.value.value_or("false") == "true";
}

std::string CliParser::usage(std::string_view program) const {
  std::string out = "usage: " + std::string(program) + " [flags]\n";
  for (const auto& [name, f] : flags_) {
    out += "  --" + name;
    if (!f.boolean) out += " <value>";
    out += "  " + f.description;
    if (f.value && !f.boolean) out += " (default: " + *f.value + ")";
    out += "\n";
  }
  return out;
}

}  // namespace st
