// Deterministic fault injection — the robustness layer's probe points.
//
// Every error path the pipeline promises to survive (ISSUE 8) is
// reachable on demand through a named FAULT_POINT site compiled into
// the code it exercises:
//
//   reader.open       TraceBuffer file open (mmap and read paths)
//   reader.chunk      one chunk's parse task
//   queue.push        the parse -> convert StageQueue hand-off
//   pipeline.convert  a file's record -> Case conversion task
//   sink.fold         the per-case sink folds on the pool thread
//   sink.merge        the input-order sink merge phase (fires before
//                     the first merge, so "a failing run merges
//                     nothing" stays true under injection)
//   codec.decode      decode_shard_partial (data site: the blob)
//   elog.open         MappedElog::from_buffer
//   elog.crc          one elog v2 section CRC validation
//   elog.index        MappedElog::index_view — the indexed query
//                     planner's first touch of the index sections
//   shard.spawn       one fold-shard subprocess spawn attempt
//   shard.blob_read   reading a shard's partial blob (data site)
//   shard.child       elog_tool's fold-shard verb (subprocess only;
//                     shard.child#<i> targets one coordinator-assigned
//                     shard index)
//
// A site is armed via the environment —
//
//   ST_FAULTS=site=kind[:nth][,site=kind[:nth]...]
//
// parsed once at process start (so posix_spawn'd children inherit the
// injection), or programmatically (arm / ScopedFault) for in-process
// tests. Kinds:
//
//   error       throw FaultInjected (an IoError — the documented typed
//               error of every instrumented layer)
//   exit        _exit(70): a crashing process, nothing unwound
//   hang_ms<N>  sleep N ms (default 200) and continue — trips
//               supervision deadlines without wedging the test suite
//   truncate    data sites: drop the second half of the bytes
//   bitflip     data sites: flip one bit in the middle byte
//
// `nth` fires the fault on exactly the nth hit of the site (1-based;
// default 1 — one-shot, so a retry of the same step heals). `:0` fires
// on every hit (persistent faults; retries do NOT heal, only the
// in-process fallback does). truncate/bitflip at a control-only site
// degrade to `error`.
//
// Cost: one relaxed atomic load per site when nothing is armed, and
// nothing at all under -DST_DISABLE_FAULT_POINTS=ON (the macros
// compile out; bench/run_bench.sh records the delta as
// faultpoint_disabled_overhead).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/errors.hpp"

namespace st::fault {

enum class Kind { kError, kExit, kHang, kTruncate, kBitflip };

struct Spec {
  Kind kind = Kind::kError;
  std::uint64_t nth = 1;       ///< 1-based hit that fires; 0 = every hit
  std::uint32_t hang_ms = 200; ///< sleep for Kind::kHang
};

/// What an `error` injection throws: an IoError, so every instrumented
/// layer's documented error contract covers injected faults too.
class FaultInjected : public IoError {
 public:
  explicit FaultInjected(std::string_view site)
      : IoError("fault injected at " + std::string(site)) {}
};

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// The disabled fast path: one relaxed load. False whenever no site is
/// armed (the overwhelmingly common case).
[[nodiscard]] inline bool armed() noexcept {
#ifdef ST_NO_FAULT_POINTS
  return false;
#else
  return detail::g_armed.load(std::memory_order_relaxed);
#endif
}

/// Parses one spec string: "error", "exit", "hang_ms250", "bitflip:0",
/// "error:3"... Throws ParseError on anything else.
[[nodiscard]] Spec parse_spec(std::string_view text);

/// Arms `site` (replacing any previous spec and resetting its hit
/// counter).
void arm(std::string site, Spec spec);

/// Disarms one site; returns whether it was armed.
bool disarm(std::string_view site);

/// Disarms everything (tests).
void disarm_all();

/// Parses an ST_FAULTS-grammar config and arms every entry. Throws
/// ParseError on malformed input. Called automatically at process
/// start with the ST_FAULTS environment variable (malformed env prints
/// a warning to stderr instead of throwing — a typo must not turn the
/// injection harness itself into the fault).
void load_env(std::string_view config);

[[nodiscard]] std::vector<std::string> armed_sites();

/// Times `site` was hit since it was armed (tests/observability).
[[nodiscard]] std::uint64_t hits(std::string_view site);

// -- slow paths (called only when armed()) -------------------------------

/// Control site: throws / exits / sleeps per the armed spec, no-op when
/// `site` is not armed or this hit is not the nth.
void point(std::string_view site);

/// Data site: additionally supports truncate/bitflip by mutating
/// `bytes` in place.
void point_data(std::string_view site, std::string& bytes);

/// Data site over an immutable view: when the site fires a data kind
/// the corrupted copy lands in `scratch` and the returned view aliases
/// it; otherwise `data` comes back untouched (zero copies).
[[nodiscard]] std::string_view corrupt_view(std::string_view site, std::string_view data,
                                            std::string& scratch);

/// RAII arm/disarm for tests.
class ScopedFault {
 public:
  ScopedFault(std::string site, Spec spec) : site_(std::move(site)) { arm(site_, spec); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
  ~ScopedFault() { disarm(site_); }

 private:
  std::string site_;
};

}  // namespace st::fault

#ifdef ST_NO_FAULT_POINTS
#define FAULT_POINT(site) ((void)0)
#define FAULT_POINT_DATA(site, bytes) ((void)0)
#else
#define FAULT_POINT(site) \
  (::st::fault::armed() ? ::st::fault::point(site) : (void)0)
#define FAULT_POINT_DATA(site, bytes) \
  (::st::fault::armed() ? ::st::fault::point_data((site), (bytes)) : (void)0)
#endif
