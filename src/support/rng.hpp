// Deterministic pseudo-random number generation for the simulator.
//
// The simulator must be bit-reproducible across platforms and standard
// library versions, so we implement the generators ourselves instead of
// relying on std::mt19937 + std::*_distribution (whose outputs are not
// specified identically across vendors for all distributions).
//
// SplitMix64 is used for seeding; xoshiro256** is the workhorse
// generator (Blackman & Vigna, 2018). Both are public-domain algorithms
// re-implemented here from the reference description.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace st {

/// SplitMix64: fast 64-bit mixer used to expand one seed into many.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose 64-bit PRNG with 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    while (true) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() {
    // u1 in (0,1] to avoid log(0).
    const double u1 = 1.0 - uniform01();
    const double u2 = uniform01();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Log-normal with the given median and sigma of the underlying normal.
  /// Used for syscall service-time jitter: latencies are right-skewed.
  double lognormal(double median, double sigma) { return median * std::exp(sigma * normal()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace st
