#include "support/faultpoint.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

namespace st::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

struct SiteState {
  Spec spec;
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, SiteState, std::less<>> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Consumes one hit of `site` under the registry lock; returns the spec
/// iff this hit fires.
std::optional<Spec> consume_hit(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.sites.find(site);
  if (it == r.sites.end()) return std::nullopt;
  SiteState& s = it->second;
  ++s.hits;
  if (s.spec.nth != 0 && s.hits != s.spec.nth) return std::nullopt;
  return s.spec;
}

/// Applies a control-kind spec. Data kinds degrade to kError here —
/// a control site has no bytes to corrupt, but the armed intent was
/// "make this step fail", which kError honors.
[[noreturn]] void fail(std::string_view site) { throw FaultInjected(site); }

void apply_control(std::string_view site, const Spec& spec) {
  switch (spec.kind) {
    case Kind::kExit:
      std::fflush(nullptr);
      std::_Exit(70);
    case Kind::kHang:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.hang_ms));
      return;
    case Kind::kError:
    case Kind::kTruncate:
    case Kind::kBitflip:
      fail(site);
  }
}

}  // namespace

Spec parse_spec(std::string_view text) {
  Spec spec;
  std::string_view kind = text;
  if (const auto colon = text.find(':'); colon != std::string_view::npos) {
    kind = text.substr(0, colon);
    const std::string_view nth = text.substr(colon + 1);
    if (nth.empty()) throw ParseError("fault spec: empty nth in '" + std::string(text) + "'");
    std::uint64_t value = 0;
    for (const char c : nth) {
      if (c < '0' || c > '9') {
        throw ParseError("fault spec: bad nth in '" + std::string(text) + "'");
      }
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    spec.nth = value;
  }
  if (kind == "error") {
    spec.kind = Kind::kError;
  } else if (kind == "exit") {
    spec.kind = Kind::kExit;
  } else if (kind == "truncate") {
    spec.kind = Kind::kTruncate;
  } else if (kind == "bitflip") {
    spec.kind = Kind::kBitflip;
  } else if (kind.substr(0, 7) == "hang_ms") {
    spec.kind = Kind::kHang;
    const std::string_view ms = kind.substr(7);
    if (!ms.empty()) {
      std::uint64_t value = 0;
      for (const char c : ms) {
        if (c < '0' || c > '9') {
          throw ParseError("fault spec: bad hang_ms in '" + std::string(text) + "'");
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
      }
      spec.hang_ms = static_cast<std::uint32_t>(value);
    }
  } else {
    throw ParseError("fault spec: unknown kind '" + std::string(kind) + "'");
  }
  return spec;
}

void arm(std::string site, Spec spec) {
  if (site.empty()) throw ParseError("fault spec: empty site name");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.sites[std::move(site)] = SiteState{spec, 0};
  detail::g_armed.store(true, std::memory_order_relaxed);
}

bool disarm(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  r.sites.erase(it);
  if (r.sites.empty()) detail::g_armed.store(false, std::memory_order_relaxed);
  return true;
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.sites.clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

void load_env(std::string_view config) {
  std::size_t start = 0;
  while (start <= config.size()) {
    std::size_t end = config.find(',', start);
    if (end == std::string_view::npos) end = config.size();
    const std::string_view entry = config.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw ParseError("fault spec: expected site=kind[:nth], got '" + std::string(entry) +
                       "'");
    }
    arm(std::string(entry.substr(0, eq)), parse_spec(entry.substr(eq + 1)));
  }
}

std::vector<std::string> armed_sites() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> out;
  out.reserve(r.sites.size());
  for (const auto& [site, state] : r.sites) out.push_back(site);
  return out;
}

std::uint64_t hits(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

void point(std::string_view site) {
  const auto spec = consume_hit(site);
  if (spec) apply_control(site, *spec);
}

void point_data(std::string_view site, std::string& bytes) {
  const auto spec = consume_hit(site);
  if (!spec) return;
  switch (spec->kind) {
    case Kind::kTruncate:
      bytes.resize(bytes.size() / 2);
      return;
    case Kind::kBitflip:
      if (bytes.empty()) fail(site);  // nothing to flip still means "corrupt"
      bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
      return;
    default:
      apply_control(site, *spec);
      return;
  }
}

std::string_view corrupt_view(std::string_view site, std::string_view data,
                              std::string& scratch) {
  const auto spec = consume_hit(site);
  if (!spec) return data;
  switch (spec->kind) {
    case Kind::kTruncate:
    case Kind::kBitflip: {
      scratch.assign(data);
      // Replay the mutation through point_data's rules by hand (the hit
      // was already consumed above).
      if (spec->kind == Kind::kTruncate) {
        scratch.resize(scratch.size() / 2);
      } else if (scratch.empty()) {
        fail(site);
      } else {
        scratch[scratch.size() / 2] =
            static_cast<char>(scratch[scratch.size() / 2] ^ 0x20);
      }
      return scratch;
    }
    default:
      apply_control(site, *spec);
      return data;
  }
}

namespace {

/// ST_FAULTS is parsed once at static-init time so injection configured
/// in the environment reaches posix_spawn'd children with zero plumbing.
/// A malformed value warns instead of throwing: the injection harness
/// must never itself be the crash.
struct EnvLoader {
  EnvLoader() {
    const char* env = std::getenv("ST_FAULTS");
    if (env == nullptr || *env == '\0') return;
    try {
      load_env(env);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: ignoring malformed ST_FAULTS: %s\n", e.what());
    }
  }
};
const EnvLoader g_env_loader;

}  // namespace

}  // namespace st::fault
