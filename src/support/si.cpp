#include "support/si.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace st {

std::string format_fixed(double v, int decimals) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", decimals, v);
  return std::string(buf.data());
}

std::string format_bytes(double bytes) {
  // The paper renders every byte total at KB or above ("0.75 KB" for
  // 753 B in Fig. 3), decimal units (1 KB = 1000 B).
  static constexpr std::array<const char*, 4> kUnits = {"KB", "MB", "GB", "TB"};
  double v = bytes / 1000.0;
  std::size_t unit = 0;
  while (std::fabs(v) >= 1000.0 && unit + 1 < kUnits.size()) {
    v /= 1000.0;
    ++unit;
  }
  return format_fixed(v, 2) + " " + kUnits[unit];
}

std::string format_rate_mbps(double bytes_per_second) {
  return format_fixed(bytes_per_second / 1e6, 2) + " MB/s";
}

std::string format_ratio(double r) { return format_fixed(r, 2); }

}  // namespace st
