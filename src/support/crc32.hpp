// CRC-32 (ISO-HDLC / zlib polynomial 0xEDB88320), table-driven.
//
// Used by the elog container to checksum every chunk so that storage
// corruption is detected at read time instead of producing silently
// wrong analysis results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace st {

/// Incremental CRC-32. Start from 0, feed bytes, read `value()`.
class Crc32 {
 public:
  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  [[nodiscard]] std::uint32_t value() const { return ~state_; }

  /// One-shot convenience.
  [[nodiscard]] static std::uint32_t of(const void* data, std::size_t len) {
    Crc32 c;
    c.update(data, len);
    return c.value();
  }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace st
