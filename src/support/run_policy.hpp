// RunPolicy — the keep-going family of execution policy, in one place.
//
// Streaming ingest (pipeline::StreamOptions), elog v1 reads
// (elog::ElogReadOptions) and elog v2 reads (elog::V2ReadOptions) all
// offer the same decision: abort on the first data error, or quarantine
// the bad unit (line / file / section) and keep going. Before ISSUE 9
// each of the three option structs re-declared its own `keep_going`
// bool; now they inherit this struct, so code that threads policy
// through layers (the serve loop, the CLIs' --keep-going flag) sets it
// once and brace-inits any of the three with `{policy}`.
//
// ShardOptions carries its policy inside its embedded StreamOptions
// (`shard.stream.keep_going`) rather than inheriting a fourth copy —
// the shard runner's own recovery (retry / quarantine of whole shards)
// is supervision, not parse policy, and is configured separately.
#pragma once

namespace st {

struct RunPolicy {
  /// False: the first data error aborts the run with a typed error.
  /// True: quarantine the failing unit, record a warning, continue.
  bool keep_going = false;
};

}  // namespace st
