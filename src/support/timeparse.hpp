// Timestamp and duration handling.
//
// strace -tt records wall-clock time-of-day with microsecond precision
// ("08:55:54.153994") and -T records call durations in seconds
// ("<0.000203>"). Internally every time quantity is an integral count
// of microseconds (std::int64_t), the native resolution of the input;
// floating point is only used at the formatting boundary.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace st {

/// Microseconds. Used for both points in time and durations.
using Micros = std::int64_t;

inline constexpr Micros kMicrosPerSecond = 1'000'000;
inline constexpr Micros kMicrosPerDay = 24LL * 3600 * kMicrosPerSecond;

/// Parses "HH:MM:SS.ffffff" (strace -tt format, fractional part of one
/// to six digits) into microseconds since midnight.
[[nodiscard]] std::optional<Micros> parse_time_of_day(std::string_view s);

/// Formats microseconds-since-midnight back to "HH:MM:SS.ffffff".
[[nodiscard]] std::string format_time_of_day(Micros t);

/// Parses a duration in seconds with fractional part ("0.000203") into
/// microseconds, rounding to nearest.
[[nodiscard]] std::optional<Micros> parse_seconds(std::string_view s);

/// Formats a duration in microseconds as seconds with 6 decimals
/// ("0.000203"), the strace -T style.
[[nodiscard]] std::string format_seconds(Micros d);

}  // namespace st
