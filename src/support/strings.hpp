// Small string and path utilities used across the library.
//
// Everything operates on std::string_view and returns either views into
// the input (zero-copy splitting) or freshly allocated std::string where
// ownership is required. All functions are pure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace st {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits `s` on every occurrence of `sep`. Adjacent separators produce
/// empty fields; an empty input produces a single empty field, matching
/// Python's str.split(sep) semantics for a non-space separator.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; never produces empty fields.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Joins `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);
[[nodiscard]] std::string join(const std::vector<std::string_view>& parts, std::string_view sep);

/// True if `s` contains `needle`.
[[nodiscard]] bool contains(std::string_view s, std::string_view needle);

/// Parses a decimal integer; returns nullopt on any trailing garbage.
[[nodiscard]] std::optional<std::int64_t> parse_i64(std::string_view s);
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s);

/// Parses a decimal floating point number (full-string match).
[[nodiscard]] std::optional<double> parse_f64(std::string_view s);

/// Truncates an absolute file path to its top `levels` directory
/// components: top_dirs("/usr/lib/x86_64/libc.so", 2) == "/usr/lib".
/// Paths with fewer components are returned unchanged. Relative paths
/// are returned unchanged. This is the truncation used by the paper's
/// mapping f-hat (Eq. 4).
[[nodiscard]] std::string top_dirs(std::string_view path, int levels);

/// Returns the last `n` components joined by '/':
/// last_components("/usr/lib/x86_64-linux-gnu/libc.so.6", 2)
///   == "x86_64-linux-gnu/libc.so.6"  (the Fig. 4 node naming).
[[nodiscard]] std::string last_components(std::string_view path, int n);

/// Escapes a string for embedding inside a DOT double-quoted label.
[[nodiscard]] std::string dot_escape(std::string_view s);

}  // namespace st
