// Shared flag vocabulary for the CLI tools (ISSUE 9).
//
// trace_explorer and elog_tool grew the same flags independently —
// --threads, --keep-going, --map, --v1/--v2, --shards, --stream-report
// — each with its own registration string and its own decode helper.
// This header defines every shared flag ONCE as an add_*_flag /
// decoder pair, so a new surface (the serve subcommand) inherits the
// exact semantics (negative-thread clamping, --v1/--v2 exclusivity,
// the mapping registry) instead of re-implementing them. Per-tool
// wording that genuinely differs (what "keep going" quarantines, what
// the mapping is used for) stays a parameter; behavior does not.
#pragma once

#include <cstddef>
#include <string>

#include "model/mapping.hpp"
#include "support/cli.hpp"
#include "support/run_policy.hpp"

namespace st::cliargs {

/// --threads <n>: worker-thread count, 0 = hardware concurrency.
void add_threads_flag(CliParser& cli, const std::string& what = "worker");

/// --threads as a pool size: negative values would wrap through the
/// size_t cast into a SIZE_MAX-worker pool; clamp them to 0 (hardware).
[[nodiscard]] std::size_t thread_count(const CliParser& cli);

/// --keep-going (boolean): quarantine-and-continue error policy.
/// `quarantines` names what the tool drops, e.g. "unreadable trace
/// files / CRC-failing v2 cases".
void add_keep_going_flag(CliParser& cli, const std::string& quarantines);

/// --keep-going as the shared RunPolicy (support/run_policy.hpp) —
/// brace-init any of StreamOptions / ElogReadOptions / V2ReadOptions
/// from the result.
[[nodiscard]] RunPolicy run_policy(const CliParser& cli);

/// --map <name>: activity mapping by registry short name.
void add_map_flag(CliParser& cli, const std::string& what, const std::string& default_name);

/// --map resolved through the shared registry (model::mapping_by_name,
/// so coordinator and spawned workers cannot drift).
[[nodiscard]] model::Mapping mapping(const CliParser& cli);

/// --v1 / --v2 (booleans): elog container output format selection.
void add_format_flags(CliParser& cli);

/// Output format decision: v2 unless --v1 (both at once is a typo).
[[nodiscard]] bool write_v1(const CliParser& cli);

/// --shards <n>: worker-process count for sharded runs.
void add_shards_flag(CliParser& cli, const std::string& what, const std::string& default_count);

/// --shards as a worker count, clamped to >= 1.
[[nodiscard]] std::size_t shard_count(const CliParser& cli);

/// --stream-report: single-pass streamed HTML report. Value-taking
/// (elog_tool writes it to the given path) or boolean (trace_explorer
/// redirects stdout), per `takes_path`.
void add_stream_report_flag(CliParser& cli, const std::string& help, bool takes_path);

}  // namespace st::cliargs
