// Error types shared by all st-inspector libraries.
//
// Per the C++ Core Guidelines (E.2, E.14) errors that a caller can not
// locally recover from are reported with exceptions derived from a small
// purpose-built hierarchy rather than raw std::runtime_error, so call
// sites can discriminate between "the input text is malformed"
// (ParseError), "the storage layer failed" (IoError) and "the caller
// violated an API precondition" (LogicError).
#pragma once

#include <stdexcept>
#include <string>

namespace st {

/// Root of the st-inspector exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input text (strace records, elog headers, CLI flags...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Failure in the storage substrate (file open/read/write, CRC mismatch).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// API misuse detected at run time (precondition violation).
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error("logic error: " + what) {}
};

}  // namespace st
