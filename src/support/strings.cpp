#include "support/strings.hpp"

#include <cctype>
#include <charconv>

namespace st {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  const std::size_t n = s.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(s[i])) != 0) ++i;
    if (i >= n) break;
    std::size_t j = i;
    while (j < n && std::isspace(static_cast<unsigned char>(s[j])) == 0) ++j;
    out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

namespace {
template <class Range>
std::string join_impl(const Range& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}
}  // namespace

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string join(const std::vector<std::string_view>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::optional<std::int64_t> parse_i64(std::string_view s) {
  std::int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || s.empty()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || s.empty()) return std::nullopt;
  return value;
}

std::optional<double> parse_f64(std::string_view s) {
  double value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || s.empty()) return std::nullopt;
  return value;
}

std::string top_dirs(std::string_view path, int levels) {
  if (path.empty() || path.front() != '/' || levels <= 0) return std::string(path);
  // Count '/'-separated components from the root; stop after `levels`.
  std::size_t seen = 0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (path[i] == '/') {
      ++seen;
      if (seen == static_cast<std::size_t>(levels)) return std::string(path.substr(0, i));
    }
  }
  return std::string(path);
}

std::string last_components(std::string_view path, int n) {
  if (n <= 0) return std::string{};
  const auto parts = split(path, '/');
  std::vector<std::string_view> keep;
  for (const auto& p : parts) {
    if (!p.empty()) keep.push_back(p);
  }
  if (keep.size() > static_cast<std::size_t>(n)) {
    keep.erase(keep.begin(), keep.end() - n);
  }
  return join(keep, "/");
}

std::string dot_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out.append("\\n");
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace st
