// Bounded MPMC completion queue — the hand-off primitive between
// pipeline stages that run on one shared ThreadPool.
//
// The shape it exists for (src/pipeline/stream.cpp): stage-A tasks on
// pool workers push completed work items; a dispatcher thread pops and
// submits stage-B continuations to the same pool, so the stages
// overlap instead of meeting at a barrier. The bounded capacity is
// backpressure — producers block while the dispatcher falls behind, so
// parsed-but-unconverted results can never pile up without limit.
//
// Semantics:
//  - push() blocks while the queue is full; returns false (item
//    dropped) if the queue was closed while waiting. try_push() never
//    blocks and returns false when full or closed.
//  - pop() blocks until an item is available; items pushed by one
//    producer are popped in that producer's push order (single global
//    FIFO). After close(), pops drain the remaining items and then
//    return nullopt — or rethrow the close error, if one was given.
//  - close(error) is how a failing producer propagates its exception
//    across the stage boundary: every pop after the drain rethrows.
//  - All operations are safe from any thread; close() is idempotent
//    (the first close wins).
//
// The untyped synchronization core (capacity bookkeeping, blocking,
// close + error state) lives in stage_queue.cpp; this header only adds
// the typed item storage on top of it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <utility>

namespace st {

namespace detail {

/// Untyped core of StageQueue: one mutex, the two condition variables,
/// size/capacity bookkeeping and the closed/error state. StageQueue<T>
/// holds the item storage and drives this under the core's mutex.
class StageQueueCore {
 public:
  explicit StageQueueCore(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 protected:
  /// Blocks until there is room for one more item or the queue is
  /// closed. True = slot acquired (caller must push + finish_push).
  bool acquire_push_slot(std::unique_lock<std::mutex>& lock);

  /// Blocks until an item is available or the queue is closed and
  /// drained. True = an item may be popped (caller must finish_pop).
  /// When the queue is closed, drained and carries an error, the error
  /// is rethrown instead of returning false.
  bool acquire_item(std::unique_lock<std::mutex>& lock);

  void finish_push(std::unique_lock<std::mutex>& lock);
  void finish_pop(std::unique_lock<std::mutex>& lock);
  void do_close(std::exception_ptr error);

  [[nodiscard]] bool closed_locked() const { return closed_; }
  [[nodiscard]] bool full_locked() const { return size_ >= capacity_; }
  [[nodiscard]] std::size_t size_locked() const { return size_; }

  mutable std::mutex mutex_;

 private:
  std::condition_variable space_cv_;  ///< producers waiting for room
  std::condition_variable item_cv_;   ///< consumers waiting for items
  std::size_t capacity_;
  std::size_t size_ = 0;
  bool closed_ = false;
  std::exception_ptr error_;
};

}  // namespace detail

template <class T>
class StageQueue : private detail::StageQueueCore {
 public:
  /// A queue holding at most `capacity` items (>= 1 enforced).
  explicit StageQueue(std::size_t capacity) : StageQueueCore(capacity) {}

  using StageQueueCore::capacity;

  /// Blocks while full. True = enqueued; false = the queue was closed
  /// (the item is dropped — producers treat this as "consumer gone").
  bool push(T item) {
    std::unique_lock lock(mutex_);
    if (!acquire_push_slot(lock)) return false;
    items_.push_back(std::move(item));
    finish_push(lock);
    return true;
  }

  /// Non-blocking push; false when the queue is full or closed.
  bool try_push(T item) {
    std::unique_lock lock(mutex_);
    if (closed_locked() || full_locked()) return false;
    items_.push_back(std::move(item));
    finish_push(lock);
    return true;
  }

  /// Blocks until an item arrives or the queue is closed and drained
  /// (then nullopt — or the close error rethrown, if one was set).
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    if (!acquire_item(lock)) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    finish_pop(lock);
    return out;
  }

  /// No more pushes; pending and future pops drain then end. The first
  /// close wins; later closes (with or without error) are ignored.
  void close() { do_close(nullptr); }

  /// close() carrying a producer-side failure: once drained, every pop
  /// rethrows `error` instead of returning nullopt.
  void close(std::exception_ptr error) { do_close(std::move(error)); }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_locked();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return size_locked();
  }

 private:
  std::deque<T> items_;  ///< guarded by StageQueueCore::mutex_
};

}  // namespace st
