#include "parallel/thread_pool.hpp"

namespace st {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  // Discard tasks that never started instead of draining them: running
  // a queued continuation during teardown would let it touch state its
  // submitter already destroyed (the pipeline's per-file arenas, an
  // unwinding caller's stack). Their futures report broken_promise.
  // Tasks already running are joined as before.
  std::deque<std::function<void()>> orphaned;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    orphaned.swap(queue_);
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  // `orphaned` is destroyed here, outside the lock and after the
  // workers are gone, so task destructors cannot deadlock or race.
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // exceptions are captured by the packaged_task wrapper
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace st
