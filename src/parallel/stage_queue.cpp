#include "parallel/stage_queue.hpp"

#include <algorithm>

namespace st::detail {

StageQueueCore::StageQueueCore(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

bool StageQueueCore::acquire_push_slot(std::unique_lock<std::mutex>& lock) {
  space_cv_.wait(lock, [this] { return closed_ || size_ < capacity_; });
  return !closed_;
}

bool StageQueueCore::acquire_item(std::unique_lock<std::mutex>& lock) {
  item_cv_.wait(lock, [this] { return closed_ || size_ > 0; });
  if (size_ > 0) return true;
  // Closed and drained: an error-close poisons every further pop so a
  // producer-side failure cannot be mistaken for a clean end-of-stream.
  if (error_) std::rethrow_exception(error_);
  return false;
}

void StageQueueCore::finish_push(std::unique_lock<std::mutex>& lock) {
  ++size_;
  lock.unlock();
  item_cv_.notify_one();
}

void StageQueueCore::finish_pop(std::unique_lock<std::mutex>& lock) {
  --size_;
  lock.unlock();
  space_cv_.notify_one();
}

void StageQueueCore::do_close(std::exception_ptr error) {
  {
    std::lock_guard lock(mutex_);
    if (closed_) return;  // first close wins
    closed_ = true;
    error_ = std::move(error);
  }
  // Wake everyone: blocked producers return false, blocked consumers
  // drain whatever is left and then see the closed state.
  space_cv_.notify_all();
  item_cv_.notify_all();
}

}  // namespace st::detail
