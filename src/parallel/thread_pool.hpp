// Fixed-size work-queue thread pool.
//
// This is the execution substrate for the scalable analysis pipeline:
// trace files are parsed and per-case DFGs are constructed on pool
// threads and merged afterwards (the map-reduce process-discovery
// construction of Evermann [25] referenced by the paper).
//
// Design notes (Core Guidelines CP.*):
//  - tasks are type-erased std::move_only_function-style callables
//    (std::function here; tasks must be copyable or wrapped),
//  - the pool joins in its destructor (RAII; no detached threads),
//  - exceptions thrown by a task are captured into the std::future
//    returned by submit(), never lost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace st {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Tasks already running finish; tasks still
  /// queued are DISCARDED (their futures report broken_promise) — a
  /// queued continuation must never run while its submitter's state is
  /// being torn down. Callers that need completion await their futures
  /// or call wait_idle() first, as every algorithm in this repo does.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Schedules `fn(args...)`; the returned future carries the result or
  /// the thrown exception.
  template <class F, class... Args>
  auto submit(F&& fn, Args&&... args) -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(fn), ... captured = std::forward<Args>(args)]() mutable {
          return std::invoke(std::move(fn), std::move(captured)...);
        });
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool::submit after shutdown");
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace st
