// Parallel bulk algorithms on top of ThreadPool.
//
//  - parallel_for: static chunking of an index range,
//  - parallel_map: element-wise transform preserving input order,
//  - map_reduce: per-chunk map + associative reduce; this is exactly the
//    shape used for scalable DFG construction (per-case graphs merged
//    with an abelian fold, refs [24][25] of the paper).
//
// Exception contract: every task is always awaited before an exception
// propagates, and the exception rethrown on the calling thread is the
// one from the LOWEST failing chunk (and, within a chunk, its lowest
// failing index) — deterministic "first in input order wins"
// regardless of how the pool schedules the tasks. Awaiting everything
// first is also what makes early failure memory-safe: tasks capture
// the caller's callables by reference, so no task may still be running
// when the algorithm returns or throws.
#pragma once

#include <cstddef>
#include <exception>
#include <future>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace st {

/// Chooses a chunk count of roughly 4 chunks per worker, capped by `n`.
[[nodiscard]] inline std::size_t default_chunks(const ThreadPool& pool, std::size_t n) {
  const std::size_t target = pool.size() * 4;
  return n < target ? (n == 0 ? 1 : n) : target;
}

namespace detail {

/// Waits for every future, then rethrows the exception of the earliest
/// chunk that failed (futures are in chunk order).
template <class R>
std::vector<R> await_all(std::vector<std::future<R>>& futures) {
  std::vector<R> results;
  results.reserve(futures.size());
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      results.push_back(f.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
      results.emplace_back();  // placeholder keeps chunk indices aligned
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

inline void await_all(std::vector<std::future<void>>& futures) {
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

/// Applies body(i) for i in [begin, end) using the pool. Blocking.
template <class Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, Body body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = default_chunks(pool, n);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  detail::await_all(futures);
}

/// Order-preserving parallel transform: out[i] = fn(in[i]). On failure
/// the exception of the lowest failing input index propagates.
template <class T, class Fn>
auto parallel_map(ThreadPool& pool, const std::vector<T>& in, Fn fn)
    -> std::vector<decltype(fn(in.front()))> {
  using R = decltype(fn(in.front()));
  std::vector<R> out(in.size());
  parallel_for(pool, 0, in.size(), [&](std::size_t i) { out[i] = fn(in[i]); });
  return out;
}

/// Chunked map-reduce. `map` produces an accumulator from a [lo, hi)
/// sub-range of indices; `reduce(a, b)` folds two accumulators and must
/// be associative. The fold order over chunks is deterministic
/// (left-to-right over the chunk index) so commutativity is NOT required.
template <class Acc, class MapFn, class ReduceFn>
Acc map_reduce(ThreadPool& pool, std::size_t n, Acc identity, MapFn map, ReduceFn reduce) {
  if (n == 0) return identity;
  const std::size_t chunks = default_chunks(pool, n);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<Acc>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk_size;
    if (lo >= n) break;
    const std::size_t hi = std::min(n, lo + chunk_size);
    futures.push_back(pool.submit([lo, hi, &map] { return map(lo, hi); }));
  }
  std::vector<Acc> partials = detail::await_all(futures);
  Acc acc = std::move(identity);
  for (auto& p : partials) acc = reduce(std::move(acc), std::move(p));
  return acc;
}

}  // namespace st
