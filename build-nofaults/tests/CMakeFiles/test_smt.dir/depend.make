# Empty dependencies file for test_smt.
# This may be replaced when dependencies are built.
