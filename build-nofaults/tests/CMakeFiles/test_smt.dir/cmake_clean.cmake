file(REMOVE_RECURSE
  "CMakeFiles/test_smt.dir/test_smt.cpp.o"
  "CMakeFiles/test_smt.dir/test_smt.cpp.o.d"
  "test_smt"
  "test_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
