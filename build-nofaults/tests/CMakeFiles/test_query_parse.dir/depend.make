# Empty dependencies file for test_query_parse.
# This may be replaced when dependencies are built.
