file(REMOVE_RECURSE
  "CMakeFiles/test_query_parse.dir/test_query_parse.cpp.o"
  "CMakeFiles/test_query_parse.dir/test_query_parse.cpp.o.d"
  "test_query_parse"
  "test_query_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
