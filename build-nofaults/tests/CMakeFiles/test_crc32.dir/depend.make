# Empty dependencies file for test_crc32.
# This may be replaced when dependencies are built.
