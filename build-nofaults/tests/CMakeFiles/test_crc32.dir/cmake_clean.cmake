file(REMOVE_RECURSE
  "CMakeFiles/test_crc32.dir/test_crc32.cpp.o"
  "CMakeFiles/test_crc32.dir/test_crc32.cpp.o.d"
  "test_crc32"
  "test_crc32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crc32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
