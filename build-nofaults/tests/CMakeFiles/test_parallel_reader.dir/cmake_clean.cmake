file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_reader.dir/test_parallel_reader.cpp.o"
  "CMakeFiles/test_parallel_reader.dir/test_parallel_reader.cpp.o.d"
  "test_parallel_reader"
  "test_parallel_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
