# Empty dependencies file for test_parallel_reader.
# This may be replaced when dependencies are built.
