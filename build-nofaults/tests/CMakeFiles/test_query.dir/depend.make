# Empty dependencies file for test_query.
# This may be replaced when dependencies are built.
