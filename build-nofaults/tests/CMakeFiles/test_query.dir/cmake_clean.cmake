file(REMOVE_RECURSE
  "CMakeFiles/test_query.dir/test_query.cpp.o"
  "CMakeFiles/test_query.dir/test_query.cpp.o.d"
  "test_query"
  "test_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
