# Empty compiler generated dependencies file for test_scan_kernels.
# This may be replaced when dependencies are built.
