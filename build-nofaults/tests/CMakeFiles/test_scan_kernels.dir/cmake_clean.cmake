file(REMOVE_RECURSE
  "CMakeFiles/test_scan_kernels.dir/test_scan_kernels.cpp.o"
  "CMakeFiles/test_scan_kernels.dir/test_scan_kernels.cpp.o.d"
  "test_scan_kernels"
  "test_scan_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scan_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
