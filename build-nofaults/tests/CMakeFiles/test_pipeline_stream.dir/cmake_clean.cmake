file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_stream.dir/test_pipeline_stream.cpp.o"
  "CMakeFiles/test_pipeline_stream.dir/test_pipeline_stream.cpp.o.d"
  "test_pipeline_stream"
  "test_pipeline_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
