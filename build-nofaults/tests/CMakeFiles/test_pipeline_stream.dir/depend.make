# Empty dependencies file for test_pipeline_stream.
# This may be replaced when dependencies are built.
