# Empty compiler generated dependencies file for test_export.
# This may be replaced when dependencies are built.
