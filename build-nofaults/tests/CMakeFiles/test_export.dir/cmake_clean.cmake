file(REMOVE_RECURSE
  "CMakeFiles/test_export.dir/test_export.cpp.o"
  "CMakeFiles/test_export.dir/test_export.cpp.o.d"
  "test_export"
  "test_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
