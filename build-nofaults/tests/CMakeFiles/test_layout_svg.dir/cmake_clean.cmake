file(REMOVE_RECURSE
  "CMakeFiles/test_layout_svg.dir/test_layout_svg.cpp.o"
  "CMakeFiles/test_layout_svg.dir/test_layout_svg.cpp.o.d"
  "test_layout_svg"
  "test_layout_svg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_svg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
