# Empty dependencies file for test_layout_svg.
# This may be replaced when dependencies are built.
