# Empty dependencies file for test_reader_writer.
# This may be replaced when dependencies are built.
