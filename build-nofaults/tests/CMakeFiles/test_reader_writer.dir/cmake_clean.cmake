file(REMOVE_RECURSE
  "CMakeFiles/test_reader_writer.dir/test_reader_writer.cpp.o"
  "CMakeFiles/test_reader_writer.dir/test_reader_writer.cpp.o.d"
  "test_reader_writer"
  "test_reader_writer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reader_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
