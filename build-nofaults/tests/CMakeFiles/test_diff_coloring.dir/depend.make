# Empty dependencies file for test_diff_coloring.
# This may be replaced when dependencies are built.
