file(REMOVE_RECURSE
  "CMakeFiles/test_diff_coloring.dir/test_diff_coloring.cpp.o"
  "CMakeFiles/test_diff_coloring.dir/test_diff_coloring.cpp.o.d"
  "test_diff_coloring"
  "test_diff_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diff_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
