# Empty dependencies file for test_commands.
# This may be replaced when dependencies are built.
