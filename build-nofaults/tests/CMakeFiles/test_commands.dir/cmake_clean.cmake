file(REMOVE_RECURSE
  "CMakeFiles/test_commands.dir/test_commands.cpp.o"
  "CMakeFiles/test_commands.dir/test_commands.cpp.o.d"
  "test_commands"
  "test_commands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_commands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
