file(REMOVE_RECURSE
  "CMakeFiles/test_scan.dir/test_scan.cpp.o"
  "CMakeFiles/test_scan.dir/test_scan.cpp.o.d"
  "test_scan"
  "test_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
