# Empty compiler generated dependencies file for test_scan.
# This may be replaced when dependencies are built.
