file(REMOVE_RECURSE
  "CMakeFiles/test_edge_stats.dir/test_edge_stats.cpp.o"
  "CMakeFiles/test_edge_stats.dir/test_edge_stats.cpp.o.d"
  "test_edge_stats"
  "test_edge_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
