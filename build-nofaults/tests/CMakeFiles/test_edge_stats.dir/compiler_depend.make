# Empty compiler generated dependencies file for test_edge_stats.
# This may be replaced when dependencies are built.
