file(REMOVE_RECURSE
  "CMakeFiles/test_ior.dir/test_ior.cpp.o"
  "CMakeFiles/test_ior.dir/test_ior.cpp.o.d"
  "test_ior"
  "test_ior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
