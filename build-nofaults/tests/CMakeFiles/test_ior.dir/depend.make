# Empty dependencies file for test_ior.
# This may be replaced when dependencies are built.
