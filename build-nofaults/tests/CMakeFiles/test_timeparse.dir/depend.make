# Empty dependencies file for test_timeparse.
# This may be replaced when dependencies are built.
