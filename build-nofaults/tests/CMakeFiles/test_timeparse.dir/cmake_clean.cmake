file(REMOVE_RECURSE
  "CMakeFiles/test_timeparse.dir/test_timeparse.cpp.o"
  "CMakeFiles/test_timeparse.dir/test_timeparse.cpp.o.d"
  "test_timeparse"
  "test_timeparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
