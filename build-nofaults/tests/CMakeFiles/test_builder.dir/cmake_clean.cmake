file(REMOVE_RECURSE
  "CMakeFiles/test_builder.dir/test_builder.cpp.o"
  "CMakeFiles/test_builder.dir/test_builder.cpp.o.d"
  "test_builder"
  "test_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
