# Empty compiler generated dependencies file for test_builder.
# This may be replaced when dependencies are built.
