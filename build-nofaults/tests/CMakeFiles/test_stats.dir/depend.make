# Empty dependencies file for test_stats.
# This may be replaced when dependencies are built.
