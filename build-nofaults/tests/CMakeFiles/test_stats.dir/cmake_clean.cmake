file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/test_stats.cpp.o"
  "CMakeFiles/test_stats.dir/test_stats.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
