file(REMOVE_RECURSE
  "CMakeFiles/test_skew.dir/test_skew.cpp.o"
  "CMakeFiles/test_skew.dir/test_skew.cpp.o.d"
  "test_skew"
  "test_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
