# Empty dependencies file for test_skew.
# This may be replaced when dependencies are built.
