# Empty compiler generated dependencies file for test_figures.
# This may be replaced when dependencies are built.
