file(REMOVE_RECURSE
  "CMakeFiles/test_figures.dir/test_figures.cpp.o"
  "CMakeFiles/test_figures.dir/test_figures.cpp.o.d"
  "test_figures"
  "test_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
