# Empty compiler generated dependencies file for test_pipeline_sinks.
# This may be replaced when dependencies are built.
