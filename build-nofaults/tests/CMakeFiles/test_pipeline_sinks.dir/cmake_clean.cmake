file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_sinks.dir/test_pipeline_sinks.cpp.o"
  "CMakeFiles/test_pipeline_sinks.dir/test_pipeline_sinks.cpp.o.d"
  "test_pipeline_sinks"
  "test_pipeline_sinks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_sinks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
