# Empty compiler generated dependencies file for test_variants.
# This may be replaced when dependencies are built.
