file(REMOVE_RECURSE
  "CMakeFiles/test_variants.dir/test_variants.cpp.o"
  "CMakeFiles/test_variants.dir/test_variants.cpp.o.d"
  "test_variants"
  "test_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
