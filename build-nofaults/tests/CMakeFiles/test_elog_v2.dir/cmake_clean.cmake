file(REMOVE_RECURSE
  "CMakeFiles/test_elog_v2.dir/test_elog_v2.cpp.o"
  "CMakeFiles/test_elog_v2.dir/test_elog_v2.cpp.o.d"
  "test_elog_v2"
  "test_elog_v2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elog_v2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
