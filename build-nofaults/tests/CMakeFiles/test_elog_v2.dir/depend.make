# Empty dependencies file for test_elog_v2.
# This may be replaced when dependencies are built.
