file(REMOVE_RECURSE
  "CMakeFiles/test_v2_select.dir/test_v2_select.cpp.o"
  "CMakeFiles/test_v2_select.dir/test_v2_select.cpp.o.d"
  "test_v2_select"
  "test_v2_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_v2_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
