# Empty dependencies file for test_v2_select.
# This may be replaced when dependencies are built.
