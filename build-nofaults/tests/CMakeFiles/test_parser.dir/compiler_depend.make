# Empty compiler generated dependencies file for test_parser.
# This may be replaced when dependencies are built.
