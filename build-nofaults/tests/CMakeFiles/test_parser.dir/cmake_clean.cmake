file(REMOVE_RECURSE
  "CMakeFiles/test_parser.dir/test_parser.cpp.o"
  "CMakeFiles/test_parser.dir/test_parser.cpp.o.d"
  "test_parser"
  "test_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
