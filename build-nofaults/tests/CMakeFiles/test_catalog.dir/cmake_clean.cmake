file(REMOVE_RECURSE
  "CMakeFiles/test_catalog.dir/test_catalog.cpp.o"
  "CMakeFiles/test_catalog.dir/test_catalog.cpp.o.d"
  "test_catalog"
  "test_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
