# Empty dependencies file for test_catalog.
# This may be replaced when dependencies are built.
