file(REMOVE_RECURSE
  "CMakeFiles/test_corpus.dir/test_corpus.cpp.o"
  "CMakeFiles/test_corpus.dir/test_corpus.cpp.o.d"
  "test_corpus"
  "test_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
