# Empty compiler generated dependencies file for test_corpus.
# This may be replaced when dependencies are built.
