file(REMOVE_RECURSE
  "CMakeFiles/test_stats_sinks.dir/test_stats_sinks.cpp.o"
  "CMakeFiles/test_stats_sinks.dir/test_stats_sinks.cpp.o.d"
  "test_stats_sinks"
  "test_stats_sinks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_sinks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
