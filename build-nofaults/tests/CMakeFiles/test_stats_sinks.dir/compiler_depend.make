# Empty compiler generated dependencies file for test_stats_sinks.
# This may be replaced when dependencies are built.
