# Empty compiler generated dependencies file for test_mapping.
# This may be replaced when dependencies are built.
