file(REMOVE_RECURSE
  "CMakeFiles/test_mapping.dir/test_mapping.cpp.o"
  "CMakeFiles/test_mapping.dir/test_mapping.cpp.o.d"
  "test_mapping"
  "test_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
