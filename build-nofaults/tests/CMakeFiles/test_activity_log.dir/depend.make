# Empty dependencies file for test_activity_log.
# This may be replaced when dependencies are built.
