file(REMOVE_RECURSE
  "CMakeFiles/test_activity_log.dir/test_activity_log.cpp.o"
  "CMakeFiles/test_activity_log.dir/test_activity_log.cpp.o.d"
  "test_activity_log"
  "test_activity_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_activity_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
