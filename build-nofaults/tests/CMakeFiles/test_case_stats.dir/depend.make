# Empty dependencies file for test_case_stats.
# This may be replaced when dependencies are built.
