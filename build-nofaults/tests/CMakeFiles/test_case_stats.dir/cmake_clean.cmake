file(REMOVE_RECURSE
  "CMakeFiles/test_case_stats.dir/test_case_stats.cpp.o"
  "CMakeFiles/test_case_stats.dir/test_case_stats.cpp.o.d"
  "test_case_stats"
  "test_case_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_case_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
