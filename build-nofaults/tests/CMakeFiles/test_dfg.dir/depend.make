# Empty dependencies file for test_dfg.
# This may be replaced when dependencies are built.
