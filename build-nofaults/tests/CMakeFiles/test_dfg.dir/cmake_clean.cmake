file(REMOVE_RECURSE
  "CMakeFiles/test_dfg.dir/test_dfg.cpp.o"
  "CMakeFiles/test_dfg.dir/test_dfg.cpp.o.d"
  "test_dfg"
  "test_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
