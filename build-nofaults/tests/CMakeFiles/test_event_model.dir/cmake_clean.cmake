file(REMOVE_RECURSE
  "CMakeFiles/test_event_model.dir/test_event_model.cpp.o"
  "CMakeFiles/test_event_model.dir/test_event_model.cpp.o.d"
  "test_event_model"
  "test_event_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
