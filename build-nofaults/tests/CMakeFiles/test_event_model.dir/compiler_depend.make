# Empty compiler generated dependencies file for test_event_model.
# This may be replaced when dependencies are built.
