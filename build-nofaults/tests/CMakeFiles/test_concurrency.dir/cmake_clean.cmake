file(REMOVE_RECURSE
  "CMakeFiles/test_concurrency.dir/test_concurrency.cpp.o"
  "CMakeFiles/test_concurrency.dir/test_concurrency.cpp.o.d"
  "test_concurrency"
  "test_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
