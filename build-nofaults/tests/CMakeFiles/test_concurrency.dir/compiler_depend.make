# Empty compiler generated dependencies file for test_concurrency.
# This may be replaced when dependencies are built.
