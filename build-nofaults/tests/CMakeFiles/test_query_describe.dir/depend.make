# Empty dependencies file for test_query_describe.
# This may be replaced when dependencies are built.
