file(REMOVE_RECURSE
  "CMakeFiles/test_query_describe.dir/test_query_describe.cpp.o"
  "CMakeFiles/test_query_describe.dir/test_query_describe.cpp.o.d"
  "test_query_describe"
  "test_query_describe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_describe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
