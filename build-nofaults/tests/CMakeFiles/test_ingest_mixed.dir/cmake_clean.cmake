file(REMOVE_RECURSE
  "CMakeFiles/test_ingest_mixed.dir/test_ingest_mixed.cpp.o"
  "CMakeFiles/test_ingest_mixed.dir/test_ingest_mixed.cpp.o.d"
  "test_ingest_mixed"
  "test_ingest_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ingest_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
