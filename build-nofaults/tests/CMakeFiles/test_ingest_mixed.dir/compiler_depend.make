# Empty compiler generated dependencies file for test_ingest_mixed.
# This may be replaced when dependencies are built.
