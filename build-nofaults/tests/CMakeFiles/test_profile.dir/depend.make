# Empty dependencies file for test_profile.
# This may be replaced when dependencies are built.
