file(REMOVE_RECURSE
  "CMakeFiles/test_profile.dir/test_profile.cpp.o"
  "CMakeFiles/test_profile.dir/test_profile.cpp.o.d"
  "test_profile"
  "test_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
