file(REMOVE_RECURSE
  "CMakeFiles/test_strings.dir/test_strings.cpp.o"
  "CMakeFiles/test_strings.dir/test_strings.cpp.o.d"
  "test_strings"
  "test_strings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
