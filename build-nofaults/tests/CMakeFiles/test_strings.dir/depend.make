# Empty dependencies file for test_strings.
# This may be replaced when dependencies are built.
