# Empty dependencies file for test_render.
# This may be replaced when dependencies are built.
