file(REMOVE_RECURSE
  "CMakeFiles/test_render.dir/test_render.cpp.o"
  "CMakeFiles/test_render.dir/test_render.cpp.o.d"
  "test_render"
  "test_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
