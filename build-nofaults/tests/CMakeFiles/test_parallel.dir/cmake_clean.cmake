file(REMOVE_RECURSE
  "CMakeFiles/test_parallel.dir/test_parallel.cpp.o"
  "CMakeFiles/test_parallel.dir/test_parallel.cpp.o.d"
  "test_parallel"
  "test_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
