# Empty compiler generated dependencies file for test_parallel.
# This may be replaced when dependencies are built.
