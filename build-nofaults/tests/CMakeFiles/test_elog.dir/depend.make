# Empty dependencies file for test_elog.
# This may be replaced when dependencies are built.
