file(REMOVE_RECURSE
  "CMakeFiles/test_elog.dir/test_elog.cpp.o"
  "CMakeFiles/test_elog.dir/test_elog.cpp.o.d"
  "test_elog"
  "test_elog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
