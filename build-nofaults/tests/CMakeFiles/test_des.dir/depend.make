# Empty dependencies file for test_des.
# This may be replaced when dependencies are built.
