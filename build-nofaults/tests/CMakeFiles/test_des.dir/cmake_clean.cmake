file(REMOVE_RECURSE
  "CMakeFiles/test_des.dir/test_des.cpp.o"
  "CMakeFiles/test_des.dir/test_des.cpp.o.d"
  "test_des"
  "test_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
