# Empty compiler generated dependencies file for test_report.
# This may be replaced when dependencies are built.
