file(REMOVE_RECURSE
  "CMakeFiles/test_report.dir/test_report.cpp.o"
  "CMakeFiles/test_report.dir/test_report.cpp.o.d"
  "test_report"
  "test_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
