# Empty compiler generated dependencies file for test_partial_codec.
# This may be replaced when dependencies are built.
