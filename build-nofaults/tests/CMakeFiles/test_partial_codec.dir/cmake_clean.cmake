file(REMOVE_RECURSE
  "CMakeFiles/test_partial_codec.dir/test_partial_codec.cpp.o"
  "CMakeFiles/test_partial_codec.dir/test_partial_codec.cpp.o.d"
  "test_partial_codec"
  "test_partial_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partial_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
