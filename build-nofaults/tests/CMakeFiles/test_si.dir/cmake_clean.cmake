file(REMOVE_RECURSE
  "CMakeFiles/test_si.dir/test_si.cpp.o"
  "CMakeFiles/test_si.dir/test_si.cpp.o.d"
  "test_si"
  "test_si.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_si.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
