# Empty compiler generated dependencies file for test_si.
# This may be replaced when dependencies are built.
