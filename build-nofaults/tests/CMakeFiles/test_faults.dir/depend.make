# Empty dependencies file for test_faults.
# This may be replaced when dependencies are built.
