file(REMOVE_RECURSE
  "CMakeFiles/test_faults.dir/test_faults.cpp.o"
  "CMakeFiles/test_faults.dir/test_faults.cpp.o.d"
  "test_faults"
  "test_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
