file(REMOVE_RECURSE
  "CMakeFiles/test_stage_queue.dir/test_stage_queue.cpp.o"
  "CMakeFiles/test_stage_queue.dir/test_stage_queue.cpp.o.d"
  "test_stage_queue"
  "test_stage_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stage_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
