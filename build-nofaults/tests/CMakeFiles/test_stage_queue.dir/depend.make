# Empty dependencies file for test_stage_queue.
# This may be replaced when dependencies are built.
