file(REMOVE_RECURSE
  "CMakeFiles/test_filename.dir/test_filename.cpp.o"
  "CMakeFiles/test_filename.dir/test_filename.cpp.o.d"
  "test_filename"
  "test_filename.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filename.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
