# Empty dependencies file for test_filename.
# This may be replaced when dependencies are built.
