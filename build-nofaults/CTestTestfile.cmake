# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-nofaults
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("tests")
subdirs("examples")
subdirs("bench")
