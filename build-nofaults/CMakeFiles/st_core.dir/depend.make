# Empty dependencies file for st_core.
# This may be replaced when dependencies are built.
