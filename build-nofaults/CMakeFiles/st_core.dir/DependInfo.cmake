
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/catalog.cpp" "CMakeFiles/st_core.dir/src/corpus/catalog.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/corpus/catalog.cpp.o.d"
  "/root/repo/src/corpus/serve.cpp" "CMakeFiles/st_core.dir/src/corpus/serve.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/corpus/serve.cpp.o.d"
  "/root/repo/src/dfg/builder.cpp" "CMakeFiles/st_core.dir/src/dfg/builder.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/dfg/builder.cpp.o.d"
  "/root/repo/src/dfg/coloring.cpp" "CMakeFiles/st_core.dir/src/dfg/coloring.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/dfg/coloring.cpp.o.d"
  "/root/repo/src/dfg/concurrency.cpp" "CMakeFiles/st_core.dir/src/dfg/concurrency.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/dfg/concurrency.cpp.o.d"
  "/root/repo/src/dfg/dfg.cpp" "CMakeFiles/st_core.dir/src/dfg/dfg.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/dfg/dfg.cpp.o.d"
  "/root/repo/src/dfg/diff.cpp" "CMakeFiles/st_core.dir/src/dfg/diff.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/dfg/diff.cpp.o.d"
  "/root/repo/src/dfg/edge_stats.cpp" "CMakeFiles/st_core.dir/src/dfg/edge_stats.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/dfg/edge_stats.cpp.o.d"
  "/root/repo/src/dfg/export.cpp" "CMakeFiles/st_core.dir/src/dfg/export.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/dfg/export.cpp.o.d"
  "/root/repo/src/dfg/layout.cpp" "CMakeFiles/st_core.dir/src/dfg/layout.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/dfg/layout.cpp.o.d"
  "/root/repo/src/dfg/profile.cpp" "CMakeFiles/st_core.dir/src/dfg/profile.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/dfg/profile.cpp.o.d"
  "/root/repo/src/dfg/render.cpp" "CMakeFiles/st_core.dir/src/dfg/render.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/dfg/render.cpp.o.d"
  "/root/repo/src/dfg/render_svg.cpp" "CMakeFiles/st_core.dir/src/dfg/render_svg.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/dfg/render_svg.cpp.o.d"
  "/root/repo/src/dfg/stats.cpp" "CMakeFiles/st_core.dir/src/dfg/stats.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/dfg/stats.cpp.o.d"
  "/root/repo/src/dfg/validate.cpp" "CMakeFiles/st_core.dir/src/dfg/validate.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/dfg/validate.cpp.o.d"
  "/root/repo/src/elog/format.cpp" "CMakeFiles/st_core.dir/src/elog/format.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/elog/format.cpp.o.d"
  "/root/repo/src/elog/store.cpp" "CMakeFiles/st_core.dir/src/elog/store.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/elog/store.cpp.o.d"
  "/root/repo/src/elog/v2_format.cpp" "CMakeFiles/st_core.dir/src/elog/v2_format.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/elog/v2_format.cpp.o.d"
  "/root/repo/src/elog/v2_select.cpp" "CMakeFiles/st_core.dir/src/elog/v2_select.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/elog/v2_select.cpp.o.d"
  "/root/repo/src/elog/v2_store.cpp" "CMakeFiles/st_core.dir/src/elog/v2_store.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/elog/v2_store.cpp.o.d"
  "/root/repo/src/iosim/campaign.cpp" "CMakeFiles/st_core.dir/src/iosim/campaign.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/iosim/campaign.cpp.o.d"
  "/root/repo/src/iosim/commands.cpp" "CMakeFiles/st_core.dir/src/iosim/commands.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/iosim/commands.cpp.o.d"
  "/root/repo/src/iosim/engine.cpp" "CMakeFiles/st_core.dir/src/iosim/engine.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/iosim/engine.cpp.o.d"
  "/root/repo/src/iosim/ior.cpp" "CMakeFiles/st_core.dir/src/iosim/ior.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/iosim/ior.cpp.o.d"
  "/root/repo/src/iosim/vfs.cpp" "CMakeFiles/st_core.dir/src/iosim/vfs.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/iosim/vfs.cpp.o.d"
  "/root/repo/src/model/activity_log.cpp" "CMakeFiles/st_core.dir/src/model/activity_log.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/model/activity_log.cpp.o.d"
  "/root/repo/src/model/case_stats.cpp" "CMakeFiles/st_core.dir/src/model/case_stats.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/model/case_stats.cpp.o.d"
  "/root/repo/src/model/event_log.cpp" "CMakeFiles/st_core.dir/src/model/event_log.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/model/event_log.cpp.o.d"
  "/root/repo/src/model/from_strace.cpp" "CMakeFiles/st_core.dir/src/model/from_strace.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/model/from_strace.cpp.o.d"
  "/root/repo/src/model/mapping.cpp" "CMakeFiles/st_core.dir/src/model/mapping.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/model/mapping.cpp.o.d"
  "/root/repo/src/model/query.cpp" "CMakeFiles/st_core.dir/src/model/query.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/model/query.cpp.o.d"
  "/root/repo/src/model/skew.cpp" "CMakeFiles/st_core.dir/src/model/skew.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/model/skew.cpp.o.d"
  "/root/repo/src/model/variants.cpp" "CMakeFiles/st_core.dir/src/model/variants.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/model/variants.cpp.o.d"
  "/root/repo/src/parallel/stage_queue.cpp" "CMakeFiles/st_core.dir/src/parallel/stage_queue.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/parallel/stage_queue.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "CMakeFiles/st_core.dir/src/parallel/thread_pool.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/pipeline/partial_codec.cpp" "CMakeFiles/st_core.dir/src/pipeline/partial_codec.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/pipeline/partial_codec.cpp.o.d"
  "/root/repo/src/pipeline/shard.cpp" "CMakeFiles/st_core.dir/src/pipeline/shard.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/pipeline/shard.cpp.o.d"
  "/root/repo/src/pipeline/sink.cpp" "CMakeFiles/st_core.dir/src/pipeline/sink.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/pipeline/sink.cpp.o.d"
  "/root/repo/src/pipeline/stream.cpp" "CMakeFiles/st_core.dir/src/pipeline/stream.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/pipeline/stream.cpp.o.d"
  "/root/repo/src/report/report.cpp" "CMakeFiles/st_core.dir/src/report/report.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/report/report.cpp.o.d"
  "/root/repo/src/strace/filename.cpp" "CMakeFiles/st_core.dir/src/strace/filename.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/strace/filename.cpp.o.d"
  "/root/repo/src/strace/parser.cpp" "CMakeFiles/st_core.dir/src/strace/parser.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/strace/parser.cpp.o.d"
  "/root/repo/src/strace/reader.cpp" "CMakeFiles/st_core.dir/src/strace/reader.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/strace/reader.cpp.o.d"
  "/root/repo/src/strace/reader_parallel.cpp" "CMakeFiles/st_core.dir/src/strace/reader_parallel.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/strace/reader_parallel.cpp.o.d"
  "/root/repo/src/strace/scan.cpp" "CMakeFiles/st_core.dir/src/strace/scan.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/strace/scan.cpp.o.d"
  "/root/repo/src/strace/scan_kernels.cpp" "CMakeFiles/st_core.dir/src/strace/scan_kernels.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/strace/scan_kernels.cpp.o.d"
  "/root/repo/src/strace/trace_buffer.cpp" "CMakeFiles/st_core.dir/src/strace/trace_buffer.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/strace/trace_buffer.cpp.o.d"
  "/root/repo/src/strace/writer.cpp" "CMakeFiles/st_core.dir/src/strace/writer.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/strace/writer.cpp.o.d"
  "/root/repo/src/support/cli.cpp" "CMakeFiles/st_core.dir/src/support/cli.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/support/cli.cpp.o.d"
  "/root/repo/src/support/cli_args.cpp" "CMakeFiles/st_core.dir/src/support/cli_args.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/support/cli_args.cpp.o.d"
  "/root/repo/src/support/crc32.cpp" "CMakeFiles/st_core.dir/src/support/crc32.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/support/crc32.cpp.o.d"
  "/root/repo/src/support/faultpoint.cpp" "CMakeFiles/st_core.dir/src/support/faultpoint.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/support/faultpoint.cpp.o.d"
  "/root/repo/src/support/si.cpp" "CMakeFiles/st_core.dir/src/support/si.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/support/si.cpp.o.d"
  "/root/repo/src/support/strings.cpp" "CMakeFiles/st_core.dir/src/support/strings.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/support/strings.cpp.o.d"
  "/root/repo/src/support/timeparse.cpp" "CMakeFiles/st_core.dir/src/support/timeparse.cpp.o" "gcc" "CMakeFiles/st_core.dir/src/support/timeparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
