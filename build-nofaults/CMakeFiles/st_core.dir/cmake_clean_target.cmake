file(REMOVE_RECURSE
  "libst_core.a"
)
