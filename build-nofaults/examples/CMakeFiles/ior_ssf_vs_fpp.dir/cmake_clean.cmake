file(REMOVE_RECURSE
  "CMakeFiles/ior_ssf_vs_fpp.dir/ior_ssf_vs_fpp.cpp.o"
  "CMakeFiles/ior_ssf_vs_fpp.dir/ior_ssf_vs_fpp.cpp.o.d"
  "ior_ssf_vs_fpp"
  "ior_ssf_vs_fpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ior_ssf_vs_fpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
