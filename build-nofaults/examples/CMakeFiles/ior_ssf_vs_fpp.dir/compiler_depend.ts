# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ior_ssf_vs_fpp.
