# Empty compiler generated dependencies file for ior_ssf_vs_fpp.
# This may be replaced when dependencies are built.
