file(REMOVE_RECURSE
  "CMakeFiles/campaign_runner.dir/campaign_runner.cpp.o"
  "CMakeFiles/campaign_runner.dir/campaign_runner.cpp.o.d"
  "campaign_runner"
  "campaign_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
