# Empty dependencies file for campaign_runner.
# This may be replaced when dependencies are built.
