# Empty dependencies file for trace_explorer.
# This may be replaced when dependencies are built.
