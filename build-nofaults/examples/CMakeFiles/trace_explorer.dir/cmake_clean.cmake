file(REMOVE_RECURSE
  "CMakeFiles/trace_explorer.dir/trace_explorer.cpp.o"
  "CMakeFiles/trace_explorer.dir/trace_explorer.cpp.o.d"
  "trace_explorer"
  "trace_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
