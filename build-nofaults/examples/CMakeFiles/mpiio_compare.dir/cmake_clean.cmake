file(REMOVE_RECURSE
  "CMakeFiles/mpiio_compare.dir/mpiio_compare.cpp.o"
  "CMakeFiles/mpiio_compare.dir/mpiio_compare.cpp.o.d"
  "mpiio_compare"
  "mpiio_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiio_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
