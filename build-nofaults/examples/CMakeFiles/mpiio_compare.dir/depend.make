# Empty dependencies file for mpiio_compare.
# This may be replaced when dependencies are built.
