file(REMOVE_RECURSE
  "CMakeFiles/elog_tool.dir/elog_tool.cpp.o"
  "CMakeFiles/elog_tool.dir/elog_tool.cpp.o.d"
  "elog_tool"
  "elog_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elog_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
