# Empty dependencies file for elog_tool.
# This may be replaced when dependencies are built.
