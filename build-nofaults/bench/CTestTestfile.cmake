# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-nofaults/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
