# Empty dependencies file for fig1_tracing.
# This may be replaced when dependencies are built.
