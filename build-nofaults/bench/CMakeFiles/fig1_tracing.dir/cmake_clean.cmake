file(REMOVE_RECURSE
  "CMakeFiles/fig1_tracing.dir/fig1_tracing.cpp.o"
  "CMakeFiles/fig1_tracing.dir/fig1_tracing.cpp.o.d"
  "fig1_tracing"
  "fig1_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
