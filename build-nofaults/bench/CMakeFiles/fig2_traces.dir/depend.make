# Empty dependencies file for fig2_traces.
# This may be replaced when dependencies are built.
