file(REMOVE_RECURSE
  "CMakeFiles/fig2_traces.dir/fig2_traces.cpp.o"
  "CMakeFiles/fig2_traces.dir/fig2_traces.cpp.o.d"
  "fig2_traces"
  "fig2_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
