file(REMOVE_RECURSE
  "CMakeFiles/bench_serve.dir/bench_serve.cpp.o"
  "CMakeFiles/bench_serve.dir/bench_serve.cpp.o.d"
  "bench_serve"
  "bench_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
