# Empty compiler generated dependencies file for bench_serve.
# This may be replaced when dependencies are built.
