# Empty compiler generated dependencies file for bench_elog.
# This may be replaced when dependencies are built.
