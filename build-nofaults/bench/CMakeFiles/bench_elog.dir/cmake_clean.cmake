file(REMOVE_RECURSE
  "CMakeFiles/bench_elog.dir/bench_elog.cpp.o"
  "CMakeFiles/bench_elog.dir/bench_elog.cpp.o.d"
  "bench_elog"
  "bench_elog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
