# Empty compiler generated dependencies file for fig7_ior_config.
# This may be replaced when dependencies are built.
