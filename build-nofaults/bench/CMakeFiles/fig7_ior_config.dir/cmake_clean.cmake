file(REMOVE_RECURSE
  "CMakeFiles/fig7_ior_config.dir/fig7_ior_config.cpp.o"
  "CMakeFiles/fig7_ior_config.dir/fig7_ior_config.cpp.o.d"
  "fig7_ior_config"
  "fig7_ior_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ior_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
