file(REMOVE_RECURSE
  "CMakeFiles/bench_parse.dir/bench_parse.cpp.o"
  "CMakeFiles/bench_parse.dir/bench_parse.cpp.o.d"
  "bench_parse"
  "bench_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
