# Empty dependencies file for bench_parse.
# This may be replaced when dependencies are built.
