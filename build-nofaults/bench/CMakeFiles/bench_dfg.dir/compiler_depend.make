# Empty compiler generated dependencies file for bench_dfg.
# This may be replaced when dependencies are built.
