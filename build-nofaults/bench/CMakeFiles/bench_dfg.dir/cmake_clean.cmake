file(REMOVE_RECURSE
  "CMakeFiles/bench_dfg.dir/bench_dfg.cpp.o"
  "CMakeFiles/bench_dfg.dir/bench_dfg.cpp.o.d"
  "bench_dfg"
  "bench_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
