file(REMOVE_RECURSE
  "CMakeFiles/abl_page_cache.dir/abl_page_cache.cpp.o"
  "CMakeFiles/abl_page_cache.dir/abl_page_cache.cpp.o.d"
  "abl_page_cache"
  "abl_page_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_page_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
