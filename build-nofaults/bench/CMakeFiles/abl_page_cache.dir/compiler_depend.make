# Empty compiler generated dependencies file for abl_page_cache.
# This may be replaced when dependencies are built.
