file(REMOVE_RECURSE
  "CMakeFiles/bench_sim.dir/bench_sim.cpp.o"
  "CMakeFiles/bench_sim.dir/bench_sim.cpp.o.d"
  "bench_sim"
  "bench_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
