file(REMOVE_RECURSE
  "CMakeFiles/fig6_workflow.dir/fig6_workflow.cpp.o"
  "CMakeFiles/fig6_workflow.dir/fig6_workflow.cpp.o.d"
  "fig6_workflow"
  "fig6_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
