# Empty compiler generated dependencies file for fig6_workflow.
# This may be replaced when dependencies are built.
