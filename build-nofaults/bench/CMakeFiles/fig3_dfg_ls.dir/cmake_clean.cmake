file(REMOVE_RECURSE
  "CMakeFiles/fig3_dfg_ls.dir/fig3_dfg_ls.cpp.o"
  "CMakeFiles/fig3_dfg_ls.dir/fig3_dfg_ls.cpp.o.d"
  "fig3_dfg_ls"
  "fig3_dfg_ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dfg_ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
