# Empty compiler generated dependencies file for fig3_dfg_ls.
# This may be replaced when dependencies are built.
