file(REMOVE_RECURSE
  "CMakeFiles/bench_render.dir/bench_render.cpp.o"
  "CMakeFiles/bench_render.dir/bench_render.cpp.o.d"
  "bench_render"
  "bench_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
