# Empty dependencies file for bench_render.
# This may be replaced when dependencies are built.
