file(REMOVE_RECURSE
  "CMakeFiles/fig5_timeline.dir/fig5_timeline.cpp.o"
  "CMakeFiles/fig5_timeline.dir/fig5_timeline.cpp.o.d"
  "fig5_timeline"
  "fig5_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
