# Empty dependencies file for fig5_timeline.
# This may be replaced when dependencies are built.
