file(REMOVE_RECURSE
  "CMakeFiles/fig4_filtered_dfg.dir/fig4_filtered_dfg.cpp.o"
  "CMakeFiles/fig4_filtered_dfg.dir/fig4_filtered_dfg.cpp.o.d"
  "fig4_filtered_dfg"
  "fig4_filtered_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_filtered_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
