# Empty dependencies file for fig4_filtered_dfg.
# This may be replaced when dependencies are built.
