# Empty dependencies file for bench_concurrency.
# This may be replaced when dependencies are built.
