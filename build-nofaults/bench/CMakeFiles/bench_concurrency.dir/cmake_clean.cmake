file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrency.dir/bench_concurrency.cpp.o"
  "CMakeFiles/bench_concurrency.dir/bench_concurrency.cpp.o.d"
  "bench_concurrency"
  "bench_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
