# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig8b_ssf_fpp_scratch.
