file(REMOVE_RECURSE
  "CMakeFiles/fig8b_ssf_fpp_scratch.dir/fig8b_ssf_fpp_scratch.cpp.o"
  "CMakeFiles/fig8b_ssf_fpp_scratch.dir/fig8b_ssf_fpp_scratch.cpp.o.d"
  "fig8b_ssf_fpp_scratch"
  "fig8b_ssf_fpp_scratch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_ssf_fpp_scratch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
