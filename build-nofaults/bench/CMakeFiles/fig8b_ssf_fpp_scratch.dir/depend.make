# Empty dependencies file for fig8b_ssf_fpp_scratch.
# This may be replaced when dependencies are built.
