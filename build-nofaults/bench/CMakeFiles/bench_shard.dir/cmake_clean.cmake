file(REMOVE_RECURSE
  "CMakeFiles/bench_shard.dir/bench_shard.cpp.o"
  "CMakeFiles/bench_shard.dir/bench_shard.cpp.o.d"
  "bench_shard"
  "bench_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
