# Empty dependencies file for bench_shard.
# This may be replaced when dependencies are built.
