# Empty dependencies file for bench_pipeline.
# This may be replaced when dependencies are built.
