file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline.dir/bench_pipeline.cpp.o"
  "CMakeFiles/bench_pipeline.dir/bench_pipeline.cpp.o.d"
  "bench_pipeline"
  "bench_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
