# Empty dependencies file for abl_contention.
# This may be replaced when dependencies are built.
