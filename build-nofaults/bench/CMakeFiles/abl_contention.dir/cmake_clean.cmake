file(REMOVE_RECURSE
  "CMakeFiles/abl_contention.dir/abl_contention.cpp.o"
  "CMakeFiles/abl_contention.dir/abl_contention.cpp.o.d"
  "abl_contention"
  "abl_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
