# Empty compiler generated dependencies file for bench_stats.
# This may be replaced when dependencies are built.
