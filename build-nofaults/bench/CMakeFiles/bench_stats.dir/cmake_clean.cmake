file(REMOVE_RECURSE
  "CMakeFiles/bench_stats.dir/bench_stats.cpp.o"
  "CMakeFiles/bench_stats.dir/bench_stats.cpp.o.d"
  "bench_stats"
  "bench_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
