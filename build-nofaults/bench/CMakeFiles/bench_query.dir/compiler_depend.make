# Empty compiler generated dependencies file for bench_query.
# This may be replaced when dependencies are built.
