file(REMOVE_RECURSE
  "CMakeFiles/bench_query.dir/bench_query.cpp.o"
  "CMakeFiles/bench_query.dir/bench_query.cpp.o.d"
  "bench_query"
  "bench_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
