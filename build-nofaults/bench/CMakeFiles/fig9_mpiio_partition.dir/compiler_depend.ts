# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig9_mpiio_partition.
