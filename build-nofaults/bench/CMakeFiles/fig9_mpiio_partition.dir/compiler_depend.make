# Empty compiler generated dependencies file for fig9_mpiio_partition.
# This may be replaced when dependencies are built.
