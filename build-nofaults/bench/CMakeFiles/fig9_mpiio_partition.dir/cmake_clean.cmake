file(REMOVE_RECURSE
  "CMakeFiles/fig9_mpiio_partition.dir/fig9_mpiio_partition.cpp.o"
  "CMakeFiles/fig9_mpiio_partition.dir/fig9_mpiio_partition.cpp.o.d"
  "fig9_mpiio_partition"
  "fig9_mpiio_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_mpiio_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
