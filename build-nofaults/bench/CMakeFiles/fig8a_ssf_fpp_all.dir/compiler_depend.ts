# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig8a_ssf_fpp_all.
