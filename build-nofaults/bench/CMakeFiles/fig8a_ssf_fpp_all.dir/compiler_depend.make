# Empty compiler generated dependencies file for fig8a_ssf_fpp_all.
# This may be replaced when dependencies are built.
