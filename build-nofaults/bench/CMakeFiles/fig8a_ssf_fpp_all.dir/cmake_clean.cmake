file(REMOVE_RECURSE
  "CMakeFiles/fig8a_ssf_fpp_all.dir/fig8a_ssf_fpp_all.cpp.o"
  "CMakeFiles/fig8a_ssf_fpp_all.dir/fig8a_ssf_fpp_all.cpp.o.d"
  "fig8a_ssf_fpp_all"
  "fig8a_ssf_fpp_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_ssf_fpp_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
