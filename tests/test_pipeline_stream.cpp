// Acceptance tests for the streaming trace -> EventLog -> DFG pipeline
// (pipeline/stream.hpp):
//   - streamed output is byte-identical to the staged path (sequential
//     per-file read + convert + build_parallel): case order, event
//     order, warning strings and their order, graph equality — at 1, 2
//     and 4 workers,
//   - trace_to_dfg's graph equals dfg::build_parallel on the same log,
//   - per-file fold completion (read_trace_files_streamed) matches the
//     sequential reader file by file,
//   - lifetime: the log owns every view after all intermediates die,
//   - error propagation is deterministic (lowest input index wins) and
//     a malformed file mid-batch shuts the pipeline down cleanly with
//     no task left touching destroyed state (ASan-verified).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dfg/builder.hpp"
#include "model/from_strace.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/stream.hpp"
#include "strace/reader.hpp"
#include "strace/writer.hpp"
#include "support/errors.hpp"
#include "support/timeparse.hpp"

namespace st {
namespace {

namespace fs = std::filesystem;

std::string ts(Micros t) { return format_time_of_day(t); }

/// A trace body with reads, opens, cross-line resume pairs and — when
/// `with_noise` — lines that provoke reader warnings.
std::string make_trace(std::size_t lines, bool with_noise, std::uint64_t pid_base = 7) {
  std::string text;
  Micros t = 36000000000;  // 10:00:00
  for (std::size_t i = 0; i < lines; ++i) {
    t += 100;
    const std::string pid = std::to_string(pid_base + i % 2);
    switch (i % 5) {
      case 0:
        text += pid + "  " + ts(t) + " read(3</p/data/f>, \"\"..., 512) = 512 <0.000040>\n";
        break;
      case 1:
        text += pid + "  " + ts(t) +
                " openat(AT_FDCWD, \"/p/scratch/ssf/test\", O_RDWR|O_CREAT, 0644) = 5 "
                "<0.000150>\n";
        break;
      case 2:
        text += pid + "  " + ts(t) +
                " pwrite64(5</p/scratch/ssf/test>, \"\"..., 1048576, 33554432) = 1048576 "
                "<0.000294>\n";
        break;
      case 3:
        if (with_noise && i % 15 == 3) {
          text += pid + "  " + ts(t) + " not_a_call_line\n";
        } else {
          text += pid + "  " + ts(t) + " read(3</p/data/f>, <unfinished ...>\n";
        }
        break;
      default:
        text += pid + "  " + ts(t) + " <... read resumed> \"\"..., 405) = 404 <0.000223>\n";
        break;
    }
  }
  return text;
}

/// A strict-clean trace: one pid, every unfinished/resumed pair
/// matches, no noise — parses without a single warning, so strict-mode
/// tests can inject failures precisely where they want them.
std::string make_clean_trace(std::size_t lines, std::uint64_t pid) {
  std::string text;
  Micros t = 36000000000;  // 10:00:00
  const std::string p = std::to_string(pid);
  for (std::size_t i = 0; i < lines; ++i) {
    t += 100;
    switch (i % 5) {
      case 0:
        text += p + "  " + ts(t) + " read(3</p/data/f>, \"\"..., 512) = 512 <0.000040>\n";
        break;
      case 1:
        text += p + "  " + ts(t) +
                " openat(AT_FDCWD, \"/p/scratch/ssf/test\", O_RDWR|O_CREAT, 0644) = 5 "
                "<0.000150>\n";
        break;
      case 2:
        text += p + "  " + ts(t) +
                " pwrite64(5</p/scratch/ssf/test>, \"\"..., 1048576, 33554432) = 1048576 "
                "<0.000294>\n";
        break;
      case 3:
        text += p + "  " + ts(t) + " read(3</p/data/f>, <unfinished ...>\n";
        break;
      default:
        text += p + "  " + ts(t) + " <... read resumed> \"\"..., 405) = 404 <0.000223>\n";
        break;
    }
  }
  return text;
}

class TempTraceDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_pipeline_" + std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& text) {
    const fs::path p = dir_ / name;
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << text;
    return p.string();
  }

  /// A randomized-shape corpus: one big file, several small ones, with
  /// and without noise, multiple hosts. Distinct salts produce distinct
  /// FILE NAMES too, so two corpora can coexist (and be parsed
  /// concurrently) in one test.
  std::vector<std::string> make_corpus(std::uint64_t salt = 0) {
    const std::string tag = "c" + std::to_string(salt);
    std::vector<std::string> paths;
    paths.push_back(write_file("big" + tag + "_nodeA_9001.st", make_trace(1100 + salt % 37, true)));
    for (int i = 0; i < 5; ++i) {
      paths.push_back(write_file(
          "s" + tag + std::to_string(i) + "_node" + (i % 2 ? "B" : "C") + "_" +
              std::to_string(9100 + i) + ".st",
          make_trace(30 + static_cast<std::size_t>(i) * 7 + salt % 11, i % 2 == 0,
                     static_cast<std::uint64_t>(100 + i))));
    }
    paths.push_back(write_file("empty" + tag + "_nodeA_9200.st", ""));
    return paths;
  }

  fs::path dir_;
};

/// The STAGED reference: sequential per-file read, serial conversion,
/// warnings prefixed and deduped exactly like the staged builder did.
model::EventLog staged_log(const std::vector<std::string>& paths) {
  model::EventLog log;
  for (const auto& p : paths) {
    const auto id = strace::parse_trace_filename(p);
    EXPECT_TRUE(id.has_value()) << p;
    const auto result = strace::read_trace_file(p);
    log.add_case(model::case_from_records(*id, result.records, log.arena()));
    log.adopt(result.buffer);
    for (const auto& warning : result.warnings) {
      const std::string prefixed = p + ": " + warning;
      if (!log.warnings().empty() && log.warnings().back() == prefixed) continue;
      log.add_warning(prefixed);
    }
  }
  return log;
}

void expect_same_log(const model::EventLog& a, const model::EventLog& b) {
  ASSERT_EQ(a.case_count(), b.case_count());
  for (std::size_t c = 0; c < a.case_count(); ++c) {
    const auto& ca = a.cases()[c];
    const auto& cb = b.cases()[c];
    ASSERT_EQ(ca.id(), cb.id()) << "case " << c;
    ASSERT_EQ(ca.size(), cb.size()) << "case " << c;
    for (std::size_t i = 0; i < ca.size(); ++i) {
      ASSERT_EQ(ca.events()[i], cb.events()[i]) << "case " << c << " event " << i;
    }
  }
  EXPECT_EQ(a.warnings(), b.warnings());
}

// ---- byte-identity with the staged path --------------------------------

using PipelineStream = TempTraceDir;

TEST_F(PipelineStream, StreamedLogMatchesStagedAt124Workers) {
  const auto paths = make_corpus();
  const auto reference = staged_log(paths);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    pipeline::StreamOptions opts;
    opts.min_chunk_bytes = 512;  // force many chunks per file
    const auto log = pipeline::event_log_streamed(paths, pool, opts);
    expect_same_log(reference, log);
  }
}

TEST_F(PipelineStream, TraceToDfgMatchesStagedBuildParallel) {
  const auto paths = make_corpus(3);
  const auto reference = staged_log(paths);
  const auto f = model::Mapping::call_top_dirs(2);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    pipeline::StreamOptions opts;
    opts.min_chunk_bytes = 512;
    const auto result = pipeline::trace_to_dfg(paths, f, pool, opts);
    expect_same_log(reference, result.log);
    // The streamed graph equals both the staged build_parallel and a
    // build over the streamed log itself.
    EXPECT_EQ(result.graph, dfg::build_parallel(reference, f, pool));
    EXPECT_EQ(result.graph, dfg::build_serial(result.log, f));
  }
}

TEST_F(PipelineStream, RepeatedRunsAreDeterministic) {
  // Scheduling may differ run to run; output may not.
  const auto paths = make_corpus(7);
  ThreadPool pool(4);
  pipeline::StreamOptions opts;
  opts.min_chunk_bytes = 256;
  opts.queue_capacity = 2;  // tight queue: exercise backpressure
  const auto first = pipeline::event_log_streamed(paths, pool, opts);
  for (int round = 0; round < 5; ++round) {
    const auto log = pipeline::event_log_streamed(paths, pool, opts);
    expect_same_log(first, log);
  }
}

TEST_F(PipelineStream, EventLogFromFilesIsTheStreamingPath) {
  // The public entry point is rebuilt on the pipeline; it must still
  // match the staged reference byte for byte.
  const auto paths = make_corpus(11);
  const auto reference = staged_log(paths);
  expect_same_log(reference, model::event_log_from_files(paths, 1));
  expect_same_log(reference, model::event_log_from_files(paths, 4));
}

TEST_F(PipelineStream, EmptyInputs) {
  ThreadPool pool(2);
  const auto log = pipeline::event_log_streamed({}, pool);
  EXPECT_EQ(log.case_count(), 0u);
  const auto result = pipeline::trace_to_dfg({}, model::Mapping::call_only(), pool);
  EXPECT_TRUE(result.graph.empty());
}

// ---- per-file fold completion (reader layer) ---------------------------

TEST_F(PipelineStream, StreamedReaderMatchesSequentialPerFile) {
  const auto paths = make_corpus(5);
  strace::ParallelReadOptions opts;
  opts.threads = 3;
  opts.min_chunk_bytes = 256;

  std::mutex mu;
  std::vector<std::optional<strace::ReadResult>> streamed(paths.size());
  std::atomic<int> done_calls{0};
  {
    auto handle = strace::read_trace_files_streamed(
        paths, opts,
        [&](std::size_t i, strace::ReadResult&& r) {
          std::lock_guard lock(mu);
          ASSERT_FALSE(streamed[i].has_value()) << "file " << i << " delivered twice";
          streamed[i] = std::move(r);
        },
        [&] { done_calls.fetch_add(1); });
    handle.wait();
  }
  EXPECT_EQ(done_calls.load(), 1);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    ASSERT_TRUE(streamed[i].has_value()) << paths[i];
    const auto seq = strace::read_trace_file(paths[i]);
    ASSERT_EQ(seq.records.size(), streamed[i]->records.size()) << paths[i];
    for (std::size_t r = 0; r < seq.records.size(); ++r) {
      ASSERT_EQ(strace::format_record(seq.records[r]),
                strace::format_record(streamed[i]->records[r]))
          << paths[i] << " record " << r;
    }
    EXPECT_EQ(seq.warnings, streamed[i]->warnings);
  }
}

TEST_F(PipelineStream, StreamedHandleMoveAssignmentJoinsReplacedParse) {
  // Assigning over a live handle must join the old parse first — its
  // tasks hold raw pointers into the replaced state.
  const auto batch1 = make_corpus(21);
  const auto batch2 = make_corpus(22);
  strace::ParallelReadOptions opts;
  opts.threads = 3;
  opts.min_chunk_bytes = 256;

  std::mutex mu;
  std::vector<int> delivered1(batch1.size(), 0);
  std::vector<int> delivered2(batch2.size(), 0);
  auto handle = strace::read_trace_files_streamed(
      batch1, opts, [&](std::size_t i, strace::ReadResult&&) {
        std::lock_guard lock(mu);
        ++delivered1[i];
      });
  handle = strace::read_trace_files_streamed(
      batch2, opts, [&](std::size_t i, strace::ReadResult&&) {
        std::lock_guard lock(mu);
        ++delivered2[i];
      });
  // The replaced parse was joined by the assignment: every batch1 file
  // has already been delivered exactly once.
  {
    std::lock_guard lock(mu);
    for (std::size_t i = 0; i < batch1.size(); ++i) EXPECT_EQ(delivered1[i], 1) << i;
  }
  handle.wait();
  for (std::size_t i = 0; i < batch2.size(); ++i) EXPECT_EQ(delivered2[i], 1) << i;
}

TEST_F(PipelineStream, StreamedReaderZeroFilesStillSignalsAllDone) {
  std::atomic<int> done_calls{0};
  strace::ParallelReadOptions opts;
  opts.threads = 2;
  auto handle = strace::read_trace_files_streamed(
      {}, opts, [](std::size_t, strace::ReadResult&&) { FAIL() << "no files to deliver"; },
      [&] { done_calls.fetch_add(1); });
  handle.wait();
  EXPECT_EQ(done_calls.load(), 1);
  EXPECT_FALSE(handle.error().has_value());
}

// ---- lifetime ----------------------------------------------------------

TEST_F(PipelineStream, LogOwnsEveryViewAfterIntermediatesDie) {
  const auto paths = make_corpus(13);
  model::EventLog log;
  {
    ThreadPool pool(3);
    pipeline::StreamOptions opts;
    opts.min_chunk_bytes = 512;
    log = pipeline::event_log_streamed(paths, pool, opts);
  }  // pool and every pipeline intermediate destroyed here
  // Overwrite the files on disk: the log must not notice.
  for (const auto& p : paths) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << std::string(4096, 'X');
  }
  ASSERT_GT(log.total_events(), 0u);
  for (const auto& c : log.cases()) {
    EXPECT_FALSE(c.id().cid.empty());
    for (const auto& e : c.events()) {
      EXPECT_FALSE(e.call.empty());
      EXPECT_EQ(e.cid, c.id().cid);
      EXPECT_EQ(e.host, c.id().host);
    }
  }
}

// ---- error determinism + shutdown ordering -----------------------------

TEST_F(PipelineStream, BadFileNameThrowsFirstInInputOrderBeforeIo) {
  const auto good = write_file("ok_host1_1.st", make_trace(10, false));
  const std::vector<std::string> paths = {good, (dir_ / "nounderscore.st").string(),
                                          (dir_ / "alsobad.st").string()};
  ThreadPool pool(2);
  try {
    (void)pipeline::event_log_streamed(paths, pool);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nounderscore"), std::string::npos) << e.what();
  }
}

TEST_F(PipelineStream, MalformedFileMidBatchShutsDownCleanly) {
  // Regression for pipeline shutdown ordering: a strict-mode parse
  // error in the MIDDLE of the batch throws while later files are
  // still parsing and conversions are still enqueued. Every task must
  // be awaited before the rethrow — under ASan this test fails loudly
  // if any continuation touches a destroyed arena or stack slot.
  std::vector<std::string> paths;
  paths.push_back(write_file("a_nodeA_1.st", make_clean_trace(600, 40)));
  paths.push_back(write_file("b_nodeA_2.st", make_clean_trace(400, 50)));
  paths.push_back(write_file("bad_nodeA_3.st",
                             make_clean_trace(80, 60) + "9  10:00:09.000000 garbage\n" +
                                 make_clean_trace(80, 70)));
  paths.push_back(write_file("c_nodeA_4.st", make_clean_trace(500, 80)));
  paths.push_back(write_file("d_nodeA_5.st", make_clean_trace(300, 90)));

  ThreadPool pool(4);
  pipeline::StreamOptions opts;
  opts.strict = true;
  opts.min_chunk_bytes = 256;
  opts.queue_capacity = 1;  // maximal backpressure while failing
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW((void)pipeline::event_log_streamed(paths, pool, opts), ParseError)
        << "round " << round;
    EXPECT_THROW((void)pipeline::trace_to_dfg(paths, model::Mapping::call_only(), pool, opts),
                 ParseError)
        << "round " << round;
  }
  // The pool survives the failed runs and is still usable.
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
  // Non-strict, the same batch builds fine and the defect is a warning.
  pipeline::StreamOptions lenient;
  lenient.min_chunk_bytes = 256;
  const auto log = pipeline::event_log_streamed(paths, pool, lenient);
  EXPECT_EQ(log.case_count(), paths.size());
  ASSERT_FALSE(log.warnings().empty());
  EXPECT_NE(log.warnings().front().find("bad_nodeA_3.st"), std::string::npos);
}

TEST_F(PipelineStream, LowestInputIndexErrorWinsDeterministically) {
  // Two malformed files; the error must always name the earlier one,
  // no matter how the pool schedules the work.
  std::vector<std::string> paths;
  paths.push_back(write_file("ok_nodeA_1.st", make_clean_trace(400, 30)));
  paths.push_back(write_file("bad1_nodeA_2.st", "8  10:00:00.000000 garbage one\n"));
  paths.push_back(write_file("ok_nodeA_3.st", make_clean_trace(200, 40)));
  paths.push_back(write_file("bad2_nodeA_4.st", "9  10:00:00.000000 garbage two\n"));

  ThreadPool pool(4);
  pipeline::StreamOptions opts;
  opts.strict = true;
  opts.min_chunk_bytes = 256;
  for (int round = 0; round < 15; ++round) {
    try {
      (void)pipeline::event_log_streamed(paths, pool, opts);
      FAIL() << "expected ParseError, round " << round;
    } catch (const ParseError& e) {
      // The strict error for bad1 (input index 1) must win over bad2's.
      EXPECT_NE(std::string(e.what()).find("garbage one"), std::string::npos)
          << "round " << round << ": " << e.what();
    }
  }
}

}  // namespace
}  // namespace st
