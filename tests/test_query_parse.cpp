// Query::parse — the inverse of describe() (ISSUE 9).
//
// The contract under test:
//   - parse(q.describe()).describe() == q.describe() for EVERY
//     restriction combination (the same 32-combination sweep
//     test_query_describe enumerates, plus quoted-atom cases);
//   - lenient input (extra spaces, unsorted sets, duplicate clauses)
//     parses and canonicalizes — parse-then-describe is idempotent;
//   - malformed input throws QueryParseError carrying the byte offset
//     of the offending character;
//   - parsed queries FILTER identically to built ones (the grammar
//     carries the whole restriction, not a rendering of it).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/query.hpp"

namespace st::model {
namespace {

Query build(unsigned mask) {
  Query q;
  if (mask & 1u) q = q.fp_contains("/p/scratch");
  if (mask & 2u) q = q.calls({"read", "write"});
  if (mask & 4u) q = q.between(10, 200);
  if (mask & 8u) q = q.cids({"a", "b"});
  if (mask & 16u) q = q.hosts({"node1"});
  return q;
}

TEST(QueryParse, RoundTripsEveryRestrictionCombination) {
  for (unsigned mask = 0; mask < 32; ++mask) {
    const Query q = build(mask);
    const std::string canonical = q.describe();
    const Query reparsed = Query::parse(canonical);
    EXPECT_EQ(reparsed.describe(), canonical) << "mask " << mask;
    EXPECT_TRUE(reparsed == q) << "mask " << mask;
  }
}

TEST(QueryParse, RoundTripsQuotedAtoms) {
  const std::vector<Query> queries = {
      Query().fp_contains("with space"),
      Query().fp_contains("a\"b").fp_contains("back\\slash"),
      Query().fp_contains(std::string("nul\0byte", 8)),
      Query().fp_contains(""),
      Query().cids({"a,b", "plain"}),
      Query().hosts({"brace{y}"}),
      Query().calls({"we ird", "read"}),
  };
  for (const auto& q : queries) {
    const std::string canonical = q.describe();
    EXPECT_EQ(Query::parse(canonical).describe(), canonical) << canonical;
    EXPECT_TRUE(Query::parse(canonical) == q) << canonical;
  }
}

TEST(QueryParse, CanonicalizesLenientSpellings) {
  // unsorted sets, extra spaces, spaces inside braces
  EXPECT_EQ(Query::parse("  calls{write , read}   fp~/p ").describe(),
            "fp~/p calls{read,write}");
  EXPECT_EQ(Query::parse("hosts{n2,n1,n2}").describe(), "hosts{n1,n2}");
  EXPECT_EQ(Query::parse("   all   ").describe(), "all");
  EXPECT_EQ(Query::parse("t[ 10 , 200 )").describe(), "t[10,200)");
}

TEST(QueryParse, DuplicateClausesAreConjunctiveForFpLastWinsForSets) {
  // fp~ restrictions are conjunctive, so repeats accumulate...
  EXPECT_EQ(Query::parse("fp~b fp~a").describe(), "fp~a fp~b");
  // ...while the set-valued clauses REPLACE (a later clause is a
  // sharper statement of the same restriction).
  EXPECT_EQ(Query::parse("cids{a} cids{b}").describe(), "cids{b}");
  EXPECT_EQ(Query::parse("t[0,5) t[10,20)").describe(), "t[10,20)");
}

TEST(QueryParse, ParsedQueriesFilterLikeBuiltOnes) {
  EventLog log;
  log.add_case(Case(
      CaseId{"a", "node1", 1},
      {Event{.cid = "a", .host = "node1", .call = "read", .start = 50, .dur = 1, .fp = "/p/data/f"},
       Event{.cid = "a", .host = "node1", .call = "write", .start = 150, .dur = 1,
             .fp = "/p/scratch/t"}}));
  log.add_case(Case(CaseId{"b", "node2", 2}, {Event{.cid = "b", .host = "node2", .call = "read",
                                                    .start = 60, .dur = 1, .fp = "/p/scratch/u"}}));

  const auto parsed = Query::parse("fp~/p/scratch t[10,200) hosts{node1}");
  const auto built = Query().fp_contains("/p/scratch").between(10, 200).hosts({"node1"});
  ASSERT_TRUE(parsed == built);
  const auto via_parsed = parsed.apply(log);
  const auto via_built = built.apply(log);
  ASSERT_EQ(via_parsed.case_count(), via_built.case_count());
  EXPECT_EQ(via_parsed.total_events(), via_built.total_events());
  ASSERT_EQ(via_parsed.case_count(), 1u);
  EXPECT_EQ(via_parsed.cases()[0].events().size(), 1u);
  EXPECT_EQ(via_parsed.cases()[0].events()[0].fp, "/p/scratch/t");
}

struct BadInput {
  std::string text;
  std::size_t position;  ///< expected QueryParseError::position()
};

TEST(QueryParse, RejectsMalformedInputWithPosition) {
  const std::vector<BadInput> bad = {
      {"", 0},                    // empty request is not a query ("all" is)
      {"   ", 3},                 // only spaces
      {"bogus", 0},               // unknown clause
      {"all extra", 0},           // trailing garbage after "all"
      {"fp~", 3},                 // empty bare value
      {"fp~{x}", 3},              // brace needs quoting
      {"calls{read", 10},         // unterminated set
      {"calls{read,", 11},        // dangling comma
      {"cids{a b}", 7},           // missing comma
      {"t[10,200]", 8},           // closed interval spelling
      {"t[10 200)", 5},           // missing comma
      {"t[x,200)", 2},            // non-integer bound
      {"fp~\"unterminated", 16},  // unterminated quote
      {"fp~\"bad\\q\"", 8},       // unknown escape
      {"fp~\"bad\\xg0\"", 9},     // bad hex escape (points at the g)
      {"fp~\"trunc\\x1", 11},     // truncated hex escape (just past the x)
      {"fp~a calls{read} junk", 17},
      {"fp~a  t[1,2) hosts", 13},  // hosts without braces
  };
  for (const auto& b : bad) {
    try {
      (void)Query::parse(b.text);
      FAIL() << "not rejected: [" << b.text << "]";
    } catch (const QueryParseError& e) {
      EXPECT_EQ(e.position(), b.position) << "[" << b.text << "]: " << e.what();
      // The offset is also embedded in the message (CLI users see
      // what() only).
      EXPECT_NE(std::string(e.what()).find("at offset"), std::string::npos);
    }
  }
}

TEST(QueryParse, QueryParseErrorIsAParseError) {
  // Generic CLI/server error handling catches st::ParseError; the
  // typed subclass must flow through it.
  EXPECT_THROW((void)Query::parse("bogus"), ParseError);
}

}  // namespace
}  // namespace st::model
