// ISSUE 8 acceptance: the site x kind fault matrix. Every injected
// fault must end in exactly one of
//   - byte-identical recovered output (supervision retried or fell
//     back, or a hang merely delayed the run),
//   - a typed IoError/ParseError (the documented strict-mode contract),
//   - a clean quarantine under keep_going (structured warning, the run
//     completes over the surviving inputs),
// and NEVER in a hang, a crash of the coordinating process, or a
// half-merged sink. The subprocess half of the matrix (shard.child
// sites, env-inherited injection, deadline kills) is gated on
// ST_ELOG_TOOL like test_shard's spawned cases.
#include "support/faultpoint.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "elog/store.hpp"
#include "elog/v2_select.hpp"
#include "elog/v2_store.hpp"
#include "model/mapping.hpp"
#include "model/query.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/shard.hpp"
#include "pipeline/sink.hpp"
#include "pipeline/stream.hpp"
#include "report/report.hpp"
#include "strace/trace_buffer.hpp"
#include "support/errors.hpp"
#include "testing_corpus.hpp"

namespace st {
namespace {

using fault::Kind;
using fault::ScopedFault;
using fault::Spec;
using testing::expect_same_log;

/// `run(paths, pool, {})` is ambiguous between the span and the
/// brace-list overloads; name the empty sink set once.
constexpr std::initializer_list<pipeline::CaseSink*> kNoSinks = {};

Spec spec(Kind kind, std::uint64_t nth = 1, std::uint32_t hang_ms = 200) {
  Spec s;
  s.kind = kind;
  s.nth = nth;
  s.hang_ms = hang_ms;
  return s;
}

/// Arms ST_FAULTS for spawned children (the parent's registry loaded an
/// empty environment at startup and stays disarmed); scrubbed again on
/// scope exit so no later test inherits the injection.
struct EnvFault {
  explicit EnvFault(const char* config) { ::setenv("ST_FAULTS", config, 1); }
  EnvFault(const EnvFault&) = delete;
  EnvFault& operator=(const EnvFault&) = delete;
  ~EnvFault() { ::unsetenv("ST_FAULTS"); }
};

const char* elog_tool_exe() {
  const char* exe = std::getenv("ST_ELOG_TOOL");
  if (exe == nullptr || *exe == '\0' || !std::filesystem::exists(exe)) return nullptr;
  return exe;
}

// ---- registry grammar and semantics ------------------------------------

TEST(FaultSpec, GrammarParses) {
  EXPECT_EQ(fault::parse_spec("error").kind, Kind::kError);
  EXPECT_EQ(fault::parse_spec("error").nth, 1u);
  EXPECT_EQ(fault::parse_spec("exit").kind, Kind::kExit);
  EXPECT_EQ(fault::parse_spec("truncate").kind, Kind::kTruncate);
  EXPECT_EQ(fault::parse_spec("bitflip:0").kind, Kind::kBitflip);
  EXPECT_EQ(fault::parse_spec("bitflip:0").nth, 0u);
  EXPECT_EQ(fault::parse_spec("error:3").nth, 3u);
  EXPECT_EQ(fault::parse_spec("hang_ms250").kind, Kind::kHang);
  EXPECT_EQ(fault::parse_spec("hang_ms250").hang_ms, 250u);
  EXPECT_EQ(fault::parse_spec("hang_ms").hang_ms, 200u);  // default sleep
  EXPECT_THROW((void)fault::parse_spec(""), ParseError);
  EXPECT_THROW((void)fault::parse_spec("explode"), ParseError);
  EXPECT_THROW((void)fault::parse_spec("error:x"), ParseError);
  EXPECT_THROW((void)fault::parse_spec("hang_msX"), ParseError);
}

TEST(FaultSpec, EnvGrammarArmsAndDisarms) {
  ASSERT_FALSE(fault::armed());
  fault::load_env("reader.open=error:2,codec.decode=bitflip");
  EXPECT_TRUE(fault::armed());
  const auto sites = fault::armed_sites();
  EXPECT_EQ(sites.size(), 2u);
  EXPECT_THROW(fault::load_env("reader.open"), ParseError);  // no '='
  fault::disarm_all();
  EXPECT_FALSE(fault::armed());
}

TEST(FaultSpec, NthTargetsExactlyThatHit) {
  const ScopedFault f("t.nth", spec(Kind::kError, 2));
  EXPECT_NO_THROW(fault::point("t.nth"));                   // hit 1
  EXPECT_THROW(fault::point("t.nth"), fault::FaultInjected);  // hit 2 fires
  EXPECT_NO_THROW(fault::point("t.nth"));                   // one-shot: healed
  EXPECT_EQ(fault::hits("t.nth"), 3u);
  EXPECT_NO_THROW(fault::point("t.other"));  // unarmed site is free
}

TEST(FaultSpec, NthZeroIsPersistent) {
  const ScopedFault f("t.persistent", spec(Kind::kError, 0));
  EXPECT_THROW(fault::point("t.persistent"), fault::FaultInjected);
  EXPECT_THROW(fault::point("t.persistent"), fault::FaultInjected);
}

TEST(FaultSpec, DataKindsMutateBytesAndDegradeAtControlSites) {
  {
    const ScopedFault f("t.data", spec(Kind::kTruncate));
    std::string bytes = "0123456789";
    fault::point_data("t.data", bytes);
    EXPECT_EQ(bytes, "01234");  // second half dropped
  }
  {
    const ScopedFault f("t.data", spec(Kind::kBitflip));
    std::string bytes = "aaaa";
    fault::point_data("t.data", bytes);
    EXPECT_NE(bytes, "aaaa");
    EXPECT_EQ(bytes.size(), 4u);
  }
  {
    const ScopedFault f("t.data", spec(Kind::kBitflip));
    std::string scratch;
    const std::string_view original = "aaaa";
    const std::string_view corrupted = fault::corrupt_view("t.data", original, scratch);
    EXPECT_NE(corrupted, original);
    EXPECT_EQ(original, "aaaa");  // source untouched
  }
  // truncate/bitflip armed at a CONTROL site degrade to error.
  const ScopedFault f("t.control", spec(Kind::kTruncate));
  EXPECT_THROW(fault::point("t.control"), fault::FaultInjected);
}

// ---- the in-process matrix ---------------------------------------------

class Faults : public testing::CorpusTest {
 protected:
  Faults() : CorpusTest("st_faults") {}

  static constexpr const char* kPipelineSites[] = {
      "reader.open", "reader.chunk", "queue.push",
      "pipeline.convert", "sink.fold", "sink.merge"};
};

TEST_F(Faults, ErrorAtEveryPipelineSiteIsATypedIoErrorStrict) {
  const auto paths = make_corpus();
  ThreadPool pool(2);
  const model::EventLog reference = pipeline::event_log_streamed(paths, pool);
  for (const char* site : kPipelineSites) {
    {
      const ScopedFault f(site, spec(Kind::kError));
      EXPECT_THROW((void)pipeline::event_log_streamed(paths, pool), IoError) << site;
    }
    // The failed run left nothing behind: a clean rerun on the same
    // pool is byte-identical.
    expect_same_log(reference, pipeline::event_log_streamed(paths, pool));
  }
}

TEST_F(Faults, FailingRunNeverHalfMergesASink) {
  const auto paths = make_corpus();
  ThreadPool pool(2);
  const auto f = model::mapping_by_name("top2");
  for (const char* site : kPipelineSites) {
    pipeline::DfgSink graph_sink(f);
    pipeline::CaseStatsSink stats_sink;
    const ScopedFault fp(site, spec(Kind::kError));
    EXPECT_THROW((void)pipeline::run(paths, pool, {&graph_sink, &stats_sink}), IoError) << site;
    EXPECT_TRUE(graph_sink.graph().empty()) << site;
    EXPECT_TRUE(stats_sink.summaries().empty()) << site;
  }
}

TEST_F(Faults, HangAtEveryPipelineSiteOnlyDelaysTheRun) {
  const auto paths = make_corpus();
  ThreadPool pool(2);
  const model::EventLog reference = pipeline::event_log_streamed(paths, pool);
  for (const char* site : kPipelineSites) {
    const ScopedFault f(site, spec(Kind::kHang, 1, 30));
    expect_same_log(reference, pipeline::event_log_streamed(paths, pool));
  }
}

TEST_F(Faults, KeepGoingQuarantinesAnInjectedOpenFailure) {
  const auto paths = make_corpus();
  ThreadPool pool(2);
  pipeline::StreamOptions opts;
  opts.keep_going = true;

  // run() opens buffers in input order, so hit 1 is paths[0].
  const ScopedFault f("reader.open", spec(Kind::kError));
  pipeline::DataHealth health;
  const auto log = pipeline::run(paths, pool, kNoSinks, opts, &health);
  EXPECT_EQ(log.case_count(), paths.size() - 1);
  ASSERT_FALSE(log.warnings().empty());
  EXPECT_EQ(log.warnings().front(),
            paths[0] + ": skipped: io error: fault injected at reader.open");
  EXPECT_EQ(health.files_requested, paths.size());
  EXPECT_EQ(health.files_skipped, 1u);
  EXPECT_EQ(health.cases_quarantined, 0u);
  EXPECT_EQ(health.files_ingested, paths.size() - 1);
  EXPECT_EQ(health.warnings_by_class.at("file-skipped"), 1u);
}

TEST_F(Faults, KeepGoingQuarantinesAnInjectedConvertFailure) {
  // Single file: the one convert task is deterministically the target.
  const std::vector<std::string> paths = {write_file("only_nodeA_1.st", testing::make_trace(40, false))};
  ThreadPool pool(2);
  pipeline::StreamOptions opts;
  opts.keep_going = true;
  const ScopedFault f("pipeline.convert", spec(Kind::kError));
  pipeline::DataHealth health;
  const auto log = pipeline::run(paths, pool, kNoSinks, opts, &health);
  EXPECT_EQ(log.case_count(), 0u);
  ASSERT_EQ(log.warnings().size(), 1u);
  EXPECT_EQ(log.warnings().front(),
            paths[0] + ": case quarantined: io error: fault injected at pipeline.convert");
  EXPECT_EQ(health.cases_quarantined, 1u);
  EXPECT_EQ(health.warnings_by_class.at("case-quarantined"), 1u);
}

TEST_F(Faults, KeepGoingNeverRescuesTheMergePhase) {
  // sink.merge fires before the first merge: even under keep_going the
  // run aborts with the typed error and no sink sees a partial merge.
  const auto paths = make_corpus();
  ThreadPool pool(2);
  const auto f = model::mapping_by_name("top2");
  pipeline::DfgSink graph_sink(f);
  pipeline::StreamOptions opts;
  opts.keep_going = true;
  const ScopedFault fp("sink.merge", spec(Kind::kError));
  EXPECT_THROW((void)pipeline::run(paths, pool, {&graph_sink}, opts), IoError);
  EXPECT_TRUE(graph_sink.graph().empty());
}

TEST_F(Faults, KeepGoingSkipsAMissingFileWithAPinnedWarning) {
  auto paths = make_corpus();
  const std::string missing = (dir_ / "ghost_nodeA_1.st").string();
  paths.insert(paths.begin() + 1, missing);
  ThreadPool pool(2);

  EXPECT_THROW((void)pipeline::event_log_streamed(paths, pool), IoError);  // strict

  pipeline::StreamOptions opts;
  opts.keep_going = true;
  pipeline::DataHealth health;
  const auto log = pipeline::run(paths, pool, kNoSinks, opts, &health);
  EXPECT_EQ(log.case_count(), paths.size() - 1);
  EXPECT_EQ(health.files_skipped, 1u);
  bool found = false;
  for (const auto& w : log.warnings()) {
    if (w == missing + ": skipped: io error: cannot open trace file: " + missing) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(Faults, KeepGoingShardedMatchesKeepGoingStreamedByteForByte) {
  auto paths = make_corpus();
  paths.insert(paths.begin() + 2, (dir_ / "ghost_nodeB_2.st").string());
  paths.push_back(write_file("badname.txt", "x\n"));
  const auto f = model::mapping_by_name("top2");

  ThreadPool pool(2);
  pipeline::StreamOptions stream_opts;
  stream_opts.keep_going = true;
  const auto reference = report::streaming_report(paths, f, pool, {}, stream_opts);

  pipeline::ShardOptions opts;
  opts.shards = 3;
  opts.mapping = "top2";
  opts.worker_threads = 2;
  opts.stream.keep_going = true;
  const auto analytics = pipeline::run_sharded(paths, opts);
  EXPECT_EQ(analytics.warnings, reference.log.warnings());
  EXPECT_EQ(report::render_sharded_report(analytics, f), reference.html);

  // And across the process boundary: --keep-going must reach the
  // fold-shard argv (and the coordinator must skip the strict upfront
  // filename validation).
  if (const char* exe = elog_tool_exe()) {
    opts.fold_shard_exe = exe;
    const auto spawned = pipeline::run_sharded(paths, opts);
    EXPECT_EQ(spawned.warnings, reference.log.warnings());
    EXPECT_EQ(report::render_sharded_report(spawned, f), reference.html);
  }
}

// ---- zero-byte and truncated trace inputs (robustness satellites) ------

TEST_F(Faults, ZeroByteTraceIsAnEmptyCaseInBothModes) {
  const std::vector<std::string> paths = {write_file("zero_nodeA_1.st", "")};
  // Both buffer paths agree on the bytes.
  EXPECT_EQ(strace::TraceBuffer::from_file(paths[0])->text(),
            strace::TraceBuffer::from_file_mmap(paths[0])->text());

  ThreadPool pool(2);
  const auto strict = pipeline::event_log_streamed(paths, pool);
  EXPECT_EQ(strict.case_count(), 1u);
  EXPECT_EQ(strict.total_events(), 0u);
  EXPECT_TRUE(strict.warnings().empty());

  pipeline::StreamOptions opts;
  opts.keep_going = true;
  expect_same_log(strict, pipeline::event_log_streamed(paths, pool, opts));

  pipeline::ShardOptions sopts;
  sopts.shards = 2;
  const auto analytics = pipeline::run_sharded(paths, sopts);
  EXPECT_EQ(analytics.case_count, 1u);
  EXPECT_EQ(analytics.total_events, 0u);
}

TEST_F(Faults, TruncatedFinalLineWarnsIdenticallyInBothModes) {
  // A trace cut mid-line (no trailing newline): the final fragment is a
  // malformed line — a warning, never an abort, in strict and
  // keep_going alike, through pipeline::run and run_sharded.
  std::string text = testing::make_trace(10, false);
  // Cut mid-timestamp: a fragment like this cannot parse as ANY record
  // kind (a cut inside the argument list would read as an unfinished
  // call, which is a different warning class).
  text += "7  10:00:5";  // writer died mid-line
  const std::vector<std::string> paths = {write_file("cut_nodeA_3.st", text)};
  EXPECT_EQ(strace::TraceBuffer::from_file(paths[0])->text(),
            strace::TraceBuffer::from_file_mmap(paths[0])->text());

  ThreadPool pool(2);
  const auto strict = pipeline::event_log_streamed(paths, pool);
  ASSERT_FALSE(strict.warnings().empty());
  // The fragment is line 11; "never resumed" warnings sort after line
  // warnings, so search rather than assume it's last.
  std::size_t malformed = 0;
  for (const auto& warning : strict.warnings()) {
    if (warning.find(": line 11: ") != std::string::npos) {
      ++malformed;
      EXPECT_EQ(pipeline::classify_warning(warning), "malformed-line");
    }
  }
  EXPECT_EQ(malformed, 1u);

  pipeline::StreamOptions opts;
  opts.keep_going = true;
  expect_same_log(strict, pipeline::event_log_streamed(paths, pool, opts));

  pipeline::ShardOptions sopts;
  sopts.shards = 2;
  EXPECT_EQ(pipeline::run_sharded(paths, sopts).warnings, strict.warnings());
}

// ---- elog v2 CRC quarantine --------------------------------------------

TEST_F(Faults, ElogCrcFaultQuarantinesOneCaseUnderKeepGoing) {
  const auto paths = make_corpus();
  ThreadPool pool(2);
  const auto log = pipeline::event_log_streamed(paths, pool);
  const std::string elog_path = (dir_ / "corpus.elog").string();
  elog::write_event_log_v2_file(elog_path, log);

  // Hit 1 validates the case directory at open; hit 2 is the string
  // pool on the first case's materialization — the first per-case CRC.
  {
    const ScopedFault f("elog.crc", spec(Kind::kError, 2));
    EXPECT_THROW((void)elog::read_event_log_file(elog_path), IoError);  // strict
  }
  {
    const ScopedFault f("elog.crc", spec(Kind::kError, 2));
    const auto recovered = elog::read_event_log_file(elog_path, elog::ElogReadOptions{true});
    EXPECT_EQ(recovered.case_count(), log.case_count() - 1);
    ASSERT_EQ(recovered.warnings().size(), 1u);
    EXPECT_EQ(recovered.warnings().front(),
              "case 0 (big_nodeA_9001) quarantined: io error: fault injected at elog.crc");
    EXPECT_EQ(pipeline::classify_warning(recovered.warnings().front()), "case-quarantined");
  }
  // Disarmed, the same file reads whole again.
  EXPECT_EQ(elog::read_event_log_file(elog_path).case_count(), log.case_count());
}

TEST_F(Faults, ElogOpenFaultIsStructuralEvenUnderKeepGoing) {
  const auto paths = make_corpus();
  ThreadPool pool(2);
  const std::string elog_path = (dir_ / "corpus.elog").string();
  elog::write_event_log_v2_file(elog_path, pipeline::event_log_streamed(paths, pool));
  const ScopedFault f("elog.open", spec(Kind::kError));
  EXPECT_THROW((void)elog::read_event_log_file(elog_path, elog::ElogReadOptions{true}), IoError);
}

TEST_F(Faults, ElogIndexFaultFailsIndexedQueriesButNotPlainReads) {
  // elog.index fires at the planner's first touch of the index sections
  // (MappedElog::index_view): an indexed query is a typed IoError, the
  // materializing read path never consults the index and stays whole,
  // and the disarmed query is byte-identical to the scan.
  const auto paths = make_corpus();
  ThreadPool pool(2);
  const std::string elog_path = (dir_ / "corpus.elog").string();
  elog::write_event_log_v2_file(elog_path, pipeline::event_log_streamed(paths, pool));
  const auto mapped = elog::open_v2(elog_path);
  const auto base = elog::read_event_log_v2(mapped);
  const auto q = model::Query::parse("calls{read}");
  {
    const ScopedFault f("elog.index", spec(Kind::kError));
    EXPECT_THROW((void)elog::select_v2(mapped, q), IoError);
    expect_same_log(base, elog::read_event_log_v2(mapped));  // plain read unaffected
  }
  expect_same_log(q.apply(base), elog::select_v2(mapped, q));  // disarmed: heals
}

// ---- shard supervision (in-process sites) ------------------------------

TEST_F(Faults, CodecDecodeBitflipInProcessIsATypedIoError) {
  // In-process sharding has no retry loop by design: a corrupted blob
  // is the codec's documented IoError, not a hang or a wrong answer.
  const auto paths = make_corpus();
  pipeline::ShardOptions opts;
  opts.shards = 2;
  const ScopedFault f("codec.decode", spec(Kind::kBitflip));
  EXPECT_THROW((void)pipeline::run_sharded(paths, opts), IoError);
}

class SpawnedFaults : public Faults {
 protected:
  pipeline::ShardOptions spawned_options(const char* exe, std::size_t shards) {
    pipeline::ShardOptions opts;
    opts.shards = shards;
    opts.mapping = "top2";
    opts.worker_threads = 2;
    opts.fold_shard_exe = exe;
    opts.retry_backoff_ms = 1;
    return opts;
  }

  /// The clean spawned run's report — the byte-identity baseline.
  std::string clean_html(const std::vector<std::string>& paths, const char* exe,
                         std::size_t shards) {
    const auto analytics = pipeline::run_sharded(paths, spawned_options(exe, shards));
    EXPECT_EQ(analytics.shard_report.total_retries(), 0u);
    return report::render_sharded_report(analytics, model::mapping_by_name("top2"));
  }
};

TEST_F(SpawnedFaults, SpawnFaultHealsOnRetryByteIdentically) {
  const char* exe = elog_tool_exe();
  if (exe == nullptr) GTEST_SKIP() << "ST_ELOG_TOOL unset or not built";
  const auto paths = make_corpus();
  const std::string reference = clean_html(paths, exe, 2);

  const ScopedFault f("shard.spawn", spec(Kind::kError));
  const auto analytics = pipeline::run_sharded(paths, spawned_options(exe, 2));
  EXPECT_EQ(report::render_sharded_report(analytics, model::mapping_by_name("top2")), reference);
  EXPECT_EQ(analytics.shard_report.total_retries(), 1u);
  EXPECT_EQ(analytics.shard_report.total_fallbacks(), 0u);
  ASSERT_FALSE(analytics.shard_report.shards[0].failures.empty());
  EXPECT_NE(analytics.shard_report.shards[0].failures[0].find("fault injected at shard.spawn"),
            std::string::npos);
}

TEST_F(SpawnedFaults, BlobCorruptionIsRejectedAndRetried) {
  const char* exe = elog_tool_exe();
  if (exe == nullptr) GTEST_SKIP() << "ST_ELOG_TOOL unset or not built";
  const auto paths = make_corpus();
  const std::string reference = clean_html(paths, exe, 2);

  for (const Kind kind : {Kind::kBitflip, Kind::kTruncate}) {
    const ScopedFault f("shard.blob_read", spec(kind));
    const auto analytics = pipeline::run_sharded(paths, spawned_options(exe, 2));
    EXPECT_EQ(report::render_sharded_report(analytics, model::mapping_by_name("top2")),
              reference);
    EXPECT_EQ(analytics.shard_report.total_retries(), 1u);
    bool found = false;
    for (const auto& s : analytics.shard_report.shards) {
      for (const auto& failure : s.failures) {
        if (failure.find("shard partial rejected") != std::string::npos) found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(SpawnedFaults, ChildExitInheritedFromEnvHealsOnScrubbedRetry) {
  const char* exe = elog_tool_exe();
  if (exe == nullptr) GTEST_SKIP() << "ST_ELOG_TOOL unset or not built";
  const auto paths = make_corpus();
  const std::string reference = clean_html(paths, exe, 2);

  // Every child parses ST_FAULTS at startup and _exits in fold-shard;
  // the retry environment is scrubbed, so attempt 2 runs clean.
  const EnvFault env("shard.child=exit");
  const auto analytics = pipeline::run_sharded(paths, spawned_options(exe, 2));
  EXPECT_EQ(report::render_sharded_report(analytics, model::mapping_by_name("top2")), reference);
  ASSERT_EQ(analytics.shard_report.shards.size(), 2u);
  for (const auto& s : analytics.shard_report.shards) {
    EXPECT_EQ(s.attempts, 2u);
    ASSERT_EQ(s.failures.size(), 1u);
    EXPECT_NE(s.failures[0].find("exited with status 70"), std::string::npos);
  }
}

TEST_F(SpawnedFaults, KilledChildAtShard2Of4IsByteIdenticalAfterRecovery) {
  // The ISSUE 8 acceptance case: shard 2 of 4 dies mid-run (deadline
  // SIGKILL on an injected hang) and the recovered HTML is
  // byte-identical to the uninjected run.
  const char* exe = elog_tool_exe();
  if (exe == nullptr) GTEST_SKIP() << "ST_ELOG_TOOL unset or not built";
  const auto paths = make_corpus();
  const std::string reference = clean_html(paths, exe, 4);

  const EnvFault env("shard.child#2=hang_ms20000");
  auto opts = spawned_options(exe, 4);
  opts.shard_timeout_ms = 300;
  const auto analytics = pipeline::run_sharded(paths, opts);
  EXPECT_EQ(report::render_sharded_report(analytics, model::mapping_by_name("top2")), reference);
  ASSERT_EQ(analytics.shard_report.shards.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == 2) {
      EXPECT_EQ(analytics.shard_report.shards[i].attempts, 2u);
      ASSERT_EQ(analytics.shard_report.shards[i].failures.size(), 1u);
      EXPECT_NE(analytics.shard_report.shards[i].failures[0].find("killed by signal 9"),
                std::string::npos);
      EXPECT_NE(analytics.shard_report.shards[i].failures[0].find("deadline"),
                std::string::npos);
    } else {
      EXPECT_EQ(analytics.shard_report.shards[i].attempts, 1u);
    }
  }
}

TEST_F(SpawnedFaults, PersistentChildFailureFallsBackInProcess) {
  const char* exe = elog_tool_exe();
  if (exe == nullptr) GTEST_SKIP() << "ST_ELOG_TOOL unset or not built";
  const auto paths = make_corpus();
  const std::string reference = clean_html(paths, exe, 2);

  // exit:0 fires on every hit and keep_faults_on_retry preserves the
  // injection across respawns: retries cannot heal, only the
  // in-process fallback can — and the parent's registry is disarmed,
  // so the fallback folds clean.
  const EnvFault env("shard.child=exit:0");
  auto opts = spawned_options(exe, 2);
  opts.max_attempts = 2;
  opts.keep_faults_on_retry = true;
  const auto analytics = pipeline::run_sharded(paths, opts);
  EXPECT_EQ(report::render_sharded_report(analytics, model::mapping_by_name("top2")), reference);
  EXPECT_EQ(analytics.shard_report.total_fallbacks(), 2u);
  for (const auto& s : analytics.shard_report.shards) {
    EXPECT_EQ(s.attempts, 2u);
    EXPECT_TRUE(s.fell_back);
    EXPECT_EQ(s.failures.size(), 2u);
  }
}

TEST_F(SpawnedFaults, ExhaustedShardWithoutFallbackIsALowestIndexIoError) {
  const char* exe = elog_tool_exe();
  if (exe == nullptr) GTEST_SKIP() << "ST_ELOG_TOOL unset or not built";
  const auto paths = make_corpus();

  const EnvFault env("shard.child=exit:0");
  auto opts = spawned_options(exe, 2);
  opts.max_attempts = 2;
  opts.keep_faults_on_retry = true;
  opts.fallback_in_process = false;
  try {
    (void)pipeline::run_sharded(paths, opts);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("shard 0"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("2 attempt(s)"), std::string::npos);
  }
}

}  // namespace
}  // namespace st
