#include "model/activity_log.hpp"

#include <gtest/gtest.h>

#include "testing_util.hpp"

namespace st::model {
namespace {

using testing::ev;
using testing::make_case;

// The paper's fictitious example: C = {0,1,2}, traces <a,a,b>, <a,a,b>,
// <a,c> produce L = { <a,a,b>^2, <a,c> }.
TEST(ActivityLog, MultisetSemanticsPaperExample) {
  EventLog log;
  log.add_case(make_case("c", 0, {ev("a", "", 0, 1), ev("a", "", 1, 1), ev("b", "", 2, 1)}));
  log.add_case(make_case("c", 1, {ev("a", "", 0, 1), ev("a", "", 1, 1), ev("b", "", 2, 1)}));
  log.add_case(make_case("c", 2, {ev("a", "", 0, 1), ev("c", "", 1, 1)}));
  const auto al = ActivityLog::build(log, Mapping::call_only());

  ASSERT_EQ(al.variants().size(), 2u);
  const ActivityTrace aab{"a", "a", "b"};
  const ActivityTrace ac{"a", "c"};
  EXPECT_EQ(al.variants().at(aab), 2u);
  EXPECT_EQ(al.variants().at(ac), 1u);
  EXPECT_EQ(al.case_count(), 3u);
  EXPECT_EQ(al.total_activity_instances(), 8u);
}

TEST(ActivityLog, ActivitiesSetIsDistinct) {
  EventLog log;
  log.add_case(make_case("c", 0, {ev("a", "", 0, 1), ev("a", "", 1, 1), ev("b", "", 2, 1)}));
  const auto al = ActivityLog::build(log, Mapping::call_only());
  EXPECT_EQ(al.activities(), (std::set<Activity>{"a", "b"}));
}

TEST(ActivityLog, PartialMappingSkipsEvents) {
  EventLog log;
  log.add_case(make_case("c", 0, {ev("read", "/usr/lib/x", 0, 1), ev("read", "/etc/y", 1, 1),
                                  ev("write", "/usr/lib/z", 2, 1)}));
  const auto f = Mapping::call_only().filtered("usrlib", [](const Event& e) {
    return e.fp.starts_with("/usr/lib");
  });
  const auto al = ActivityLog::build(log, f);
  const ActivityTrace expected{"read", "write"};
  EXPECT_EQ(al.variants().at(expected), 1u);
}

TEST(ActivityLog, FullyUnmappedCaseContributesEmptyTrace) {
  EventLog log;
  log.add_case(make_case("c", 0, {ev("read", "/etc/y", 0, 1)}));
  const auto f = Mapping::call_only().filtered("none", [](const Event&) { return false; });
  const auto al = ActivityLog::build(log, f);
  EXPECT_EQ(al.case_count(), 1u);
  EXPECT_EQ(al.variants().at(ActivityTrace{}), 1u);
  EXPECT_EQ(al.total_activity_instances(), 0u);
}

TEST(ActivityLog, PerCaseTracePreservesEventOrder) {
  EventLog log;
  log.add_case(make_case("c", 7, {ev("b", "", 5, 1), ev("a", "", 0, 1)}));  // unsorted input
  const auto al = ActivityLog::build(log, Mapping::call_only());
  const auto& trace = al.per_case().at(CaseId{"c", "host1", 7});
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0], "a");  // case sorted by start
  EXPECT_EQ(trace[1], "b");
}

TEST(ActivityLog, OrderPreservationTheorem) {
  // For all e_i preceding e_j in a case, a_i precedes a_j in the trace
  // (Sec. IV). Verify on a shuffled input.
  EventLog log;
  std::vector<Event> events;
  for (int i = 9; i >= 0; --i) events.push_back(ev("c" + std::to_string(i), "", i * 10, 1));
  log.add_case(make_case("c", 1, std::move(events)));
  const auto al = ActivityLog::build(log, Mapping::call_only());
  const auto& trace = al.per_case().begin()->second;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(trace[static_cast<std::size_t>(i)], "c" + std::to_string(i));
}

TEST(ActivityLog, EmptyLog) {
  const auto al = ActivityLog::build(EventLog{}, Mapping::call_only());
  EXPECT_EQ(al.case_count(), 0u);
  EXPECT_TRUE(al.variants().empty());
  EXPECT_TRUE(al.activities().empty());
}

}  // namespace
}  // namespace st::model
