#include "support/si.hpp"

#include <gtest/gtest.h>

namespace st {
namespace {

// The paper's figures use decimal units: 14976 B renders as 14.98 KB
// (Fig. 3, read:/usr/lib over six cases).
TEST(FormatBytes, PaperFig3UsrLib) { EXPECT_EQ(format_bytes(14976), "14.98 KB"); }
TEST(FormatBytes, PaperFig3LocaleAlias) { EXPECT_EQ(format_bytes(17976), "17.98 KB"); }
TEST(FormatBytes, PaperFig3DevPts) { EXPECT_EQ(format_bytes(753), "0.75 KB"); }
TEST(FormatBytes, PaperFig8Gigabytes) { EXPECT_EQ(format_bytes(9.66e9), "9.66 GB"); }

TEST(FormatBytes, SmallRendersAsKb) { EXPECT_EQ(format_bytes(832), "0.83 KB"); }
TEST(FormatBytes, SubKilo) { EXPECT_EQ(format_bytes(12), "0.01 KB"); }
TEST(FormatBytes, Zero) { EXPECT_EQ(format_bytes(0), "0.00 KB"); }
TEST(FormatBytes, Terabytes) { EXPECT_EQ(format_bytes(2.5e12), "2.50 TB"); }

TEST(FormatRate, PaperStyle) {
  EXPECT_EQ(format_rate_mbps(10.15e6), "10.15 MB/s");
  EXPECT_EQ(format_rate_mbps(3175.20e6), "3175.20 MB/s");
}

TEST(FormatRate, SubMegabyte) { EXPECT_EQ(format_rate_mbps(0.61e6), "0.61 MB/s"); }

TEST(FormatRatio, TwoDecimals) {
  EXPECT_EQ(format_ratio(0.21843), "0.22");
  EXPECT_EQ(format_ratio(0.0), "0.00");
  EXPECT_EQ(format_ratio(1.0), "1.00");
  EXPECT_EQ(format_ratio(0.005), "0.01");
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 3), "3.142");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace st
