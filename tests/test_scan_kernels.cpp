// Differential fuzz test for the SWAR/SIMD scan kernels: every kernel
// backend (scalar / swar / simd — where simd resolves to AVX2 when
// compiled in, plus the fixed *_avx2 entry points) and every
// kernel-backed scanner must be byte-identical to the scalar reference
// implementations over randomized adversarial inputs — quotes,
// escapes, brackets, NUL and high-bit bytes, all lengths around the
// 8/16/32-byte block boundaries.
// Runs under the asan-ubsan preset like the whole suite, which also
// proves the wide loads never read outside the input view.
#include "strace/scan_kernels.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "strace/scan.hpp"
#include "support/rng.hpp"

namespace st::strace {
namespace {

using kernels::ScanKernelMode;

/// Restores the process-wide kernel mode after each test so the order
/// tests run in can never leak a forced mode into other suites.
class ScanKernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { kernels::set_scan_kernel_mode(ScanKernelMode::Simd); }
};

constexpr ScanKernelMode kModes[] = {ScanKernelMode::Scalar, ScanKernelMode::Swar,
                                     ScanKernelMode::Simd};

const char* mode_name(ScanKernelMode m) {
  switch (m) {
    case ScanKernelMode::Scalar: return "scalar";
    case ScanKernelMode::Swar: return "swar";
    case ScanKernelMode::Simd: return "simd";
  }
  return "?";
}

/// Random string biased towards the bytes the kernels classify,
/// including NUL, newline and >= 0x80 bytes (SWAR sign pitfalls).
std::string random_input(Xoshiro256& rng, std::size_t len) {
  static constexpr char kSpecials[] = {'"', '\\', '(', ')', '[', ']',
                                       '{', '}', ',', '\n', '\0'};
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint64_t roll = rng.below(100);
    if (roll < 40) {
      s.push_back(kSpecials[rng.below(sizeof kSpecials)]);
    } else if (roll < 50) {
      s.push_back(static_cast<char>(0x80 + rng.below(0x80)));  // high-bit bytes
    } else {
      s.push_back(static_cast<char>('a' + rng.below(26)));
    }
  }
  return s;
}

void expect_same_positions(std::string_view s, ScanKernelMode mode) {
  // Every start position exercises all head/block/tail alignments.
  for (std::size_t pos = 0; pos <= s.size(); ++pos) {
    ASSERT_EQ(kernels::find_byte(s, pos, '\n'), kernels::find_byte_scalar(s, pos, '\n'))
        << mode_name(mode) << " find_byte('\\n') at " << pos << " in " << testing::PrintToString(s);
    ASSERT_EQ(kernels::find_byte(s, pos, '\0'), kernels::find_byte_scalar(s, pos, '\0'))
        << mode_name(mode) << " find_byte(NUL) at " << pos;
    ASSERT_EQ(kernels::find_quote_or_backslash(s, pos),
              kernels::find_quote_or_backslash_scalar(s, pos))
        << mode_name(mode) << " find_quote_or_backslash at " << pos << " in "
        << testing::PrintToString(s);
    ASSERT_EQ(kernels::find_structural(s, pos), kernels::find_structural_scalar(s, pos))
        << mode_name(mode) << " find_structural at " << pos << " in "
        << testing::PrintToString(s);
    // The fixed AVX2 entry points are fuzzed unconditionally: on a
    // build without AVX2 they alias the 16-byte SIMD path, with it
    // they exercise the 32-byte blocks plus the SSE2/scalar tail.
    ASSERT_EQ(kernels::find_byte_avx2(s, pos, '\n'), kernels::find_byte_scalar(s, pos, '\n'))
        << "avx2 find_byte('\\n') at " << pos << " in " << testing::PrintToString(s);
    ASSERT_EQ(kernels::find_quote_or_backslash_avx2(s, pos),
              kernels::find_quote_or_backslash_scalar(s, pos))
        << "avx2 find_quote_or_backslash at " << pos << " in " << testing::PrintToString(s);
    ASSERT_EQ(kernels::find_structural_avx2(s, pos), kernels::find_structural_scalar(s, pos))
        << "avx2 find_structural at " << pos << " in " << testing::PrintToString(s);
  }
}

void expect_same_scanners(std::string_view s, ScanKernelMode mode) {
  std::vector<std::string_view> kernel_fields;
  std::vector<std::string_view> scalar_fields;
  split_args_into(s, kernel_fields);
  split_args_into_scalar(s, scalar_fields);
  ASSERT_EQ(kernel_fields, scalar_fields)
      << mode_name(mode) << " split_args on " << testing::PrintToString(s);

  for (std::size_t pos = 0; pos < s.size(); ++pos) {
    if (s[pos] == '"') {
      ASSERT_EQ(skip_quoted(s, pos), skip_quoted_scalar(s, pos))
          << mode_name(mode) << " skip_quoted at " << pos << " in " << testing::PrintToString(s);
    }
    if (s[pos] == '(') {
      ASSERT_EQ(find_matching_paren(s, pos), find_matching_paren_scalar(s, pos))
          << mode_name(mode) << " find_matching_paren at " << pos << " in "
          << testing::PrintToString(s);
    }
  }
}

TEST_F(ScanKernelsTest, FuzzKernelsMatchScalarReference) {
  Xoshiro256 rng(0x5ca9);
  for (int round = 0; round < 400; ++round) {
    const std::string s = random_input(rng, rng.below(96));
    for (const auto mode : kModes) {
      kernels::set_scan_kernel_mode(mode);
      expect_same_positions(s, mode);
      expect_same_scanners(s, mode);
    }
  }
}

TEST_F(ScanKernelsTest, FuzzLongInputs) {
  // Long enough that the wide-block loops dominate and block
  // boundaries land everywhere relative to the matches.
  Xoshiro256 rng(0xbeef);
  for (int round = 0; round < 20; ++round) {
    const std::string s = random_input(rng, 256 + rng.below(1024));
    for (const auto mode : kModes) {
      kernels::set_scan_kernel_mode(mode);
      ASSERT_EQ(kernels::find_byte(s, 0, '\n'), kernels::find_byte_scalar(s, 0, '\n'));
      ASSERT_EQ(kernels::find_structural(s, 0), kernels::find_structural_scalar(s, 0));
      expect_same_scanners(s, mode);
    }
  }
}

TEST_F(ScanKernelsTest, BlockBoundaryLengths) {
  // A lone special byte at every position of every length around the
  // SWAR (8), SIMD (16) and AVX2 (32) block sizes.
  for (const auto mode : kModes) {
    kernels::set_scan_kernel_mode(mode);
    for (std::size_t len : {1u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u, 33u, 47u, 48u, 49u, 63u,
                            64u, 65u, 95u, 96u, 97u}) {
      for (std::size_t at = 0; at < len; ++at) {
        for (const char c : {'"', '\\', ')', ',', '\n'}) {
          std::string s(len, 'x');
          s[at] = c;
          expect_same_positions(s, mode);
        }
      }
    }
  }
}

TEST_F(ScanKernelsTest, EmptyAndMissing) {
  for (const auto mode : kModes) {
    kernels::set_scan_kernel_mode(mode);
    EXPECT_EQ(kernels::find_byte("", 0, '\n'), kernels::npos);
    EXPECT_EQ(kernels::find_structural("", 0), kernels::npos);
    EXPECT_EQ(kernels::find_structural("plain text, no wait", 5), 10u);
    EXPECT_EQ(kernels::find_quote_or_backslash("plain text no specials", 0), kernels::npos);
    const std::string plain(200, 'a');
    EXPECT_EQ(kernels::find_structural(plain, 0), kernels::npos);
    EXPECT_EQ(kernels::find_byte(plain, 64, 'b'), kernels::npos);
    // pos past the end is a clean miss, not a read.
    EXPECT_EQ(kernels::find_byte(plain, plain.size() + 10, 'a'), kernels::npos);
  }
}

TEST_F(ScanKernelsTest, StructuralClassIsExact) {
  // Neighbours of the class members under the |0x01 / |0x20 collapses
  // must NOT match: e.g. '(' 0x28 collapses with ')' 0x29, but '*' 0x2A,
  // '[' 0x5B vs 'z' 0x7A, '|' 0x7C, '~' 0x7E must stay out.
  const std::string_view members = "\"()[]{},";
  for (const auto mode : kModes) {
    kernels::set_scan_kernel_mode(mode);
    for (int b = 0; b < 256; ++b) {
      const char c = static_cast<char>(b);
      std::string s(17, 'x');  // one SIMD block + tail
      s[3] = c;
      s[16] = c;
      const bool member = members.find(c) != std::string_view::npos;
      EXPECT_EQ(kernels::find_structural(s, 0), member ? 3u : kernels::npos)
          << mode_name(mode) << " byte " << b;
    }
  }
}

TEST_F(ScanKernelsTest, TraceShapedLines) {
  // Real syntax shapes from the parser's hot path.
  const std::string_view lines[] = {
      R"(9054  08:55:54.153994 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, "\177ELF\2\1\1"..., 832) = 832 <0.000203>)",
      R"(42  10:00:00.000000 openat(AT_FDCWD, "/p/scratch/ssf/test", O_RDWR|O_CREAT, 0644) = 5 <0.000150>)",
      R"(7  10:00:00.000100 fstat(3, {st_mode=S_IFREG|0644, st_size=100}) = 0)",
      R"raw(8  10:00:00.000200 writev(4</p/f>, [{iov_base="a,b", iov_len=3}, {iov_base=")", iov_len=1}], 2) = 4)raw",
      R"(9  10:00:00.000300 read(3</p/f>, <unfinished ...>)",
      R"(9  10:00:00.000400 <... read resumed> "x\"y\\z", 405) = 404 <0.000223>)",
  };
  for (const auto mode : kModes) {
    kernels::set_scan_kernel_mode(mode);
    for (const auto line : lines) {
      expect_same_positions(line, mode);
      expect_same_scanners(line, mode);
    }
  }
}

TEST_F(ScanKernelsTest, BackendAndModeControls) {
  const auto backend = kernels::scan_kernel_backend();
  EXPECT_TRUE(backend == "avx2" || backend == "sse2" || backend == "neon" || backend == "swar")
      << backend;
  kernels::set_scan_kernel_mode(ScanKernelMode::Scalar);
  EXPECT_EQ(kernels::scan_kernel_mode(), ScanKernelMode::Scalar);
  kernels::set_scan_kernel_mode(ScanKernelMode::Swar);
  EXPECT_EQ(kernels::scan_kernel_mode(), ScanKernelMode::Swar);
}

}  // namespace
}  // namespace st::strace
