#include "support/crc32.hpp"

#include <gtest/gtest.h>

#include <string>

namespace st {
namespace {

// Reference values of the zlib CRC-32.
TEST(Crc32, KnownVectorAbc) {
  EXPECT_EQ(Crc32::of("abc", 3), 0x352441C2u);
}

TEST(Crc32, KnownVector123456789) {
  EXPECT_EQ(Crc32::of("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(Crc32::of("", 0), 0x00000000u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  Crc32 inc;
  inc.update(data.substr(0, 10));
  inc.update(data.substr(10));
  EXPECT_EQ(inc.value(), Crc32::of(data.data(), data.size()));
}

TEST(Crc32, SingleBitFlipChangesValue) {
  std::string data = "payload-payload-payload";
  const auto original = Crc32::of(data.data(), data.size());
  data[5] = static_cast<char>(data[5] ^ 0x01);
  EXPECT_NE(Crc32::of(data.data(), data.size()), original);
}

TEST(Crc32, AllByteValues) {
  std::string data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<char>(i));
  // Stable regression value (self-consistency across refactors).
  EXPECT_EQ(Crc32::of(data.data(), data.size()), 0x29058C73u);
}

}  // namespace
}  // namespace st
