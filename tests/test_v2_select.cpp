// Indexed query selection (elog/v2_select) — the byte-identity
// contract: for ANY query over ANY corpus, the indexed path returns
// exactly what Query::apply returns over the materialized log — same
// cases in the same order (including event-restriction-emptied cases),
// same events, same warnings — whether the file carries indexes or
// not, at every scan-kernel mode, and through corpus::Catalog at any
// worker count. Randomized corpora x all 32 restriction combos x
// selectivities from 0% to 100% hold it there.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/catalog.hpp"
#include "elog/v2_select.hpp"
#include "elog/v2_store.hpp"
#include "model/query.hpp"
#include "parallel/thread_pool.hpp"
#include "strace/scan_kernels.hpp"
#include "strace/trace_buffer.hpp"
#include "support/errors.hpp"
#include "testing_util.hpp"

namespace st::elog {
namespace {

namespace fs = std::filesystem;

using testing::ev;
using testing::make_case;

std::string v2_bytes(const model::EventLog& log, bool write_index = true) {
  std::ostringstream out(std::ios::binary);
  write_event_log_v2(out, log, ElogV2WriterOptions{write_index});
  return std::move(out).str();
}

std::shared_ptr<MappedElog> open_bytes(std::string bytes) {
  return MappedElog::from_buffer(std::make_shared<strace::TraceBuffer>(std::move(bytes)));
}

/// Restores the global index switch however a test exits.
struct ScopedIndexEnabled {
  explicit ScopedIndexEnabled(bool on) { set_query_index_enabled(on); }
  ~ScopedIndexEnabled() { set_query_index_enabled(true); }
};

/// Full identity check: cases, order, events, warnings.
void expect_logs_identical(const model::EventLog& expect, const model::EventLog& got,
                           const std::string& ctx) {
  ASSERT_EQ(expect.warnings(), got.warnings()) << ctx;
  ASSERT_EQ(expect.case_count(), got.case_count()) << ctx;
  for (std::size_t i = 0; i < expect.case_count(); ++i) {
    const auto& ce = expect.cases()[i];
    const auto& cg = got.cases()[i];
    ASSERT_EQ(ce.id(), cg.id()) << ctx << " case " << i;
    ASSERT_EQ(ce.size(), cg.size()) << ctx << " case " << i;
    for (std::size_t j = 0; j < ce.size(); ++j) {
      ASSERT_TRUE(ce.events()[j] == cg.events()[j]) << ctx << " case " << i << " event " << j;
    }
  }
}

/// Deterministic randomized corpus: varied calls/paths/windows, ~1 in 8
/// cases empty, occasional huge start jump so both start encodings
/// (varint and fixed) appear. rid_base keeps CaseIds disjoint between
/// corpora that get merged.
model::EventLog random_log(std::mt19937& rng, std::size_t cases, std::uint64_t rid_base) {
  static const std::vector<std::string> kCalls = {"read",  "write", "openat", "close",
                                                  "fsync", "lseek", "pread64"};
  static const std::vector<std::string> kPaths = {
      "/p/scratch/ssf/data",    "/p/scratch/ssf/ckpt", "/usr/lib/x/libz.so",
      "/dev/pts/0",             "/p/data/huge.bin",    "/etc/app.conf"};
  model::EventLog log;
  for (std::size_t c = 0; c < cases; ++c) {
    std::vector<model::Event> events;
    const std::size_t n = rng() % 8 == 0 ? 0 : 1 + rng() % 40;
    Micros t = static_cast<Micros>(rng() % 10000);
    for (std::size_t i = 0; i < n; ++i) {
      t += static_cast<Micros>(rng() % 1000);
      if (rng() % 64 == 0) t += 1LL << 50;  // forces fixed start encoding
      events.push_back(ev(kCalls[rng() % kCalls.size()], kPaths[rng() % kPaths.size()], t,
                          static_cast<Micros>(rng() % 500),
                          static_cast<std::int64_t>(rng() % 4096) - 1));
    }
    log.add_case(make_case("c" + std::to_string(c % 5), rid_base + c, std::move(events),
                           "node" + std::to_string(c % 3)));
  }
  return log;
}

/// One query per (restriction-combo, selectivity-variant): bit k of
/// `mask` switches restriction k on; `variant` sweeps each dimension
/// from nothing-matches (0%) through rare and common to everything.
model::Query make_query(unsigned mask, int variant) {
  model::Query q;
  if (mask & 1u) {
    switch (variant % 4) {
      case 0: q = q.calls({"statx"}); break;            // 0%: not in any corpus
      case 1: q = q.calls({"fsync"}); break;            // rare
      case 2: q = q.calls({"read"}); break;             // common (family expands)
      case 3: q = q.calls({"read", "write", "openat", "close", "fsync", "lseek"}); break;
    }
  }
  if (mask & 2u) {
    switch (variant % 4) {
      case 0: q = q.fp_contains("/nowhere"); break;
      case 1: q = q.fp_contains("ckpt"); break;
      case 2: q = q.fp_contains("/p/"); break;
      default: q = q.fp_contains("/"); break;
    }
  }
  if (mask & 4u) {
    switch (variant % 4) {
      case 0: q = q.between(0, 1); break;               // empty window
      case 1: q = q.between(0, 20000); break;
      case 2: q = q.between(5000, 1LL << 40); break;
      default: q = q.between(std::numeric_limits<Micros>::min(),
                             std::numeric_limits<Micros>::max()); break;
    }
  }
  if (mask & 8u) {
    switch (variant % 3) {
      case 0: q = q.cids({"zzz"}); break;
      case 1: q = q.cids({"c0"}); break;
      default: q = q.cids({"c0", "c1", "c2", "c3", "c4"}); break;
    }
  }
  if (mask & 16u) {
    switch (variant % 3) {
      case 0: q = q.hosts({"nohost"}); break;
      case 1: q = q.hosts({"node1"}); break;
      default: q = q.hosts({"node0", "node1", "node2"}); break;
    }
  }
  return q;
}

// ---- single-file equivalence -------------------------------------------

TEST(V2Select, ByteIdenticalToApplyAcrossAllRestrictionCombos) {
  std::mt19937 rng(20240817);
  for (int trial = 0; trial < 3; ++trial) {
    const auto src = random_log(rng, 24, 1000u * static_cast<unsigned>(trial + 1));
    const auto mapped = open_bytes(v2_bytes(src));
    const auto base = read_event_log_v2(mapped);
    const std::vector<IndexedSegment> segs = {{0, mapped->case_count(), mapped}};
    for (unsigned mask = 0; mask < 32; ++mask) {
      for (int variant = 0; variant < 4; ++variant) {
        const auto q = make_query(mask, variant);
        const std::string ctx = "trial " + std::to_string(trial) + " query [" + q.describe() + "]";
        const auto expect = q.apply(base);
        expect_logs_identical(expect, select_v2(mapped, q), ctx + " select_v2");
        expect_logs_identical(expect, apply_query_indexed(q, base, segs), ctx + " indexed");
      }
    }
  }
}

TEST(V2Select, IndexFreeFilesFallBackToColumnScanWithIdenticalResults) {
  std::mt19937 rng(7);
  const auto src = random_log(rng, 16, 1);
  const auto mapped = open_bytes(v2_bytes(src, /*write_index=*/false));
  ASSERT_FALSE(mapped->has_index());
  const auto base = read_event_log_v2(mapped);
  for (unsigned mask = 0; mask < 32; ++mask) {
    const auto q = make_query(mask, 2);
    expect_logs_identical(q.apply(base), select_v2(mapped, q), "[" + q.describe() + "]");
  }
}

TEST(V2Select, AllScanKernelModesAgree) {
  // The SWAR single-call prefilter only arms off Scalar mode — every
  // mode must produce the same bytes.
  std::mt19937 rng(99);
  const auto src = random_log(rng, 12, 1);
  const auto mapped = open_bytes(v2_bytes(src));
  const auto base = read_event_log_v2(mapped);
  const auto q = model::Query().calls({"lseek"});  // single accepted pool id
  const auto expect = q.apply(base);
  const auto saved = strace::kernels::scan_kernel_mode();
  for (const auto mode : {strace::kernels::ScanKernelMode::Simd,
                          strace::kernels::ScanKernelMode::Swar,
                          strace::kernels::ScanKernelMode::Scalar}) {
    strace::kernels::set_scan_kernel_mode(mode);
    expect_logs_identical(expect, select_v2(mapped, q),
                          "mode " + std::to_string(static_cast<int>(mode)));
  }
  strace::kernels::set_scan_kernel_mode(saved);
}

TEST(V2Select, AdoptsTheMappingSoViewsOutliveTheHandle) {
  std::mt19937 rng(5);
  const auto src = random_log(rng, 6, 1);
  model::EventLog result;
  {
    const auto mapped = open_bytes(v2_bytes(src));
    result = select_v2(mapped, model::Query().calls({"read"}));
  }  // only the result's adoption keeps the mapping alive now
  for (const auto& c : result.cases()) {
    for (const auto& e : c.events()) EXPECT_FALSE(e.call.empty());
  }
}

// ---- merged corpora: segment routing -----------------------------------

TEST(V2Select, MixedSegmentsRouteV2SlicesThroughIndexAndRestThroughApply) {
  std::mt19937 rng(31337);
  const auto head = random_log(rng, 7, 10000);  // in-memory, no segment
  const auto log_a = random_log(rng, 9, 20000);
  const auto log_b = random_log(rng, 11, 30000);
  const auto mapped_a = open_bytes(v2_bytes(log_a));
  const auto mapped_b = open_bytes(v2_bytes(log_b, /*write_index=*/false));
  auto merged = model::EventLog::merge(head, read_event_log_v2(mapped_a));
  merged = model::EventLog::merge(merged, read_event_log_v2(mapped_b));
  const std::vector<IndexedSegment> segs = {
      {head.case_count(), mapped_a->case_count(), mapped_a},
      {head.case_count() + mapped_a->case_count(), mapped_b->case_count(), mapped_b},
  };
  for (unsigned mask = 0; mask < 32; ++mask) {
    for (int variant = 1; variant < 3; ++variant) {
      const auto q = make_query(mask, variant);
      expect_logs_identical(q.apply(merged), apply_query_indexed(q, merged, segs),
                            "[" + q.describe() + "]");
    }
  }
}

TEST(V2Select, MalformedSegmentsThrowLogicError) {
  std::mt19937 rng(2);
  const auto src = random_log(rng, 4, 1);
  const auto mapped = open_bytes(v2_bytes(src));
  const auto base = read_event_log_v2(mapped);
  const model::Query q;
  {  // overlapping
    const std::vector<IndexedSegment> segs = {{0, 3, mapped}, {2, 2, mapped}};
    EXPECT_THROW((void)apply_query_indexed(q, base, segs), LogicError);
  }
  {  // out of range
    const std::vector<IndexedSegment> segs = {{2, 10, mapped}};
    EXPECT_THROW((void)apply_query_indexed(q, base, segs), LogicError);
  }
}

// ---- through corpus::Catalog -------------------------------------------

class V2SelectCatalog : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_v2sel_" + std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
    std::mt19937 rng(4242);
    write((dir_ / "a.elog").string(), v2_bytes(random_log(rng, 10, 100)));
    write((dir_ / "b.elog").string(), v2_bytes(random_log(rng, 14, 200)));
    inputs_ = {(dir_ / "a.elog").string(), (dir_ / "b.elog").string()};
  }
  void TearDown() override { fs::remove_all(dir_); }

  static void write(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }

  fs::path dir_;
  std::vector<std::string> inputs_;
};

TEST_F(V2SelectCatalog, FilteredIsByteIdenticalToApplyAtAnyWorkerCount) {
  for (const std::size_t workers : {1u, 2u, 4u}) {
    corpus::Catalog catalog;
    ThreadPool pool(workers);
    catalog.load(inputs_, pool);
    for (unsigned mask = 0; mask < 32; mask += 3) {
      const auto q = make_query(mask, 1);
      expect_logs_identical(q.apply(*catalog.base()), *catalog.filtered(q),
                            "workers " + std::to_string(workers) + " [" + q.describe() + "]");
    }
  }
}

TEST_F(V2SelectCatalog, DisablingTheIndexKnobKeepsResultsIdentical) {
  corpus::Catalog indexed;
  corpus::Catalog scanned;
  ThreadPool pool(2);
  indexed.load(inputs_, pool);
  scanned.load(inputs_, pool);
  const auto q = make_query(7, 2);
  const auto via_index = indexed.filtered(q);
  {
    ScopedIndexEnabled off(false);
    ASSERT_FALSE(query_index_enabled());
    expect_logs_identical(*via_index, *scanned.filtered(q), "knob off");
  }
  ASSERT_TRUE(query_index_enabled());
}

TEST_F(V2SelectCatalog, ConcurrentFilteredStampedeAgrees) {
  corpus::Catalog catalog;
  ThreadPool pool(4);
  catalog.load(inputs_, pool);
  const auto q = make_query(3, 2);
  const auto expect = q.apply(*catalog.base());
  std::vector<std::shared_ptr<const model::EventLog>> results(8);
  ThreadPool clients(4);
  for (auto& slot : results) {
    clients.submit([&catalog, &q, &slot] { slot = catalog.filtered(q); });
  }
  clients.wait_idle();
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    expect_logs_identical(expect, *r, "stampede");
  }
}

}  // namespace
}  // namespace st::elog
