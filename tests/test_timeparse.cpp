#include "support/timeparse.hpp"

#include <gtest/gtest.h>

namespace st {
namespace {

TEST(ParseTimeOfDay, StraceTtFormat) {
  // Timestamp from Fig. 2a of the paper.
  const auto t = parse_time_of_day("08:55:54.153994");
  ASSERT_TRUE(t);
  EXPECT_EQ(*t, ((8 * 3600 + 55 * 60 + 54) * kMicrosPerSecond) + 153994);
}

TEST(ParseTimeOfDay, NoFraction) {
  EXPECT_EQ(parse_time_of_day("00:00:01"), kMicrosPerSecond);
}

TEST(ParseTimeOfDay, ShortFractionScales) {
  EXPECT_EQ(parse_time_of_day("00:00:00.5"), 500000);
  EXPECT_EQ(parse_time_of_day("00:00:00.123"), 123000);
}

TEST(ParseTimeOfDay, Midnight) { EXPECT_EQ(parse_time_of_day("00:00:00.000000"), 0); }

TEST(ParseTimeOfDay, EndOfDay) {
  EXPECT_EQ(parse_time_of_day("23:59:59.999999"), kMicrosPerDay - 1);
}

TEST(ParseTimeOfDay, RejectsBadShapes) {
  EXPECT_FALSE(parse_time_of_day(""));
  EXPECT_FALSE(parse_time_of_day("8:55:54"));
  EXPECT_FALSE(parse_time_of_day("08-55-54"));
  EXPECT_FALSE(parse_time_of_day("08:55"));
  EXPECT_FALSE(parse_time_of_day("25:00:00"));
  EXPECT_FALSE(parse_time_of_day("08:61:00"));
  EXPECT_FALSE(parse_time_of_day("08:55:54.1234567"));  // 7 fraction digits
  EXPECT_FALSE(parse_time_of_day("08:55:54."));
  EXPECT_FALSE(parse_time_of_day("08:55:54.12a"));
}

TEST(FormatTimeOfDay, RoundTrip) {
  const std::string s = "08:55:54.153994";
  EXPECT_EQ(format_time_of_day(*parse_time_of_day(s)), s);
}

TEST(FormatTimeOfDay, WrapsPastMidnight) {
  EXPECT_EQ(format_time_of_day(kMicrosPerDay + 5), "00:00:00.000005");
}

TEST(ParseSeconds, StraceDuration) {
  // Duration from Fig. 2a: <0.000203>.
  EXPECT_EQ(parse_seconds("0.000203"), 203);
}

TEST(ParseSeconds, WholeSeconds) { EXPECT_EQ(parse_seconds("2"), 2 * kMicrosPerSecond); }

TEST(ParseSeconds, Mixed) { EXPECT_EQ(parse_seconds("1.5"), 1500000); }

TEST(ParseSeconds, RoundsSubMicrosecond) {
  EXPECT_EQ(parse_seconds("0.0000005"), 1);   // rounds up
  EXPECT_EQ(parse_seconds("0.0000004"), 0);   // rounds down
}

TEST(ParseSeconds, RejectsGarbage) {
  EXPECT_FALSE(parse_seconds(""));
  EXPECT_FALSE(parse_seconds("."));
  EXPECT_FALSE(parse_seconds("1.2x"));
  EXPECT_FALSE(parse_seconds("-1"));
}

TEST(FormatSeconds, StraceStyle) {
  EXPECT_EQ(format_seconds(203), "0.000203");
  EXPECT_EQ(format_seconds(1500000), "1.500000");
}

TEST(FormatSeconds, RoundTripsThroughParse) {
  for (const Micros d : {0LL, 1LL, 999999LL, 1000000LL, 123456789LL}) {
    EXPECT_EQ(parse_seconds(format_seconds(d)), d);
  }
}

}  // namespace
}  // namespace st
