#include "report/report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "dfg/builder.hpp"
#include "iosim/campaign.hpp"
#include "iosim/commands.hpp"
#include "model/from_strace.hpp"
#include "parallel/thread_pool.hpp"
#include "support/errors.hpp"
#include "support/timeparse.hpp"

namespace st::report {
namespace {

model::EventLog ls_log() {
  return model::EventLog::merge(iosim::make_ls_traces().to_event_log(),
                                iosim::make_ls_l_traces().to_event_log());
}

TEST(Report, ContainsAllSections) {
  const auto f = model::Mapping::call_top_dirs(2);
  const auto html = build_report(ls_log(), f, nullptr);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("Directly-Follows-Graph"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("Activity statistics"), std::string::npos);
  EXPECT_NE(html.find("Cases"), std::string::npos);
  EXPECT_NE(html.find("Directly-follows gaps"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

TEST(Report, MetadataLine) {
  const auto f = model::Mapping::call_top_dirs(2);
  const auto html = build_report(ls_log(), f, nullptr);
  EXPECT_NE(html.find("6 cases, 75 events"), std::string::npos);
  EXPECT_NE(html.find("call_top_dirs(2)"), std::string::npos);
}

TEST(Report, TitleAndDescriptionEscaped) {
  ReportOptions opts;
  opts.title = "ls <vs> ls -l & friends";
  opts.description = "a & b";
  const auto f = model::Mapping::call_top_dirs(2);
  const auto html = build_report(ls_log(), f, nullptr, opts);
  EXPECT_NE(html.find("ls &lt;vs&gt; ls -l &amp; friends"), std::string::npos);
  EXPECT_NE(html.find("<p class=\"meta\">a &amp; b</p>"), std::string::npos);
}

TEST(Report, StatisticsColoringEmbedded) {
  const auto log = ls_log();
  const auto f = model::Mapping::call_top_dirs(2);
  const auto stats = dfg::IoStatistics::compute(log, f);
  const dfg::StatisticsColoring styler(stats);
  const auto html = build_report(log, f, &styler);
  EXPECT_NE(html.find("#1F77B4"), std::string::npos);  // the busiest node's shade
}

TEST(Report, PartitionLegendAndColors) {
  const auto log = ls_log();
  const auto f = model::Mapping::call_top_dirs(2);
  const auto [green, red] =
      log.partition([](const model::Case& c) { return c.id().cid == "a"; });
  const dfg::PartitionColoring styler(dfg::build_serial(green, f), dfg::build_serial(red, f));
  ReportOptions opts;
  opts.partition_legend = "green = ls, red = ls -l";
  const auto html = build_report(log, f, &styler, opts);
  EXPECT_NE(html.find("green = ls, red = ls -l"), std::string::npos);
  EXPECT_NE(html.find("#FFCDD2"), std::string::npos);
}

TEST(Report, TimelineSectionWhenRequested) {
  ReportOptions opts;
  opts.timeline_activity = "read\n/usr/lib";
  const auto f = model::Mapping::call_top_dirs(2);
  const auto html = build_report(ls_log(), f, nullptr, opts);
  EXPECT_NE(html.find("Timeline of read /usr/lib"), std::string::npos);
  EXPECT_NE(html.find("max-concurrency:"), std::string::npos);
}

TEST(Report, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/report.html";
  const auto f = model::Mapping::call_top_dirs(2);
  write_report_file(path, ls_log(), f, nullptr);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("</html>"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Report, WriteToBadPathThrows) {
  const auto f = model::Mapping::call_top_dirs(2);
  EXPECT_THROW(write_report_file("/nonexistent/dir/report.html", ls_log(), f, nullptr),
               IoError);
}

// ---- streaming (single-pass) reports -----------------------------------

class StreamingReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("st_report_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(dir_);
    Micros t = 36000000000;  // 10:00:00
    for (int file = 0; file < 3; ++file) {
      std::string text;
      for (int i = 0; i < 40; ++i) {
        t += 100;
        if (i % 2 == 0) {
          text += "7  " + format_time_of_day(t) +
                  " read(3</p/data/f>, \"\"..., 512) = 512 <0.000040>\n";
        } else {
          text += "7  " + format_time_of_day(t) +
                  " pwrite64(5</p/scratch/t>, \"\"..., 4096, 0) = 4096 <0.000094>\n";
        }
      }
      paths_.push_back(write_file("run" + std::to_string(file) + "_nodeA_" +
                                      std::to_string(9000 + file) + ".st",
                                  text));
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& text) {
    const auto p = dir_ / name;
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << text;
    return p.string();
  }

  std::filesystem::path dir_;
  std::vector<std::string> paths_;
};

TEST_F(StreamingReportTest, SinglePassReportHasEverySectionPlusVariants) {
  const auto f = model::Mapping::call_top_dirs(2);
  ThreadPool pool(3);
  const auto result = streaming_report(paths_, f, pool);
  EXPECT_EQ(result.log.case_count(), 3u);
  for (const char* section :
       {"<!DOCTYPE html>", "Directly-Follows-Graph", "<svg", "Activity statistics", "Cases",
        "Directly-follows gaps", "Trace variants", "Data health", "</html>"}) {
    EXPECT_NE(result.html.find(section), std::string::npos) << section;
  }
  // All three cases behave identically -> one variant, multiplicity 3.
  EXPECT_NE(result.html.find("<td>x3</td>"), std::string::npos);
  EXPECT_NE(result.html.find("run0_nodeA_9000"), std::string::npos);
}

TEST_F(StreamingReportTest, SectionsMatchTheStagedReport) {
  // The sink-produced sections (graph SVG, case table, metadata) must
  // render byte-identically to build_report over the same log; the
  // streaming report only ADDS the variants section and the
  // statistics coloring.
  const auto f = model::Mapping::call_top_dirs(2);
  ThreadPool pool(2);
  const auto streamed = streaming_report(paths_, f, pool);

  const auto log = model::event_log_from_files(paths_, 1);
  const auto stats = dfg::IoStatistics::compute(log, f);
  const dfg::StatisticsColoring styler(stats);
  const auto staged = build_report(log, f, &styler);

  // Identical up to the streaming-only sections: the streamed html with
  // the "Trace variants" and "Data health" sections cut out equals the
  // staged html (build_report never has a DataHealth to render).
  std::string stripped = streamed.html;
  for (const char* heading : {"<h2>Trace variants</h2>", "<h2>Data health</h2>"}) {
    const auto begin = stripped.find(heading);
    ASSERT_NE(begin, std::string::npos) << heading;
    const auto end = stripped.find("<h2>", begin + 1);
    stripped.erase(begin, (end == std::string::npos ? stripped.find("</body>", begin) - begin
                                                    : end - begin));
  }
  EXPECT_EQ(stripped, staged);
}

TEST_F(StreamingReportTest, WorkerCountDoesNotChangeTheHtml) {
  const auto f = model::Mapping::call_top_dirs(2);
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const auto a = streaming_report(paths_, f, pool1);
  const auto b = streaming_report(paths_, f, pool4);
  EXPECT_EQ(a.html, b.html);
}

TEST(Report, FullCampaignReportBuilds) {
  const auto log = iosim::ssf_fpp_campaign(iosim::CampaignScale::small());
  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 1);
  const auto stats = dfg::IoStatistics::compute(log, f);
  const dfg::StatisticsColoring styler(stats);
  ReportOptions opts;
  opts.title = "SSF vs FPP";
  const auto html = build_report(log, f, &styler, opts);
  EXPECT_NE(html.find("write $SCRATCH/ssf"), std::string::npos);
  EXPECT_NE(html.find("write $SCRATCH/fpp"), std::string::npos);
}

}  // namespace
}  // namespace st::report
