#include "report/report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "dfg/builder.hpp"
#include "iosim/campaign.hpp"
#include "iosim/commands.hpp"
#include "support/errors.hpp"

namespace st::report {
namespace {

model::EventLog ls_log() {
  return model::EventLog::merge(iosim::make_ls_traces().to_event_log(),
                                iosim::make_ls_l_traces().to_event_log());
}

TEST(Report, ContainsAllSections) {
  const auto f = model::Mapping::call_top_dirs(2);
  const auto html = build_report(ls_log(), f, nullptr);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("Directly-Follows-Graph"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("Activity statistics"), std::string::npos);
  EXPECT_NE(html.find("Cases"), std::string::npos);
  EXPECT_NE(html.find("Directly-follows gaps"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

TEST(Report, MetadataLine) {
  const auto f = model::Mapping::call_top_dirs(2);
  const auto html = build_report(ls_log(), f, nullptr);
  EXPECT_NE(html.find("6 cases, 75 events"), std::string::npos);
  EXPECT_NE(html.find("call_top_dirs(2)"), std::string::npos);
}

TEST(Report, TitleAndDescriptionEscaped) {
  ReportOptions opts;
  opts.title = "ls <vs> ls -l & friends";
  opts.description = "a & b";
  const auto f = model::Mapping::call_top_dirs(2);
  const auto html = build_report(ls_log(), f, nullptr, opts);
  EXPECT_NE(html.find("ls &lt;vs&gt; ls -l &amp; friends"), std::string::npos);
  EXPECT_NE(html.find("<p class=\"meta\">a &amp; b</p>"), std::string::npos);
}

TEST(Report, StatisticsColoringEmbedded) {
  const auto log = ls_log();
  const auto f = model::Mapping::call_top_dirs(2);
  const auto stats = dfg::IoStatistics::compute(log, f);
  const dfg::StatisticsColoring styler(stats);
  const auto html = build_report(log, f, &styler);
  EXPECT_NE(html.find("#1F77B4"), std::string::npos);  // the busiest node's shade
}

TEST(Report, PartitionLegendAndColors) {
  const auto log = ls_log();
  const auto f = model::Mapping::call_top_dirs(2);
  const auto [green, red] =
      log.partition([](const model::Case& c) { return c.id().cid == "a"; });
  const dfg::PartitionColoring styler(dfg::build_serial(green, f), dfg::build_serial(red, f));
  ReportOptions opts;
  opts.partition_legend = "green = ls, red = ls -l";
  const auto html = build_report(log, f, &styler, opts);
  EXPECT_NE(html.find("green = ls, red = ls -l"), std::string::npos);
  EXPECT_NE(html.find("#FFCDD2"), std::string::npos);
}

TEST(Report, TimelineSectionWhenRequested) {
  ReportOptions opts;
  opts.timeline_activity = "read\n/usr/lib";
  const auto f = model::Mapping::call_top_dirs(2);
  const auto html = build_report(ls_log(), f, nullptr, opts);
  EXPECT_NE(html.find("Timeline of read /usr/lib"), std::string::npos);
  EXPECT_NE(html.find("max-concurrency:"), std::string::npos);
}

TEST(Report, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/report.html";
  const auto f = model::Mapping::call_top_dirs(2);
  write_report_file(path, ls_log(), f, nullptr);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("</html>"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Report, WriteToBadPathThrows) {
  const auto f = model::Mapping::call_top_dirs(2);
  EXPECT_THROW(write_report_file("/nonexistent/dir/report.html", ls_log(), f, nullptr),
               IoError);
}

TEST(Report, FullCampaignReportBuilds) {
  const auto log = iosim::ssf_fpp_campaign(iosim::CampaignScale::small());
  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 1);
  const auto stats = dfg::IoStatistics::compute(log, f);
  const dfg::StatisticsColoring styler(stats);
  ReportOptions opts;
  opts.title = "SSF vs FPP";
  const auto html = build_report(log, f, &styler, opts);
  EXPECT_NE(html.find("write $SCRATCH/ssf"), std::string::npos);
  EXPECT_NE(html.find("write $SCRATCH/fpp"), std::string::npos);
}

}  // namespace
}  // namespace st::report
