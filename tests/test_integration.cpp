// End-to-end pipeline test: simulate -> strace text files on disk ->
// parse -> elog round trip -> mapping -> DFG -> statistics -> coloring
// -> rendering. This is the full workflow of Fig. 6 (the paper's
// st_inspector usage) executed through the C++ API.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "dfg/builder.hpp"
#include "dfg/render.hpp"
#include "elog/store.hpp"
#include "iosim/campaign.hpp"
#include "iosim/commands.hpp"
#include "model/from_strace.hpp"

namespace st {
namespace {

TEST(Integration, LsWorkflowFromDiskFiles) {
  const std::string dir = ::testing::TempDir() + "/integration_ls";
  std::filesystem::remove_all(dir);
  iosim::make_ls_traces().write_files(dir);
  iosim::make_ls_l_traces().write_files(dir);

  // Collect the trace files exactly as a user would (Fig. 1 naming).
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  ASSERT_EQ(files.size(), 6u);

  const auto log = model::event_log_from_files(files);
  EXPECT_EQ(log.case_count(), 6u);
  EXPECT_EQ(log.total_events(), 3u * 8u + 3u * 17u);

  // Store in the elog container (the paper's single-HDF5-file step)
  // and read back.
  std::stringstream elog_buf;
  elog::write_event_log(elog_buf, log);
  const auto reloaded = elog::read_event_log(elog_buf);
  EXPECT_EQ(reloaded.case_count(), 6u);
  EXPECT_EQ(reloaded.total_events(), log.total_events());

  // DFG + stats + statistics coloring (Fig. 6 steps 2-5a).
  const auto f = model::Mapping::call_top_dirs(2);
  const auto g = dfg::build_serial(reloaded, f);
  const auto stats = dfg::IoStatistics::compute(reloaded, f);
  EXPECT_EQ(g.activities().size(), 8u);
  EXPECT_EQ(stats.find("read\n/usr/lib")->bytes, 14976);

  const dfg::StatisticsColoring styler(stats);
  const auto dot = dfg::render_dot(g, &stats, &styler);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Load:"), std::string::npos);

  // Partition coloring (Fig. 6 step 5b): ls vs ls -l.
  const auto [ca, cb] =
      reloaded.partition([](const model::Case& c) { return c.id().cid == "a"; });
  const dfg::PartitionColoring partition(dfg::build_serial(ca, f), dfg::build_serial(cb, f));
  // Fig. 3d: read:/etc/passwd exclusive to ls -l (red).
  EXPECT_EQ(partition.diff().classify_node("read\n/etc/passwd"),
            dfg::PartitionClass::RedOnly);
  // The locale.alias -> write:/dev/pts relation exclusive to ls (green).
  EXPECT_EQ(partition.diff().classify_edge("read\n/etc/locale.alias", "write\n/dev/pts"),
            dfg::PartitionClass::GreenOnly);

  std::filesystem::remove_all(dir);
}

TEST(Integration, IorWorkflowThroughTraceFiles) {
  // Small IOR run -> trace files -> parse -> same event log as the
  // in-memory conversion.
  auto opt = iosim::make_ssf_options(iosim::CampaignScale::small());
  opt.num_ranks = 4;
  opt.ranks_per_node = 2;
  const auto traces = iosim::run_ior(opt);

  const std::string dir = ::testing::TempDir() + "/integration_ior";
  std::filesystem::remove_all(dir);
  traces.write_files(dir);

  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    files.push_back(entry.path().string());
  }
  ASSERT_EQ(files.size(), 4u);

  const auto from_disk = model::event_log_from_files(files);
  const auto in_memory = traces.to_event_log();
  EXPECT_EQ(from_disk.total_events(), in_memory.total_events());

  // Every event must agree after the text round trip.
  for (const auto& c : in_memory.cases()) {
    const auto* disk_case = from_disk.find_case(c.id());
    ASSERT_NE(disk_case, nullptr) << c.id().to_string();
    ASSERT_EQ(disk_case->size(), c.size());
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_EQ(disk_case->events()[i], c.events()[i]) << c.id().to_string() << " event " << i;
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(Integration, PartitionColoringOnSsfVsFpp) {
  const auto log = iosim::ssf_fpp_campaign(iosim::CampaignScale::small());
  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 1);
  const auto [ssf, fpp] =
      log.partition([](const model::Case& c) { return c.id().cid == "ssf"; });
  const dfg::GraphDiff diff(dfg::build_serial(ssf, f), dfg::build_serial(fpp, f));
  // The two runs use distinct paths under $SCRATCH, so their scratch
  // activities are exclusive while startup activities are common.
  EXPECT_TRUE(diff.green_nodes().contains("write\n$SCRATCH/ssf"));
  EXPECT_TRUE(diff.red_nodes().contains("write\n$SCRATCH/fpp"));
  // Startup activities are common to both runs (extra_levels applies
  // below every matched site root, so the library subdir shows up).
  EXPECT_TRUE(diff.common_nodes().contains("read\n$SOFTWARE/mpi"));
}

TEST(Integration, ElogFilePersistsCampaign) {
  const auto log = iosim::ssf_fpp_campaign(iosim::CampaignScale::small());
  const std::string path = ::testing::TempDir() + "/campaign.elog";
  elog::write_event_log_file(path, log);
  const auto reloaded = elog::read_event_log_file(path);
  EXPECT_EQ(reloaded.case_count(), log.case_count());
  EXPECT_EQ(reloaded.total_events(), log.total_events());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace st
