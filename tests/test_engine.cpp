#include "iosim/engine.hpp"

#include <gtest/gtest.h>

#include "des/simulator.hpp"
#include "strace/parser.hpp"
#include "strace/writer.hpp"
#include "support/errors.hpp"

namespace st::iosim {
namespace {

/// One process's records plus the arena their string fields view into
/// (the records are valid only while the arena lives). Iterable so the
/// assertions below can treat it like the record vector.
struct SingleRun {
  std::vector<strace::RawRecord> records;
  std::shared_ptr<strace::StringArena> arena;

  [[nodiscard]] std::size_t size() const { return records.size(); }
  [[nodiscard]] const strace::RawRecord& operator[](std::size_t i) const { return records[i]; }
  [[nodiscard]] auto begin() const { return records.begin(); }
  [[nodiscard]] auto end() const { return records.end(); }
};

/// Runs `body` as a single simulated process and returns its records.
template <class Body>
SingleRun run_single(Body body, CostModel model = {}) {
  des::Simulator sim;
  model.jitter_sigma = 0.0;  // exact service times for assertions
  IoSystem io(sim, model, 1);
  ProcessContext proc(100, 0);
  sim.spawn(body(io, proc));
  sim.run();
  return {proc.take_records(), proc.share_arena()};
}

TEST(Engine, OpenWriteCloseSequence) {
  const auto records = run_single([](IoSystem& io, ProcessContext& proc) -> des::Proc<> {
    const int fd = co_await io.sys_openat(proc, "/p/scratch/ssf/test", true);
    co_await io.sys_write(proc, fd, 1 << 20);
    co_await io.sys_close(proc, fd);
  });
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].call, "openat");
  EXPECT_EQ(records[1].call, "write");
  EXPECT_EQ(records[2].call, "close");
  EXPECT_EQ(records[0].path, "/p/scratch/ssf/test");
  EXPECT_EQ(records[1].retval, 1 << 20);
}

TEST(Engine, RecordsRoundTripThroughStraceParser) {
  const auto records = run_single([](IoSystem& io, ProcessContext& proc) -> des::Proc<> {
    const int fd = co_await io.sys_openat(proc, "/p/scratch/ssf/test", true);
    co_await io.sys_lseek(proc, fd, 1048576);
    co_await io.sys_write(proc, fd, 1048576);
    co_await io.sys_pread64(proc, fd, 65536, 0);
    co_await io.sys_fsync(proc, fd);
    co_await io.sys_close(proc, fd);
  });
  for (const auto& rec : records) {
    const std::string line = strace::format_record(rec);  // must outlive the parsed views
    const auto reparsed = strace::parse_line(line);
    ASSERT_TRUE(reparsed) << rec.call;
    EXPECT_EQ(reparsed->call, rec.call);
    EXPECT_EQ(reparsed->pid, rec.pid);
    EXPECT_EQ(reparsed->timestamp, rec.timestamp);
    EXPECT_EQ(reparsed->duration, rec.duration);
    EXPECT_EQ(reparsed->retval, rec.retval);
    EXPECT_EQ(reparsed->path, rec.path) << rec.call;
  }
}

TEST(Engine, TimestampsAreMonotonicAndDurationsPositive) {
  const auto records = run_single([](IoSystem& io, ProcessContext& proc) -> des::Proc<> {
    const int fd = co_await io.sys_openat(proc, "/p/f", true);
    for (int i = 0; i < 10; ++i) co_await io.sys_write(proc, fd, 4096);
    co_await io.sys_close(proc, fd);
  });
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].timestamp, records[i - 1].timestamp);
  }
  for (const auto& rec : records) {
    ASSERT_TRUE(rec.duration);
    EXPECT_GT(*rec.duration, 0);
  }
}

TEST(Engine, SequentialWritesAdvanceOffset) {
  des::Simulator sim;
  CostModel model;
  model.jitter_sigma = 0.0;
  IoSystem io(sim, model, 1);
  ProcessContext proc(1, 0);
  auto body = [](IoSystem& ios, ProcessContext& p) -> des::Proc<> {
    const int fd = co_await ios.sys_openat(p, "/p/f", true);
    co_await ios.sys_write(p, fd, 100);
    co_await ios.sys_write(p, fd, 100);
  };
  sim.spawn(body(io, proc));
  sim.run();
  EXPECT_EQ(io.fs().find("/p/f")->size, 200);
}

TEST(Engine, LseekRepositionsWrites) {
  des::Simulator sim;
  CostModel model;
  model.jitter_sigma = 0.0;
  IoSystem io(sim, model, 1);
  ProcessContext proc(1, 0);
  auto body = [](IoSystem& ios, ProcessContext& p) -> des::Proc<> {
    const int fd = co_await ios.sys_openat(p, "/p/f", true);
    co_await ios.sys_lseek(p, fd, 1000);
    co_await ios.sys_write(p, fd, 100);
  };
  sim.spawn(body(io, proc));
  sim.run();
  EXPECT_EQ(io.fs().find("/p/f")->size, 1100);
}

TEST(Engine, PwriteExtendsFileByOffset) {
  des::Simulator sim;
  CostModel model;
  model.jitter_sigma = 0.0;
  IoSystem io(sim, model, 1);
  ProcessContext proc(1, 0);
  auto body = [](IoSystem& ios, ProcessContext& p) -> des::Proc<> {
    const int fd = co_await ios.sys_openat(p, "/p/f", true);
    co_await ios.sys_pwrite64(p, fd, 100, 5000);
  };
  sim.spawn(body(io, proc));
  sim.run();
  EXPECT_EQ(io.fs().find("/p/f")->size, 5100);
}

TEST(Engine, FsyncClearsDirtyBytes) {
  des::Simulator sim;
  CostModel model;
  model.jitter_sigma = 0.0;
  IoSystem io(sim, model, 1);
  ProcessContext proc(1, 0);
  auto body = [](IoSystem& ios, ProcessContext& p) -> des::Proc<> {
    const int fd = co_await ios.sys_openat(p, "/p/f", true);
    co_await ios.sys_write(p, fd, 1 << 20);
    co_await ios.sys_fsync(p, fd);
  };
  sim.spawn(body(io, proc));
  sim.run();
  EXPECT_EQ(io.fs().find("/p/f")->dirty_bytes, 0);
}

TEST(Engine, BadFdThrowsLogicError) {
  EXPECT_THROW(run_single([](IoSystem& io, ProcessContext& proc) -> des::Proc<> {
                 co_await io.sys_write(proc, 99, 100);
               }),
               LogicError);
}

TEST(Engine, WallclockBaseOffsetsTimestamps) {
  des::Simulator sim;
  CostModel model;
  model.jitter_sigma = 0.0;
  IoSystem io(sim, model, 1);
  const Micros base = 10LL * 3600 * kMicrosPerSecond;
  ProcessContext proc(1, base);
  auto body = [](IoSystem& ios, ProcessContext& p) -> des::Proc<> {
    (void)co_await ios.sys_openat(p, "/p/f", true);
  };
  sim.spawn(body(io, proc));
  sim.run();
  EXPECT_GE(proc.records().front().timestamp, base);
}

// Contention behaviour: N concurrent writers on ONE inode must record
// longer write durations than N writers on N separate inodes.
TEST(Engine, SharedInodeWritesSlowerThanPrivate) {
  auto total_write_dur = [](bool shared) {
    des::Simulator sim;
    CostModel model;
    model.jitter_sigma = 0.0;
    IoSystem io(sim, model, 1);
    std::vector<std::unique_ptr<ProcessContext>> procs;
    for (int i = 0; i < 8; ++i) procs.push_back(std::make_unique<ProcessContext>(100 + i, 0));
    auto body = [](IoSystem& ios, ProcessContext& p, std::string path) -> des::Proc<> {
      const int fd = co_await ios.sys_openat(p, path, true);
      // Align all writers at a common virtual time (the open convoy
      // staggers them otherwise), as IOR's post-open barrier does.
      co_await ios.sim().delay(200000 - ios.sim().now());
      for (int k = 0; k < 4; ++k) co_await ios.sys_write(p, fd, 1 << 20);
      co_await ios.sys_close(p, fd);
    };
    for (int i = 0; i < 8; ++i) {
      const std::string path = shared ? "/p/shared" : "/p/own." + std::to_string(i);
      sim.spawn(body(io, *procs[static_cast<std::size_t>(i)], path));
    }
    sim.run();
    Micros total = 0;
    for (const auto& p : procs) {
      for (const auto& rec : p->records()) {
        if (rec.call == "write") total += rec.duration.value_or(0);
      }
    }
    return total;
  };
  const Micros shared = total_write_dur(true);
  const Micros private_files = total_write_dur(false);
  EXPECT_GT(shared, 2 * private_files);
}

// Shared opens pay per-prior-opener token revocation.
TEST(Engine, SharedOpenConvoy) {
  des::Simulator sim;
  CostModel model;
  model.jitter_sigma = 0.0;
  IoSystem io(sim, model, 1);
  std::vector<std::unique_ptr<ProcessContext>> procs;
  for (int i = 0; i < 4; ++i) procs.push_back(std::make_unique<ProcessContext>(100 + i, 0));
  auto body = [](IoSystem& ios, ProcessContext& p) -> des::Proc<> {
    (void)co_await ios.sys_openat(p, "/p/shared", true);
  };
  for (auto& p : procs) sim.spawn(body(io, *p));
  sim.run();
  std::vector<Micros> durations;
  for (const auto& p : procs) durations.push_back(*p->records().front().duration);
  // Strictly increasing: open i pays i token revocations.
  for (std::size_t i = 1; i < durations.size(); ++i) {
    EXPECT_GT(durations[i], durations[i - 1]);
  }
  EXPECT_GT(durations[3], static_cast<Micros>(3 * model.token_revoke_us * 0.9));
}

// Page cache: reading data written on the same host is DRAM-fast;
// reading from another host goes to storage (why IOR uses -C).
TEST(Engine, SameHostReadHitsPageCache) {
  des::Simulator sim;
  CostModel model;
  model.jitter_sigma = 0.0;
  IoSystem io(sim, model, 1);
  ProcessContext writer(1, 0, 1, "node1");
  ProcessContext local_reader(2, 0, 2, "node1");
  ProcessContext remote_reader(3, 0, 3, "node2");

  auto write_then_read = [](IoSystem& ios, ProcessContext& w, ProcessContext& lr,
                            ProcessContext& rr) -> des::Proc<> {
    const int wfd = co_await ios.sys_openat(w, "/p/scratch/f", true);
    co_await ios.sys_write(w, wfd, 8 << 20);
    co_await ios.sys_close(w, wfd);
    const int lfd = co_await ios.sys_openat(lr, "/p/scratch/f", false);
    co_await ios.sys_read(lr, lfd, 8 << 20);
    co_await ios.sys_close(lr, lfd);
    const int rfd = co_await ios.sys_openat(rr, "/p/scratch/f", false);
    co_await ios.sys_read(rr, rfd, 8 << 20);
    co_await ios.sys_close(rr, rfd);
  };
  sim.spawn(write_then_read(io, writer, local_reader, remote_reader));
  sim.run();

  const Micros local_dur = *local_reader.records()[1].duration;
  const Micros remote_dur = *remote_reader.records()[1].duration;
  // cache_read_bw (14 GB/s) vs read_bw (4.8 GB/s): ~2.9x faster.
  EXPECT_LT(2 * local_dur, remote_dur);
}

TEST(Engine, PwriteMarksCacheForPread) {
  des::Simulator sim;
  CostModel model;
  model.jitter_sigma = 0.0;
  IoSystem io(sim, model, 1);
  ProcessContext proc(1, 0, 1, "node1");
  auto body = [](IoSystem& ios, ProcessContext& p) -> des::Proc<> {
    const int fd = co_await ios.sys_openat(p, "/p/f", true);
    co_await ios.sys_pwrite64(p, fd, 4 << 20, 0);
    co_await ios.sys_pread64(p, fd, 4 << 20, 0);
  };
  sim.spawn(body(io, proc));
  sim.run();
  const auto& fs_node = *io.fs().find("/p/f");
  EXPECT_TRUE(fs_node.is_cached("node1", 0, 4 << 20, io.model().cache_block_bytes));
  EXPECT_FALSE(fs_node.is_cached("node2", 0, 4 << 20, io.model().cache_block_bytes));
  // pread after own pwrite is cache-fast: faster than the pwrite.
  EXPECT_LT(*proc.records()[2].duration, *proc.records()[1].duration);
}

TEST(Engine, StatReportsExistenceAndSize) {
  des::Simulator sim;
  CostModel model;
  model.jitter_sigma = 0.0;
  IoSystem io(sim, model, 1);
  ProcessContext proc(1, 0);
  std::int64_t before = -99;
  std::int64_t after = -99;
  auto body = [](IoSystem& ios, ProcessContext& p, std::int64_t& b, std::int64_t& a)
      -> des::Proc<> {
    b = co_await ios.sys_stat(p, "/p/f");
    const int fd = co_await ios.sys_openat(p, "/p/f", true);
    co_await ios.sys_write(p, fd, 100);
    a = co_await ios.sys_stat(p, "/p/f");
  };
  sim.spawn(body(io, proc, before, after));
  sim.run();
  EXPECT_EQ(before, -1);  // ENOENT before creation
  EXPECT_EQ(after, 0);
  // The stat record carries the errno on failure.
  EXPECT_EQ(proc.records()[0].call, "newfstatat");
  EXPECT_EQ(proc.records()[0].errno_name, "ENOENT");
  EXPECT_TRUE(proc.records()[3].errno_name.empty());
}

TEST(Engine, UnlinkRemovesFileAndCache) {
  des::Simulator sim;
  CostModel model;
  model.jitter_sigma = 0.0;
  IoSystem io(sim, model, 1);
  ProcessContext proc(1, 0);
  auto body = [](IoSystem& ios, ProcessContext& p) -> des::Proc<> {
    const int fd = co_await ios.sys_openat(p, "/p/f", true);
    co_await ios.sys_write(p, fd, 1 << 20);
    co_await ios.sys_close(p, fd);
    co_await ios.sys_unlink(p, "/p/f");
  };
  sim.spawn(body(io, proc));
  sim.run();
  const auto* node = io.fs().find("/p/f");
  ASSERT_NE(node, nullptr);
  EXPECT_FALSE(node->exists);
  EXPECT_EQ(node->size, 0);
  EXPECT_FALSE(node->is_cached("node1", 0, 4096, model.cache_block_bytes));
  EXPECT_EQ(proc.records().back().call, "unlinkat");
}

TEST(Engine, StatAndUnlinkRoundTripThroughParser) {
  const auto records = run_single([](IoSystem& io, ProcessContext& proc) -> des::Proc<> {
    (void)co_await io.sys_stat(proc, "/p/scratch/ssf/test");
    const int fd = co_await io.sys_openat(proc, "/p/scratch/ssf/test", true);
    co_await io.sys_close(proc, fd);
    co_await io.sys_unlink(proc, "/p/scratch/ssf/test");
  });
  for (const auto& rec : records) {
    const std::string line = strace::format_record(rec);  // must outlive the parsed views
    const auto reparsed = strace::parse_line(line);
    ASSERT_TRUE(reparsed) << rec.call;
    EXPECT_EQ(reparsed->call, rec.call);
    EXPECT_EQ(reparsed->path, rec.path) << rec.call;
  }
}

TEST(Engine, DeterministicForFixedSeed) {
  auto run = [] {
    return run_single([](IoSystem& io, ProcessContext& proc) -> des::Proc<> {
      const int fd = co_await io.sys_openat(proc, "/p/f", true);
      for (int i = 0; i < 20; ++i) co_await io.sys_write(proc, fd, 8192);
      co_await io.sys_close(proc, fd);
    });
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp, b[i].timestamp);
    EXPECT_EQ(a[i].duration, b[i].duration);
  }
}

}  // namespace
}  // namespace st::iosim
