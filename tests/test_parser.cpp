#include "strace/parser.hpp"

#include <gtest/gtest.h>

#include "support/errors.hpp"

namespace st::strace {
namespace {

// ---- complete records (Fig. 2a/2b verbatim lines) ---------------------

TEST(ParseLine, Fig2aReadLine) {
  const auto rec = parse_line(
      "9054  08:55:54.153994 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, ..., 832) "
      "= 832 <0.000203>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->pid, 9054u);
  EXPECT_EQ(rec->kind, RecordKind::Complete);
  EXPECT_EQ(rec->call, "read");
  EXPECT_EQ(rec->path, "/usr/lib/x86_64-linux-gnu/libselinux.so.1");
  EXPECT_EQ(rec->fd, 3);
  EXPECT_EQ(rec->retval, 832);
  EXPECT_EQ(rec->duration, 203);
  EXPECT_EQ(rec->requested, 832);
}

TEST(ParseLine, Fig2aShortRead) {
  const auto rec =
      parse_line("9054  08:55:54.162874 read(3</proc/filesystems>, ..., 1024) = 478 <0.000052>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->retval, 478);      // transferred
  EXPECT_EQ(rec->requested, 1024);  // requested differs (Sec. III rule 6)
}

TEST(ParseLine, Fig2aZeroRead) {
  const auto rec =
      parse_line("9054  08:55:54.163049 read(3</proc/filesystems>, \"\", 1024) = 0 <0.000040>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->retval, 0);
}

TEST(ParseLine, Fig2bWriteToTty) {
  const auto rec = parse_line("9173  08:56:04.758661 write(1</dev/pts/7>, ..., 9) = 9 <0.000074>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->call, "write");
  EXPECT_EQ(rec->fd, 1);
  EXPECT_EQ(rec->path, "/dev/pts/7");
}

TEST(ParseLine, QuotedPayloadWithCommasAndParens) {
  const auto rec = parse_line(
      R"(100  01:02:03.000001 write(1</dev/pts/0>, "a,b)c\n", 6) = 6 <0.000010>)");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->retval, 6);
  EXPECT_EQ(rec->requested, 6);
}

TEST(ParseLine, OpenatPathFromQuotedArg) {
  const auto rec = parse_line(
      R"(42  10:00:00.000000 openat(AT_FDCWD, "/p/scratch/ssf/test", O_RDWR|O_CREAT, 0644) = 5 <0.000150>)");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->call, "openat");
  EXPECT_EQ(rec->path, "/p/scratch/ssf/test");
  EXPECT_EQ(rec->retval, 5);
}

TEST(ParseLine, OpenatAnnotatedReturnPathWins) {
  const auto rec = parse_line(
      R"(42  10:00:00.000000 openat(AT_FDCWD, "test", O_RDONLY) = 5</p/resolved/test> <0.000020>)");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->retval, 5);
  // Quoted arg path was relative; the -y resolved path is available.
  EXPECT_EQ(rec->path, "test");  // first extraction wins; annotation fills only if empty
}

TEST(ParseLine, OpenAbsolutePathFirstArg) {
  const auto rec =
      parse_line(R"(42  10:00:00.000000 open("/etc/passwd", O_RDONLY) = 3 <0.000010>)");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->path, "/etc/passwd");
}

TEST(ParseLine, LseekRecord) {
  const auto rec = parse_line(
      "42  10:00:00.000000 lseek(5</p/scratch/ssf/test>, 16777216, SEEK_SET) = 16777216 "
      "<0.000002>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->call, "lseek");
  EXPECT_EQ(rec->retval, 16777216);
  EXPECT_EQ(rec->path, "/p/scratch/ssf/test");
}

TEST(ParseLine, Pwrite64Record) {
  const auto rec = parse_line(
      "42  10:00:00.000000 pwrite64(5</p/scratch/ssf/test>, \"\"..., 1048576, 33554432) = "
      "1048576 <0.000294>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->call, "pwrite64");
  EXPECT_EQ(rec->requested, 1048576);
  EXPECT_EQ(rec->retval, 1048576);
  EXPECT_TRUE(rec->is_data_transfer());
}

TEST(ParseLine, NegativeReturnWithErrno) {
  const auto rec = parse_line(
      "42  10:00:00.000000 read(3</p/f>, ..., 100) = -1 EAGAIN (Resource temporarily "
      "unavailable) <0.000005>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->retval, -1);
  EXPECT_EQ(rec->errno_name, "EAGAIN");
  EXPECT_FALSE(rec->is_restart());
}

TEST(ParseLine, RestartedCallFlagged) {
  const auto rec = parse_line(
      "42  10:00:00.000000 read(3</p/f>, ..., 100) = -1 ERESTARTSYS (To be restarted) "
      "<0.000005>");
  ASSERT_TRUE(rec);
  EXPECT_TRUE(rec->is_restart());
}

TEST(ParseLine, QuestionMarkReturn) {
  const auto rec = parse_line("42  10:00:00.000000 exit_group(0) = ?");
  ASSERT_TRUE(rec);
  EXPECT_FALSE(rec->retval);
}

TEST(ParseLine, NoDurationIsNullopt) {
  const auto rec = parse_line("42  10:00:00.000000 close(3</p/f>) = 0");
  ASSERT_TRUE(rec);
  EXPECT_FALSE(rec->duration);
}

// ---- unfinished / resumed (Fig. 2c) -----------------------------------

TEST(ParseLine, UnfinishedRecord) {
  const auto rec = parse_line(
      "77423  16:56:40.452431 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, "
      "<unfinished ...>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->kind, RecordKind::Unfinished);
  EXPECT_EQ(rec->call, "read");
  EXPECT_EQ(rec->path, "/usr/lib/x86_64-linux-gnu/libselinux.so.1");
}

TEST(ParseLine, ResumedRecord) {
  const auto rec = parse_line("77423  16:56:40.452660 <... read resumed> ..., 405) = 404 <0.000223>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->kind, RecordKind::Resumed);
  EXPECT_EQ(rec->call, "read");
  EXPECT_EQ(rec->retval, 404);
  EXPECT_EQ(rec->duration, 223);
}

TEST(Merger, Fig2cPairMergesIntoOneRecord) {
  ResumeMerger merger;
  auto unfinished = parse_line(
      "77423  16:56:40.452431 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, "
      "<unfinished ...>");
  auto resumed =
      parse_line("77423  16:56:40.452660 <... read resumed> ..., 405) = 404 <0.000223>");
  EXPECT_FALSE(merger.feed(std::move(*unfinished)));
  const auto merged = merger.feed(std::move(*resumed));
  ASSERT_TRUE(merged);
  EXPECT_EQ(merged->kind, RecordKind::Complete);
  // Start from the unfinished part, result from the resumed part.
  EXPECT_EQ(merged->timestamp, *parse_time_of_day("16:56:40.452431"));
  EXPECT_EQ(merged->retval, 404);
  EXPECT_EQ(merged->duration, 223);
  EXPECT_EQ(merged->path, "/usr/lib/x86_64-linux-gnu/libselinux.so.1");
  EXPECT_EQ(merged->requested, 405);
}

TEST(Merger, InterleavedPidsMatchCorrectly) {
  ResumeMerger merger;
  (void)merger.feed(*parse_line("1  10:00:00.000001 read(3</a>, <unfinished ...>"));
  (void)merger.feed(*parse_line("2  10:00:00.000002 write(4</b>, <unfinished ...>"));
  const auto m2 = merger.feed(*parse_line("2  10:00:00.000005 <... write resumed> , 7) = 7 <0.000003>"));
  ASSERT_TRUE(m2);
  EXPECT_EQ(m2->call, "write");
  EXPECT_EQ(m2->path, "/b");
  const auto m1 = merger.feed(*parse_line("1  10:00:00.000009 <... read resumed> , 5) = 5 <0.000008>"));
  ASSERT_TRUE(m1);
  EXPECT_EQ(m1->call, "read");
  EXPECT_EQ(m1->path, "/a");
}

TEST(Merger, ResumedWithoutUnfinishedThrows) {
  ResumeMerger merger;
  EXPECT_THROW((void)merger.feed(*parse_line(
                   "9  10:00:00.000000 <... read resumed> , 5) = 5 <0.000001>")),
               ParseError);
}

TEST(Merger, CallNameMismatchThrows) {
  ResumeMerger merger;
  (void)merger.feed(*parse_line("5  10:00:00.000000 read(3</a>, <unfinished ...>"));
  EXPECT_THROW(
      (void)merger.feed(*parse_line("5  10:00:00.000001 <... write resumed> , 5) = 5 <0.000001>")),
      ParseError);
}

TEST(Merger, TakePendingReturnsDanglingCalls) {
  ResumeMerger merger;
  (void)merger.feed(*parse_line("5  10:00:00.000000 read(3</a>, <unfinished ...>"));
  EXPECT_EQ(merger.pending_count(), 1u);
  const auto pending = merger.take_pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending.front().call, "read");
  EXPECT_EQ(merger.pending_count(), 0u);
}

TEST(Merger, CompleteRecordsPassThrough) {
  ResumeMerger merger;
  const auto rec = merger.feed(*parse_line("5  10:00:00.000000 close(3</a>) = 0 <0.000004>"));
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->call, "close");
}

// ---- signals and exits -------------------------------------------------

TEST(ParseLine, SignalRecord) {
  const auto rec = parse_line(
      "9054  08:55:54.200000 --- SIGCHLD {si_signo=SIGCHLD, si_code=CLD_EXITED} ---");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->kind, RecordKind::Signal);
  EXPECT_EQ(rec->call, "SIGCHLD");
}

TEST(ParseLine, ExitRecord) {
  const auto rec = parse_line("9054  08:55:54.300000 +++ exited with 0 +++");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->kind, RecordKind::Exit);
}

// ---- malformed input ---------------------------------------------------

TEST(ParseLine, BlankLineIsNullopt) {
  EXPECT_FALSE(parse_line(""));
  EXPECT_FALSE(parse_line("   "));
}

TEST(ParseLine, MissingPidThrows) {
  EXPECT_THROW((void)parse_line("read(3, x, 1) = 1"), ParseError);
}

TEST(ParseLine, MissingTimestampThrows) {
  EXPECT_THROW((void)parse_line("9054 read(3, x, 1) = 1"), ParseError);
}

TEST(ParseLine, UnbalancedParensThrows) {
  EXPECT_THROW((void)parse_line("9054  08:55:54.153994 read(3, x, 1 = 1"), ParseError);
}

TEST(ParseLine, MissingEqualsThrows) {
  EXPECT_THROW((void)parse_line("9054  08:55:54.153994 read(3, x, 1) 1"), ParseError);
}

TEST(ParseLine, HexPointerReturnHasNoSize) {
  const auto rec =
      parse_line("9  10:00:00.000000 mmap(NULL, 8192, PROT_READ, MAP_PRIVATE, 3</a>, 0) = "
                 "0x7f1200000000 <0.000007>");
  ASSERT_TRUE(rec);
  EXPECT_FALSE(rec->retval);
}

TEST(ParseLine, NonRwThirdNumericArgNotMisreadAsSize) {
  // fallocate(fd, mode, offset, len): the third argument is an offset,
  // not a byte count — the rw-family third-argument rule must not
  // apply, leaving the last numeric argument (the length).
  const auto rec =
      parse_line("1  10:00:00.000000 fallocate(3</a>, 0, 0, 1048576) = 0 <0.000010>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->requested, 1048576);
}

TEST(ParseLine, VectoredIoLeavesRequestedUnset) {
  // preadv's third argument is iovcnt; the byte sizes live inside the
  // iovec dump, so no requested count is extractable.
  const auto rec = parse_line(
      "1  10:00:00.000000 preadv(3</a>, [{iov_base=..., iov_len=4096}], 2, 8192) = 4096 "
      "<0.000010>");
  ASSERT_TRUE(rec);
  EXPECT_FALSE(rec->requested);
  EXPECT_TRUE(rec->is_data_transfer());
}

TEST(ParseLine, DataTransferClassification) {
  EXPECT_TRUE(parse_line("1  10:00:00.000000 readv(3</a>, [], 2) = 10 <0.000001>")->is_data_transfer());
  EXPECT_TRUE(parse_line("1  10:00:00.000000 pwritev(3</a>, [], 2, 0) = 10 <0.000001>")
                  ->is_data_transfer());
  EXPECT_FALSE(parse_line("1  10:00:00.000000 lseek(3</a>, 0, SEEK_SET) = 0 <0.000001>")
                   ->is_data_transfer());
  EXPECT_FALSE(
      parse_line("1  10:00:00.000000 openat(AT_FDCWD, \"/a\", O_RDONLY) = 3 <0.000001>")
          ->is_data_transfer());
}

}  // namespace
}  // namespace st::strace
