#include "support/strings.hpp"

#include <gtest/gtest.h>

namespace st {
namespace {

TEST(Trim, RemovesBothSides) { EXPECT_EQ(trim("  a b \t\n"), "a b"); }
TEST(Trim, EmptyStaysEmpty) { EXPECT_EQ(trim(""), ""); }
TEST(Trim, AllWhitespaceBecomesEmpty) { EXPECT_EQ(trim(" \t \n"), ""); }
TEST(Trim, NoWhitespaceUntouched) { EXPECT_EQ(trim("abc"), "abc"); }

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, AdjacentSeparatorsGiveEmptyFields) {
  const auto parts = split("a,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Split, EmptyInputGivesOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Split, TrailingSeparator) {
  const auto parts = split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitWs, SkipsRuns) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWs, EmptyGivesNothing) { EXPECT_TRUE(split_ws("   ").empty()); }

TEST(Join, Basic) {
  EXPECT_EQ(join(std::vector<std::string>{"a", "b"}, "/"), "a/b");
}

TEST(Join, SingleElement) {
  EXPECT_EQ(join(std::vector<std::string>{"a"}, ", "), "a");
}

TEST(Join, Empty) { EXPECT_EQ(join(std::vector<std::string>{}, ","), ""); }

TEST(Contains, Finds) {
  EXPECT_TRUE(contains("/usr/lib/libc.so", "/usr/lib"));
  EXPECT_FALSE(contains("/usr/lib", "/usr/local"));
}

TEST(ParseI64, Valid) {
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64("-7"), -7);
  EXPECT_EQ(parse_i64("0"), 0);
}

TEST(ParseI64, RejectsGarbage) {
  EXPECT_FALSE(parse_i64("42x"));
  EXPECT_FALSE(parse_i64(""));
  EXPECT_FALSE(parse_i64("4 2"));
  EXPECT_FALSE(parse_i64("0x10"));
}

TEST(ParseU64, RejectsNegative) { EXPECT_FALSE(parse_u64("-1")); }

TEST(ParseF64, Valid) {
  EXPECT_DOUBLE_EQ(*parse_f64("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(*parse_f64("-2.25"), -2.25);
}

TEST(ParseF64, RejectsGarbage) {
  EXPECT_FALSE(parse_f64("1.2.3"));
  EXPECT_FALSE(parse_f64(""));
}

// The mapping of Eq. 4 truncates to at most the top two directories.
TEST(TopDirs, PaperExample) {
  EXPECT_EQ(top_dirs("/usr/lib/x86_64-linux-gnu/libselinux.so.1", 2), "/usr/lib");
}

TEST(TopDirs, ShorterPathUnchanged) {
  EXPECT_EQ(top_dirs("/proc/filesystems", 2), "/proc/filesystems");
  EXPECT_EQ(top_dirs("/etc/locale.alias", 2), "/etc/locale.alias");
}

TEST(TopDirs, ExactDepth) { EXPECT_EQ(top_dirs("/a/b/c", 2), "/a/b"); }

TEST(TopDirs, OneLevel) { EXPECT_EQ(top_dirs("/dev/pts/7", 2), "/dev/pts"); }

TEST(TopDirs, RelativePathUnchanged) { EXPECT_EQ(top_dirs("rel/path/x", 2), "rel/path/x"); }

TEST(TopDirs, EmptyUnchanged) { EXPECT_EQ(top_dirs("", 2), ""); }

TEST(TopDirs, RootOnly) { EXPECT_EQ(top_dirs("/", 2), "/"); }

TEST(LastComponents, Fig4Style) {
  EXPECT_EQ(last_components("/usr/lib/x86_64-linux-gnu/libc.so.6", 2),
            "x86_64-linux-gnu/libc.so.6");
}

TEST(LastComponents, FewerComponentsThanRequested) {
  EXPECT_EQ(last_components("/etc/passwd", 3), "etc/passwd");
}

TEST(LastComponents, One) { EXPECT_EQ(last_components("/a/b/c", 1), "c"); }

TEST(LastComponents, ZeroGivesEmpty) { EXPECT_EQ(last_components("/a/b", 0), ""); }

TEST(DotEscape, QuotesAndBackslashes) {
  EXPECT_EQ(dot_escape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(DotEscape, NewlineBecomesLiteralEscape) { EXPECT_EQ(dot_escape("a\nb"), "a\\nb"); }

TEST(DotEscape, PlainUntouched) { EXPECT_EQ(dot_escape("read:/usr/lib"), "read:/usr/lib"); }

}  // namespace
}  // namespace st
