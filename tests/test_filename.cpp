#include "strace/filename.hpp"

#include <gtest/gtest.h>

namespace st::strace {
namespace {

TEST(TraceFilename, PaperExampleA) {
  const auto id = parse_trace_filename("a_host1_9042.st");
  ASSERT_TRUE(id);
  EXPECT_EQ(id->cid, "a");
  EXPECT_EQ(id->host, "host1");
  EXPECT_EQ(id->rid, 9042u);
}

TEST(TraceFilename, PaperExampleB) {
  const auto id = parse_trace_filename("b_host1_9157.st");
  ASSERT_TRUE(id);
  EXPECT_EQ(id->cid, "b");
  EXPECT_EQ(id->rid, 9157u);
}

TEST(TraceFilename, PathPrefixIgnored) {
  const auto id = parse_trace_filename("/tmp/traces/ssf_node2_20095.st");
  ASSERT_TRUE(id);
  EXPECT_EQ(id->cid, "ssf");
  EXPECT_EQ(id->host, "node2");
  EXPECT_EQ(id->rid, 20095u);
}

TEST(TraceFilename, HostMayContainUnderscores) {
  const auto id = parse_trace_filename("a_jwc_01_23_77.st");
  ASSERT_TRUE(id);
  EXPECT_EQ(id->cid, "a");
  EXPECT_EQ(id->host, "jwc_01_23");
  EXPECT_EQ(id->rid, 77u);
}

TEST(TraceFilename, RejectsWrongSuffix) {
  EXPECT_FALSE(parse_trace_filename("a_host1_9042.txt"));
}

TEST(TraceFilename, RejectsTooFewParts) {
  EXPECT_FALSE(parse_trace_filename("a_9042.st"));
  EXPECT_FALSE(parse_trace_filename("9042.st"));
}

TEST(TraceFilename, RejectsNonNumericRid) {
  EXPECT_FALSE(parse_trace_filename("a_host1_xyz.st"));
}

TEST(TraceFilename, RejectsEmptyCid) {
  EXPECT_FALSE(parse_trace_filename("_host1_9042.st"));
}

TEST(TraceFilename, FormatRoundTrip) {
  const TraceFileId id{"fpp", "node2", 30017};
  EXPECT_EQ(format_trace_filename(id), "fpp_node2_30017.st");
  EXPECT_EQ(parse_trace_filename(format_trace_filename(id)), id);
}

}  // namespace
}  // namespace st::strace
