// Acceptance tests for the CaseSink substrate (pipeline/sink.hpp):
//   - every sink's output is byte-identical to its staged counterpart
//     at 1, 2 and 4 workers: the DFG (build_serial/build_parallel),
//     case summaries (summarize_cases, serial and pooled), the
//     activity log (ActivityLog::build), the variant multiset
//     (ActivityLog::build().variants()) and the query-filtered log
//     (Query::apply) — all produced by ONE streamed pass,
//   - queue capacity 1 (maximal backpressure) is still byte-identical,
//   - QuerySink's filtered log owns its views independently of the
//     primary log (correct owner adoption),
//   - a sink whose fold throws mid-stream follows the
//     lowest-input-index-wins error contract — against other sink
//     failures AND against strict-mode parse errors — never merges a
//     partial into any sink, never leaks a queued continuation
//     (ASan-verified, extending the PR 4 pool-destruction regressions),
//     and leaves the pool usable.
#include "pipeline/sink.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dfg/builder.hpp"
#include "model/activity_log.hpp"
#include "model/case_stats.hpp"
#include "model/from_strace.hpp"
#include "model/query.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/stream.hpp"
#include "strace/reader.hpp"
#include "support/errors.hpp"
#include "support/timeparse.hpp"

namespace st {
namespace {

namespace fs = std::filesystem;

std::string ts(Micros t) { return format_time_of_day(t); }

/// A trace body with reads, opens, cross-line resume pairs and — when
/// `with_noise` — lines that provoke reader warnings.
std::string make_trace(std::size_t lines, bool with_noise, std::uint64_t pid_base = 7) {
  std::string text;
  Micros t = 36000000000;  // 10:00:00
  for (std::size_t i = 0; i < lines; ++i) {
    t += 100;
    const std::string pid = std::to_string(pid_base + i % 2);
    switch (i % 5) {
      case 0:
        text += pid + "  " + ts(t) + " read(3</p/data/f>, \"\"..., 512) = 512 <0.000040>\n";
        break;
      case 1:
        text += pid + "  " + ts(t) +
                " openat(AT_FDCWD, \"/p/scratch/ssf/test\", O_RDWR|O_CREAT, 0644) = 5 "
                "<0.000150>\n";
        break;
      case 2:
        text += pid + "  " + ts(t) +
                " pwrite64(5</p/scratch/ssf/test>, \"\"..., 1048576, 33554432) = 1048576 "
                "<0.000294>\n";
        break;
      case 3:
        if (with_noise && i % 15 == 3) {
          text += pid + "  " + ts(t) + " not_a_call_line\n";
        } else {
          text += pid + "  " + ts(t) + " read(3</p/data/f>, <unfinished ...>\n";
        }
        break;
      default:
        text += pid + "  " + ts(t) + " <... read resumed> \"\"..., 405) = 404 <0.000223>\n";
        break;
    }
  }
  return text;
}

/// A strict-clean trace (no warnings), so strict-mode error tests can
/// inject failures precisely where they want them.
std::string make_clean_trace(std::size_t lines, std::uint64_t pid) {
  std::string text;
  Micros t = 36000000000;
  const std::string p = std::to_string(pid);
  for (std::size_t i = 0; i < lines; ++i) {
    t += 100;
    switch (i % 5) {
      case 0:
        text += p + "  " + ts(t) + " read(3</p/data/f>, \"\"..., 512) = 512 <0.000040>\n";
        break;
      case 1:
        text += p + "  " + ts(t) +
                " openat(AT_FDCWD, \"/p/scratch/ssf/test\", O_RDWR|O_CREAT, 0644) = 5 "
                "<0.000150>\n";
        break;
      case 2:
        text += p + "  " + ts(t) +
                " pwrite64(5</p/scratch/ssf/test>, \"\"..., 1048576, 33554432) = 1048576 "
                "<0.000294>\n";
        break;
      case 3:
        text += p + "  " + ts(t) + " read(3</p/data/f>, <unfinished ...>\n";
        break;
      default:
        text += p + "  " + ts(t) + " <... read resumed> \"\"..., 405) = 404 <0.000223>\n";
        break;
    }
  }
  return text;
}

class PipelineSinks : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_sinks_" + std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& text) {
    const fs::path p = dir_ / name;
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << text;
    return p.string();
  }

  /// One big file, several small ones, with and without noise, multiple
  /// hosts, plus an empty file (empty case, empty variant).
  std::vector<std::string> make_corpus() {
    std::vector<std::string> paths;
    paths.push_back(write_file("big_nodeA_9001.st", make_trace(900, true)));
    for (int i = 0; i < 4; ++i) {
      paths.push_back(write_file(
          "s" + std::to_string(i) + "_node" + (i % 2 ? "B" : "C") + "_" +
              std::to_string(9100 + i) + ".st",
          make_trace(30 + static_cast<std::size_t>(i) * 7, i % 2 == 0,
                     static_cast<std::uint64_t>(100 + i))));
    }
    paths.push_back(write_file("empty_nodeA_9200.st", ""));
    return paths;
  }

  fs::path dir_;
};

void expect_same_log(const model::EventLog& a, const model::EventLog& b) {
  ASSERT_EQ(a.case_count(), b.case_count());
  for (std::size_t c = 0; c < a.case_count(); ++c) {
    const auto& ca = a.cases()[c];
    const auto& cb = b.cases()[c];
    ASSERT_EQ(ca.id(), cb.id()) << "case " << c;
    ASSERT_EQ(ca.size(), cb.size()) << "case " << c;
    for (std::size_t i = 0; i < ca.size(); ++i) {
      ASSERT_EQ(ca.events()[i], cb.events()[i]) << "case " << c << " event " << i;
    }
  }
  EXPECT_EQ(a.warnings(), b.warnings());
}

void expect_same_activity_log(const model::ActivityLog& a, const model::ActivityLog& b) {
  EXPECT_EQ(a.variants(), b.variants());
  EXPECT_EQ(a.per_case(), b.per_case());
  EXPECT_EQ(a.activities(), b.activities());
  EXPECT_EQ(a.case_count(), b.case_count());
  EXPECT_EQ(a.total_activity_instances(), b.total_activity_instances());
}

model::Query test_query() {
  return model::Query()
      .calls({"read", "write"})
      .fp_contains("/p/")
      .cids({"big", "s0", "s1", "s3", "empty"});
}

// ---- byte-identity with the staged counterparts ------------------------

TEST_F(PipelineSinks, EverySinkMatchesItsStagedCounterpartAt124Workers) {
  const auto paths = make_corpus();
  const auto f = model::Mapping::call_top_dirs(2);
  const auto q = test_query();

  // Staged references, all computed from a separately-ingested log.
  const auto reference = model::event_log_from_files(paths, 1);
  const auto ref_graph = dfg::build_serial(reference, f);
  const auto ref_summaries = model::summarize_cases(reference);
  const auto ref_activity = model::ActivityLog::build(reference, f);
  const auto ref_filtered = q.apply(reference);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    pipeline::StreamOptions opts;
    opts.min_chunk_bytes = 512;  // force many chunks per file

    pipeline::DfgSink graph_sink(f);
    pipeline::CaseStatsSink stats_sink;
    pipeline::ActivityLogSink activity_sink(f);
    pipeline::VariantsSink variants_sink(f);
    pipeline::QuerySink query_sink(q);
    const auto log = pipeline::run(
        paths, pool,
        {&graph_sink, &stats_sink, &activity_sink, &variants_sink, &query_sink}, opts);

    expect_same_log(reference, log);
    EXPECT_EQ(graph_sink.graph(), ref_graph) << workers;
    EXPECT_EQ(graph_sink.graph(), dfg::build_parallel(log, f, pool)) << workers;
    EXPECT_EQ(stats_sink.summaries(), ref_summaries) << workers;
    EXPECT_EQ(stats_sink.summaries(), model::summarize_cases(log, pool)) << workers;
    expect_same_activity_log(activity_sink.log(), ref_activity);
    EXPECT_EQ(variants_sink.variants(), ref_activity.variants()) << workers;
    expect_same_log(ref_filtered, query_sink.log());
  }
}

TEST_F(PipelineSinks, QueueCapacityOneIsStillByteIdentical) {
  // Maximal backpressure degeneration: a 1-slot StageQueue serializes
  // the parse -> convert hand-off completely; output may not change.
  const auto paths = make_corpus();
  const auto f = model::Mapping::call_top_dirs(2);
  const auto reference = model::event_log_from_files(paths, 1);
  const auto ref_graph = dfg::build_serial(reference, f);
  const auto ref_summaries = model::summarize_cases(reference);

  for (const std::size_t workers : {1u, 4u}) {
    ThreadPool pool(workers);
    pipeline::StreamOptions opts;
    opts.min_chunk_bytes = 512;
    opts.queue_capacity = 1;

    pipeline::DfgSink graph_sink(f);
    pipeline::CaseStatsSink stats_sink;
    const auto log = pipeline::run(paths, pool, {&graph_sink, &stats_sink}, opts);
    expect_same_log(reference, log);
    EXPECT_EQ(graph_sink.graph(), ref_graph) << workers;
    EXPECT_EQ(stats_sink.summaries(), ref_summaries) << workers;

    // The wrappers honor the option too.
    const auto streamed = pipeline::event_log_streamed(paths, pool, opts);
    expect_same_log(reference, streamed);
    const auto result = pipeline::trace_to_dfg(paths, f, pool, opts);
    EXPECT_EQ(result.graph, ref_graph) << workers;
  }
}

TEST_F(PipelineSinks, TraceToDfgIsAThinWrapperOverRun) {
  const auto paths = make_corpus();
  const auto f = model::Mapping::call_last_components(1);
  ThreadPool pool(3);
  pipeline::DfgSink sink(f);
  const auto log = pipeline::run(paths, pool, {&sink});
  const auto wrapped = pipeline::trace_to_dfg(paths, f, pool);
  expect_same_log(log, wrapped.log);
  EXPECT_EQ(sink.graph(), wrapped.graph);
}

TEST_F(PipelineSinks, EmptyInputs) {
  ThreadPool pool(2);
  const auto f = model::Mapping::call_only();
  pipeline::DfgSink graph_sink(f);
  pipeline::CaseStatsSink stats_sink;
  pipeline::VariantsSink variants_sink(f);
  const auto log =
      pipeline::run({}, pool, {&graph_sink, &stats_sink, &variants_sink});
  EXPECT_EQ(log.case_count(), 0u);
  EXPECT_TRUE(graph_sink.graph().empty());
  EXPECT_TRUE(stats_sink.summaries().empty());
  EXPECT_TRUE(variants_sink.variants().empty());
}

// ---- lifetime ----------------------------------------------------------

TEST_F(PipelineSinks, FilteredLogOwnsItsViewsIndependently) {
  // The QuerySink log must stand alone: after the primary log, the
  // pool and every pipeline intermediate are destroyed, every view of
  // the filtered log must still dereference to the same bytes (the
  // adopted per-case arenas and TraceBuffers are what keep them alive
  // — ASan turns a missed adoption into a hard failure under the
  // sanitize preset).
  const auto paths = make_corpus();
  model::EventLog filtered;
  std::vector<std::string> expected_calls;
  {
    ThreadPool pool(3);
    pipeline::QuerySink query_sink(model::Query().calls({"read", "write"}));
    const auto log = pipeline::run(paths, pool, {&query_sink});
    filtered = query_sink.take_log();
    ASSERT_GT(filtered.total_events(), 0u);
    ASSERT_LT(filtered.total_events(), log.total_events());
    for (const auto& c : filtered.cases()) {
      for (const auto& e : c.events()) expected_calls.emplace_back(e.call);
    }
  }  // primary log, pool and every pipeline intermediate destroyed here
  EXPECT_TRUE(filtered.warnings().empty());  // derived view: no ingestion warnings
  std::size_t i = 0;
  for (const auto& c : filtered.cases()) {
    EXPECT_FALSE(c.id().cid.empty());
    for (const auto& e : c.events()) {
      EXPECT_EQ(e.call, expected_calls[i++]);  // full deref, not just size
      EXPECT_EQ(e.cid, c.id().cid);
      EXPECT_EQ(e.host, c.id().host);
      EXPECT_TRUE(e.call == "read" || e.call == "pwrite64") << e.call;
    }
  }
  EXPECT_EQ(i, expected_calls.size());
}

// ---- error paths -------------------------------------------------------

/// Throws while folding the case whose cid matches; counts merges so
/// tests can assert that failing runs never merge anything.
class ThrowingSink final : public pipeline::CaseSink {
 public:
  explicit ThrowingSink(std::string poison_cid) : poison_cid_(std::move(poison_cid)) {}

  std::unique_ptr<pipeline::SinkPartial> make_partial() const override {
    return std::make_unique<pipeline::SinkPartial>();
  }

  void fold(pipeline::SinkPartial&, const pipeline::CaseContext& ctx) const override {
    if (ctx.c.id().cid == poison_cid_) {
      throw std::runtime_error("sink poisoned on " + poison_cid_);
    }
  }

  void merge(std::unique_ptr<pipeline::SinkPartial>) override { ++merges_; }

  [[nodiscard]] int merges() const { return merges_; }

 private:
  std::string poison_cid_;
  int merges_ = 0;
};

TEST_F(PipelineSinks, ThrowingFoldIsDeterministicAndMergesNothing) {
  std::vector<std::string> paths;
  paths.push_back(write_file("a_nodeA_1.st", make_clean_trace(500, 40)));
  paths.push_back(write_file("b_nodeA_2.st", make_clean_trace(300, 50)));
  paths.push_back(write_file("c_nodeA_3.st", make_clean_trace(400, 60)));
  paths.push_back(write_file("d_nodeA_4.st", make_clean_trace(200, 70)));

  const auto f = model::Mapping::call_only();
  ThreadPool pool(4);
  pipeline::StreamOptions opts;
  opts.min_chunk_bytes = 256;
  opts.queue_capacity = 1;  // maximal backpressure while failing
  for (int round = 0; round < 10; ++round) {
    // Two sinks poisoned on different files: the error of the LOWER
    // input index ("b", index 1) must win every round, regardless of
    // scheduling — same contract as competing parse errors.
    ThrowingSink early("b");
    ThrowingSink late("d");
    pipeline::DfgSink graph_sink(f);
    try {
      (void)pipeline::run(paths, pool, {&graph_sink, &late, &early}, opts);
      FAIL() << "expected the poisoned fold to throw, round " << round;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("poisoned on b"), std::string::npos)
          << "round " << round << ": " << e.what();
    }
    // No sink saw a merge — a failing run leaves every sink empty,
    // never half-merged.
    EXPECT_EQ(early.merges(), 0) << round;
    EXPECT_EQ(late.merges(), 0) << round;
    EXPECT_TRUE(graph_sink.graph().empty()) << round;
  }
  // The pool survives the failed runs and is still usable.
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST_F(PipelineSinks, SinkErrorCompetesWithParseErrorByInputIndex) {
  std::vector<std::string> paths;
  paths.push_back(write_file("a_nodeA_1.st", make_clean_trace(400, 40)));
  paths.push_back(write_file("bad_nodeA_2.st", "8  10:00:00.000000 garbage line\n"));
  paths.push_back(write_file("c_nodeA_3.st", make_clean_trace(300, 50)));

  ThreadPool pool(4);
  pipeline::StreamOptions opts;
  opts.strict = true;
  opts.min_chunk_bytes = 256;
  for (int round = 0; round < 10; ++round) {
    {
      // Sink poisoned on index 0, parse error at index 1: sink wins.
      ThrowingSink sink("a");
      try {
        (void)pipeline::run(paths, pool, {&sink}, opts);
        FAIL() << "expected an error, round " << round;
      } catch (const std::runtime_error& e) {
        // A ParseError here would mean the later parse error outranked
        // the earlier sink error — its message would not match.
        EXPECT_NE(std::string(e.what()).find("poisoned on a"), std::string::npos)
            << "round " << round << ": " << e.what();
      }
    }
    {
      // Sink poisoned on index 2, parse error at index 1: parse wins.
      ThrowingSink sink("c");
      EXPECT_THROW((void)pipeline::run(paths, pool, {&sink}, opts), ParseError)
          << "round " << round;
    }
  }
}

TEST_F(PipelineSinks, PoolDestructionAfterThrowingRunLeaksNoContinuation) {
  // Extends the PR 4 pool-destruction regressions: the pool dies
  // IMMEDIATELY after a failing sink run. run() must have awaited every
  // task, so nothing may still reference the destroyed frame — under
  // ASan this test fails loudly if a queued continuation leaked.
  std::vector<std::string> paths;
  paths.push_back(write_file("a_nodeA_1.st", make_clean_trace(600, 40)));
  paths.push_back(write_file("b_nodeA_2.st", make_clean_trace(400, 50)));
  paths.push_back(write_file("c_nodeA_3.st", make_clean_trace(500, 60)));

  const auto f = model::Mapping::call_only();
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(4);
    pipeline::StreamOptions opts;
    opts.min_chunk_bytes = 256;
    opts.queue_capacity = 1;
    ThrowingSink sink("b");
    pipeline::DfgSink graph_sink(f);
    EXPECT_THROW((void)pipeline::run(paths, pool, {&graph_sink, &sink}, opts),
                 std::runtime_error)
        << round;
  }  // ~ThreadPool right after the throw, every round
}

}  // namespace
}  // namespace st
