#include "model/case_stats.hpp"

#include <gtest/gtest.h>

#include "iosim/commands.hpp"
#include "parallel/thread_pool.hpp"
#include "testing_util.hpp"

namespace st::model {
namespace {

using testing::ev;
using testing::make_case;

EventLog sample() {
  EventLog log;
  log.add_case(make_case("a", 1, {
                                     ev("openat", "/p/f", 0, 25, -1),
                                     ev("read", "/p/f", 100, 50, 1024),
                                     ev("pwrite64", "/p/f", 200, 60, 2048),
                                     ev("write", "/p/f", 300, 40, 512),
                                 }));
  log.add_case(make_case("b", 2, {}));
  return log;
}

TEST(CaseStats, CountsAndBytes) {
  const auto summaries = summarize_cases(sample());
  ASSERT_EQ(summaries.size(), 2u);
  const auto& s = summaries[0];
  EXPECT_EQ(s.events, 4u);
  EXPECT_EQ(s.calls.at("openat"), 1u);
  EXPECT_EQ(s.calls.at("read"), 1u);
  EXPECT_EQ(s.bytes_read, 1024);
  EXPECT_EQ(s.bytes_written, 2048 + 512);  // pwrite64 counts as a write
  EXPECT_EQ(s.total_dur, 25 + 50 + 60 + 40);
}

TEST(CaseStats, SpanFromFirstStartToLastEnd) {
  const auto summaries = summarize_cases(sample());
  EXPECT_EQ(summaries[0].first_start, 0);
  EXPECT_EQ(summaries[0].last_end, 340);
  EXPECT_EQ(summaries[0].span(), 340);
}

TEST(CaseStats, EmptyCaseIsZeroed) {
  const auto summaries = summarize_cases(sample());
  EXPECT_EQ(summaries[1].events, 0u);
  EXPECT_EQ(summaries[1].span(), 0);
  EXPECT_EQ(summaries[1].bytes_read, 0);
}

TEST(CaseStats, EventsWithoutSizeDoNotCountBytes) {
  EventLog log;
  log.add_case(make_case("a", 1, {ev("read", "/f", 0, 10, -1)}));
  const auto summaries = summarize_cases(log);
  EXPECT_EQ(summaries[0].bytes_read, 0);
}

TEST(CaseStats, RenderIsDeterministicTable) {
  const auto summaries = summarize_cases(sample());
  const auto text = render_case_summaries(summaries);
  EXPECT_EQ(text, render_case_summaries(summaries));
  EXPECT_NE(text.find("a_host1_1"), std::string::npos);
  EXPECT_NE(text.find("b_host1_2"), std::string::npos);
  EXPECT_NE(text.find("events"), std::string::npos);
}

TEST(CaseStats, ParallelSummariesIdenticalToSerial) {
  EventLog log = sample();
  for (int i = 0; i < 10; ++i) {
    log.add_case(make_case("bulk", 10 + i,
                           {ev("read", "/p/f", i, 3, 256), ev("write", "/p/f", i + 5, 4, 128),
                            ev("openat", "/p/f", i + 9, 1)}));
  }
  ThreadPool pool(3);
  const auto serial = summarize_cases(log);
  const auto parallel = summarize_cases(log, pool);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].id, serial[i].id) << i;
    EXPECT_EQ(parallel[i].events, serial[i].events) << i;
    EXPECT_EQ(parallel[i].calls, serial[i].calls) << i;
    EXPECT_EQ(parallel[i].bytes_read, serial[i].bytes_read) << i;
    EXPECT_EQ(parallel[i].bytes_written, serial[i].bytes_written) << i;
    EXPECT_EQ(parallel[i].total_dur, serial[i].total_dur) << i;
    EXPECT_EQ(parallel[i].first_start, serial[i].first_start) << i;
    EXPECT_EQ(parallel[i].last_end, serial[i].last_end) << i;
  }
  // The rendered table is byte-identical, too.
  EXPECT_EQ(render_case_summaries(parallel), render_case_summaries(serial));
}

TEST(CaseStats, LsTracesMatchFig2Totals) {
  const auto summaries = summarize_cases(iosim::make_ls_traces().to_event_log());
  ASSERT_EQ(summaries.size(), 3u);
  for (const auto& s : summaries) {
    EXPECT_EQ(s.events, 8u);
    // Fig. 2a reads: 832*3 + 478 + 0 + 2996 + 0 = 5970 B.
    EXPECT_EQ(s.bytes_read, 5970);
    EXPECT_EQ(s.bytes_written, 50);
  }
}

}  // namespace
}  // namespace st::model
