// StageQueue: the bounded MPMC hand-off between pipeline stages.
// Covers the contract the streaming pipeline depends on:
//   - bounded capacity gives real backpressure (full queue blocks
//     push, try_push refuses),
//   - items from one producer come out in that producer's push order,
//   - close(error) propagates a producer-side exception to every pop
//     after the drain,
//   - driven by a 1-worker pool the whole pipeline degenerates to
//     strict serial order.
#include "parallel/stage_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace st {
namespace {

using namespace std::chrono_literals;

TEST(StageQueue, PushPopRoundTrip) {
  StageQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.size(), 0u);
}

TEST(StageQueue, CapacityIsAtLeastOne) {
  StageQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_FALSE(q.try_push(8));  // full
}

TEST(StageQueue, TryPushRefusesWhenFull) {
  StageQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_push(3));  // space again after a pop
}

TEST(StageQueue, FullQueueBlocksPushUntilPop) {
  StageQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2));  // must block: capacity 1, queue full
    second_pushed.store(true);
  });
  // The producer cannot finish while the queue is full.
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.size(), 1u);  // backpressure: never over capacity

  EXPECT_EQ(q.pop(), 1);  // makes room; the blocked push completes
  EXPECT_EQ(q.pop(), 2);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(StageQueue, SizeNeverExceedsCapacityUnderContention) {
  StageQueue<int> q(3);
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < 100; ++i) (void)q.push(p * 100 + i);
    });
  }
  std::size_t popped = 0;
  while (popped < 400) {
    EXPECT_LE(q.size(), 3u);
    if (q.pop()) ++popped;
  }
  for (auto& t : producers) t.join();
}

TEST(StageQueue, FifoPerProducer) {
  constexpr int kProducers = 4;
  constexpr int kItems = 200;
  StageQueue<std::pair<int, int>> q(8);  // (producer, sequence)
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.push({p, i}));
    });
  }
  std::map<int, int> next;  // producer -> expected next sequence
  for (int n = 0; n < kProducers * kItems; ++n) {
    const auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->second, next[item->first])
        << "producer " << item->first << " out of order";
    ++next[item->first];
  }
  for (auto& t : producers) t.join();
  for (const auto& [p, n] : next) EXPECT_EQ(n, kItems) << "producer " << p;
}

TEST(StageQueue, CloseDrainsThenEnds) {
  StageQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  // Pending items drain first; only then does pop report the close.
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);  // stays ended
}

TEST(StageQueue, PushAfterCloseIsRefused) {
  StageQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_FALSE(q.try_push(2));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(StageQueue, CloseWakesBlockedProducer) {
  StageQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> refused{false};
  std::thread producer([&] {
    refused.store(!q.push(2));  // blocks on the full queue until close()
  });
  std::this_thread::sleep_for(20ms);
  q.close();
  producer.join();
  EXPECT_TRUE(refused.load());
  EXPECT_EQ(q.pop(), 1);  // the item pushed before the close survives
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(StageQueue, CloseErrorPropagatesAfterDrain) {
  StageQueue<int> q(4);
  ASSERT_TRUE(q.push(41));
  q.close(std::make_exception_ptr(std::runtime_error("stage A failed")));
  // The item pushed before the failure still drains...
  EXPECT_EQ(q.pop(), 41);
  // ...then every pop rethrows the producer's exception.
  for (int i = 0; i < 2; ++i) {
    try {
      (void)q.pop();
      FAIL() << "expected the close error";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "stage A failed");
    }
  }
}

TEST(StageQueue, CloseErrorWakesBlockedConsumer) {
  StageQueue<int> q(2);
  std::thread producer([&q] {
    std::this_thread::sleep_for(20ms);
    q.close(std::make_exception_ptr(std::runtime_error("boom")));
  });
  EXPECT_THROW((void)q.pop(), std::runtime_error);  // blocked, then poisoned
  producer.join();
}

TEST(StageQueue, FirstCloseWins) {
  StageQueue<int> q(2);
  q.close();  // clean close first
  q.close(std::make_exception_ptr(std::runtime_error("late error")));
  EXPECT_EQ(q.pop(), std::nullopt);  // the late error close was ignored
}

TEST(StageQueue, OneWorkerPoolDegeneratesToSerialOrder) {
  // Producers running on a 1-worker pool execute one after another, so
  // the queue must deliver the EXACT submission order — the pipeline's
  // "1 worker == sequential build" guarantee rests on this.
  constexpr int kTasks = 100;
  StageQueue<int> q(4);
  ThreadPool pool(1);
  std::vector<std::future<void>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(pool.submit([&q, i] { ASSERT_TRUE(q.push(i)); }));
  }
  for (int i = 0; i < kTasks; ++i) {
    const auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  for (auto& t : tasks) t.get();
}

}  // namespace
}  // namespace st
