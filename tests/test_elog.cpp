#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "elog/format.hpp"
#include "elog/store.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "testing_util.hpp"

namespace st::elog {
namespace {

using testing::ev;
using testing::make_case;

model::EventLog sample_log() {
  model::EventLog log;
  log.add_case(make_case("a", 9042,
                         {ev("read", "/usr/lib/x/libselinux.so.1", 100, 203, 832),
                          ev("read", "/usr/lib/x/libselinux.so.1", 400, 79, 832),
                          ev("write", "/dev/pts/7", 600, 111, 50)}));
  log.add_case(make_case("b", 9157, {ev("openat", "/p/scratch/ssf/test", 0, 25, -1)}, "node2"));
  return log;
}

bool logs_equal(const model::EventLog& a, const model::EventLog& b) {
  if (a.case_count() != b.case_count()) return false;
  for (std::size_t i = 0; i < a.case_count(); ++i) {
    const auto& ca = a.cases()[i];
    const auto& cb = b.cases()[i];
    if (ca.id() != cb.id() || ca.size() != cb.size()) return false;
    for (std::size_t j = 0; j < ca.size(); ++j) {
      if (!(ca.events()[j] == cb.events()[j])) return false;
    }
  }
  return true;
}

TEST(Elog, RoundTripThroughStream) {
  const auto log = sample_log();
  std::stringstream buf;
  write_event_log(buf, log);
  const auto reloaded = read_event_log(buf);
  EXPECT_TRUE(logs_equal(log, reloaded));
}

TEST(Elog, RoundTripEmptyLog) {
  std::stringstream buf;
  write_event_log(buf, model::EventLog{});
  EXPECT_EQ(read_event_log(buf).case_count(), 0u);
}

TEST(Elog, RoundTripEmptyCase) {
  model::EventLog log;
  log.add_case(make_case("a", 1, {}));
  std::stringstream buf;
  write_event_log(buf, log);
  const auto reloaded = read_event_log(buf);
  EXPECT_EQ(reloaded.case_count(), 1u);
  EXPECT_EQ(reloaded.cases()[0].size(), 0u);
}

TEST(Elog, RoundTripThroughFile) {
  const std::string path = ::testing::TempDir() + "/elog_roundtrip.elog";
  write_event_log_file(path, sample_log());
  EXPECT_TRUE(logs_equal(sample_log(), read_event_log_file(path)));
  std::filesystem::remove(path);
}

TEST(Elog, MissingFileThrows) {
  EXPECT_THROW((void)read_event_log_file("/nonexistent/x.elog"), IoError);
}

TEST(Elog, BadMagicThrows) {
  std::stringstream buf("NOTELOG0rest of data");
  EXPECT_THROW((void)read_event_log(buf), IoError);
}

TEST(Elog, TruncationThrows) {
  std::stringstream buf;
  write_event_log(buf, sample_log());
  const std::string data = buf.str();
  for (const std::size_t cut : {data.size() / 4, data.size() / 2, data.size() - 3}) {
    std::stringstream cut_buf(data.substr(0, cut));
    EXPECT_THROW((void)read_event_log(cut_buf), IoError) << "cut at " << cut;
  }
}

// Failure injection: flipping any payload byte must surface as a CRC
// error (or a structural IoError if the flip lands in framing).
TEST(Elog, CorruptionDetectedAtManyOffsets) {
  std::stringstream buf;
  write_event_log(buf, sample_log());
  const std::string data = buf.str();
  Xoshiro256 rng(99);
  int detected = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    std::string corrupt = data;
    // Skip the magic (first 8 bytes): bad magic is its own test.
    const std::size_t pos = 8 + rng.below(corrupt.size() - 8);
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 + rng.below(255)));
    std::stringstream cbuf(corrupt);
    try {
      const auto reloaded = read_event_log(cbuf);
      // A flip in the case-count field can only shrink/grow structure;
      // reads that "succeed" must at least differ from the original.
      if (!logs_equal(sample_log(), reloaded)) ++detected;
    } catch (const Error&) {
      ++detected;
    }
  }
  EXPECT_EQ(detected, trials);
}

TEST(Elog, StringPoolDeduplicatesPaths) {
  // 1000 events on one path must store the path once, not 1000 times.
  model::EventLog log;
  std::vector<model::Event> events;
  const std::string path = "/p/scratch/ssf/a-rather-long-file-path-name";
  for (int i = 0; i < 1000; ++i) events.push_back(ev("write", path, i * 10, 5, 100));
  log.add_case(make_case("w", 1, std::move(events)));
  std::stringstream buf;
  write_event_log(buf, log);
  const std::string data = buf.str();

  std::size_t occurrences = 0;
  for (std::size_t pos = data.find(path); pos != std::string::npos;
       pos = data.find(path, pos + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);
  std::stringstream reread(data);
  EXPECT_TRUE(logs_equal(log, read_event_log(reread)));
}

TEST(Elog, PreservesEventOrderAndIdentity) {
  const auto reloaded = [] {
    std::stringstream buf;
    write_event_log(buf, sample_log());
    return read_event_log(buf);
  }();
  const auto* c = reloaded.find_case(model::CaseId{"b", "node2", 9157});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->events()[0].call, "openat");
  EXPECT_EQ(c->events()[0].cid, "b");
  EXPECT_EQ(c->events()[0].host, "node2");
  EXPECT_EQ(c->events()[0].size, -1);
}

TEST(ElogAppender, IncrementalWriteMatchesBulkWrite) {
  const std::string path = ::testing::TempDir() + "/appender.elog";
  const auto log = sample_log();
  {
    ElogAppender appender(path);
    for (const auto& c : log.cases()) appender.append(c);
    EXPECT_EQ(appender.cases_written(), 2u);
    appender.finalize();
  }
  EXPECT_TRUE(logs_equal(sample_log(), read_event_log_file(path)));
  std::filesystem::remove(path);
}

TEST(ElogAppender, DestructorFinalizes) {
  const std::string path = ::testing::TempDir() + "/appender_dtor.elog";
  const auto log = sample_log();
  {
    ElogAppender appender(path);
    appender.append(log.cases()[0]);
  }  // no explicit finalize
  EXPECT_EQ(read_event_log_file(path).case_count(), 1u);
  std::filesystem::remove(path);
}

TEST(ElogAppender, AppendAfterFinalizeThrows) {
  const std::string path = ::testing::TempDir() + "/appender_after.elog";
  const auto log = sample_log();
  ElogAppender appender(path);
  appender.finalize();
  EXPECT_THROW(appender.append(log.cases()[0]), LogicError);
  std::filesystem::remove(path);
}

TEST(ElogAppender, FinalizeIsIdempotent) {
  const std::string path = ::testing::TempDir() + "/appender_idem.elog";
  const auto log = sample_log();
  ElogAppender appender(path);
  appender.append(log.cases()[0]);
  appender.finalize();
  appender.finalize();
  EXPECT_EQ(read_event_log_file(path).case_count(), 1u);
  std::filesystem::remove(path);
}

TEST(ElogAppender, EmptyFileReadsAsEmptyLog) {
  const std::string path = ::testing::TempDir() + "/appender_empty.elog";
  ElogAppender(path).finalize();
  EXPECT_EQ(read_event_log_file(path).case_count(), 0u);
  std::filesystem::remove(path);
}

// ---- hardening: corrupt counts/lengths must fail fast, not allocate ----

TEST(ElogHardening, PayloadReaderTruncatedPrimitivesThrow) {
  PayloadReader r("ab");
  EXPECT_THROW((void)r.u32(), IoError);
  PayloadReader r64("abcdefg");
  EXPECT_THROW((void)r64.u64(), IoError);
  std::string short_str;
  put_u32(short_str, 100);  // claims 100 bytes, provides none
  PayloadReader rs(short_str);
  EXPECT_THROW((void)rs.str(), IoError);
  PayloadReader ri("1234567");
  EXPECT_THROW((void)ri.i64(), IoError);
}

/// A syntactically valid v1 prefix (magic + case count + CHDR) so
/// crafted chunks land inside a case body.
std::stringstream v1_case_prelude() {
  std::stringstream buf;
  buf.write(kMagic.data(), static_cast<std::streamsize>(kMagic.size()));
  std::string count;
  put_u64(count, 1);
  buf.write(count.data(), static_cast<std::streamsize>(count.size()));
  std::string header;
  put_string(header, "a_host1_1.st");
  write_chunk(buf, kTagCaseHeader, header);
  return buf;
}

TEST(ElogHardening, HugePoolCountRejectedBeforeAllocating) {
  // The chunk CRC is valid — only the count is hostile. The reader
  // must bound it against the payload size, not reserve 4G strings.
  auto buf = v1_case_prelude();
  std::string pool_payload;
  put_u32(pool_payload, 0xFFFFFFFFu);
  write_chunk(buf, kTagPool, pool_payload);
  EXPECT_THROW((void)read_event_log(buf), IoError);
}

TEST(ElogHardening, HugeRowCountRejectedBeforeAllocating) {
  auto buf = v1_case_prelude();
  std::string pool_payload;
  put_u32(pool_payload, 0);
  write_chunk(buf, kTagPool, pool_payload);
  std::string pid_payload;
  put_u64(pid_payload, 1ULL << 50);
  write_chunk(buf, kTagColPid, pid_payload);
  EXPECT_THROW((void)read_event_log(buf), IoError);
}

TEST(ElogHardening, ChunkLengthPastStreamEndFailsFast) {
  // A corrupt chunk length claiming ~0.5 TiB of payload with a few
  // bytes present must be an IoError after at most one bounded read
  // step — not a terabyte resize.
  auto buf = v1_case_prelude();
  buf.write("POOL", 4);
  std::string len;
  put_u64(len, 1ULL << 39);
  buf.write(len.data(), static_cast<std::streamsize>(len.size()));
  buf << "only a little data";
  EXPECT_THROW((void)read_event_log(buf), IoError);
}

TEST(ElogHardening, ImplausibleChunkLengthRejected) {
  auto buf = v1_case_prelude();
  buf.write("POOL", 4);
  std::string len;
  put_u64(len, ~0ULL);
  buf.write(len.data(), static_cast<std::streamsize>(len.size()));
  EXPECT_THROW((void)read_event_log(buf), IoError);
}

TEST(Elog, LargeRandomLogRoundTrips) {
  Xoshiro256 rng(7);
  model::EventLog log;
  for (int c = 0; c < 20; ++c) {
    std::vector<model::Event> events;
    const std::size_t n = rng.below(200);
    for (std::size_t i = 0; i < n; ++i) {
      events.push_back(ev(rng.below(2) != 0 ? "read" : "write",
                          "/p/" + std::to_string(rng.below(10)),
                          static_cast<Micros>(rng.below(100000)),
                          static_cast<Micros>(rng.below(500)),
                          static_cast<std::int64_t>(rng.below(1 << 20)) - 1));
    }
    log.add_case(make_case("r", static_cast<std::uint64_t>(c + 1), std::move(events)));
  }
  std::stringstream buf;
  write_event_log(buf, log);
  EXPECT_TRUE(logs_equal(log, read_event_log(buf)));
}

}  // namespace
}  // namespace st::elog
