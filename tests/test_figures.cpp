// Regression tests for the headline numbers of the paper's evaluation
// figures, at the full 96-rank scale (the same runs the bench/fig*
// binaries print). These pin the calibration recorded in
// EXPERIMENTS.md: if a cost-model change moves the reproduced shapes
// away from the paper, these tests fail.
#include <gtest/gtest.h>

#include "dfg/builder.hpp"
#include "dfg/diff.hpp"
#include "dfg/stats.hpp"
#include "dfg/validate.hpp"
#include "iosim/campaign.hpp"

namespace st {
namespace {

class FullScaleFigures : public ::testing::Test {
 protected:
  static const model::EventLog& cx() {
    static const model::EventLog log = iosim::ssf_fpp_campaign(iosim::CampaignScale{});
    return log;
  }
  static const model::EventLog& cy() {
    static const model::EventLog log = iosim::mpiio_campaign(iosim::CampaignScale{});
    return log;
  }
};

TEST_F(FullScaleFigures, Fig8aScratchDominates) {
  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 0);
  const auto stats = dfg::IoStatistics::compute(cx(), f);

  const double open_scratch = stats.find("openat\n$SCRATCH")->rel_dur;
  const double write_scratch = stats.find("write\n$SCRATCH")->rel_dur;
  const double read_scratch = stats.find("read\n$SCRATCH")->rel_dur;
  // Paper: 0.55 / 0.43 / 0.02.
  EXPECT_NEAR(open_scratch, 0.55, 0.08);
  EXPECT_NEAR(write_scratch, 0.43, 0.08);
  EXPECT_LT(read_scratch, 0.08);
  // Everything off $SCRATCH is noise-level.
  for (const char* activity :
       {"openat\n$SOFTWARE", "read\n$SOFTWARE", "openat\n$HOME", "read\n$HOME",
        "openat\nNode Local", "write\nNode Local"}) {
    ASSERT_NE(stats.find(activity), nullptr) << activity;
    EXPECT_LT(stats.find(activity)->rel_dur, 0.01) << activity;
  }
}

TEST_F(FullScaleFigures, Fig8aBytesExact) {
  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 0);
  const auto stats = dfg::IoStatistics::compute(cx(), f);
  // 2 runs x 96 ranks x 3 segments x 16 MiB blocks = 9.66 GB.
  const std::int64_t expected = 2LL * 96 * 3 * (16 << 20);
  EXPECT_EQ(stats.find("write\n$SCRATCH")->bytes, expected);
  EXPECT_EQ(stats.find("read\n$SCRATCH")->bytes, expected);
}

TEST_F(FullScaleFigures, Fig8aMaxConcurrencyIs96) {
  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 0);
  const auto stats = dfg::IoStatistics::compute(cx(), f);
  EXPECT_EQ(stats.find("write\n$SCRATCH")->max_concurrency, 96u);
  EXPECT_EQ(stats.find("read\n$SCRATCH")->max_concurrency, 96u);
}

TEST_F(FullScaleFigures, Fig8bSsfVersusFppLoads) {
  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 1)
                     .filtered_fp("/p/scratch");
  const auto stats = dfg::IoStatistics::compute(cx(), f);
  const double open_ssf = stats.find("openat\n$SCRATCH/ssf")->rel_dur;
  const double write_ssf = stats.find("write\n$SCRATCH/ssf")->rel_dur;
  const double open_fpp = stats.find("openat\n$SCRATCH/fpp")->rel_dur;
  const double write_fpp = stats.find("write\n$SCRATCH/fpp")->rel_dur;
  // Paper: 0.54 / 0.43 / 0.01 / 0.00.
  EXPECT_NEAR(open_ssf, 0.54, 0.08);
  EXPECT_NEAR(write_ssf, 0.43, 0.08);
  EXPECT_LT(open_fpp, 0.02);
  EXPECT_LT(write_fpp, 0.05);
  EXPECT_GT(open_ssf, 20 * open_fpp);
  EXPECT_GT(write_ssf, 10 * write_fpp);
}

TEST_F(FullScaleFigures, Fig8CaseAndEventCounts) {
  EXPECT_EQ(cx().case_count(), 192u);  // 96 SSF + 96 FPP
  // openat/read/write variants only: per rank 2 opens + 48 writes +
  // 48 reads for the scratch phase, plus the startup accesses.
  EXPECT_EQ(cx().total_events(), 37632u);
}

TEST_F(FullScaleFigures, Fig9LseekShapeAndCounts) {
  std::size_t posix_lseek = 0;
  std::size_t mpiio_lseek = 0;
  std::size_t posix_events = 0;
  std::size_t mpiio_events = 0;
  for (const auto& c : cy().cases()) {
    const bool mpiio = c.id().cid == "mpiio";
    for (const auto& e : c.events()) {
      (mpiio ? mpiio_events : posix_events) += 1;
      if (e.call == "lseek") (mpiio ? mpiio_lseek : posix_lseek) += 1;
    }
  }
  // POSIX: one lseek per transfer (2*96*48=9216) + 4 startup lseeks per
  // rank; MPI-IO: startup lseeks only.
  EXPECT_EQ(posix_lseek, 9216u + 4u * 96u);
  EXPECT_EQ(mpiio_lseek, 4u * 96u);
  EXPECT_LT(mpiio_events, posix_events);
}

TEST_F(FullScaleFigures, Fig9PartitionClasses) {
  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 0);
  const auto [green, red] =
      cy().partition([](const model::Case& c) { return c.id().cid == "mpiio"; });
  const dfg::GraphDiff diff(dfg::build_serial(green, f), dfg::build_serial(red, f));
  EXPECT_TRUE(diff.green_nodes().contains("pwrite64\n$SCRATCH"));
  EXPECT_TRUE(diff.green_nodes().contains("pread64\n$SCRATCH"));
  EXPECT_TRUE(diff.red_nodes().contains("lseek\n$SCRATCH"));
  EXPECT_TRUE(diff.common_nodes().contains("read\n$SOFTWARE"));
  EXPECT_TRUE(diff.common_nodes().contains("lseek\n$SOFTWARE"));
  EXPECT_TRUE(diff.common_nodes().contains("write\nNode Local"));
}

TEST_F(FullScaleFigures, GraphInvariantsHoldAtScale) {
  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 1);
  EXPECT_TRUE(dfg::validate(dfg::build_serial(cx(), f)).empty());
  EXPECT_TRUE(dfg::validate(dfg::build_serial(cy(), f)).empty());
}

TEST_F(FullScaleFigures, DeterministicAcrossRebuilds) {
  const auto again = iosim::ssf_fpp_campaign(iosim::CampaignScale{});
  EXPECT_EQ(again.total_events(), cx().total_events());
  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 1);
  EXPECT_EQ(dfg::build_serial(again, f), dfg::build_serial(cx(), f));
}

}  // namespace
}  // namespace st
