// The paper's clock-synchronization claim (Sec. IV-B), as properties:
// shifting whole host clocks changes max-concurrency (possibly), but
// never the DFG, the relative durations, the byte totals, the data
// rates, or the rank counts.
#include <gtest/gtest.h>

#include "dfg/builder.hpp"
#include "dfg/stats.hpp"
#include "iosim/campaign.hpp"
#include "model/skew.hpp"
#include "support/rng.hpp"
#include "testing_util.hpp"

namespace st::model {
namespace {

using testing::ev;
using testing::make_case;

EventLog two_host_log() {
  EventLog log;
  // node1 and node2 events overlap when clocks are aligned.
  log.add_case(make_case("x", 1, {ev("read", "/p/f", 0, 100, 64), ev("read", "/p/f", 200, 100, 64)},
                         "node1"));
  log.add_case(make_case("x", 2, {ev("read", "/p/f", 50, 100, 64)}, "node2"));
  return log;
}

TEST(Skew, ShiftMovesOnlyNamedHosts) {
  const auto shifted = shift_host_clocks(two_host_log(), {{"node2", 1'000'000}});
  const auto* c1 = shifted.find_case(CaseId{"x", "node1", 1});
  const auto* c2 = shifted.find_case(CaseId{"x", "node2", 2});
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c1->events()[0].start, 0);
  EXPECT_EQ(c2->events()[0].start, 1'000'050);
  EXPECT_EQ(c2->events()[0].dur, 100);  // durations untouched
}

TEST(Skew, NegativeOffsetsAllowed) {
  const auto shifted = shift_host_clocks(two_host_log(), {{"node1", -40}});
  EXPECT_EQ(shifted.find_case(CaseId{"x", "node1", 1})->events()[0].start, -40);
}

TEST(Skew, MaxConcurrencyChangesUnderSkew) {
  const auto f = Mapping::call_only();
  const auto aligned = dfg::IoStatistics::compute(two_host_log(), f);
  EXPECT_EQ(aligned.find("read")->max_concurrency, 2u);  // [0,100] vs [50,150]
  const auto skewed = dfg::IoStatistics::compute(
      shift_host_clocks(two_host_log(), {{"node2", 1'000'000}}), f);
  EXPECT_EQ(skewed.find("read")->max_concurrency, 1u);  // overlap destroyed
}

TEST(Skew, DfgInvariantUnderAnySkew) {
  // "not having the clocks synchronized does not affect the DFG
  // construction" — the per-case event order is preserved by whole-
  // host shifts, so the graph is identical.
  const auto log = iosim::ssf_fpp_campaign(iosim::CampaignScale::small());
  const auto f = Mapping::call_site(SitePathMap::juwels_like(), 1);
  const auto skewed = shift_host_clocks(log, {{"node1", 123'456}, {"node2", -987'654}});
  EXPECT_EQ(dfg::build_serial(log, f), dfg::build_serial(skewed, f));
}

TEST(Skew, OtherMetricsInvariantUnderSkew) {
  const auto log = iosim::ssf_fpp_campaign(iosim::CampaignScale::small());
  const auto f = Mapping::call_site(SitePathMap::juwels_like(), 1);
  const auto skewed = shift_host_clocks(log, {{"node1", 5'000'000}});
  const auto before = dfg::IoStatistics::compute(log, f);
  const auto after = dfg::IoStatistics::compute(skewed, f);
  ASSERT_EQ(before.per_activity().size(), after.per_activity().size());
  EXPECT_EQ(before.total_duration(), after.total_duration());
  for (const auto& [activity, b] : before.per_activity()) {
    const auto* a = after.find(activity);
    ASSERT_NE(a, nullptr) << activity;
    EXPECT_DOUBLE_EQ(a->rel_dur, b.rel_dur) << activity;
    EXPECT_EQ(a->bytes, b.bytes) << activity;
    EXPECT_DOUBLE_EQ(a->mean_rate, b.mean_rate) << activity;
    EXPECT_EQ(a->rank_count, b.rank_count) << activity;
    EXPECT_EQ(a->event_count, b.event_count) << activity;
    // max_concurrency deliberately NOT compared: it is the one metric
    // the paper says needs synchronized clocks.
  }
}

class SkewProperty : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SkewProperty, ::testing::Values(1, 2, 3, 4));

TEST_P(SkewProperty, RandomSkewsNeverChangeTheDfg) {
  Xoshiro256 rng(GetParam());
  const auto log = iosim::run_ior([&] {
    auto opt = iosim::make_ssf_options(iosim::CampaignScale::small());
    opt.seed = GetParam();
    return opt;
  }()).to_event_log();
  const auto f = Mapping::call_top_dirs(2);
  const auto reference = dfg::build_serial(log, f);
  for (int trial = 0; trial < 5; ++trial) {
    std::map<std::string, Micros> offsets;
    offsets["node1"] = static_cast<Micros>(rng.below(10'000'000)) - 5'000'000;
    offsets["node2"] = static_cast<Micros>(rng.below(10'000'000)) - 5'000'000;
    EXPECT_EQ(dfg::build_serial(shift_host_clocks(log, offsets), f), reference);
  }
}

}  // namespace
}  // namespace st::model
