#include "model/mapping.hpp"

#include <gtest/gtest.h>

#include "testing_util.hpp"

namespace st::model {
namespace {

using testing::ev;

// f-hat of Eq. 4: the paper's worked example.
TEST(Mapping, CallTopDirsPaperExample) {
  const auto f = Mapping::call_top_dirs(2);
  const auto a = f(ev("read", "/usr/lib/x86_64-linux-gnu/libselinux.so.1", 0, 1, 832));
  ASSERT_TRUE(a);
  EXPECT_EQ(*a, "read\n/usr/lib");
}

TEST(Mapping, CallTopDirsShortPathUnchanged) {
  const auto f = Mapping::call_top_dirs(2);
  EXPECT_EQ(*f(ev("read", "/proc/filesystems", 0, 1, 478)), "read\n/proc/filesystems");
  EXPECT_EQ(*f(ev("write", "/dev/pts/7", 0, 1, 50)), "write\n/dev/pts");
}

TEST(Mapping, CallLastComponentsFig4Style) {
  const auto f = Mapping::call_last_components(2);
  EXPECT_EQ(*f(ev("read", "/usr/lib/x86_64-linux-gnu/libc.so.6", 0, 1, 832)),
            "read\nx86_64-linux-gnu/libc.so.6");
}

TEST(Mapping, CallOnly) {
  const auto f = Mapping::call_only();
  EXPECT_EQ(*f(ev("pwrite64", "/p/scratch/ssf/test", 0, 1, 100)), "pwrite64");
}

TEST(Mapping, FilteredFpIsPartial) {
  const auto f = Mapping::call_top_dirs(2).filtered_fp("/usr/lib");
  EXPECT_TRUE(f(ev("read", "/usr/lib/a/b", 0, 1)));
  EXPECT_FALSE(f(ev("read", "/etc/passwd", 0, 1)));
}

TEST(Mapping, FilteredPredicate) {
  const auto f = Mapping::call_only().filtered("reads-only", [](const Event& e) {
    return e.call == "read";
  });
  EXPECT_TRUE(f(ev("read", "/x", 0, 1)));
  EXPECT_FALSE(f(ev("write", "/x", 0, 1)));
}

TEST(Mapping, DefaultConstructedIsInvalid) {
  const Mapping f;
  EXPECT_FALSE(f.valid());
  EXPECT_FALSE(f(ev("read", "/x", 0, 1)));
}

TEST(Mapping, CustomMapping) {
  const auto f = Mapping::custom("sized", [](const Event& e) -> std::optional<Activity> {
    if (!e.has_size()) return std::nullopt;
    return std::string(e.call) + ":" + std::to_string(e.size);
  });
  EXPECT_EQ(*f(ev("read", "/x", 0, 1, 832)), "read:832");
  EXPECT_FALSE(f(ev("lseek", "/x", 0, 1, -1)));
}

// ---- SitePathMap (f-bar) ------------------------------------------------

TEST(SitePathMap, JuwelsLikePrefixes) {
  const auto map = SitePathMap::juwels_like();
  EXPECT_EQ(map.abstract("/p/scratch/ssf/test"), "$SCRATCH");
  EXPECT_EQ(map.abstract("/p/home/user/.bashrc"), "$HOME");
  EXPECT_EQ(map.abstract("/p/software/mpi/lib/libmpi.so"), "$SOFTWARE");
  EXPECT_EQ(map.abstract("/dev/shm/seg0"), "Node Local");
  EXPECT_EQ(map.abstract("/usr/lib/libc.so"), "Node Local");
}

TEST(SitePathMap, LongestPrefixWins) {
  SitePathMap map("OTHER");
  map.add_prefix("/p", "$P");
  map.add_prefix("/p/scratch", "$SCRATCH");
  EXPECT_EQ(map.abstract("/p/scratch/x"), "$SCRATCH");
  EXPECT_EQ(map.abstract("/p/home/x"), "$P");
}

TEST(SitePathMap, MatchExposesRemainder) {
  const auto map = SitePathMap::juwels_like();
  const auto m = map.match("/p/scratch/ssf/test");
  EXPECT_TRUE(m.matched);
  EXPECT_EQ(m.label, "$SCRATCH");
  EXPECT_EQ(m.remainder, "/ssf/test");
}

TEST(SitePathMap, NoMatchUsesDefault) {
  const auto m = SitePathMap::juwels_like().match("/etc/passwd");
  EXPECT_FALSE(m.matched);
  EXPECT_EQ(m.label, "Node Local");
}

TEST(Mapping, CallSiteCollapsed) {
  const auto f = Mapping::call_site(SitePathMap::juwels_like(), 0);
  EXPECT_EQ(*f(ev("write", "/p/scratch/ssf/test", 0, 1, 100)), "write\n$SCRATCH");
  EXPECT_EQ(*f(ev("openat", "/dev/shm/seg", 0, 1)), "openat\nNode Local");
}

TEST(Mapping, CallSiteOneExtraLevelDistinguishesSsfFpp) {
  const auto f = Mapping::call_site(SitePathMap::juwels_like(), 1);
  EXPECT_EQ(*f(ev("write", "/p/scratch/ssf/test", 0, 1, 100)), "write\n$SCRATCH/ssf");
  EXPECT_EQ(*f(ev("write", "/p/scratch/fpp/test.00000001", 0, 1, 100)),
            "write\n$SCRATCH/fpp");
}

TEST(Mapping, CallSiteExtraLevelsNeverApplyToDefaultLabel) {
  const auto f = Mapping::call_site(SitePathMap::juwels_like(), 2);
  EXPECT_EQ(*f(ev("read", "/usr/lib/x/libc.so", 0, 1, 8)), "read\nNode Local");
}

TEST(Mapping, CallSiteExtraLevelsClampedToAvailableComponents) {
  const auto f = Mapping::call_site(SitePathMap::juwels_like(), 5);
  EXPECT_EQ(*f(ev("read", "/p/scratch/ssf/test", 0, 1, 8)), "read\n$SCRATCH/ssf/test");
}

TEST(Mapping, NamesAreDescriptive) {
  EXPECT_EQ(Mapping::call_top_dirs(2).name(), "call_top_dirs(2)");
  EXPECT_NE(Mapping::call_top_dirs(2).filtered_fp("/usr").name().find("fp~/usr"),
            std::string::npos);
}

}  // namespace
}  // namespace st::model
