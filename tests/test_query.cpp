#include "model/query.hpp"

#include <gtest/gtest.h>

#include "parallel/thread_pool.hpp"
#include "testing_util.hpp"

namespace st::model {
namespace {

using testing::ev;
using testing::make_case;

EventLog sample() {
  EventLog log;
  log.add_case(make_case("ssf", 1,
                         {ev("openat", "/p/scratch/ssf/test", 0, 10),
                          ev("lseek", "/p/scratch/ssf/test", 20, 2),
                          ev("write", "/p/scratch/ssf/test", 30, 100, 1024),
                          ev("pread64", "/p/scratch/ssf/test", 200, 50, 1024)}));
  log.add_case(make_case("fpp", 2, {ev("write", "/p/scratch/fpp/test.0", 50, 100, 1024)},
                         "node2"));
  log.add_case(make_case("ssf", 3, {ev("read", "/usr/lib/libc.so", 10, 5, 100)}, "node2"));
  return log;
}

TEST(CallFamily, VariantsMatch) {
  EXPECT_TRUE(call_in_family("read", "read"));
  EXPECT_TRUE(call_in_family("pread64", "read"));
  EXPECT_TRUE(call_in_family("readv", "read"));
  EXPECT_TRUE(call_in_family("preadv", "read"));
  EXPECT_TRUE(call_in_family("preadv2", "read"));
  EXPECT_FALSE(call_in_family("read", "write"));
  EXPECT_FALSE(call_in_family("lseek", "read"));
  EXPECT_TRUE(call_in_family("lseek", "lseek"));
}

TEST(Query, EmptyQueryMatchesEverything) {
  const auto out = Query().apply(sample());
  EXPECT_EQ(out.total_events(), sample().total_events());
  EXPECT_EQ(Query().describe(), "all");
}

TEST(Query, FpContains) {
  const auto out = Query().fp_contains("/p/scratch").apply(sample());
  EXPECT_EQ(out.total_events(), 5u);
}

TEST(Query, FpRestrictionsAreConjunctive) {
  const auto out = Query().fp_contains("/p/scratch").fp_contains("fpp").apply(sample());
  EXPECT_EQ(out.total_events(), 1u);
}

TEST(Query, CallFamilies) {
  const auto out = Query().calls({"read", "write"}).apply(sample());
  // write, pread64, write, read — but not openat/lseek.
  EXPECT_EQ(out.total_events(), 4u);
}

TEST(Query, TimeWindowIsHalfOpen) {
  const auto out = Query().between(20, 50).apply(sample());
  // lseek@20, write@30, write@50 excluded (to is exclusive)... write@50
  // has start == 50 -> excluded.
  EXPECT_EQ(out.total_events(), 2u);
}

TEST(Query, CidSelectionDropsWholeCases) {
  const auto out = Query().cids({"ssf"}).apply(sample());
  EXPECT_EQ(out.case_count(), 2u);
  EXPECT_EQ(out.total_events(), 5u);
}

TEST(Query, HostSelection) {
  const auto out = Query().hosts({"node2"}).apply(sample());
  EXPECT_EQ(out.case_count(), 2u);
}

TEST(Query, CombinedRestrictions) {
  const auto q = Query().cids({"ssf"}).calls({"write"}).fp_contains("/p/scratch");
  const auto out = q.apply(sample());
  EXPECT_EQ(out.total_events(), 1u);
  EXPECT_EQ(out.cases()[0].events()[0].call, "write");
}

TEST(Query, BuilderDoesNotMutateOriginal) {
  const Query base = Query().fp_contains("/p/scratch");
  const Query narrowed = base.fp_contains("fpp");
  EXPECT_EQ(base.apply(sample()).total_events(), 5u);
  EXPECT_EQ(narrowed.apply(sample()).total_events(), 1u);
}

TEST(Query, DescribeSummarizes) {
  const auto q = Query().fp_contains("/p").calls({"read", "write"}).between(0, 100);
  const std::string d = q.describe();
  EXPECT_NE(d.find("fp~/p"), std::string::npos);
  EXPECT_NE(d.find("calls{read,write}"), std::string::npos);
  EXPECT_NE(d.find("t[0,100)"), std::string::npos);
}

TEST(Query, MatchesEventDirectly) {
  const auto q = Query().calls({"write"});
  EXPECT_TRUE(q.matches(ev("write", "/x", 0, 1)));
  EXPECT_TRUE(q.matches(ev("pwrite64", "/x", 0, 1)));
  EXPECT_FALSE(q.matches(ev("read", "/x", 0, 1)));
}

TEST(Query, CompiledCallSetMatchesCallInFamily) {
  // The precompiled sorted variant set must agree with the per-event
  // call_in_family derivation on near-miss names.
  const auto q = Query().calls({"read"});
  EXPECT_TRUE(q.matches(ev("read", "/x", 0, 1)));
  EXPECT_TRUE(q.matches(ev("pread64", "/x", 0, 1)));
  EXPECT_TRUE(q.matches(ev("preadv2", "/x", 0, 1)));
  EXPECT_FALSE(q.matches(ev("readlink", "/x", 0, 1)));   // prefix, not a variant
  EXPECT_FALSE(q.matches(ev("pread", "/x", 0, 1)));      // p-prefix needs the 64/v suffix
  EXPECT_FALSE(q.matches(ev("readv2", "/x", 0, 1)));     // v2 only with the p prefix
  EXPECT_FALSE(q.matches(ev("rea", "/x", 0, 1)));
}

TEST(Query, ParallelApplyIsByteIdenticalToSerial) {
  EventLog log = sample();
  // More cases than workers so chunking kicks in.
  for (int i = 0; i < 9; ++i) {
    log.add_case(make_case("bulk", 100 + i,
                           {ev("read", "/p/scratch/bulk", i * 10, 5, 64),
                            ev("write", "/p/scratch/bulk", i * 10 + 5, 5, 64),
                            ev("openat", "/usr/lib/x", i * 10 + 7, 1)}));
  }
  ThreadPool pool(3);
  const Query queries[] = {
      Query(),
      Query().fp_contains("/p/scratch"),
      Query().calls({"read", "write"}).between(5, 95),
      Query().cids({"ssf", "bulk"}).hosts({"node1"}),
      Query().fp_contains("nowhere"),
  };
  for (const auto& q : queries) {
    const EventLog serial = q.apply(log);
    const EventLog parallel = q.apply(log, pool);
    ASSERT_EQ(parallel.case_count(), serial.case_count()) << q.describe();
    for (std::size_t c = 0; c < serial.case_count(); ++c) {
      const auto& a = serial.cases()[c];
      const auto& b = parallel.cases()[c];
      ASSERT_EQ(a.id(), b.id()) << q.describe();
      ASSERT_EQ(a.size(), b.size()) << q.describe();
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.events()[i], b.events()[i]) << q.describe() << " case " << c;
      }
    }
  }
}

TEST(Query, ParallelApplySharesOwnership) {
  ThreadPool pool(2);
  EventLog narrowed;
  {
    EventLog log;
    // Event strings view into the log's own arena (not the test
    // helpers' process-lifetime arena); the derived log must keep that
    // storage alive after the source dies.
    auto& arena = log.arena();
    Event e;
    e.cid = arena.intern("own");
    e.host = arena.intern("node1");
    e.rid = 1;
    e.pid = 1;
    e.call = arena.intern("write");
    e.start = 10;
    e.dur = 5;
    e.fp = arena.intern("/p/scratch/owned");
    e.size = 128;
    log.add_case(Case(CaseId{"own", "node1", 1}, {e}));
    narrowed = Query().fp_contains("/p/scratch").apply(log, pool);
  }
  ASSERT_EQ(narrowed.total_events(), 1u);
  EXPECT_EQ(narrowed.cases()[0].events()[0].fp, "/p/scratch/owned");
  EXPECT_EQ(narrowed.cases()[0].events()[0].call, "write");
}

}  // namespace
}  // namespace st::model
